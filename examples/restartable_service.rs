//! Kill -9 the service mid-stream, restart it, keep going.
//!
//! This example demonstrates the crash-recovery contract end to end with
//! a **real** process kill, not a simulated one: the binary re-executes
//! itself as a child that opens a durable engine, ingests commits, and
//! calls [`std::process::abort`] mid-stream — no destructors, no log
//! flush, no clean shutdown. The parent then reopens the same directory:
//! recovery loads the newest checkpoint, replays the log suffix in
//! commit order, and the service resumes exactly at the last durable
//! epoch, continuing the same update stream as if nothing had happened.
//!
//! ```text
//! cargo run --release --example restartable_service
//! ```

use indoor_dq::model::IndoorPoint;
use indoor_dq::prelude::*;
use std::path::Path;

/// Epoch the child aborts at (after the commit is durable, before any
/// clean shutdown).
const ABORT_AT_EPOCH: u64 = 5;
/// Epochs the recovered parent adds on top.
const RESUME_EPOCHS: u64 = 4;

fn concourse() -> Result<IndoorSpace, Box<dyn std::error::Error>> {
    let mut plan = FloorPlanBuilder::new(4.0);
    let hall = plan.add_named_room("concourse", 0, Rect2::from_bounds(0.0, 0.0, 120.0, 12.0))?;
    let gate = plan.add_named_room("gate", 0, Rect2::from_bounds(40.0, 12.0, 80.0, 40.0))?;
    plan.add_door_between(hall, gate, Point2::new(60.0, 12.0))?;
    Ok(plan.finish()?)
}

fn open(data_dir: &Path) -> Result<IndoorEngine, Box<dyn std::error::Error>> {
    // `SyncPolicy::Group` (the default) fsyncs once per commit group, so
    // everything the child committed survives its abort.
    Ok(IndoorEngine::open(
        data_dir,
        concourse()?,
        EngineConfig::default(),
        DurabilityOptions::default(),
    )?)
}

/// One deterministic update per epoch: passengers check in one at a time
/// and shuffle down the concourse.
fn step(engine: &mut IndoorEngine, i: u64) -> Result<(), EngineError> {
    engine.apply(Update::InsertObjectAt {
        center: Point2::new(5.0 + (i as f64) * 9.0, 6.0),
        floor: 0,
        radius: 1.5,
        instances: 16,
        seed: i,
    })?;
    Ok(())
}

/// The child half: ingest until `ABORT_AT_EPOCH`, then die hard.
fn run_child(data_dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = open(data_dir)?;
    for i in 0.. {
        step(&mut engine, i)?;
        if engine.epoch() >= ABORT_AT_EPOCH {
            eprintln!("[child] aborting at epoch {} — no shutdown", engine.epoch());
            std::process::abort();
        }
    }
    unreachable!()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data_dir = std::env::temp_dir().join("idq-restartable-service");
    if std::env::var_os("IDQ_RESTARTABLE_CHILD").is_some() {
        return run_child(&data_dir);
    }
    let _ = std::fs::remove_dir_all(&data_dir);

    // Phase 1: the service runs in a child process and is killed
    // mid-stream.
    let status = std::process::Command::new(std::env::current_exe()?)
        .env("IDQ_RESTARTABLE_CHILD", "1")
        .status()?;
    assert!(!status.success(), "the child is supposed to die");
    println!("service killed mid-stream (status: {status})");

    // Phase 2: restart. Recovery finds the checkpoint + log the child
    // left behind and rebuilds the exact world at its last durable epoch.
    let mut engine = open(&data_dir)?;
    println!(
        "recovered epoch {} with {} passenger(s) (checkpoint at epoch {:?})",
        engine.epoch(),
        engine.snapshot().store().len(),
        engine.last_checkpoint_epoch(),
    );
    assert_eq!(engine.epoch(), ABORT_AT_EPOCH);
    assert_eq!(engine.snapshot().store().len() as u64, ABORT_AT_EPOCH);

    // Phase 3: the stream continues where the dead process left off —
    // same ids, same epochs, same standing queries.
    let desk = IndoorPoint::new(Point2::new(60.0, 6.0), 0);
    let mut perimeter = engine
        .service()
        .subscribe(Query::Range { q: desk, r: 30.0 })?;
    for i in 0..RESUME_EPOCHS {
        step(&mut engine, ABORT_AT_EPOCH + i)?;
    }
    let mut absorbed = 0;
    while absorbed < RESUME_EPOCHS {
        if let Some(n) = perimeter.wait()? {
            absorbed += 1;
            println!(
                "  [perimeter @ epoch {:>2}] {} change(s)",
                n.epoch,
                n.changes.len()
            );
        }
    }
    assert_eq!(engine.epoch(), ABORT_AT_EPOCH + RESUME_EPOCHS);

    // A manual checkpoint compacts the log so the next restart replays
    // only what comes after it.
    let at = engine.checkpoint()?.expect("engine is durable");
    println!(
        "resumed through epoch {} and checkpointed at epoch {at}. ✓",
        engine.epoch()
    );
    Ok(())
}
