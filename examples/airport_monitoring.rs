//! The paper's second motivating scenario (§I): monitoring individuals
//! within a predefined range of a sensitive point in an airport — e.g. a
//! power distribution unit — where one-directional doors (security
//! control) shape the reachable space.
//!
//! The example builds a small terminal with a landside/airside split: the
//! security checkpoint is one-way landside → airside. Monitoring around a
//! sensitive point on the airside must respect that passengers cannot walk
//! back through security: walking distance *from* the unit and *to* the
//! unit differ.
//!
//! On top of the live monitoring round, the example attaches a bounded
//! history ring (`idq-history`) before any passenger moves, scripts a
//! short journey through the terminal, and then answers after-the-fact
//! questions — where did the suspect walk, who was ever inside the
//! perimeter, who moved with them — verifying every reconstructed epoch
//! bit-for-bit against live snapshots pinned as ground truth.
//!
//! ```text
//! cargo run --release --example airport_monitoring
//! ```

use indoor_dq::model::IndoorPoint;
use indoor_dq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Terminal layout (one floor):
    //
    //   +-----------------+--sec--+------------------+
    //   |   landside hall  >>>>>>>|   airside hall   |
    //   +--------+--------+-------+---------+--------+
    //   | checkin|  shops |       |  gate A | gate B |
    //   +--------+--------+       +---------+--------+
    //
    // `sec` is one-way (landside → airside); an exit corridor (not drawn)
    // lets passengers leave airside back to landside the long way round.
    let mut plan = FloorPlanBuilder::new(4.0);
    let landside = plan.add_named_room("landside", 0, Rect2::from_bounds(0.0, 20.0, 60.0, 40.0))?;
    let airside = plan.add_named_room("airside", 0, Rect2::from_bounds(60.0, 20.0, 120.0, 40.0))?;
    let checkin = plan.add_named_room("checkin", 0, Rect2::from_bounds(0.0, 0.0, 30.0, 20.0))?;
    let shops = plan.add_named_room("shops", 0, Rect2::from_bounds(30.0, 0.0, 60.0, 20.0))?;
    let gate_a = plan.add_named_room("gateA", 0, Rect2::from_bounds(60.0, 0.0, 90.0, 20.0))?;
    let gate_b = plan.add_named_room("gateB", 0, Rect2::from_bounds(90.0, 0.0, 120.0, 20.0))?;
    let exit_corr = plan.add_named_room("exit", 0, Rect2::from_bounds(0.0, 40.0, 120.0, 46.0))?;

    plan.add_door_between(landside, checkin, Point2::new(15.0, 20.0))?;
    plan.add_door_between(landside, shops, Point2::new(45.0, 20.0))?;
    plan.add_door_between(airside, gate_a, Point2::new(75.0, 20.0))?;
    plan.add_door_between(airside, gate_b, Point2::new(105.0, 20.0))?;
    // Security: one-way landside → airside.
    let security = plan.add_one_way_door(landside, airside, Point2::new(60.0, 30.0))?;
    // Airside exit: one-way airside → exit corridor → landside.
    plan.add_one_way_door(airside, exit_corr, Point2::new(110.0, 40.0))?;
    plan.add_one_way_door(exit_corr, landside, Point2::new(10.0, 40.0))?;
    let space = plan.finish()?;
    let rooms = [
        (landside, "landside"),
        (airside, "airside"),
        (checkin, "checkin"),
        (shops, "shops"),
        (gate_a, "gate A"),
        (gate_b, "gate B"),
        (exit_corr, "exit corridor"),
    ];
    let room_name = |p: Option<PartitionId>| {
        p.and_then(|p| rooms.iter().find(|(id, _)| *id == p))
            .map_or("?", |(_, n)| n)
    };

    let mut engine = IndoorEngine::new(space, EngineConfig::default())?;

    // Passengers: some landside, some airside near the gates.
    let mut passengers = Vec::new();
    for (i, (x, y)) in [
        (10.0, 30.0),  // landside hall
        (45.0, 10.0),  // shops
        (70.0, 30.0),  // airside, just past security
        (80.0, 10.0),  // gate A
        (100.0, 10.0), // gate B
        (110.0, 30.0), // airside, far end
    ]
    .iter()
    .enumerate()
    {
        passengers.push(engine.insert_object_at(Point2::new(*x, *y), 0, 3.0, 64, i as u64)?);
    }

    // The sensitive point: a power distribution unit on the airside wall.
    let pdu = IndoorPoint::new(Point2::new(65.0, 38.0), 0);
    println!("monitoring a 30 m security perimeter around the PDU at {pdu}\n");

    // One snapshot answers the whole monitoring round consistently: the
    // perimeter query and both asymmetric distance probes see the same
    // space version. (Distance probes run their own point-to-point
    // search; only range/kNN queries share evaluation contexts.)
    let landside_guard = IndoorPoint::new(Point2::new(55.0, 30.0), 0);
    let outcomes = engine.snapshot().execute_batch(&[
        Query::Range { q: pdu, r: 30.0 },
        Query::Distance {
            q: landside_guard,
            p: pdu,
        },
        Query::Distance {
            q: pdu,
            p: landside_guard,
        },
    ])?;
    let watch = outcomes[0].as_range().expect("range outcome");
    println!("passengers inside the perimeter (walking distance ≤ 30 m):");
    for hit in &watch.results {
        println!("  {}  at {:.1} m", hit.object, hit.distance);
    }

    // One-way asymmetry: from the landside hall the PDU may be close
    // *through security*, but walking back out is the long way.
    let to_pdu = outcomes[1]
        .as_distance()
        .expect("distance outcome")
        .distance;
    let from_pdu = outcomes[2]
        .as_distance()
        .expect("distance outcome")
        .distance;
    println!(
        "\nguard (landside) → PDU: {to_pdu:.1} m through security;\n\
         PDU → guard:            {from_pdu:.1} m around through the exit corridor"
    );
    assert!(from_pdu > to_pdu);

    // ---- retention: record everything from here on -------------------
    //
    // The recorder attaches to the commit path; every epoch the engine
    // publishes from now on lands in a bounded in-memory ring. We keep a
    // live snapshot of every epoch as ground truth to verify against.
    let recorder = HistoryRecorder::attach(
        &engine,
        HistoryOptions {
            keyframe_every: 4,
            ..HistoryOptions::default()
        },
    )?;
    let mut ground_truth = vec![engine.snapshot()];

    // A scripted journey for passenger 0 — check-in, shops, through
    // security, gate A — while passenger 1 shadows them step for step
    // and the others drift around the gates.
    let suspect = passengers[0];
    let shadow = passengers[1];
    let journey: &[&[(ObjectId, f64, f64)]] = &[
        &[(suspect, 15.0, 10.0), (shadow, 18.0, 12.0)], // both in check-in
        &[(suspect, 45.0, 10.0), (shadow, 48.0, 8.0)],  // both in shops
        &[
            (suspect, 50.0, 30.0),
            (shadow, 52.0, 28.0),
            (passengers[3], 70.0, 30.0), // gate A → airside hall
        ],
        &[(suspect, 70.0, 30.0), (shadow, 72.0, 32.0)], // through security
        &[
            (suspect, 80.0, 10.0),
            (shadow, 82.0, 12.0),
            (passengers[3], 100.0, 10.0), // drifts on to gate B
        ],
    ];
    for wave in journey {
        let updates: Vec<Update> = wave
            .iter()
            .map(|&(id, x, y)| Update::MoveObject {
                id,
                center: Point2::new(x, y),
                floor: 0,
                seed: 7,
            })
            .collect();
        engine.apply_batch(&updates)?;
        ground_truth.push(engine.snapshot());
    }

    // Emergency drill: security closes. The perimeter from the PDU still
    // covers airside passengers, but the landside guard can no longer
    // reach it at all. (A topology change — the ring keyframes it.)
    engine.close_door(security)?;
    ground_truth.push(engine.snapshot());
    let to_pdu_closed = engine
        .execute(&Query::Distance {
            q: landside_guard,
            p: pdu,
        })?
        .into_distance()
        .expect("distance outcome")
        .distance;
    println!(
        "\nafter closing security: guard → PDU = {}",
        if to_pdu_closed.is_finite() {
            format!("{to_pdu_closed:.1} m")
        } else {
            "unreachable".to_string()
        }
    );
    let watch = engine.range_query(pdu, 30.0)?;
    println!(
        "perimeter check still sees {} airside passenger(s)",
        watch.results.len()
    );

    // ---- after the fact: ask the ring what happened ------------------
    recorder.sync();
    let session = recorder.session();
    let (oldest, newest) = (session.oldest(), session.newest());
    println!(
        "\nhistory ring: epochs {oldest}..={newest} retained ({} keyframes)",
        recorder.stats().keyframes
    );

    // Ground truth first: every retained epoch must reconstruct to the
    // exact snapshot the engine published — bit-for-bit.
    for pinned in &ground_truth {
        let rebuilt = session.reconstruct(pinned.version())?;
        assert_eq!(
            rebuilt.encode_checkpoint(),
            pinned.encode_checkpoint(),
            "epoch {} reconstructed differently",
            pinned.version()
        );
    }
    println!(
        "verified: all {} epochs reconstruct bit-identical to live snapshots",
        ground_truth.len()
    );

    // Where did the suspect walk? The 3D (x, y, time) index returns the
    // room-by-room trajectory without replaying anything.
    println!("\npassenger {suspect}'s trajectory:");
    match session.execute(&HistoryQuery::Trajectory {
        object: suspect,
        from: oldest,
        to: newest,
    })? {
        HistoryOutcome::Trajectory(spans) => {
            for s in &spans {
                println!(
                    "  epochs {:>2}..={:<2}  {:13} at ({:.0}, {:.0})",
                    s.from_epoch,
                    s.to_epoch,
                    room_name(s.partition),
                    s.position.x,
                    s.position.y
                );
            }
        }
        other => unreachable!("trajectory query yields trajectory: {other:?}"),
    }

    // Who was EVER inside the PDU perimeter during the journey?
    let ever_near = session.range_during(pdu, 30.0, oldest, newest)?;
    println!("\never inside the 30 m perimeter during epochs {oldest}..={newest}: {ever_near:?}");
    assert!(
        ever_near.contains(&suspect),
        "the suspect passed the PDU on the way to gate A"
    );

    // Who moved with the suspect? Partition co-residence over the window.
    let companions = session.together(suspect, oldest, newest, 3)?;
    println!("\ntravelled with passenger {suspect} (≥ 3 shared epochs):");
    for c in &companions {
        println!("  {}  {} shared epochs", c.object, c.shared_epochs);
    }
    assert!(
        companions.iter().any(|c| c.object == shadow),
        "the shadow co-resided in every room"
    );

    // And a point-in-time forensic question: who was closest to the PDU
    // back when the suspect cleared security (two epochs before the end)?
    let at = newest - 2;
    let knn = session.knn_at(pdu, 3, at)?;
    println!("\nclosest to the PDU at epoch {at}:");
    for hit in &knn.results {
        println!("  {}  at {:.1} m", hit.object, hit.distance);
    }
    Ok(())
}
