//! The paper's temporal-variation scenario (§I, Figure 1's Room 21): a
//! conference hall is reconfigured between *banquet style* (one big
//! partition) and *meeting style* (split by a sliding wall), and indoor
//! distances — hence query answers — change with it. The composite index
//! absorbs the change incrementally; no door-to-door distances were ever
//! pre-computed, so nothing needs re-precomputing (the paper's key
//! maintenance argument, §V-B.4).
//!
//! ```text
//! cargo run --release --example dynamic_reconfiguration
//! ```

use indoor_dq::model::{IndoorPoint, SplitLine};
use indoor_dq::prelude::*;
use indoor_dq::query::PrecomputedD2D;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A venue: lobby + conference hall (Room 21) with doors d41/d42.
    let mut plan = FloorPlanBuilder::new(4.0);
    let lobby = plan.add_named_room("lobby", 0, Rect2::from_bounds(0.0, 0.0, 100.0, 10.0))?;
    let hall = plan.add_named_room("room 21", 0, Rect2::from_bounds(10.0, 10.0, 90.0, 50.0))?;
    let d41 = plan.add_door_between(hall, lobby, Point2::new(20.0, 10.0))?;
    let d42 = plan.add_door_between(hall, lobby, Point2::new(80.0, 10.0))?;
    let space = plan.finish()?;
    let mut engine = IndoorEngine::new(space, EngineConfig::default())?;
    println!("venue ready (doors d41={d41}, d42={d42})");

    // Attendees on both ends of the hall.
    let west_attendee = engine.insert_object_at(Point2::new(20.0, 40.0), 0, 2.0, 64, 1)?;
    let east_attendee = engine.insert_object_at(Point2::new(80.0, 40.0), 0, 2.0, 64, 2)?;

    // An usher stands near the west end of the hall. Each style gets its
    // own snapshot: a consistent read view of the venue *as configured*.
    let usher = IndoorPoint::new(Point2::new(25.0, 30.0), 0);

    let banquet = engine
        .execute(&Query::Knn { q: usher, k: 2 })?
        .into_knn()
        .expect("knn outcome");
    println!("\nbanquet style — usher's nearest attendees:");
    for h in &banquet.results {
        println!("  {} at {:.1} m", h.object, h.distance);
    }

    // Mount the sliding wall at x = 50 (meeting style, no connecting
    // door): the hall becomes two rooms and the east attendee must now be
    // reached through the lobby via d41 and d42.
    let halves = engine.split_partition(hall, SplitLine::AtX(50.0), None)?;
    println!(
        "\nsliding wall mounted: room 21 → {} + {}",
        halves[0], halves[1]
    );

    // The usher's kNN and the coffee-call range query share the usher's
    // position, so batching them shares one evaluation context.
    let outcomes = engine.snapshot().execute_batch(&[
        Query::Knn { q: usher, k: 2 },
        Query::Range { q: usher, r: 40.0 },
    ])?;
    let meeting = outcomes[0].as_knn().expect("knn outcome");
    println!("meeting style — usher's nearest attendees:");
    for h in &meeting.results {
        println!("  {} at {:.1} m", h.object, h.distance);
    }
    let d_banquet = banquet
        .results
        .iter()
        .find(|h| h.object == east_attendee)
        .unwrap()
        .distance;
    let d_meeting = meeting
        .results
        .iter()
        .find(|h| h.object == east_attendee)
        .unwrap()
        .distance;
    println!(
        "\neast attendee: {:.1} m (banquet) → {:.1} m (meeting): rerouted via d41+d42",
        d_banquet, d_meeting
    );
    assert!(d_meeting > d_banquet);

    // Range queries adapt too: a 30 m coffee-call reaches both attendees
    // in banquet style but only the west one in meeting style.
    let call = outcomes[1].as_range().expect("range outcome");
    println!(
        "40 m coffee call now reaches {} attendee(s): {:?}",
        call.results.len(),
        call.results.iter().map(|h| h.object).collect::<Vec<_>>()
    );
    assert!(call.results.iter().any(|h| h.object == west_attendee));

    // Dismount the wall: banquet style restored, distances return.
    let restored = engine.merge_partitions(halves[0], halves[1])?;
    println!("\nwall dismounted: hall restored as {restored}");
    let back = engine.knn(usher, 2)?;
    for h in &back.results {
        println!("  {} at {:.1} m", h.object, h.distance);
    }

    // Contrast with the pre-computation alternative: every reconfiguration
    // would invalidate the all-pairs door matrix and force a full rebuild.
    let t = std::time::Instant::now();
    let pre = PrecomputedD2D::build(engine.space(), engine.index().doors_graph());
    println!(
        "\nre-precomputing all door-to-door distances after the change would cost {:.1} ms \
         (matrix of {} doors); the composite index absorbed it incrementally.",
        t.elapsed().as_secs_f64() * 1e3,
        pre.door_slots(),
    );
    Ok(())
}
