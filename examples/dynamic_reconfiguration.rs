//! The paper's temporal-variation scenario (§I, Figure 1's Room 21): a
//! conference hall is reconfigured between *banquet style* (one big
//! partition) and *meeting style* (split by a sliding wall), and indoor
//! distances — hence query answers — change with it. The composite index
//! absorbs the change incrementally; no door-to-door distances were ever
//! pre-computed, so nothing needs re-precomputing (the paper's key
//! maintenance argument, §V-B.4).
//!
//! The write side uses PR 3's typed updates: each reconfiguration is one
//! atomic `apply_batch` transaction. The standing coffee-call range query
//! is a service *subscription*: every committed report is delivered to it
//! automatically and absorbed as a delta — no caller-side bookkeeping of
//! what changed (the promoted form of the old `RangeMonitor::absorb`
//! flow).
//!
//! ```text
//! cargo run --release --example dynamic_reconfiguration
//! ```

use indoor_dq::model::{IndoorPoint, SplitLine};
use indoor_dq::prelude::*;
use indoor_dq::query::PrecomputedD2D;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A venue: lobby + conference hall (Room 21) with doors d41/d42.
    let mut plan = FloorPlanBuilder::new(4.0);
    let lobby = plan.add_named_room("lobby", 0, Rect2::from_bounds(0.0, 0.0, 100.0, 10.0))?;
    let hall = plan.add_named_room("room 21", 0, Rect2::from_bounds(10.0, 10.0, 90.0, 50.0))?;
    let d41 = plan.add_door_between(hall, lobby, Point2::new(20.0, 10.0))?;
    let d42 = plan.add_door_between(hall, lobby, Point2::new(80.0, 10.0))?;
    let space = plan.finish()?;
    let mut engine = IndoorEngine::new(space, EngineConfig::default())?;
    println!("venue ready (doors d41={d41}, d42={d42})");

    // Attendees on both ends of the hall, admitted as one atomic batch:
    // either the whole group registers or none of it does.
    let report = engine.apply_batch(&[
        Update::InsertObjectAt {
            center: Point2::new(20.0, 40.0),
            floor: 0,
            radius: 2.0,
            instances: 64,
            seed: 1,
        },
        Update::InsertObjectAt {
            center: Point2::new(80.0, 40.0),
            floor: 0,
            radius: 2.0,
            instances: 64,
            seed: 2,
        },
    ])?;
    let west_attendee = report.delta.inserted[0];
    let east_attendee = report.delta.inserted[1];
    println!(
        "attendees admitted in one transaction (epoch {})",
        report.epoch
    );

    // An usher stands near the west end of the hall, with a standing 40 m
    // "coffee call" range subscription — every commit feeds it a delta
    // notification, no re-query, no caller bookkeeping.
    let usher = IndoorPoint::new(Point2::new(25.0, 30.0), 0);
    let service = engine.service();
    let mut coffee_call = service.subscribe(Query::Range { q: usher, r: 40.0 })?;
    println!(
        "40 m coffee call reaches {} attendee(s) in banquet style (epoch {})",
        coffee_call.initial().len(),
        coffee_call.epoch()
    );

    let banquet = engine
        .execute(&Query::Knn { q: usher, k: 2 })?
        .into_knn()
        .expect("knn outcome");
    println!("\nbanquet style — usher's nearest attendees:");
    for h in &banquet.results {
        println!("  {} at {:.1} m", h.object, h.distance);
    }

    // Mount the sliding wall at x = 50 (meeting style, no connecting
    // door): the hall becomes two rooms and the east attendee must now be
    // reached through the lobby via d41 and d42. One typed update, one
    // epoch; the subscription receives the commit and re-evaluates itself.
    let report = engine.apply_batch(&[Update::SplitPartition {
        partition: hall,
        line: SplitLine::AtX(50.0),
        connecting_door: None,
    }])?;
    let halves = report.outcomes[0]
        .split_halves()
        .expect("split yields halves");
    println!(
        "\nsliding wall mounted: room 21 → {} + {} (epoch {})",
        halves[0], halves[1], report.epoch
    );
    let notice = coffee_call.wait()?.expect("the split was committed");
    for (id, change) in &notice.changes {
        println!("  coffee call: {id} {change}");
    }
    println!(
        "40 m coffee call now reaches {} attendee(s) at epoch {}: {:?}",
        coffee_call.current().len(),
        coffee_call.epoch(),
        coffee_call.current()
    );
    assert!(coffee_call.contains(west_attendee));

    // The usher's kNN and a distance check share the usher's position, so
    // batching them shares one evaluation context.
    let outcomes = engine.snapshot().execute_batch(&[
        Query::Knn { q: usher, k: 2 },
        Query::Range { q: usher, r: 40.0 },
    ])?;
    let meeting = outcomes[0].as_knn().expect("knn outcome");
    println!("meeting style — usher's nearest attendees:");
    for h in &meeting.results {
        println!("  {} at {:.1} m", h.object, h.distance);
    }
    let d_banquet = banquet
        .results
        .iter()
        .find(|h| h.object == east_attendee)
        .unwrap()
        .distance;
    let d_meeting = meeting
        .results
        .iter()
        .find(|h| h.object == east_attendee)
        .unwrap()
        .distance;
    println!(
        "\neast attendee: {:.1} m (banquet) → {:.1} m (meeting): rerouted via d41+d42",
        d_banquet, d_meeting
    );
    assert!(d_meeting > d_banquet);
    // The monitor and the fresh range query agree exactly.
    let call = outcomes[1].as_range().expect("range outcome");
    let fresh: Vec<ObjectId> = call.results.iter().map(|h| h.object).collect();
    assert_eq!(coffee_call.current(), fresh);

    // Dismount the wall: banquet style restored, distances return. The
    // merge and the attendees' walk back west ride in one atomic batch —
    // coalesced index maintenance, all-or-nothing semantics.
    let report = engine.apply_batch(&[
        Update::MergePartitions(halves[0], halves[1]),
        Update::MoveObject {
            id: east_attendee,
            center: Point2::new(40.0, 40.0),
            floor: 0,
            seed: 3,
        },
    ])?;
    let restored = report.outcomes[0]
        .merged_partition()
        .expect("merge outcome");
    println!("\nwall dismounted: hall restored as {restored}");
    let notice = coffee_call.wait()?.expect("the restore was committed");
    println!(
        "coffee call after restore: {:?} ({} change(s) absorbed at epoch {})",
        coffee_call.current(),
        notice.changes.len(),
        notice.epoch
    );
    assert!(coffee_call.contains(east_attendee));
    let back = engine.knn(usher, 2)?;
    for h in &back.results {
        println!("  {} at {:.1} m", h.object, h.distance);
    }

    // Contrast with the pre-computation alternative: every reconfiguration
    // would invalidate the all-pairs door matrix and force a full rebuild.
    let t = std::time::Instant::now();
    let pre = PrecomputedD2D::build(engine.space(), engine.index().doors_graph());
    println!(
        "\nre-precomputing all door-to-door distances after the change would cost {:.1} ms \
         (matrix of {} doors); the composite index absorbed it incrementally.",
        t.elapsed().as_secs_f64() * 1e3,
        pre.door_slots(),
    );
    Ok(())
}
