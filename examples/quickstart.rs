//! Quickstart: build a tiny floor plan, insert a few uncertain objects,
//! then take a snapshot and run a batch of typed queries — a range query,
//! a kNN query and a shortest path — through one consistent read view.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use indoor_dq::model::IndoorPoint;
use indoor_dq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small office floor: three rooms off a corridor.
    //
    //    +--------+--------+--------+
    //    | lounge | office | lab    |
    //    +--d0----+--d1----+--d2----+
    //    |          corridor        |
    //    +--------------------------+
    let mut plan = FloorPlanBuilder::new(4.0);
    let lounge = plan.add_named_room("lounge", 0, Rect2::from_bounds(0.0, 5.0, 10.0, 15.0))?;
    let office = plan.add_named_room("office", 0, Rect2::from_bounds(10.0, 5.0, 20.0, 15.0))?;
    let lab = plan.add_named_room("lab", 0, Rect2::from_bounds(20.0, 5.0, 30.0, 15.0))?;
    let corridor = plan.add_named_room("corridor", 0, Rect2::from_bounds(0.0, 0.0, 30.0, 5.0))?;
    plan.add_door_between(lounge, corridor, Point2::new(5.0, 5.0))?;
    plan.add_door_between(office, corridor, Point2::new(15.0, 5.0))?;
    plan.add_door_between(lab, corridor, Point2::new(25.0, 5.0))?;
    let space = plan.finish()?;
    println!(
        "built a floor with {} partitions, {} doors, {} connected component(s)",
        space.partition_count(),
        space.door_count(),
        space.connected_components()
    );

    // 2. The engine owns the space, the objects and the composite index.
    let mut engine = IndoorEngine::new(space, EngineConfig::default())?;

    // Three people reported by indoor positioning, each with a circular
    // uncertainty region sampled by Gaussian instances (§II-B of the
    // paper).
    let alice = engine.insert_object_at(Point2::new(5.0, 10.0), 0, 1.5, 64, 1)?;
    let bob = engine.insert_object_at(Point2::new(15.0, 10.0), 0, 1.5, 64, 2)?;
    let carol = engine.insert_object_at(Point2::new(25.0, 10.0), 0, 1.5, 64, 3)?;
    println!("inserted objects: alice={alice}, bob={bob}, carol={carol}");

    // 3. Queries are typed values executed through a snapshot — a cheap,
    // consistent read view. Batching them lets queries that share a query
    // point share one door-distance Dijkstra and one subregion cache.
    // All of them evaluate *indoor* distances: through doors, not walls.
    let q = IndoorPoint::new(Point2::new(2.0, 2.0), 0); // corridor, west end
    let p = IndoorPoint::new(Point2::new(25.0, 12.0), 0); // inside the lab
    let snapshot = engine.snapshot();
    let outcomes = snapshot.execute_batch(&[
        Query::Range { q, r: 18.0 },
        Query::Knn { q, k: 2 },
        Query::Path { q, p },
    ])?;

    let in_range = outcomes[0].as_range().expect("range outcome");
    println!("\niRQ(q, 18 m) → {} object(s):", in_range.results.len());
    for hit in &in_range.results {
        println!(
            "  {}  expected indoor distance ≈ {:.2} m{}",
            hit.object,
            hit.distance,
            if hit.certified_by_bound {
                "  (certified by bound)"
            } else {
                ""
            }
        );
    }

    let knn = outcomes[1].as_knn().expect("knn outcome");
    println!("\nikNN(q, 2):");
    for hit in &knn.results {
        println!("  {}  at {:.2} m", hit.object, hit.distance);
    }

    // 4. Point-to-point shortest paths with their door sequence.
    if let Some((len, doors)) = &outcomes[2].as_path().expect("path outcome").path {
        println!(
            "\nshortest path q → lab: {:.2} m through {} door(s): {:?}",
            len,
            doors.len(),
            doors
        );
    }

    // 5. Every outcome reports the pipeline's four phases (the paper's
    // Fig. 12(b) breakdown) plus the batch-reuse counters.
    let s = &in_range.stats;
    println!(
        "\npipeline: filtering {:.3} ms, subgraph {:.3} ms, pruning {:.3} ms, refinement {:.3} ms",
        s.filtering_ms, s.subgraph_ms, s.pruning_ms, s.refinement_ms
    );
    println!(
        "           {} candidates → {} pruned by bounds → {} refined",
        s.candidates_after_filter, s.pruned_by_bounds, s.refined
    );
    let dijkstras: usize = outcomes.iter().map(|o| o.stats().dijkstras_run).sum();
    let reuses: usize = outcomes.iter().map(|o| o.stats().context_reuses).sum();
    println!(
        "batching:  {} Dijkstra(s) for {} queries ({} context reuse(s))",
        dijkstras,
        outcomes.len(),
        reuses
    );

    // 6. The convenience methods still work — they delegate onto a
    // default snapshot.
    let again = engine.range_query(q, 18.0)?;
    assert_eq!(again.results, in_range.results);
    Ok(())
}
