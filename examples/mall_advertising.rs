//! The paper's first motivating scenario (§I): a café in a large shopping
//! mall sends advertisements to *nearby* shoppers — broadcast would be
//! wasteful and annoying, so it needs an indoor range query over moving,
//! imprecisely-positioned customers.
//!
//! This example generates the paper's evaluation mall (scaled down for a
//! quick run), populates it with shoppers, and runs the café's campaign:
//! an `iRQ` every "minute" while shoppers move around.
//!
//! ```text
//! cargo run --release --example mall_advertising
//! ```

use indoor_dq::model::IndoorPoint;
use indoor_dq::prelude::*;
use indoor_dq::workloads::{generate_building, generate_objects, BuildingConfig, ObjectConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5-floor mall with the paper's floor layout (ring corridor, five
    // double-loaded halls, four corner staircases, 100 shops per floor).
    let building = generate_building(&BuildingConfig::with_floors(5))?;
    println!(
        "mall: {} partitions, {} doors, {} floors",
        building.partition_count(),
        building.door_count(),
        building.space.num_floors()
    );

    // 2000 shoppers with RFID-grade positioning uncertainty (r = 10 m,
    // 100 Gaussian instances each — §V-A).
    let shoppers = generate_objects(
        &building,
        &ObjectConfig {
            count: 2000,
            radius: 10.0,
            instances: 100,
            seed: 2024,
        },
    )?;
    let mut engine =
        IndoorEngine::with_objects(building.space.clone(), shoppers, EngineConfig::default())?;

    // The café sits on floor 2 beside the western ring corridor.
    let cafe = IndoorPoint::new(Point2::new(15.0, 300.0), 2);
    println!("café at {cafe}");

    let mut rng = StdRng::seed_from_u64(7);
    let ids = engine.store().ids_sorted();
    for minute in 0..5 {
        // A slice of shoppers wander to new positions (object updates are
        // deletion + insertion, §III-C.2).
        for &id in ids.iter().skip(minute * 37).step_by(101).take(60) {
            let floor = rng.random_range(0..engine.space().num_floors() as u16);
            let dest = Point2::new(rng.random_range(15.0..585.0), rng.random_range(15.0..585.0));
            if engine
                .space()
                .partition_at(IndoorPoint::new(dest, floor))
                .is_some()
            {
                engine.move_object(id, dest, floor, minute as u64)?;
            }
        }

        // Send two coupon tiers per round: a premium offer to shoppers
        // within 25 m walking distance and a standard one within 60 m.
        // Both queries anchor at the café, so the batch shares one
        // door-distance Dijkstra and one subregion cache between them.
        let t = std::time::Instant::now();
        let outcomes = engine.snapshot().execute_batch(&[
            Query::Range { q: cafe, r: 25.0 },
            Query::Range { q: cafe, r: 60.0 },
        ])?;
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let premium = outcomes[0].as_range().expect("range outcome");
        let campaign = outcomes[1].as_range().expect("range outcome");
        let dijkstras: usize = outcomes.iter().map(|o| o.stats().dijkstras_run).sum();
        println!(
            "minute {minute}: {:3} premium / {:3} standard coupons \
             ({:.2} ms, {} Dijkstra; filtered {:.1}% of the mall, refined {} expected distances)",
            premium.results.len(),
            campaign.results.len(),
            ms,
            dijkstras,
            campaign.stats.filtering_ratio() * 100.0,
            campaign.stats.refined,
        );
    }

    // Compare against naively broadcasting by Euclidean distance: the
    // straight-line ball reaches through floors and walls and would spam
    // shoppers the café cannot serve.
    let euclidean_hits = engine
        .store()
        .iter()
        .filter(|o| {
            let dz = (o.floor as f64 - cafe.floor as f64) * engine.space().floor_height();
            let planar = o.region.center.dist(cafe.point);
            (planar * planar + dz * dz).sqrt() <= 60.0
        })
        .count();
    let walking_hits = engine.range_query(cafe, 60.0)?.results.len();
    println!(
        "\nEuclidean 60 m ball: {euclidean_hits} shoppers; true walking-distance ball: {walking_hits}.\n\
         The difference is who gets spammed through walls and floors."
    );
    Ok(())
}
