//! A live indoor service: one writer, four parallel query sessions, one
//! standing-query subscription.
//!
//! The airport-security scenario of §I, run the way a serving system
//! would: a writer thread ingests position batches for passengers walking
//! a concourse while four reader threads answer range/kNN sessions on
//! version-pinned snapshots and a subscription keeps the security
//! perimeter's standing range query current from commit deltas — no
//! re-query, no caller bookkeeping, no locks across a Dijkstra.
//!
//! The engine is opened **durably**: every commit group is written ahead
//! to an on-disk log before it publishes, and when the last write handle
//! drops the log is flushed so a restart recovers the final epoch
//! exactly (see `examples/restartable_service.rs` for the
//! kill-and-recover version of this scenario).
//!
//! ```text
//! cargo run --release --example live_service
//! ```

use indoor_dq::model::IndoorPoint;
use indoor_dq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A concourse: a long hall with four gate rooms hanging off it.
    let mut plan = FloorPlanBuilder::new(4.0);
    // 140 m of concourse: seeded passengers reach x ≈ 115 and drift up to
    // ~10 m further over the writer's six rounds, so everyone stays inside.
    let hall = plan.add_named_room("concourse", 0, Rect2::from_bounds(0.0, 0.0, 140.0, 12.0))?;
    for g in 0..4u32 {
        let x0 = 10.0 + g as f64 * 28.0;
        let gate = plan.add_named_room(
            &format!("gate {g}"),
            0,
            Rect2::from_bounds(x0, 12.0, x0 + 20.0, 32.0),
        )?;
        plan.add_door_between(hall, gate, Point2::new(x0 + 10.0, 12.0))?;
    }
    // Open durably: commits hit the write-ahead log in `data_dir` before
    // they publish. A fresh directory creates; an existing one recovers
    // (cleared here so every demo run starts from checked-in baggage).
    let data_dir = std::env::temp_dir().join("idq-live-service");
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut engine = IndoorEngine::open(
        &data_dir,
        plan.finish()?,
        EngineConfig::default(),
        DurabilityOptions::default(),
    )?;
    println!("durable engine open at {}", data_dir.display());

    // Seed passengers along the concourse in one atomic batch.
    let seed_batch: Vec<Update> = (0..24)
        .map(|i| Update::InsertObjectAt {
            center: Point2::new(5.0 + (i as f64) * 4.8, 6.0),
            floor: 0,
            radius: 1.5,
            instances: 16,
            seed: i,
        })
        .collect();
    let report = engine.apply_batch(&seed_batch)?;
    println!(
        "{} passengers checked in (epoch {})",
        report.delta.inserted.len(),
        report.epoch
    );

    // The security desk subscribes to a standing 25 m range query. The
    // subscription evaluates once at its baseline epoch and is then fed
    // every commit's delta — the promoted form of `RangeMonitor::absorb`.
    let desk = IndoorPoint::new(Point2::new(60.0, 6.0), 0);
    let service = engine.service();
    let mut perimeter = service.subscribe(Query::Range { q: desk, r: 25.0 })?;
    println!(
        "security perimeter armed at epoch {}: {} passenger(s) inside",
        perimeter.epoch(),
        perimeter.initial().len()
    );

    // Four reader threads answer sessions while the writer keeps
    // committing: each snapshot is pinned to the version it was taken at
    // (its `version()` tags every answer), and evaluation holds no locks.
    let writer = std::thread::spawn(move || -> Result<u64, EngineError> {
        for round in 0..6u64 {
            // Everyone shuffles toward the desk a little.
            let batch: Vec<Update> = (0..24)
                .map(|i| Update::MoveObject {
                    id: ObjectId(i),
                    center: Point2::new(5.0 + (i as f64) * 4.8 + (round + 1) as f64 * 1.7, 6.0),
                    floor: 0,
                    seed: round * 100 + i,
                })
                .collect();
            engine.apply_batch(&batch)?;
        }
        Ok(engine.epoch())
        // `engine` drops here: the last write handle retires, which drains
        // the sequencer, flushes the write-ahead log (durable shutdown),
        // and ends the subscription streams.
    });

    let mut readers = Vec::new();
    for t in 0..4 {
        let service = service.clone();
        readers.push(std::thread::spawn(move || -> Result<(), EngineError> {
            let gate = IndoorPoint::new(Point2::new(20.0 + t as f64 * 28.0, 22.0), 0);
            for _ in 0..8 {
                let snapshot = service.snapshot();
                let outcomes = snapshot.execute_batch(&[
                    Query::Range { q: gate, r: 30.0 },
                    Query::Knn { q: gate, k: 3 },
                ])?;
                let near = outcomes[0].as_range().expect("range outcome").results.len();
                let knn = outcomes[1].as_knn().expect("knn outcome");
                println!(
                    "  [reader {t} @ epoch {:>2}] {near:>2} within 30 m of gate, \
                     nearest at {:.1} m",
                    snapshot.version(),
                    knn.results.first().map_or(f64::NAN, |h| h.distance),
                );
            }
            Ok(())
        }));
    }

    // Meanwhile this thread consumes the perimeter's delta stream until
    // the writer retires.
    let mut notifications = 0usize;
    while let Some(n) = perimeter.wait()? {
        notifications += 1;
        for (id, change) in &n.changes {
            println!("  [perimeter @ epoch {:>2}] {id} {change}", n.epoch);
        }
    }
    for r in readers {
        r.join().expect("reader thread")?;
    }
    let final_epoch = writer.join().expect("writer thread")?;

    println!(
        "writer retired at epoch {final_epoch}; perimeter absorbed {notifications} commits \
         and now holds {} passenger(s)",
        perimeter.current().len()
    );
    // The subscription's delta-maintained set equals a from-scratch query
    // on the final version.
    let fresh = service.execute(&Query::Range { q: desk, r: 25.0 })?;
    let fresh_ids: Vec<ObjectId> = fresh
        .as_range()
        .expect("range outcome")
        .results
        .iter()
        .map(|h| h.object)
        .collect();
    assert_eq!(perimeter.current(), fresh_ids);
    println!("delta-maintained result verified against a fresh query. ✓");

    // The durable shutdown above flushed every commit: reopening the
    // directory recovers the final epoch bit-for-bit.
    let recovered = IndoorEngine::recover_with(
        std::sync::Arc::new(FileBackend::open(&data_dir)?),
        EngineConfig::default(),
        DurabilityOptions::default(),
    )?;
    assert_eq!(recovered.epoch(), final_epoch);
    println!(
        "restart recovered epoch {} with {} passenger(s). ✓",
        recovered.epoch(),
        recovered.snapshot().store().len()
    );
    Ok(())
}
