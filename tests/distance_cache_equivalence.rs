//! Shared-distance-cache equivalence: with the cache ON, every query is
//! bit-identical to the same query with the cache OFF — across randomized
//! streams of range/kNN queries, topology commits and standing
//! subscriptions. Since the OFF path never caches anything, agreement
//! after a topology commit proves the cache never serves a stale row
//! (structural invalidation keyed on graph identity works). A final
//! cross-check compares complete cached rows against the all-pairs
//! [`PrecomputedD2D`] oracle.

use indoor_dq::geom::{Circle, Point2, Rect2};
use indoor_dq::index::{CompositeIndex, IndexConfig};
use indoor_dq::model::{FloorPlanBuilder, IndoorPoint, IndoorSpace};
use indoor_dq::objects::{ObjectId, ObjectStore, UncertainObject};
use indoor_dq::query::{knn_query, range_query, PrecomputedD2D, QueryOptions, RangeMonitor};
use proptest::prelude::*;

/// A 3×3 grid of 10 m rooms with a spanning corridor (row 0 and every
/// column connected) plus a random subset of extra horizontal doors.
#[allow(clippy::needless_range_loop)] // adjacent-cell indexing reads clearer
fn grid_world(extra_doors: &[bool]) -> IndoorSpace {
    let (nx, ny) = (3usize, 3usize);
    let mut b = FloorPlanBuilder::new(4.0);
    let mut rooms = vec![vec![]; ny];
    for (y, row) in rooms.iter_mut().enumerate() {
        for x in 0..nx {
            row.push(
                b.add_room(
                    0,
                    Rect2::from_bounds(
                        10.0 * x as f64,
                        10.0 * y as f64,
                        10.0 * (x + 1) as f64,
                        10.0 * (y + 1) as f64,
                    ),
                )
                .unwrap(),
            );
        }
    }
    for x in 0..nx - 1 {
        b.add_door_between(
            rooms[0][x],
            rooms[0][x + 1],
            Point2::new(10.0 * (x + 1) as f64, 5.0),
        )
        .unwrap();
    }
    for y in 0..ny - 1 {
        for x in 0..nx {
            b.add_door_between(
                rooms[y][x],
                rooms[y + 1][x],
                Point2::new(10.0 * x as f64 + 5.0, 10.0 * (y + 1) as f64),
            )
            .unwrap();
        }
    }
    let mut i = 0;
    for y in 1..ny {
        for x in 0..nx - 1 {
            if i < extra_doors.len() && extra_doors[i] {
                b.add_door_between(
                    rooms[y][x],
                    rooms[y][x + 1],
                    Point2::new(10.0 * (x + 1) as f64, 10.0 * y as f64 + 5.0),
                )
                .unwrap();
            }
            i += 1;
        }
    }
    b.finish().unwrap()
}

fn populate(positions: &[(f64, f64)]) -> ObjectStore {
    let mut store = ObjectStore::new();
    for (i, &(x, y)) in positions.iter().enumerate() {
        store
            .insert(
                UncertainObject::with_uniform_weights(
                    ObjectId(i as u64 + 1),
                    Circle::new(Point2::new(x, y), 2.0),
                    0,
                    vec![Point2::new(x - 1.0, y), Point2::new(x + 1.0, y - 0.5)],
                )
                .unwrap(),
            )
            .unwrap();
    }
    store
}

/// One step of the randomized stream, decoded from a raw tuple (the
/// vendored proptest stub has no `prop_oneof`/`prop_map`): `kind % 3`
/// selects the op, the remaining fields parameterize it.
#[derive(Clone, Copy, Debug)]
enum Op {
    Range { qx: f64, qy: f64, r: f64 },
    Knn { qx: f64, qy: f64, k: usize },
    ToggleDoor(usize),
}

fn decode(raw: (u8, f64, f64, usize)) -> Op {
    let (kind, a, b, n) = raw;
    let qx = 1.0 + 28.0 * a;
    let qy = 1.0 + 28.0 * b;
    match kind % 3 {
        0 => Op::Range {
            qx,
            qy,
            r: 5.0 + 55.0 * a.max(b),
        },
        1 => Op::Knn {
            qx,
            qy,
            k: 1 + n % 5,
        },
        _ => Op::ToggleDoor(n),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every query in a randomized stream of queries, topology commits
    /// and standing-subscription refreshes returns bit-identical answers
    /// with the shared cache on and off.
    #[test]
    fn cached_queries_are_bit_identical_to_uncached(
        extra in proptest::collection::vec(any::<bool>(), 6),
        positions in proptest::collection::vec((5.0f64..25.0, 5.0f64..25.0), 4..8),
        raw_ops in proptest::collection::vec((0u8..3, 0.0f64..1.0, 0.0f64..1.0, 0usize..16), 6..14),
    ) {
        let mut space = grid_world(&extra);
        let store = populate(&positions);
        // ONE index: its shared cache serves the cache-on runs; the
        // cache-off runs expand rows locally against the same geometry.
        let mut index =
            CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        let on = QueryOptions::default();
        let off = QueryOptions::default().without_distance_cache();
        prop_assert!(on.distance_cache && !off.distance_cache);

        // Two standing subscriptions over the same query, one per mode.
        let mq = IndoorPoint::new(Point2::new(15.0, 15.0), 0);
        let mut mon_on = RangeMonitor::new(mq, 25.0, on).unwrap();
        let mut mon_off = RangeMonitor::new(mq, 25.0, off).unwrap();
        mon_on.refresh(&space, &index, &store).unwrap();
        mon_off.refresh(&space, &index, &store).unwrap();
        prop_assert_eq!(mon_on.current(), mon_off.current());

        let door_ids: Vec<_> = space.doors().map(|d| d.id).collect();
        let mut closed = vec![false; door_ids.len()];
        for raw in raw_ops {
            match decode(raw) {
                Op::Range { qx, qy, r } => {
                    let q = IndoorPoint::new(Point2::new(qx, qy), 0);
                    let a = range_query(&space, &index, &store, q, r, &on).unwrap();
                    let b = range_query(&space, &index, &store, q, r, &off).unwrap();
                    let key = |res: &indoor_dq::query::RangeResult| {
                        res.results
                            .iter()
                            .map(|h| (h.object, h.distance.to_bits(), h.certified_by_bound))
                            .collect::<Vec<_>>()
                    };
                    prop_assert_eq!(key(&a), key(&b), "range divergence at q={} r={}", q, r);
                    // The off path must never touch the shared cache.
                    prop_assert_eq!(b.stats.shared_cache_lookups, 0);
                    prop_assert_eq!(b.stats.shared_cache_bytes, 0);
                }
                Op::Knn { qx, qy, k } => {
                    let q = IndoorPoint::new(Point2::new(qx, qy), 0);
                    let a = knn_query(&space, &index, &store, q, k, &on).unwrap();
                    let b = knn_query(&space, &index, &store, q, k, &off).unwrap();
                    let key = |res: &indoor_dq::query::KnnResult| {
                        res.results
                            .iter()
                            .map(|h| (h.object, h.distance.to_bits()))
                            .collect::<Vec<_>>()
                    };
                    prop_assert_eq!(key(&a), key(&b), "kNN divergence at q={} k={}", q, k);
                    prop_assert_eq!(b.stats.shared_cache_lookups, 0);
                }
                Op::ToggleDoor(i) => {
                    let i = i % door_ids.len();
                    let ev = if closed[i] {
                        space.open_door(door_ids[i]).unwrap()
                    } else {
                        space.close_door(door_ids[i]).unwrap()
                    };
                    closed[i] = !closed[i];
                    index.apply_topology(&space, &store, &ev).unwrap();
                    // Both subscriptions absorb the commit; agreement here
                    // (and on every later query) proves the commit
                    // structurally invalidated the cache — the on path
                    // never sees a pre-commit row.
                    mon_on
                        .absorb_delta(&[], &[], true, &space, &index, &store)
                        .unwrap();
                    mon_off
                        .absorb_delta(&[], &[], true, &space, &index, &store)
                        .unwrap();
                    prop_assert_eq!(mon_on.current(), mon_off.current());
                }
            }
        }

        // Final subscription agreement over the accumulated state.
        prop_assert_eq!(
            mon_on.refresh(&space, &index, &store).unwrap(),
            mon_off.refresh(&space, &index, &store).unwrap()
        );

        // Cross-check: complete cached rows against the all-pairs oracle.
        // (`row` at ∞ returns the full single-source expansion; every
        // settled entry must equal the precomputed door-to-door matrix
        // bit for bit.)
        let graph = index.doors_graph();
        let oracle = PrecomputedD2D::build(&space, graph);
        let cache = index.distance_cache();
        for &d in door_ids.iter().take(4) {
            let (row, _) = cache.row(graph, d, f64::INFINITY, usize::MAX);
            for (v, dist) in row.entries_within(f64::INFINITY) {
                let truth = oracle.door_to_door(d, indoor_dq::model::DoorId(v));
                prop_assert_eq!(
                    dist.to_bits(),
                    truth.to_bits(),
                    "row({:?}) -> door {} disagrees with oracle: {} vs {}",
                    d, v, dist, truth
                );
            }
        }
    }
}
