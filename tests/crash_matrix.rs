//! Crash-matrix suite for the durability subsystem.
//!
//! Every scenario follows the same shape: run a durable engine over a
//! mixed object/topology update stream, kill it at a chosen point (a
//! byte-accurate [`MemBackend::crashed`] copy keeps only what `fsync`
//! made durable — exactly what a power loss leaves on disk), recover,
//! and demand a **bit-identical** world digest against a plain in-memory
//! engine that serially replayed the same batch prefix. The matrix
//! covers:
//!
//! * kill at every commit boundary (`Group` policy: no acknowledged
//!   commit is ever lost);
//! * a torn WAL tail — both trailing garbage and a mid-record cut;
//! * a group that reached the durable log but died before the epoch
//!   swap published it (recovery replays it: logged ⇒ committed);
//! * `Os`-policy crash (a suffix of acknowledged commits may vanish,
//!   but recovery still lands on a consistent earlier epoch);
//! * a group whose WAL fsync fails (bytes possibly persisted anyway):
//!   the engine fail-stops permanently, the epoch is never reused, and
//!   recovery never replays a merged/duplicated group;
//! * kill mid-checkpoint (partial `.tmp`, corrupt forged `.ckpt`):
//!   recovery falls back to the previous valid checkpoint;
//! * checkpoint + log-suffix replay with real segment truncation;
//! * liveness: writers keep committing while a checkpoint is stalled
//!   inside the storage backend;
//! * proptest-randomized streams over policies and checkpoint points.

use indoor_dq::core::wire;
use indoor_dq::prelude::*;
use indoor_dq::storage::{LogFile, StorageError, Wal};
use indoor_dq::workloads::{
    generate_building, generate_objects, generate_query_points, generate_update_stream,
    GeneratedBuilding, QueryPointConfig, UpdateStreamConfig,
};
use proptest::prelude::*;
use std::sync::{Arc, Condvar, Mutex};

fn building() -> GeneratedBuilding {
    generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(2)
    })
    .unwrap()
}

fn population(b: &GeneratedBuilding, seed: u64) -> indoor_dq::objects::ObjectStore {
    generate_objects(
        b,
        &ObjectConfig {
            count: 40,
            radius: 5.0,
            instances: 6,
            seed,
        },
    )
    .unwrap()
}

/// One batch per epoch: a mixed stream (moves, arrivals, departures,
/// door open/close churn) chunked so sequential application is valid.
fn batches(b: &GeneratedBuilding, seed: u64, count: usize, per_batch: usize) -> Vec<Vec<Update>> {
    let store = population(b, seed);
    let mut scratch =
        IndoorEngine::with_objects(b.space.clone(), store, EngineConfig::default()).unwrap();
    let mut out = Vec::new();
    for k in 0..count {
        let stream = generate_update_stream(
            b,
            scratch.store(),
            &UpdateStreamConfig {
                count: per_batch,
                door_events: 0.10,
                seed: seed ^ 0xC4A5 ^ ((k as u64) << 8),
                ..Default::default()
            },
        );
        scratch.apply_batch(&stream).unwrap();
        out.push(stream);
    }
    out
}

fn queries(b: &GeneratedBuilding) -> Vec<Query> {
    let points = generate_query_points(b, &QueryPointConfig { count: 3, seed: 71 });
    let mut queries = Vec::new();
    for &q in &points {
        queries.push(Query::Range { q, r: 50.0 });
        queries.push(Query::Knn { q, k: 4 });
    }
    queries
}

/// A bit-exact digest of the whole recovered world: epoch, every stored
/// object's id/position/radius bits, and the outcome bits of a fixed
/// query battery (options pinned — the engines under test differ in
/// history, not in state).
fn digest(e: &IndoorEngine, queries: &[Query]) -> Vec<u64> {
    let snap = e.snapshot_with(QueryOptions::for_max_radius(10.0));
    let mut d = vec![e.epoch(), snap.store().len() as u64];
    let mut ids: Vec<u64> = snap.store().iter().map(|o| o.id.0).collect();
    ids.sort_unstable();
    for id in ids {
        let o = snap.store().get(ObjectId(id)).unwrap();
        d.extend([
            id,
            o.region.center.x.to_bits(),
            o.region.center.y.to_bits(),
            o.region.radius.to_bits(),
            o.floor as u64,
        ]);
    }
    for out in snap.execute_batch(queries).unwrap() {
        match out {
            Outcome::Range(r) => {
                d.push(r.results.len() as u64);
                d.extend(
                    r.results
                        .iter()
                        .flat_map(|h| [h.object.0, h.distance.to_bits()]),
                );
            }
            Outcome::Knn(k) => {
                d.push(k.results.len() as u64);
                d.extend(
                    k.results
                        .iter()
                        .flat_map(|h| [h.object.0, h.distance.to_bits()]),
                );
            }
            _ => unreachable!("battery issues range/knn only"),
        }
    }
    d
}

/// The oracle: a plain in-memory engine that serially replayed the first
/// `k` batches.
fn serial_at(b: &GeneratedBuilding, seed: u64, batches: &[Vec<Update>], k: usize) -> IndoorEngine {
    let mut e = IndoorEngine::with_objects(
        b.space.clone(),
        population(b, seed),
        EngineConfig::default(),
    )
    .unwrap();
    for batch in &batches[..k] {
        e.apply_batch(batch).unwrap();
    }
    e
}

fn durable(
    backend: &MemBackend,
    b: &GeneratedBuilding,
    seed: u64,
    options: DurabilityOptions,
) -> IndoorEngine {
    IndoorEngine::create_with(
        Arc::new(backend.clone()),
        b.space.clone(),
        population(b, seed),
        EngineConfig::default(),
        options,
    )
    .unwrap()
}

fn recover(backend: MemBackend) -> IndoorEngine {
    IndoorEngine::recover_with(
        Arc::new(backend),
        EngineConfig::default(),
        DurabilityOptions::default(),
    )
    .unwrap()
}

/// The newest WAL segment file on the backend (where a torn tail lives).
fn active_segment(backend: &MemBackend) -> String {
    let mut segs: Vec<String> = backend
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("wal-") && n.ends_with(".log"))
        .collect();
    segs.sort();
    segs.pop().expect("a durable engine always has a log")
}

const SEED: u64 = 9;
const EPOCHS: usize = 6;

#[test]
fn kill_at_every_commit_boundary_recovers_bit_identical() {
    let b = building();
    let stream = batches(&b, SEED, EPOCHS, 24);
    let q = queries(&b);
    let backend = MemBackend::new();
    let mut e = durable(&backend, &b, SEED, DurabilityOptions::default());
    for (k, batch) in stream.iter().enumerate() {
        e.apply_batch(batch).unwrap();
        // Power loss right here: the commit was acknowledged, so the
        // `Group` policy guarantees it is already durable.
        let r = recover(backend.crashed());
        assert_eq!(r.epoch(), (k + 1) as u64);
        assert_eq!(
            digest(&r, &q),
            digest(&serial_at(&b, SEED, &stream, k + 1), &q),
            "recovery diverges from serial replay at epoch {}",
            k + 1
        );
    }
}

#[test]
fn torn_wal_tail_is_discarded_and_prefix_recovers() {
    let b = building();
    let stream = batches(&b, SEED, EPOCHS, 24);
    let q = queries(&b);

    // Trailing garbage after the last full record: all epochs survive.
    let backend = MemBackend::new();
    {
        let mut e = durable(&backend, &b, SEED, DurabilityOptions::default());
        for batch in &stream {
            e.apply_batch(batch).unwrap();
        }
    }
    let name = active_segment(&backend);
    let len = backend.read(&name).unwrap().len() as u64;
    let mut f = backend.open_at(&name, len).unwrap();
    f.append(&[0x17, 0, 0, 0, 0xAB, 0xCD]).unwrap(); // header of a frame that never finished
    f.sync().unwrap();
    drop(f);
    let r = recover(backend.clone());
    assert_eq!(r.epoch(), EPOCHS as u64);
    assert_eq!(
        digest(&r, &q),
        digest(&serial_at(&b, SEED, &stream, EPOCHS), &q)
    );

    // A cut through the *last record itself*: the final epoch is torn
    // away and recovery lands on the previous one.
    let backend = MemBackend::new();
    {
        let mut e = durable(&backend, &b, SEED, DurabilityOptions::default());
        for batch in &stream {
            e.apply_batch(batch).unwrap();
        }
    }
    let name = active_segment(&backend);
    let len = backend.read(&name).unwrap().len() as u64;
    let mut f = backend.open_at(&name, len - 3).unwrap();
    f.sync().unwrap();
    drop(f);
    let r = recover(backend.clone());
    assert_eq!(r.epoch(), (EPOCHS - 1) as u64);
    assert_eq!(
        digest(&r, &q),
        digest(&serial_at(&b, SEED, &stream, EPOCHS - 1), &q)
    );
}

#[test]
fn logged_but_unpublished_group_replays_on_recovery() {
    let b = building();
    let stream = batches(&b, SEED, EPOCHS, 24);
    let q = queries(&b);
    let backend = MemBackend::new();
    let moved = {
        let mut e = durable(&backend, &b, SEED, DurabilityOptions::default());
        for batch in &stream {
            e.apply_batch(batch).unwrap();
        }
        e.snapshot().store().iter().map(|o| o.id).min().unwrap()
    };
    // The crash window between WAL append and epoch swap: the group is
    // durable in the log but no reader ever saw it published. Forge
    // exactly that state by appending a valid next-epoch group directly.
    let update = Update::MoveObject {
        id: moved,
        center: Point2::new(6.0, 6.0),
        floor: 0,
        seed: 42,
    };
    let mut payload = Vec::new();
    wire::put_batch_parts(&mut payload, std::slice::from_ref(&update), &[]);
    {
        let (mut wal, _) = Wal::open(
            Arc::new(backend.clone()),
            SyncPolicy::Always,
            8 * 1024 * 1024,
        )
        .unwrap();
        wal.append_commit(EPOCHS as u64 + 1, &[payload]).unwrap();
    }
    // Once logged, the group is committed: recovery must replay it.
    let r = recover(backend.clone());
    assert_eq!(r.epoch(), EPOCHS as u64 + 1);
    let mut serial = serial_at(&b, SEED, &stream, EPOCHS);
    serial.apply(update).unwrap();
    assert_eq!(digest(&r, &q), digest(&serial, &q));
}

#[test]
fn os_policy_crash_loses_only_a_suffix() {
    let b = building();
    let stream = batches(&b, SEED, EPOCHS, 24);
    let q = queries(&b);
    let backend = MemBackend::new();
    let mut e = durable(
        &backend,
        &b,
        SEED,
        DurabilityOptions {
            sync: SyncPolicy::Os,
            ..DurabilityOptions::default()
        },
    );
    for batch in &stream {
        e.apply_batch(batch).unwrap();
    }
    // Crash while the engine is still live: with `Os` nothing forced the
    // log out, so a suffix of acknowledged commits may be gone — but
    // recovery still lands on a *consistent* earlier epoch.
    let r = recover(backend.crashed());
    let at = r.epoch();
    assert!(at <= EPOCHS as u64);
    assert_eq!(
        digest(&r, &q),
        digest(&serial_at(&b, SEED, &stream, at as usize), &q)
    );

    // A clean shutdown flushes regardless of policy: nothing is lost.
    drop(e);
    let r = recover(backend.crashed());
    assert_eq!(r.epoch(), EPOCHS as u64);
    assert_eq!(
        digest(&r, &q),
        digest(&serial_at(&b, SEED, &stream, EPOCHS), &q)
    );
}

#[test]
fn kill_mid_checkpoint_falls_back_to_the_previous_checkpoint() {
    let b = building();
    let stream = batches(&b, SEED, EPOCHS, 24);
    let q = queries(&b);
    let backend = MemBackend::new();
    {
        let mut e = durable(&backend, &b, SEED, DurabilityOptions::default());
        for batch in &stream {
            e.apply_batch(batch).unwrap();
        }
    }
    // A checkpointer killed mid-stream leaves a partial `.tmp` (never
    // renamed into place) …
    let mut f = backend.create("ckpt-00000000000000ff.tmp").unwrap();
    f.append(b"half-written snapshot").unwrap();
    f.sync().unwrap();
    drop(f);
    // … and a kill *during the rename window* can at worst leave a
    // damaged `.ckpt`. Forge one newer than the real checkpoint.
    let mut f = backend.create("ckpt-00000000000000ff.ckpt").unwrap();
    f.append(b"IDQCKPT1 this is not a valid checkpoint at all")
        .unwrap();
    f.sync().unwrap();
    drop(f);
    // Recovery skips both and degrades to the older valid checkpoint +
    // full log replay.
    let r = recover(backend.clone());
    assert_eq!(r.epoch(), EPOCHS as u64);
    assert_eq!(
        digest(&r, &q),
        digest(&serial_at(&b, SEED, &stream, EPOCHS), &q)
    );
}

#[test]
fn checkpoint_plus_suffix_replay_with_segment_truncation() {
    let b = building();
    let stream = batches(&b, SEED, EPOCHS, 24);
    let q = queries(&b);
    let backend = MemBackend::new();
    // Tiny segments: every commit group seals its own segment, so the
    // mid-stream checkpoint physically deletes the covered prefix.
    let options = DurabilityOptions {
        segment_bytes: 1,
        ..DurabilityOptions::default()
    };
    {
        let mut e = durable(&backend, &b, SEED, options);
        for batch in &stream[..4] {
            e.apply_batch(batch).unwrap();
        }
        let logged = backend.total_bytes();
        assert_eq!(e.checkpoint().unwrap(), Some(4));
        assert!(
            backend.total_bytes() < logged,
            "the checkpoint must truncate covered log segments"
        );
        for batch in &stream[4..] {
            e.apply_batch(batch).unwrap();
        }
    }
    let r = recover(backend.crashed());
    assert_eq!(r.epoch(), EPOCHS as u64);
    assert_eq!(r.last_checkpoint_epoch(), Some(4));
    assert_eq!(
        digest(&r, &q),
        digest(&serial_at(&b, SEED, &stream, EPOCHS), &q)
    );
}

/// A backend that can stall checkpoint-file creation on demand — the
/// probe that proves checkpoints never block the commit path.
#[derive(Debug)]
struct GatedBackend {
    inner: MemBackend,
    gate: Mutex<bool>,
    opened: Condvar,
}

impl GatedBackend {
    fn new(inner: MemBackend) -> Arc<Self> {
        Arc::new(GatedBackend {
            inner,
            gate: Mutex::new(false),
            opened: Condvar::new(),
        })
    }

    fn block_checkpoints(&self) {
        *self.gate.lock().unwrap() = true;
    }

    fn release_checkpoints(&self) {
        *self.gate.lock().unwrap() = false;
        self.opened.notify_all();
    }
}

impl StorageBackend for GatedBackend {
    fn label(&self) -> String {
        "gated".to_string()
    }
    fn create(&self, name: &str) -> Result<Box<dyn LogFile>, StorageError> {
        if name.starts_with("ckpt-") {
            let mut blocked = self.gate.lock().unwrap();
            while *blocked {
                blocked = self.opened.wait(blocked).unwrap();
            }
        }
        self.inner.create(name)
    }
    fn open_at(&self, name: &str, len: u64) -> Result<Box<dyn LogFile>, StorageError> {
        self.inner.open_at(name, len)
    }
    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        self.inner.read(name)
    }
    fn list(&self) -> Result<Vec<String>, StorageError> {
        self.inner.list()
    }
    fn delete(&self, name: &str) -> Result<(), StorageError> {
        self.inner.delete(name)
    }
    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError> {
        self.inner.rename(from, to)
    }
}

/// A backend that can make WAL fsyncs fail on demand while still letting
/// the appended bytes through — the "failed fsync whose data reaches
/// disk anyway via the page cache" shape of the fail-stop contract.
#[derive(Debug)]
struct FlakySyncBackend {
    inner: MemBackend,
    fail_wal_sync: Arc<Mutex<bool>>,
}

#[derive(Debug)]
struct FlakyLogFile {
    fail_wal_sync: Arc<Mutex<bool>>,
    name: String,
    inner: Box<dyn LogFile>,
}

impl LogFile for FlakyLogFile {
    fn append(&mut self, data: &[u8]) -> Result<(), StorageError> {
        self.inner.append(data)
    }
    fn sync(&mut self) -> Result<(), StorageError> {
        if self.name.starts_with("wal-") && *self.fail_wal_sync.lock().unwrap() {
            return Err(StorageError::Io {
                op: "sync",
                path: self.name.clone(),
                message: "injected fsync failure".to_string(),
            });
        }
        self.inner.sync()
    }
    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl StorageBackend for FlakySyncBackend {
    fn label(&self) -> String {
        "flaky".to_string()
    }
    fn create(&self, name: &str) -> Result<Box<dyn LogFile>, StorageError> {
        Ok(Box::new(FlakyLogFile {
            fail_wal_sync: Arc::clone(&self.fail_wal_sync),
            name: name.to_string(),
            inner: self.inner.create(name)?,
        }))
    }
    fn open_at(&self, name: &str, len: u64) -> Result<Box<dyn LogFile>, StorageError> {
        self.inner.open_at(name, len)
    }
    fn read(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        self.inner.read(name)
    }
    fn list(&self) -> Result<Vec<String>, StorageError> {
        self.inner.list()
    }
    fn delete(&self, name: &str) -> Result<(), StorageError> {
        self.inner.delete(name)
    }
    fn rename(&self, from: &str, to: &str) -> Result<(), StorageError> {
        self.inner.rename(from, to)
    }
}

#[test]
fn failed_group_log_poisons_the_engine_and_never_reuses_the_epoch() {
    let b = building();
    let stream = batches(&b, SEED, EPOCHS, 24);
    let q = queries(&b);
    let mem = MemBackend::new();
    let fail = Arc::new(Mutex::new(false));
    let backend = Arc::new(FlakySyncBackend {
        inner: mem.clone(),
        fail_wal_sync: Arc::clone(&fail),
    });
    let mut e = IndoorEngine::create_with(
        backend as Arc<dyn StorageBackend>,
        b.space.clone(),
        population(&b, SEED),
        EngineConfig::default(),
        DurabilityOptions::default(),
    )
    .unwrap();
    for batch in &stream[..3] {
        e.apply_batch(batch).unwrap();
    }

    // Epoch 4's group fsync fails, but its appended bytes went through —
    // exactly the residue a failed fsync can leave behind.
    *fail.lock().unwrap() = true;
    let err = e.apply_batch(&stream[3]).unwrap_err();
    assert!(matches!(err, EngineError::Storage { .. }), "{err:?}");
    assert_eq!(e.epoch(), 3, "the failed group must not publish");

    // Durability is now poisoned: even with the fault gone, retrying the
    // batch must fail — the retry would append epoch 4 *again* on top of
    // the residue, and recovery (which merges consecutive same-epoch
    // records into one atomic batch) would replay both as one group.
    *fail.lock().unwrap() = false;
    let err = e.apply_batch(&stream[3]).unwrap_err();
    assert!(matches!(err, EngineError::Storage { .. }), "{err:?}");
    assert_eq!(e.epoch(), 3, "a poisoned engine must not commit");

    // Power loss now: the never-synced residue vanishes and recovery
    // lands exactly on the last acknowledged epoch.
    let r = recover(mem.crashed());
    assert_eq!(r.epoch(), 3);
    assert_eq!(digest(&r, &q), digest(&serial_at(&b, SEED, &stream, 3), &q));

    // If the residue *does* reach disk (here: the shutdown flush), it
    // replays as the one clean group it is — recovery runs ahead of the
    // failure report, but never diverges and never errors.
    drop(e);
    let r = recover(mem.clone());
    assert_eq!(r.epoch(), 4);
    assert_eq!(digest(&r, &q), digest(&serial_at(&b, SEED, &stream, 4), &q));
}

#[test]
fn writers_progress_while_a_checkpoint_is_stalled() {
    let b = building();
    let stream = batches(&b, SEED, EPOCHS, 24);
    let q = queries(&b);
    let mem = MemBackend::new();
    let gated = GatedBackend::new(mem.clone());
    let mut e = IndoorEngine::create_with(
        Arc::clone(&gated) as Arc<dyn StorageBackend>,
        b.space.clone(),
        population(&b, SEED),
        EngineConfig::default(),
        DurabilityOptions {
            checkpoint_every: 1, // every commit wants a background checkpoint
            ..DurabilityOptions::default()
        },
    )
    .unwrap();

    // Stall the checkpointer inside the backend, then keep committing:
    // the write path must not wait for it (the checkpoint encodes a
    // pinned immutable version, not the live one).
    gated.block_checkpoints();
    for batch in &stream {
        e.apply_batch(batch).unwrap();
    }
    assert_eq!(
        e.epoch(),
        EPOCHS as u64,
        "commits ran ahead of the stalled checkpoint"
    );
    assert_eq!(
        e.last_checkpoint_epoch(),
        Some(0),
        "no checkpoint can land while the gate is closed"
    );

    gated.release_checkpoints();
    while e.last_checkpoint_epoch() == Some(0) {
        std::thread::yield_now();
    }
    drop(e);
    let r = recover(mem.crashed());
    assert_eq!(r.epoch(), EPOCHS as u64);
    assert!(r.last_checkpoint_epoch().unwrap() >= 1);
    assert_eq!(
        digest(&r, &q),
        digest(&serial_at(&b, SEED, &stream, EPOCHS), &q)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The whole contract, randomized: any seeded mixed stream, either
    /// strict sync policy, any mid-stream checkpoint position, any crash
    /// point — recovery is bit-identical to serial replay of the prefix.
    #[test]
    fn randomized_streams_recover_bit_identical(
        seed in 1u64..500,
        always in any::<bool>(),
        ckpt_after in 0usize..=4,
        crash_after in 1usize..=6,
    ) {
        let b = building();
        let stream = batches(&b, seed, 6, 16);
        let q = queries(&b);
        let backend = MemBackend::new();
        let options = DurabilityOptions {
            sync: if always { SyncPolicy::Always } else { SyncPolicy::Group },
            ..DurabilityOptions::default()
        };
        let mut e = durable(&backend, &b, seed, options);
        for (k, batch) in stream[..crash_after].iter().enumerate() {
            e.apply_batch(batch).unwrap();
            if k + 1 == ckpt_after {
                e.checkpoint().unwrap();
            }
        }
        let r = recover(backend.crashed());
        prop_assert_eq!(r.epoch(), crash_after as u64);
        prop_assert_eq!(
            digest(&r, &q),
            digest(&serial_at(&b, seed, &stream, crash_after), &q)
        );
    }
}
