//! Integration tests for the future-work extensions (§VII of the paper):
//! selectivity estimation and continuous range monitoring, exercised on
//! generated mall workloads.

use indoor_dq::index::{CompositeIndex, IndexConfig};
use indoor_dq::model::IndoorPoint;
use indoor_dq::objects::ObjectId;
use indoor_dq::query::{
    naive_range, range_query, MonitorChange, QueryOptions, RangeMonitor, SelectivityEstimator,
};
use indoor_dq::workloads::{
    generate_building, generate_objects, generate_query_points, sample_one, BuildingConfig,
    ObjectConfig, QueryPointConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn world() -> (
    indoor_dq::workloads::GeneratedBuilding,
    indoor_dq::objects::ObjectStore,
    CompositeIndex,
    Vec<IndoorPoint>,
) {
    let building = generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(3)
    })
    .unwrap();
    let store = generate_objects(
        &building,
        &ObjectConfig {
            count: 400,
            radius: 8.0,
            instances: 8,
            seed: 17,
        },
    )
    .unwrap();
    let index = CompositeIndex::build(&building.space, &store, IndexConfig::default()).unwrap();
    let queries = generate_query_points(&building, &QueryPointConfig { count: 6, seed: 23 });
    (building, store, index, queries)
}

#[test]
fn selectivity_estimates_correlate_with_true_results() {
    let (building, store, index, queries) = world();
    let est = SelectivityEstimator::build(&building.space, &store, 50.0);
    let opts = QueryOptions::for_max_radius(8.0);
    let mut estimated_order = Vec::new();
    let mut true_order = Vec::new();
    for &q in &queries {
        for r in [60.0, 150.0, 300.0] {
            let e = est.estimate_range(index.skeleton(), q, r);
            let t = range_query(&building.space, &index, &store, q, r, &opts)
                .unwrap()
                .results
                .len() as f64;
            estimated_order.push(e);
            true_order.push(t);
        }
    }
    // Rank correlation (Spearman-flavoured sanity): the estimator must
    // broadly order workloads like the truth does.
    let n = true_order.len();
    let rank = |v: &[f64]| {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let (ra, rb) = (rank(&estimated_order), rank(&true_order));
    let d2: f64 = ra.iter().zip(&rb).map(|(a, b)| (a - b) * (a - b)).sum();
    let rho = 1.0 - 6.0 * d2 / ((n * (n * n - 1)) as f64);
    assert!(rho > 0.7, "rank correlation too weak: {rho:.2}");
}

#[test]
fn monitor_tracks_random_churn_exactly() {
    let (building, mut store, mut index, queries) = world();
    let q = queries[0];
    let r = 120.0;
    let opts = QueryOptions::for_max_radius(8.0);
    let mut mon = RangeMonitor::new(q, r, opts).unwrap();
    mon.refresh(&building.space, &index, &store).unwrap();

    let mut rng = StdRng::seed_from_u64(31);
    let mut next = 50_000u64;
    for round in 0..4 {
        // Insert a few fresh objects and feed them to the monitor.
        for _ in 0..8 {
            let obj = sample_one(&building, ObjectId(next), 8.0, 8, &mut rng).unwrap();
            next += 1;
            index.insert_object(&building.space, &obj).unwrap();
            let id = obj.id;
            store.insert(obj).unwrap();
            mon.on_object_update(&building.space, &index, &store, id)
                .unwrap();
        }
        // Move a few existing ones.
        let ids = store.ids_sorted();
        for &id in ids.iter().step_by(23).take(6) {
            let replacement = sample_one(&building, id, 8.0, 8, &mut rng).unwrap();
            store.remove(id).unwrap();
            store.insert(replacement).unwrap();
            index
                .update_object(&building.space, store.get(id).unwrap())
                .unwrap();
            mon.on_object_update(&building.space, &index, &store, id)
                .unwrap();
        }
        // Remove a few.
        for &id in ids.iter().step_by(31).take(4) {
            if store.contains(id) {
                index.remove_object(id).unwrap();
                store.remove(id).unwrap();
                mon.on_object_removed(id);
            }
        }
        // The monitor must equal the oracle at every round.
        let truth = naive_range(&building.space, index.doors_graph(), &store, q, r).unwrap();
        let truth_ids: Vec<ObjectId> = truth.iter().map(|x| x.0).collect();
        assert_eq!(mon.current(), truth_ids, "round {round}");
    }
}

#[test]
fn monitor_survives_topology_change_with_refresh() {
    let (building, store, mut index, queries) = world();
    let mut space = building.space.clone();
    let q = queries[1];
    let opts = QueryOptions::for_max_radius(8.0);
    let mut mon = RangeMonitor::new(q, 100.0, opts).unwrap();
    mon.refresh(&space, &index, &store).unwrap();
    let before = mon.current().len();

    // Close a door near the query and refresh.
    let pid = space.partition_at(q).unwrap();
    let doors = space.doors_of(pid).unwrap().to_vec();
    if let Some(&d) = doors.first() {
        let ev = space.close_door(d).unwrap();
        index.apply_topology(&space, &store, &ev).unwrap();
        mon.invalidate();
        mon.refresh(&space, &index, &store).unwrap();
        let truth = naive_range(&space, index.doors_graph(), &store, q, 100.0).unwrap();
        assert_eq!(mon.current().len(), truth.len());
        // Typically fewer objects are reachable now (never more).
        assert!(mon.current().len() <= before);
    }
}

#[test]
fn monitor_change_values_are_reported() {
    let (building, mut store, mut index, queries) = world();
    let q = queries[2];
    let opts = QueryOptions::for_max_radius(8.0);
    let mut mon = RangeMonitor::new(q, 80.0, opts).unwrap();
    mon.refresh(&building.space, &index, &store).unwrap();
    // Place an object right at the query point: must Enter.
    let mut rng = StdRng::seed_from_u64(7);
    let mut obj = None;
    for _ in 0..50 {
        let cand = sample_one(&building, ObjectId(77_777), 8.0, 8, &mut rng).unwrap();
        if cand.floor == q.floor && cand.region.center.dist(q.point) < 50.0 {
            obj = Some(cand);
            break;
        }
    }
    if let Some(obj) = obj {
        let id = obj.id;
        index.insert_object(&building.space, &obj).unwrap();
        store.insert(obj).unwrap();
        let c = mon
            .on_object_update(&building.space, &index, &store, id)
            .unwrap();
        assert_eq!(c, MonitorChange::Entered);
        let c = mon
            .on_object_update(&building.space, &index, &store, id)
            .unwrap();
        assert_eq!(c, MonitorChange::Unchanged);
    }
}
