//! Property-based tests over randomized worlds: the bound hierarchy, the
//! skeleton lower bound, decomposition invariants and oracle agreement.

use indoor_dq::distance::{
    expected::expected_indoor_distance_naive, expected_indoor_distance, object_bounds,
    some_path_upper, DoorDistances,
};
use indoor_dq::geom::{decompose_rect, Circle, DecomposeConfig, Point2, Rect2};
use indoor_dq::index::{CompositeIndex, IndexConfig};
use indoor_dq::model::{DoorsGraph, FloorPlanBuilder, IndoorPoint, IndoorSpace};
use indoor_dq::objects::{ObjectId, ObjectStore, Subregions, UncertainObject};
use proptest::prelude::*;

/// A randomized single-floor grid world: an `nx × ny` grid of 10 m rooms
/// with doors knocked through a random subset of shared walls (always
/// keeping a spanning corridor so the world stays connected).
#[allow(clippy::needless_range_loop)] // adjacent-cell indexing reads clearer
fn grid_world(nx: usize, ny: usize, extra_doors: &[bool]) -> IndoorSpace {
    let mut b = FloorPlanBuilder::new(4.0);
    let mut rooms = vec![vec![]; ny];
    for (y, row) in rooms.iter_mut().enumerate() {
        for x in 0..nx {
            row.push(
                b.add_room(
                    0,
                    Rect2::from_bounds(
                        10.0 * x as f64,
                        10.0 * y as f64,
                        10.0 * (x + 1) as f64,
                        10.0 * (y + 1) as f64,
                    ),
                )
                .unwrap(),
            );
        }
    }
    // Spanning corridor: every room connects to its right neighbour in row
    // 0, and every column connects upward.
    for x in 0..nx - 1 {
        b.add_door_between(
            rooms[0][x],
            rooms[0][x + 1],
            Point2::new(10.0 * (x + 1) as f64, 5.0),
        )
        .unwrap();
    }
    for y in 0..ny - 1 {
        for x in 0..nx {
            b.add_door_between(
                rooms[y][x],
                rooms[y + 1][x],
                Point2::new(10.0 * x as f64 + 5.0, 10.0 * (y + 1) as f64),
            )
            .unwrap();
        }
    }
    // Extra horizontal doors from the randomness budget.
    let mut i = 0;
    for y in 1..ny {
        for x in 0..nx - 1 {
            if i < extra_doors.len() && extra_doors[i] {
                b.add_door_between(
                    rooms[y][x],
                    rooms[y][x + 1],
                    Point2::new(10.0 * (x + 1) as f64, 10.0 * y as f64 + 5.0),
                )
                .unwrap();
            }
            i += 1;
        }
    }
    b.finish().unwrap()
}

fn object_at(id: u64, center: Point2, spread: f64, points: &[(f64, f64)]) -> UncertainObject {
    let positions: Vec<Point2> = points
        .iter()
        .map(|(dx, dy)| Point2::new(center.x + dx * spread, center.y + dy * spread))
        .collect();
    UncertainObject::with_uniform_weights(
        ObjectId(id),
        Circle::new(center, spread.max(0.1) * 1.5),
        0,
        positions,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Euclidean LB ≤ topological LB ≤ exact ≤ topological UB ≤ TLU, on
    /// random grids, objects and query points.
    #[test]
    fn bound_hierarchy_holds(
        extra in proptest::collection::vec(any::<bool>(), 6),
        qx in 1.0f64..29.0,
        qy in 1.0f64..29.0,
        // Keep the whole instance cloud inside the 30 m grid: the naive
        // oracle treats out-of-building instances as unreachable (the real
        // sampler never produces them).
        cx in 5.0f64..25.0,
        cy in 5.0f64..25.0,
        spread in 0.2f64..3.9,
    ) {
        let space = grid_world(3, 3, &extra);
        let graph = DoorsGraph::build(&space);
        let q = IndoorPoint::new(Point2::new(qx, qy), 0);
        let center = Point2::new(cx, cy);
        let object = object_at(1, center, spread, &[(-1.0, 0.0), (1.0, 0.3), (0.2, -1.0), (0.0, 1.0)]);
        let dd = DoorDistances::compute(&space, &graph, q).unwrap();
        let subs = Subregions::compute(&object, &space).unwrap();

        let exact = expected_indoor_distance_naive(&space, &dd, &object);
        prop_assert!(exact.is_finite());
        // Fast expected distance equals the oracle.
        let fast = expected_indoor_distance(&space, &dd, &object, &subs);
        prop_assert!((fast.value - exact).abs() < 1e-9, "{} vs {exact}", fast.value);

        // Euclidean lower bound.
        let euclid = object.min_euclidean(q.point);
        prop_assert!(euclid <= exact + 1e-9);

        // Table III bounds sandwich.
        let b = object_bounds(&space, &dd, &object, &subs);
        prop_assert!(b.lower <= exact + 1e-9, "LB {} > exact {exact}", b.lower);
        prop_assert!(b.upper >= exact - 1e-9, "UB {} < exact {exact}", b.upper);

        // TLU dominates the exact value.
        let tlu = some_path_upper(&space, &graph, q, &subs);
        prop_assert!(tlu >= exact - 1e-9, "TLU {tlu} < exact {exact}");
    }

    /// The decomposition preserves area and honours the aspect threshold.
    #[test]
    fn decomposition_invariants(
        w in 1.0f64..500.0,
        h in 1.0f64..500.0,
        t_shape in 0.1f64..0.7,
    ) {
        let r = Rect2::from_bounds(0.0, 0.0, w, h);
        let cfg = DecomposeConfig { t_shape, ..DecomposeConfig::default() };
        let units = decompose_rect(r, &cfg);
        prop_assert!(!units.is_empty());
        let total: f64 = units.iter().map(|u| u.area()).sum();
        prop_assert!((total - r.area()).abs() < 1e-6 * r.area().max(1.0));
        for u in &units {
            // Midpoint halving guarantees at least min(t_shape, 1/√2).
            let floor = t_shape.min(std::f64::consts::FRAC_1_SQRT_2) - 1e-9;
            prop_assert!(u.aspect_ratio() >= floor, "unit {u} ratio {}", u.aspect_ratio());
            prop_assert!(r.contains_rect(u));
        }
    }

    /// RangeSearch never loses a true result (Lemma 6 end-to-end), and the
    /// full pipeline matches the oracle on random grid worlds.
    #[test]
    fn pipeline_matches_oracle_on_random_grids(
        extra in proptest::collection::vec(any::<bool>(), 6),
        qx in 1.0f64..29.0,
        qy in 1.0f64..29.0,
        r in 5.0f64..60.0,
        centers in proptest::collection::vec((5.0f64..25.0, 5.0f64..25.0), 3..10),
    ) {
        let space = grid_world(3, 3, &extra);
        let mut store = ObjectStore::new();
        for (i, (cx, cy)) in centers.iter().enumerate() {
            store
                .insert(object_at(i as u64, Point2::new(*cx, *cy), 1.5, &[(-1.0, 0.0), (1.0, 0.5), (0.0, 1.0)]))
                .unwrap();
        }
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        let q = IndoorPoint::new(Point2::new(qx, qy), 0);
        let opts = indoor_dq::query::QueryOptions::for_max_radius(3.0);

        let fast = indoor_dq::query::range_query(&space, &index, &store, q, r, &opts).unwrap();
        let slow = indoor_dq::query::naive_range(&space, index.doors_graph(), &store, q, r).unwrap();
        let fast_ids: Vec<ObjectId> = fast.results.iter().map(|h| h.object).collect();
        let slow_ids: Vec<ObjectId> = slow.iter().map(|x| x.0).collect();
        prop_assert_eq!(fast_ids, slow_ids);

        let k = (centers.len() / 2).max(1);
        let fast = indoor_dq::query::knn_query(&space, &index, &store, q, k, &opts).unwrap();
        let slow = indoor_dq::query::naive_knn(&space, index.doors_graph(), &store, q, k).unwrap();
        prop_assert_eq!(fast.results.len(), slow.len());
        for (a, (_, d)) in fast.results.iter().zip(&slow) {
            prop_assert!((a.distance - d).abs() < 1e-9);
        }
    }

    /// Skeleton distance lower-bounds the true indoor distance on
    /// multi-floor worlds (Lemma 6).
    #[test]
    fn skeleton_lower_bound_random_points(
        ax in 1.0f64..99.0,
        bx in 1.0f64..99.0,
        af in 0u16..3,
        bf in 0u16..3,
    ) {
        let mut b = FloorPlanBuilder::new(4.0);
        let mut halls = Vec::new();
        for f in 0..3u16 {
            halls.push(b.add_room(f, Rect2::from_bounds(0.0, 0.0, 100.0, 10.0)).unwrap());
        }
        let st = b.add_staircase((0, 2), Rect2::from_bounds(100.0, 0.0, 104.0, 10.0)).unwrap();
        for f in 0..3u16 {
            b.add_staircase_entrance(st, halls[f as usize], f, Point2::new(100.0, 5.0)).unwrap();
        }
        let space = b.finish().unwrap();
        let graph = DoorsGraph::build(&space);
        let store = ObjectStore::new();
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();

        let p1 = IndoorPoint::new(Point2::new(ax, 5.0), af);
        let p2 = IndoorPoint::new(Point2::new(bx, 5.0), bf);
        let sk = index.skeleton().skeleton_distance(p1, p2);
        let real = indoor_dq::distance::indoor_distance(&space, &graph, p1, p2).unwrap();
        prop_assert!(sk <= real + 1e-9, "skeleton {sk} > indoor {real}");
    }
}
