//! Concurrency stress suite for the MVCC service API.
//!
//! N reader threads issue mixed query batches against service snapshots
//! while a writer thread commits M update batches; a subscription thread
//! consumes delta notifications. Every recorded answer is tagged with its
//! snapshot's epoch, and the suite then *replays* the same update stream
//! on a fresh engine, epoch by epoch, asserting that:
//!
//! 1. every answer a reader ever observed is **bit-identical** to the
//!    answer a fresh engine gives at that answer's pinned epoch — i.e.
//!    snapshots are true versions, unaffected by concurrent commits;
//! 2. the subscription's result set after absorbing the deltas of each
//!    *routed* epoch equals a from-scratch refresh at that epoch, and
//!    every epoch the dispatcher skipped provably left the result
//!    unchanged (a fresh refresh equals the carried set);
//! 3. a snapshot pinned mid-run still answers its own version after the
//!    writer has moved many epochs past it.
//!
//! No locks are held across evaluation (queries run on pinned `Arc`s), so
//! this is also the ≥4-readers-with-an-active-writer demo.

use indoor_dq::model::Floor;
use indoor_dq::prelude::*;
use indoor_dq::workloads::{
    generate_building, generate_objects, generate_query_points, generate_update_stream,
    GeneratedBuilding, QueryPointConfig, UpdateStreamConfig,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const READERS: usize = 4;
const BATCHES: usize = 6;
const UPDATES_PER_BATCH: usize = 30;

fn building() -> GeneratedBuilding {
    generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(2)
    })
    .unwrap()
}

fn engine(b: &GeneratedBuilding) -> IndoorEngine {
    let store = generate_objects(
        b,
        &ObjectConfig {
            count: 60,
            radius: 6.0,
            instances: 6,
            seed: 5,
        },
    )
    .unwrap();
    IndoorEngine::with_objects(b.space.clone(), store, EngineConfig::default()).unwrap()
}

/// The deterministic update stream, pre-split into the batches the writer
/// commits (batch k produces epoch k+1). Generated against a scratch
/// engine so id-dependent updates (moves, removes) see the same
/// population the real writer will.
fn batches(b: &GeneratedBuilding) -> Vec<Vec<Update>> {
    let mut scratch = engine(b);
    let mut out = Vec::new();
    for k in 0..BATCHES {
        let stream = generate_update_stream(
            b,
            scratch.store(),
            &UpdateStreamConfig {
                count: UPDATES_PER_BATCH,
                seed: 0xC0 ^ k as u64,
                ..Default::default()
            },
        );
        scratch.apply_batch(&stream).unwrap();
        out.push(stream);
    }
    out
}

fn query_batch(points: &[IndoorPoint]) -> Vec<Query> {
    let mut queries = Vec::new();
    for &q in points {
        queries.push(Query::Range { q, r: 60.0 });
        queries.push(Query::Range { q, r: 120.0 });
        queries.push(Query::Knn { q, k: 5 });
    }
    queries.push(Query::Distance {
        q: points[0],
        p: points[1],
    });
    queries
}

/// One query's bit-exact digest: (object id, distance bits) pairs.
type QueryDigest = Vec<(u64, u64)>;
/// One reader observation: the snapshot's epoch plus every query's digest.
type Observation = (u64, Vec<QueryDigest>);

/// A bit-exact digest of one outcome (ids + distance bits).
fn digest(out: &Outcome) -> QueryDigest {
    match out {
        Outcome::Range(r) => r
            .results
            .iter()
            .map(|h| (h.object.0, h.distance.to_bits()))
            .collect(),
        Outcome::Knn(k) => k
            .results
            .iter()
            .map(|h| (h.object.0, h.distance.to_bits()))
            .collect(),
        Outcome::Distance(d) => vec![(u64::MAX, d.distance.to_bits())],
        Outcome::Path(p) => match &p.path {
            None => vec![],
            Some((len, doors)) => std::iter::once((u64::MAX, len.to_bits()))
                .chain(doors.iter().map(|d| (d.0 as u64, 0)))
                .collect(),
        },
    }
}

#[test]
fn parallel_sessions_and_subscriptions_reproduce_their_epochs() {
    let b = building();
    let batches = batches(&b);
    let points = generate_query_points(&b, &QueryPointConfig { count: 3, seed: 77 });
    let queries = query_batch(&points);
    let sub_q = points[0];
    let sub_r = 80.0;

    let mut writer_engine = engine(&b);
    let service = writer_engine.service();
    let done = AtomicBool::new(false);

    // (epoch, per-query digests) observations from all readers, plus the
    // subscription's (epoch, membership set) trajectory.
    let mut observations: Vec<Observation> = Vec::new();
    let mut sub_trajectory: Vec<(u64, BTreeSet<ObjectId>)> = Vec::new();

    // Subscribe before the writer starts, so the baseline is epoch 0 and
    // the trajectory deterministically covers every epoch; the owned
    // subscription then moves into its consumer thread.
    let mut sub = service
        .subscribe(Query::Range { q: sub_q, r: sub_r })
        .unwrap();
    assert_eq!(sub.epoch(), 0);

    std::thread::scope(|scope| {
        // Subscription consumer: absorbs every commit's delta into a set
        // seeded from the initial result (deliberately maintained outside
        // the Subscription, so the test checks the published deltas, not
        // the monitor's internals).
        let sub_handle = scope.spawn(move || {
            let mut set: BTreeSet<ObjectId> = sub.initial().iter().copied().collect();
            let mut trajectory = vec![(sub.epoch(), set.clone())];
            while let Some(n) = sub.wait().unwrap() {
                for (id, change) in &n.changes {
                    match change {
                        MonitorChange::Entered => {
                            assert!(set.insert(*id), "duplicate enter for {id}")
                        }
                        MonitorChange::Left => assert!(set.remove(id), "spurious leave for {id}"),
                        MonitorChange::Unchanged => {
                            panic!("notifications carry changes only")
                        }
                    }
                }
                // The externally maintained set and the subscription's own
                // result set must agree at every epoch.
                assert_eq!(
                    set.iter().copied().collect::<Vec<_>>(),
                    sub.current(),
                    "delta-applied set diverged at epoch {}",
                    n.epoch
                );
                trajectory.push((n.epoch, set.clone()));
            }
            trajectory
        });

        // Reader threads: mixed query batches on fresh snapshots until the
        // writer is done, then one final batch at the final epoch so every
        // reader provably executed against a committed version. Each also
        // pins one early snapshot and re-verifies it at the end.
        let mut readers = Vec::new();
        for _ in 0..READERS {
            let service = service.clone();
            let done = &done;
            let queries = &queries;
            readers.push(scope.spawn(move || {
                let mut seen: Vec<Observation> = Vec::new();
                let pinned = service.snapshot();
                let pinned_digests: Vec<_> = pinned
                    .execute_batch(queries)
                    .unwrap()
                    .iter()
                    .map(digest)
                    .collect();
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let snap = service.snapshot();
                    let outcomes = snap.execute_batch(queries).unwrap();
                    seen.push((snap.version(), outcomes.iter().map(digest).collect()));
                    if finished {
                        break;
                    }
                }
                // The pinned snapshot still answers its own version.
                let again: Vec<_> = pinned
                    .execute_batch(queries)
                    .unwrap()
                    .iter()
                    .map(digest)
                    .collect();
                assert_eq!(pinned_digests, again, "pinned snapshot drifted");
                seen.push((pinned.version(), pinned_digests));
                seen
            }));
        }

        // The writer: one committed batch per epoch, paced so readers
        // sample several versions.
        for batch in &batches {
            writer_engine.apply_batch(batch).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(writer_engine.epoch(), BATCHES as u64);
        done.store(true, Ordering::Release);
        // Retire the writer: the subscription stream ends.
        drop(writer_engine);

        for r in readers {
            observations.extend(r.join().unwrap());
        }
        sub_trajectory = sub_handle.join().unwrap();
    });

    // Routed dispatch: the subscription hears each commit that can affect
    // it at most once, in commit order, starting from its baseline.
    check_routed_trajectory(&sub_trajectory, BATCHES as u64);
    let observed_epochs: BTreeSet<u64> = observations.iter().map(|(e, _)| *e).collect();
    assert!(
        observed_epochs.contains(&(BATCHES as u64)),
        "readers never saw the final epoch"
    );

    // Replay: a fresh engine, advanced one batch at a time; at each epoch,
    // every concurrent observation of that epoch must be bit-identical to
    // the fresh answers, each *routed* epoch's absorbed set must equal a
    // from-scratch refresh, and each *skipped* epoch must be provably
    // unchanged (fresh refresh == the set carried over the skip).
    let trajectory: BTreeMap<u64, BTreeSet<ObjectId>> = sub_trajectory.iter().cloned().collect();
    let mut carried = trajectory[&0].clone();
    let mut replay = engine(&b);
    for epoch in 0..=BATCHES as u64 {
        if epoch > 0 {
            replay.apply_batch(&batches[epoch as usize - 1]).unwrap();
        }
        assert_eq!(replay.epoch(), epoch);
        let fresh: Vec<_> = replay
            .execute_batch(&queries)
            .unwrap()
            .iter()
            .map(digest)
            .collect();
        for (e, digests) in observations.iter().filter(|(e, _)| *e == epoch) {
            assert_eq!(digests, &fresh, "observation at epoch {e} not reproducible");
        }
        let fresh_members: BTreeSet<ObjectId> = replay
            .range_query(sub_q, sub_r)
            .unwrap()
            .results
            .iter()
            .map(|h| h.object)
            .collect();
        match trajectory.get(&epoch) {
            Some(absorbed) => {
                assert_eq!(
                    absorbed, &fresh_members,
                    "subscription set at epoch {epoch} diverges from a fresh refresh"
                );
                carried = absorbed.clone();
            }
            None => assert_eq!(
                carried, fresh_members,
                "dispatcher skipped epoch {epoch}, but the result changed"
            ),
        }
    }
}

/// A routed subscription trajectory is sound iff its epochs are strictly
/// increasing (each commit delivered at most once, in order), start at
/// the subscription's baseline, and never exceed the final epoch. Which
/// commits appear is the dispatcher's routing decision — the replay
/// oracle separately proves every *absent* epoch left the result
/// unchanged.
fn check_routed_trajectory(trajectory: &[(u64, BTreeSet<ObjectId>)], final_epoch: u64) {
    assert_eq!(trajectory[0].0, 0, "baseline entry at epoch 0");
    assert!(
        trajectory.windows(2).all(|w| w[0].0 < w[1].0),
        "delivered epochs must be strictly increasing (no double delivery)"
    );
    assert!(
        trajectory.last().unwrap().0 <= final_epoch,
        "no delivery past the final commit"
    );
}

const WRITERS: usize = 4;
const WRITER_ROUNDS: usize = 5;

/// 4 writers × 4 readers × a subscription, all concurrent. Writers commit
/// through cloned `WriteHandle`s with a small commit window, so batches
/// race, conflict (shared floors force re-stages) and group-commit into
/// merged epochs. The oracle then replays every epoch's commit group —
/// ordered by `(epoch, offset_in_epoch)` — as one serial batch on a fresh
/// engine and asserts:
///
/// 1. every reader observation is bit-reproducible at its pinned epoch;
/// 2. the subscription's delta trajectory is strictly increasing (no
///    double delivery), equals a from-scratch refresh at every routed
///    epoch, and every epoch the dispatcher skipped provably left the
///    result unchanged;
/// 3. commit bookkeeping is self-consistent: epochs contiguous, offsets
///    contiguous within each group, every member naming the group size.
#[test]
fn four_writers_group_commits_stay_epoch_reproducible() {
    let b = building();
    let points = generate_query_points(&b, &QueryPointConfig { count: 3, seed: 78 });
    let queries = query_batch(&points);
    let sub_q = points[0];
    let sub_r = 80.0;

    let mut writer_engine = engine(&b);
    let service = writer_engine.service();
    let done = AtomicBool::new(false);

    // Writer w owns every WRITERS-th object and moves it between rooms
    // and floors each round — disjoint id sets (all batches succeed),
    // overlapping floor footprints (conflicts and re-stages are routine).
    let all_ids = writer_engine.store().ids_sorted();
    let owned: Vec<Vec<ObjectId>> = (0..WRITERS)
        .map(|w| {
            all_ids
                .iter()
                .skip(w)
                .step_by(WRITERS)
                .take(6)
                .copied()
                .collect()
        })
        .collect();
    let room = |floor: Floor, i: usize| {
        let rooms = &b.rooms_by_floor[floor as usize];
        b.space
            .partition(rooms[i % rooms.len()])
            .unwrap()
            .bbox
            .center()
    };

    let mut observations: Vec<Observation> = Vec::new();
    let mut committed: Vec<(Vec<Update>, UpdateReport)> = Vec::new();
    let mut sub_trajectory: Vec<(u64, BTreeSet<ObjectId>)> = Vec::new();
    let mut final_epoch = 0;

    let mut sub = service
        .subscribe(Query::Range { q: sub_q, r: sub_r })
        .unwrap();
    assert_eq!(sub.epoch(), 0);

    std::thread::scope(|scope| {
        let sub_handle = scope.spawn(move || {
            let mut set: BTreeSet<ObjectId> = sub.initial().iter().copied().collect();
            let mut trajectory = vec![(sub.epoch(), set.clone())];
            while let Some(n) = sub.wait().unwrap() {
                for (id, change) in &n.changes {
                    match change {
                        MonitorChange::Entered => {
                            assert!(set.insert(*id), "duplicate enter for {id}")
                        }
                        MonitorChange::Left => assert!(set.remove(id), "spurious leave for {id}"),
                        MonitorChange::Unchanged => panic!("notifications carry changes only"),
                    }
                }
                assert_eq!(
                    set.iter().copied().collect::<Vec<_>>(),
                    sub.current(),
                    "delta-applied set diverged at epoch {}",
                    n.epoch
                );
                trajectory.push((n.epoch, set.clone()));
            }
            trajectory
        });

        let mut readers = Vec::new();
        for _ in 0..READERS {
            let service = service.clone();
            let done = &done;
            let queries = &queries;
            readers.push(scope.spawn(move || {
                let mut seen: Vec<Observation> = Vec::new();
                let pinned = service.snapshot();
                let pinned_digests: Vec<_> = pinned
                    .execute_batch(queries)
                    .unwrap()
                    .iter()
                    .map(digest)
                    .collect();
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let snap = service.snapshot();
                    let outcomes = snap.execute_batch(queries).unwrap();
                    seen.push((snap.version(), outcomes.iter().map(digest).collect()));
                    if finished {
                        break;
                    }
                }
                let again: Vec<_> = pinned
                    .execute_batch(queries)
                    .unwrap()
                    .iter()
                    .map(digest)
                    .collect();
                assert_eq!(pinned_digests, again, "pinned snapshot drifted");
                seen.push((pinned.version(), pinned_digests));
                seen
            }));
        }

        // Four concurrent writers through cloned handles; the commit
        // window invites group formation without the test depending on it.
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let writer = writer_engine
                    .writer()
                    .with_commit_window(Duration::from_millis(3));
                let owned = &owned;
                let room = &room;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for round in 0..WRITER_ROUNDS {
                        let updates: Vec<Update> = owned[w]
                            .iter()
                            .enumerate()
                            .map(|(i, &id)| {
                                let floor = ((id.0 as usize + round) % 2) as Floor;
                                Update::MoveObject {
                                    id,
                                    center: room(floor, i + round + w),
                                    floor,
                                    seed: (w as u64) << 16 | round as u64,
                                }
                            })
                            .collect();
                        let report = writer.apply_batch(&updates).unwrap();
                        mine.push((updates, report));
                    }
                    mine
                })
            })
            .collect();
        for w in writers {
            committed.extend(w.join().unwrap());
        }
        writer_engine.refresh();
        final_epoch = writer_engine.epoch();
        done.store(true, Ordering::Release);
        // Retire the engine (and with it the last write handle): the
        // subscription stream ends.
        drop(writer_engine);

        for r in readers {
            observations.extend(r.join().unwrap());
        }
        sub_trajectory = sub_handle.join().unwrap();
    });

    // Commit bookkeeping: group the receipts by epoch; epochs contiguous
    // from 1, offsets contiguous from 0, group sizes consistent.
    committed.sort_by_key(|(_, r)| (r.epoch, r.offset_in_epoch));
    let mut groups: BTreeMap<u64, Vec<&(Vec<Update>, UpdateReport)>> = BTreeMap::new();
    for entry in &committed {
        groups.entry(entry.1.epoch).or_default().push(entry);
    }
    assert_eq!(
        groups.keys().copied().collect::<Vec<_>>(),
        (1..=final_epoch).collect::<Vec<_>>(),
        "every epoch is one commit group"
    );
    for (epoch, members) in &groups {
        for (offset, (_, report)) in members.iter().enumerate() {
            assert_eq!(report.offset_in_epoch, offset, "offsets at epoch {epoch}");
            assert_eq!(report.stats.group_batches, members.len());
        }
    }

    // The subscription heard each merged epoch at most once, in order.
    check_routed_trajectory(&sub_trajectory, final_epoch);

    // Replay each commit group as one serial batch: the fresh engine walks
    // the same epoch numbers; at every epoch all concurrent observations
    // are bit-reproducible, the subscription set matches a from-scratch
    // refresh where it was routed, and is provably unchanged where the
    // dispatcher skipped.
    let trajectory: BTreeMap<u64, BTreeSet<ObjectId>> = sub_trajectory.iter().cloned().collect();
    let mut carried = trajectory[&0].clone();
    let mut replay = engine(&b);
    for epoch in 0..=final_epoch {
        if epoch > 0 {
            let merged: Vec<Update> = groups[&epoch]
                .iter()
                .flat_map(|(updates, _)| updates.iter().cloned())
                .collect();
            replay.apply_batch(&merged).unwrap();
        }
        assert_eq!(replay.epoch(), epoch);
        let fresh: Vec<_> = replay
            .execute_batch(&queries)
            .unwrap()
            .iter()
            .map(digest)
            .collect();
        for (e, digests) in observations.iter().filter(|(e, _)| *e == epoch) {
            assert_eq!(digests, &fresh, "observation at epoch {e} not reproducible");
        }
        let fresh_members: BTreeSet<ObjectId> = replay
            .range_query(sub_q, sub_r)
            .unwrap()
            .results
            .iter()
            .map(|h| h.object)
            .collect();
        match trajectory.get(&epoch) {
            Some(absorbed) => {
                assert_eq!(
                    absorbed, &fresh_members,
                    "subscription set at epoch {epoch} diverges from a fresh refresh"
                );
                carried = absorbed.clone();
            }
            None => assert_eq!(
                carried, fresh_members,
                "dispatcher skipped epoch {epoch}, but the result changed"
            ),
        }
    }
    replay.validate().unwrap();
}
