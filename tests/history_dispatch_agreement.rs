//! A standing range subscription and the historical `RangeDuring` walk
//! over the same window must agree on member sets at every epoch — the
//! live dispatch path and the after-the-fact history replay are two
//! routes to the same per-epoch answers.

use indoor_dq::history::{HistoryOptions, HistoryRecorder};
use indoor_dq::prelude::*;
use indoor_dq::workloads::{
    generate_building, generate_objects, generate_query_points, generate_update_stream,
    GeneratedBuilding,
};
use std::collections::BTreeSet;

fn building() -> GeneratedBuilding {
    generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(2)
    })
    .unwrap()
}

#[test]
fn standing_subscription_agrees_with_range_during_at_every_epoch() {
    let b = building();
    let store = generate_objects(
        &b,
        &ObjectConfig {
            count: 70,
            radius: 6.0,
            instances: 5,
            seed: 23,
        },
    )
    .unwrap();
    let stream = generate_update_stream(
        &b,
        &store,
        &UpdateStreamConfig {
            count: 96,
            seed: 29,
            ..UpdateStreamConfig::default()
        },
    );
    let mut engine =
        IndoorEngine::with_objects(b.space.clone(), store, EngineConfig::default()).unwrap();

    // History and subscriptions both start at epoch 0.
    let recorder = HistoryRecorder::attach(
        &engine,
        HistoryOptions {
            keyframe_every: 6,
            ..HistoryOptions::default()
        },
    )
    .unwrap();
    let service = engine.service();
    let points = generate_query_points(&b, &QueryPointConfig { count: 3, seed: 31 });
    let radius = 55.0;
    let mut subs: Vec<Subscription> = points
        .iter()
        .map(|&q| service.subscribe(Query::Range { q, r: radius }).unwrap())
        .collect();

    let batches: Vec<Vec<Update>> = stream.chunks(6).map(<[Update]>::to_vec).collect();
    for batch in &batches {
        engine.apply_batch(batch).unwrap();
    }
    service.quiesce();
    recorder.sync();
    let session = recorder.session();
    let newest = session.newest();
    assert_eq!(newest, batches.len() as u64);

    for (sub, &q) in subs.iter_mut().zip(&points) {
        // Fold the subscription's routed trajectory into per-epoch
        // member sets (the dispatcher skips epochs that provably can't
        // change membership — the carried set stands for those).
        let mut carried: BTreeSet<ObjectId> = sub.initial().iter().copied().collect();
        let mut notes = sub.poll().unwrap().into_iter().peekable();
        let mut by_epoch: Vec<Vec<ObjectId>> = Vec::with_capacity(newest as usize + 1);
        by_epoch.push(carried.iter().copied().collect());
        for epoch in 1..=newest {
            while let Some(n) = notes.peek() {
                if n.epoch > epoch {
                    break;
                }
                let n = notes.next().unwrap();
                assert!(!n.lagged, "drained run never coalesces");
                for (id, change) in &n.changes {
                    match change {
                        MonitorChange::Entered => assert!(carried.insert(*id)),
                        MonitorChange::Left => assert!(carried.remove(id)),
                        MonitorChange::Unchanged => {
                            panic!("notifications carry changes only")
                        }
                    }
                }
            }
            by_epoch.push(carried.iter().copied().collect());
        }

        // The historical walk over the same window sees the same sets.
        let walked = session.range_membership(q, radius, 0, newest).unwrap();
        assert_eq!(walked.len(), by_epoch.len());
        for (epoch, members) in walked {
            assert_eq!(
                members, by_epoch[epoch as usize],
                "q={q}: dispatch and history disagree at epoch {epoch}"
            );
        }
    }
}
