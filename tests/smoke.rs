//! Fast facade smoke test: the quickstart flow from `src/lib.rs`, run
//! end-to-end in well under a second, so facade breakage is caught before
//! the heavy oracle suites spin up worlds.

use indoor_dq::prelude::*;

#[test]
fn quickstart_flow_end_to_end() {
    // A tiny two-room floor plan, exactly as in the crate-level doc example.
    let mut builder = FloorPlanBuilder::new(4.0);
    let a = builder
        .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
        .unwrap();
    let b = builder
        .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
        .unwrap();
    builder
        .add_door_between(a, b, Point2::new(10.0, 5.0))
        .unwrap();
    let space = builder.finish().unwrap();

    let mut engine = IndoorEngine::new(space, EngineConfig::default()).unwrap();
    let o1 = engine
        .insert_object_at(Point2::new(18.0, 5.0), 0, 1.0, 16, 7)
        .unwrap();

    let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
    let hits = engine.range_query(q, 25.0).unwrap();
    assert_eq!(hits.results.len(), 1);
    assert_eq!(hits.results[0].object, o1);

    // The same object is the 1-NN. The range hit may carry a certifying
    // upper bound instead of the exact value, so the exact kNN distance can
    // only be at or below it.
    let knn = engine.knn(q, 1).unwrap();
    assert_eq!(knn.results.len(), 1);
    assert_eq!(knn.results[0].object, o1);
    assert!(knn.results[0].distance <= hits.results[0].distance + 1e-9);

    // A radius short of the door leaves the other room unreachable.
    let none = engine.range_query(q, 5.0).unwrap();
    assert!(none.results.is_empty());

    // Removal flows through engine, index and store consistently.
    engine.remove_object(o1).unwrap();
    let hits = engine.range_query(q, 25.0).unwrap();
    assert!(hits.results.is_empty());
}
