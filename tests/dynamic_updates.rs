//! Index consistency under mixed object and topology update sequences
//! (§III-C): after any sequence of updates, the incrementally maintained
//! index must answer exactly like a freshly rebuilt one.

use indoor_dq::index::{CompositeIndex, IndexConfig};
use indoor_dq::model::{IndoorPoint, SplitLine};
use indoor_dq::objects::ObjectId;
use indoor_dq::prelude::*;
use indoor_dq::query::{naive_knn, naive_range, QueryOptions};
use indoor_dq::workloads::{
    generate_building, generate_objects, generate_query_points, sample_one, BuildingConfig,
    ObjectConfig, QueryPointConfig,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn agree_with_rebuild(
    space: &indoor_dq::model::IndoorSpace,
    store: &indoor_dq::objects::ObjectStore,
    incr: &CompositeIndex,
    queries: &[IndoorPoint],
) {
    incr.validate();
    incr.check_fresh(space).unwrap();
    let fresh = CompositeIndex::build(space, store, IndexConfig::default()).unwrap();
    let opts = QueryOptions::for_max_radius(10.0);
    for &q in queries {
        if space.partition_at(q).is_none() {
            continue; // a topology change may have removed q's partition
        }
        let a = indoor_dq::query::range_query(space, incr, store, q, 80.0, &opts).unwrap();
        let b = indoor_dq::query::range_query(space, &fresh, store, q, 80.0, &opts).unwrap();
        let ids = |r: &indoor_dq::query::RangeResult| {
            r.results.iter().map(|h| h.object).collect::<Vec<_>>()
        };
        assert_eq!(ids(&a), ids(&b), "incremental vs rebuilt at q={q}");
        // And both agree with the oracle.
        let slow = naive_range(space, incr.doors_graph(), store, q, 80.0).unwrap();
        let slow_ids: Vec<ObjectId> = slow.iter().map(|x| x.0).collect();
        assert_eq!(ids(&a), slow_ids, "oracle at q={q}");
    }
}

#[test]
fn random_object_churn_preserves_equivalence() {
    let building = generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(2)
    })
    .unwrap();
    let mut store = generate_objects(
        &building,
        &ObjectConfig {
            count: 120,
            radius: 8.0,
            instances: 8,
            seed: 5,
        },
    )
    .unwrap();
    let mut index = CompositeIndex::build(&building.space, &store, IndexConfig::default()).unwrap();
    let queries = generate_query_points(&building, &QueryPointConfig { count: 4, seed: 77 });

    let mut rng = StdRng::seed_from_u64(99);
    let mut next_id = 10_000u64;
    for round in 0..6 {
        // Remove ~10 random objects.
        let ids = store.ids_sorted();
        for &id in ids.iter().step_by(13).take(10) {
            store.remove(id).unwrap();
            index.remove_object(id).unwrap();
        }
        // Insert ~10 fresh ones.
        for _ in 0..10 {
            let obj = sample_one(&building, ObjectId(next_id), 8.0, 8, &mut rng).unwrap();
            next_id += 1;
            index.insert_object(&building.space, &obj).unwrap();
            store.insert(obj).unwrap();
        }
        // Move ~10 (delete + insert semantics).
        let ids = store.ids_sorted();
        for &id in ids.iter().step_by(17).take(10) {
            let replacement = sample_one(&building, id, 8.0, 8, &mut rng).unwrap();
            store.remove(id).unwrap();
            store.insert(replacement).unwrap();
            index
                .update_object(&building.space, store.get(id).unwrap())
                .unwrap();
        }
        if round % 2 == 1 {
            agree_with_rebuild(&building.space, &store, &index, &queries);
        }
    }
    agree_with_rebuild(&building.space, &store, &index, &queries);
}

#[test]
fn topology_churn_preserves_equivalence() {
    let building = generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(2)
    })
    .unwrap();
    let mut space = building.space.clone();
    let store = generate_objects(
        &building,
        &ObjectConfig {
            count: 80,
            radius: 6.0,
            instances: 6,
            seed: 21,
        },
    )
    .unwrap();
    let mut index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
    let queries = generate_query_points(&building, &QueryPointConfig { count: 4, seed: 31 });
    let mut rng = StdRng::seed_from_u64(4242);

    // Door open/close churn.
    let door_ids: Vec<_> = space.doors().map(|d| d.id).collect();
    for _ in 0..8 {
        let d = door_ids[rng.random_range(0..door_ids.len())];
        let ev = space.close_door(d).unwrap();
        index.apply_topology(&space, &store, &ev).unwrap();
        agree_with_rebuild(&space, &store, &index, &queries[..1]);
        let ev = space.open_door(d).unwrap();
        index.apply_topology(&space, &store, &ev).unwrap();
    }
    agree_with_rebuild(&space, &store, &index, &queries);

    // Split a few rooms with sliding walls, then merge them back.
    let mut split_pairs = Vec::new();
    for &room in building.rooms_by_floor[0].iter().take(3) {
        let p = space.partition(room).unwrap();
        let rect = p.footprint.as_rect().unwrap();
        // Rooms carry doors at w/4, w/2 or 3w/4 of their width; split at
        // 0.375·w so the wall misses all of them.
        let cx = rect.lo.x + rect.width() * 0.375;
        let cy = (rect.lo.y + rect.hi.y) / 2.0;
        let (halves, events) = space
            .split_partition(room, SplitLine::AtX(cx), Some(Point2::new(cx, cy)))
            .unwrap();
        for ev in &events {
            index.apply_topology(&space, &store, ev).unwrap();
        }
        split_pairs.push(halves);
    }
    agree_with_rebuild(&space, &store, &index, &queries);
    for halves in split_pairs {
        let (_, events) = space.merge_partitions(halves[0], halves[1]).unwrap();
        for ev in &events {
            index.apply_topology(&space, &store, ev).unwrap();
        }
    }
    agree_with_rebuild(&space, &store, &index, &queries);
}

#[test]
fn engine_keeps_knn_consistent_after_everything() {
    let building = generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(2)
    })
    .unwrap();
    let store = generate_objects(
        &building,
        &ObjectConfig {
            count: 60,
            radius: 6.0,
            instances: 6,
            seed: 3,
        },
    )
    .unwrap();
    let mut engine =
        IndoorEngine::with_objects(building.space.clone(), store, EngineConfig::default()).unwrap();
    // A burst of engine-level operations.
    let new_id = engine
        .insert_object_at(Point2::new(300.0, 300.0), 1, 6.0, 6, 9)
        .unwrap();
    engine
        .move_object(new_id, Point2::new(100.0, 100.0), 0, 10)
        .unwrap();
    let some_door = engine.space().doors().nth(5).unwrap().id;
    engine.close_door(some_door).unwrap();
    engine.open_door(some_door).unwrap();
    engine.validate().unwrap();
    // kNN equals the oracle.
    let q = IndoorPoint::new(Point2::new(305.0, 305.0), 0);
    let fast = engine.knn(q, 15).unwrap();
    let slow = naive_knn(
        engine.space(),
        engine.index().doors_graph(),
        engine.store(),
        q,
        15,
    )
    .unwrap();
    assert_eq!(fast.results.len(), slow.len());
    for (a, (_, d)) in fast.results.iter().zip(&slow) {
        assert!((a.distance - d).abs() < 1e-9);
    }
}
