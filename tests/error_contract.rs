//! The error-type contract, in one place: every `EngineError` and
//! `HistoryError` variant renders a meaningful, single-line `Display`
//! message, and `source()` exposes an underlying cause exactly where the
//! documentation promises one (storage/recovery failures for the engine,
//! engine failures for history) — so callers can rely on the standard
//! `Error` chain for root-cause reporting.

use indoor_dq::distance::DistanceError;
use indoor_dq::geom::Point2;
use indoor_dq::history::HistoryError;
use indoor_dq::index::IndexError;
use indoor_dq::model::{IndoorPoint, ModelError, PartitionId};
use indoor_dq::objects::{ObjectError, ObjectId};
use indoor_dq::prelude::{EngineError, Query};
use indoor_dq::query::QueryError;
use indoor_dq::storage::StorageError;
use std::error::Error;

/// Display must be non-empty, single-line, and not terminated — it nests
/// into larger messages.
fn well_formed(e: &dyn Error) -> String {
    let msg = e.to_string();
    assert!(!msg.is_empty(), "empty Display");
    assert!(!msg.contains('\n'), "multi-line Display: {msg:?}");
    assert!(
        !msg.ends_with('.') && !msg.ends_with('\n'),
        "terminated Display nests badly: {msg:?}"
    );
    msg
}

fn every_engine_variant() -> Vec<EngineError> {
    let q = IndoorPoint::new(Point2::new(1.0, 2.0), 0);
    vec![
        EngineError::Model(ModelError::UnknownPartition(PartitionId(7))),
        EngineError::Object(ObjectError::EmptyInstances),
        EngineError::Index(IndexError::ObjectNotIndexed(ObjectId(4))),
        EngineError::Distance(DistanceError::QueryOutsideSpace(q)),
        EngineError::Query(QueryError::ZeroK),
        EngineError::UnsupportedSubscription(Query::Distance { q, p: q }),
        EngineError::FloorOutOfSpace {
            floor: 9,
            num_floors: 2,
        },
        EngineError::Storage {
            path: "/tmp/idq-wal".into(),
            epoch: 41,
            cause: StorageError::Io {
                op: "append",
                path: "/tmp/idq-wal/log".into(),
                message: "disk full".into(),
            },
        },
        EngineError::Recovery {
            path: "/tmp/idq-wal".into(),
            epoch: 17,
            cause: StorageError::Corrupt {
                path: "/tmp/idq-wal/log".into(),
                offset: 512,
                reason: "crc mismatch".into(),
            },
        },
    ]
}

#[test]
fn engine_error_display_and_source_round_trip() {
    for err in every_engine_variant() {
        let msg = well_formed(&err);
        match &err {
            // The durability variants chain their storage cause...
            EngineError::Storage { path, epoch, cause }
            | EngineError::Recovery { path, epoch, cause } => {
                assert!(msg.contains(path.as_str()), "{msg:?} names the path");
                assert!(msg.contains(&epoch.to_string()), "{msg:?} names the epoch");
                let src = err.source().expect("durability errors chain a cause");
                assert_eq!(src.to_string(), cause.to_string(), "source round-trips");
                assert!(src.source().is_none(), "storage errors are the chain root");
            }
            // ...every other variant renders flat (the layer error's own
            // message IS the engine message, or the context is inline).
            _ => assert!(err.source().is_none(), "unexpected source on {err:?}"),
        }
        // Details survive into the rendered message.
        match &err {
            EngineError::FloorOutOfSpace { floor, .. } => {
                assert!(msg.contains(&floor.to_string()))
            }
            EngineError::Query(_) => assert!(msg.contains('k')),
            _ => {}
        }
    }
}

fn every_history_variant() -> Vec<HistoryError> {
    vec![
        HistoryError::Evicted {
            requested: 3,
            oldest_retained: 12,
        },
        HistoryError::FutureEpoch {
            requested: 99,
            newest: 42,
        },
        HistoryError::EmptyWindow { from: 8, to: 5 },
        HistoryError::AlreadyAttached,
        HistoryError::Engine(EngineError::Query(QueryError::BadRange(-1.0))),
    ]
}

#[test]
fn history_error_display_and_source_round_trip() {
    for err in every_history_variant() {
        let msg = well_formed(&err);
        match &err {
            HistoryError::Evicted {
                requested,
                oldest_retained,
            } => {
                // The clamp hint must be in the message: callers re-issue
                // with `from = oldest_retained`.
                assert!(msg.contains(&requested.to_string()));
                assert!(msg.contains(&oldest_retained.to_string()));
                assert!(err.source().is_none());
            }
            HistoryError::FutureEpoch { requested, newest } => {
                assert!(msg.contains(&requested.to_string()));
                assert!(msg.contains(&newest.to_string()));
                assert!(err.source().is_none());
            }
            HistoryError::EmptyWindow { from, to } => {
                assert!(msg.contains(&from.to_string()));
                assert!(msg.contains(&to.to_string()));
                assert!(err.source().is_none());
            }
            HistoryError::AlreadyAttached => assert!(err.source().is_none()),
            HistoryError::Engine(inner) => {
                let src = err.source().expect("engine failures chain");
                assert_eq!(src.to_string(), inner.to_string(), "source round-trips");
                assert!(msg.contains(&inner.to_string()), "context wraps the cause");
            }
        }
    }
}

#[test]
fn layer_errors_convert_and_round_trip_through_history() {
    // Every `From` conversion into HistoryError lands in the Engine
    // variant with the original rendered somewhere in the chain.
    let from_query: HistoryError = QueryError::ZeroK.into();
    let from_object: HistoryError = ObjectError::UnknownObject(ObjectId(5)).into();
    let from_index: HistoryError = IndexError::ObjectAlreadyIndexed(ObjectId(6)).into();
    let from_engine: HistoryError = EngineError::FloorOutOfSpace {
        floor: 3,
        num_floors: 1,
    }
    .into();
    for (err, needle) in [
        (&from_query, QueryError::ZeroK.to_string()),
        (
            &from_object,
            ObjectError::UnknownObject(ObjectId(5)).to_string(),
        ),
        (
            &from_index,
            IndexError::ObjectAlreadyIndexed(ObjectId(6)).to_string(),
        ),
        (&from_engine, "floor 3".to_string()),
    ] {
        assert!(matches!(err, HistoryError::Engine(_)), "{err:?}");
        assert!(
            err.to_string().contains(&needle),
            "{err} should contain {needle:?}"
        );
        assert!(err.source().is_some());
    }
}
