//! The pre-computation baseline must agree with on-the-fly evaluation on
//! the generated mall — and its construction must dwarf the composite
//! index's per-update costs (the paper's maintenance argument, §V-B.4).

use indoor_dq::distance::indoor_distance;
use indoor_dq::model::DoorsGraph;
use indoor_dq::query::PrecomputedD2D;
use indoor_dq::workloads::{
    generate_building, generate_query_points, BuildingConfig, QueryPointConfig,
};

#[test]
fn matrix_agrees_with_online_distances_on_the_mall() {
    let building = generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        one_way_rooms: 1,
        ..BuildingConfig::with_floors(2)
    })
    .unwrap();
    let space = &building.space;
    let graph = DoorsGraph::build(space);
    let pre = PrecomputedD2D::build(space, &graph);
    assert_eq!(pre.door_slots(), space.door_slots());

    let points = generate_query_points(&building, &QueryPointConfig { count: 12, seed: 5 });
    for pair in points.chunks(2) {
        if pair.len() < 2 {
            continue;
        }
        let (a, b) = (pair[0], pair[1]);
        let online = indoor_distance(space, &graph, a, b).unwrap();
        let offline = pre.point_distance(space, a, b).unwrap();
        if online.is_finite() {
            assert!(
                (online - offline).abs() < 1e-9,
                "{a} → {b}: online {online} vs matrix {offline}"
            );
        } else {
            assert!(offline.is_infinite());
        }
    }
}

#[test]
fn precomputation_cost_dwarfs_index_updates() {
    use indoor_dq::index::{CompositeIndex, IndexConfig};
    use indoor_dq::objects::ObjectStore;
    use std::time::Instant;

    let building = generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 4,
        ..BuildingConfig::with_floors(3)
    })
    .unwrap();
    let mut space = building.space.clone();
    let graph = DoorsGraph::build(&space);
    let pre = PrecomputedD2D::build(&space, &graph);

    // One topology update on the composite index.
    let store = ObjectStore::new();
    let mut index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
    let d = space.doors().next().unwrap().id;
    let t = Instant::now();
    let ev = space.close_door(d).unwrap();
    index.apply_topology(&space, &store, &ev).unwrap();
    let update_ms = t.elapsed().as_secs_f64() * 1e3;

    // The paper's gap is hours vs milliseconds; at test scale we still
    // expect a couple of orders of magnitude.
    assert!(
        pre.build_ms > update_ms * 10.0,
        "precompute {:.3} ms should dwarf update {:.3} ms",
        pre.build_ms,
        update_ms
    );
}
