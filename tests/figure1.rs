//! Regression tests encoding the paper's running example (Figure 1 and
//! Figure 3): the q→p path through doors d13 and d15, the one-directional
//! door d12, and the Room-21 sliding wall that forces the s→t route
//! through d41/d42.
//!
//! Geometry is schematic (the paper prints no coordinates); topology is
//! the part the tests pin down.

use indoor_dq::model::SplitLine;
use indoor_dq::prelude::*;

/// Builds the relevant fragment of Figure 1:
///
/// ```text
///   +--------+--------+----------------+
///   |  11    |   12   |     room 21    |   floor 0
///   | (hall) |  (p)   |  (s ... t)     |
///   +--d13---+--d15?--+---d41---d42----+
///   |      13 (hall, q)                |
///   +----------------------------------+
/// ```
///
/// * d13 connects hall 13 to hall 11, d15 connects hall 11 to room 12 —
///   reaching p from q takes d13 then d15;
/// * d12 is one-way out of room 12 into hall 11 ("security exit"): room 12
///   cannot be entered through it;
/// * room 21 has doors d41 (west, to hall 13) and d42 (east, to hall 13)
///   and can be split by a sliding wall.
struct Fig1 {
    engine: IndoorEngine,
    hall13: PartitionId,
    room12: PartitionId,
    room21: PartitionId,
    d13: DoorId,
    d15: DoorId,
    d12: DoorId,
    d41: DoorId,
    d42: DoorId,
}

fn build() -> Fig1 {
    let mut b = FloorPlanBuilder::new(4.0);
    let hall11 = b
        .add_named_room("hall 11", 0, Rect2::from_bounds(0.0, 10.0, 20.0, 20.0))
        .unwrap();
    let room12 = b
        .add_named_room("room 12", 0, Rect2::from_bounds(20.0, 10.0, 40.0, 20.0))
        .unwrap();
    let room21 = b
        .add_named_room("room 21", 0, Rect2::from_bounds(40.0, 10.0, 80.0, 20.0))
        .unwrap();
    let hall13 = b
        .add_named_room("hall 13", 0, Rect2::from_bounds(0.0, 0.0, 80.0, 10.0))
        .unwrap();
    let d13 = b
        .add_door_between(hall13, hall11, Point2::new(10.0, 10.0))
        .unwrap();
    let d15 = b
        .add_door_between(hall11, room12, Point2::new(20.0, 15.0))
        .unwrap();
    // One-way: out of room 12 into hall 13 only.
    let d12 = b
        .add_one_way_door(room12, hall13, Point2::new(30.0, 10.0))
        .unwrap();
    let d41 = b
        .add_door_between(room21, hall13, Point2::new(45.0, 10.0))
        .unwrap();
    let d42 = b
        .add_door_between(room21, hall13, Point2::new(75.0, 10.0))
        .unwrap();
    let engine = IndoorEngine::new(b.finish().unwrap(), EngineConfig::default()).unwrap();
    Fig1 {
        engine,
        hall13,
        room12,
        room21,
        d13,
        d15,
        d12,
        d41,
        d42,
    }
}

fn q() -> indoor_dq::model::IndoorPoint {
    indoor_dq::model::IndoorPoint::new(Point2::new(5.0, 5.0), 0)
}

fn p() -> indoor_dq::model::IndoorPoint {
    indoor_dq::model::IndoorPoint::new(Point2::new(35.0, 18.0), 0)
}

#[test]
fn q_to_p_goes_through_d13_then_d15() {
    let f = build();
    let (len, doors) = f
        .engine
        .shortest_path(q(), p())
        .unwrap()
        .expect("p reachable");
    assert_eq!(doors, vec![f.d13, f.d15], "the paper's q ⇝(d13,d15) p path");
    assert!(len > 0.0);
    // Euclidean distance is meaningless through the wall: the indoor
    // distance strictly exceeds it.
    assert!(len > q().point.dist(p().point));
}

#[test]
fn room12_cannot_be_entered_through_d12() {
    let f = build();
    let space = f.engine.space();
    // d12 exits room 12 but does not admit entry (the arrow in Fig. 1).
    assert!(space.can_leave(f.d12, f.room12));
    assert!(!space.can_enter(f.d12, f.room12));
    // From inside room 12, d12 gives a direct shortcut down to hall 13.
    let inside = indoor_dq::model::IndoorPoint::new(Point2::new(30.0, 12.0), 0);
    let below = indoor_dq::model::IndoorPoint::new(Point2::new(30.0, 5.0), 0);
    let (_, out_doors) = f.engine.shortest_path(inside, below).unwrap().unwrap();
    assert_eq!(out_doors, vec![f.d12], "exit uses the one-way shortcut");
    // The reverse trip must avoid d12 and go around through d13, d15.
    let (_, in_doors) = f.engine.shortest_path(below, inside).unwrap().unwrap();
    assert_eq!(
        in_doors,
        vec![f.d13, f.d15],
        "entry detours around the one-way door"
    );
}

#[test]
fn closing_d15_seals_room12() {
    let mut f = build();
    f.engine.close_door(f.d15).unwrap();
    // With d15 closed and d12 exit-only, p is unreachable.
    assert!(f.engine.shortest_path(q(), p()).unwrap().is_none());
    // Re-opening restores the original path.
    f.engine.open_door(f.d15).unwrap();
    let (_, doors) = f.engine.shortest_path(q(), p()).unwrap().unwrap();
    assert_eq!(doors, vec![f.d13, f.d15]);
}

#[test]
fn sliding_wall_forces_s_t_reroute() {
    let mut f = build();
    let s = indoor_dq::model::IndoorPoint::new(Point2::new(44.0, 18.0), 0);
    let t = indoor_dq::model::IndoorPoint::new(Point2::new(76.0, 18.0), 0);
    // Banquet style: s and t share room 21, distance is the straight line.
    let before = f.engine.indoor_distance(s, t).unwrap();
    assert!((before - s.point.dist(t.point)).abs() < 1e-9);

    // Mount the sliding wall (meeting style): split at x = 60, no
    // connecting door. s must now leave via d41 and re-enter via d42.
    let halves = f
        .engine
        .split_partition(f.room21, SplitLine::AtX(60.0), None)
        .unwrap();
    let after = f.engine.indoor_distance(s, t).unwrap();
    assert!(
        after > before,
        "recalculated via d41 and d42: {after} vs {before}"
    );
    let (_, doors) = f.engine.shortest_path(s, t).unwrap().unwrap();
    assert_eq!(doors, vec![f.d41, f.d42], "the paper's d41/d42 reroute");

    // Dismounting the wall restores the direct distance.
    f.engine.merge_partitions(halves[0], halves[1]).unwrap();
    let restored = f.engine.indoor_distance(s, t).unwrap();
    assert!((restored - before).abs() < 1e-9);
}

#[test]
fn queries_respect_the_one_way_topology() {
    let mut f = build();
    // An object inside room 12 and a query in hall 13 below it: the
    // expected distance must follow the d13-d15 detour, not the one-way
    // shortcut.
    let o = f
        .engine
        .insert_object_at(Point2::new(30.0, 15.0), 0, 1.0, 8, 11)
        .unwrap();
    let below = indoor_dq::model::IndoorPoint::new(Point2::new(30.0, 5.0), 0);
    let knn = f.engine.knn(below, 1).unwrap();
    assert_eq!(knn.results[0].object, o);
    let detour = knn.results[0].distance;
    // The detour is far longer than the straight-line ~10 m.
    assert!(
        detour > 25.0,
        "one-way door must not shorten the query distance: {detour}"
    );
    let _ = f.hall13;
}
