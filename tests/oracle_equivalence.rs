//! End-to-end equivalence of the optimized pipeline against the
//! brute-force oracle, on generated mall workloads (the paper's own
//! workload family, scaled down for test time).
//!
//! This is the load-bearing correctness test of the repository: it
//! exercises filtering (skeleton bounds), the subgraph restriction, the
//! pruning bounds and the refinement fallbacks together, across seeds,
//! query types, radii, k values and ablations.

use indoor_dq::index::{CompositeIndex, IndexConfig};
use indoor_dq::objects::ObjectId;
use indoor_dq::query::{knn_query, naive_knn, naive_range, range_query, QueryOptions};
use indoor_dq::workloads::{
    generate_building, generate_objects, generate_query_points, BuildingConfig, ObjectConfig,
    QueryPointConfig,
};

struct World {
    building: indoor_dq::workloads::GeneratedBuilding,
    store: indoor_dq::objects::ObjectStore,
    index: CompositeIndex,
    queries: Vec<indoor_dq::model::IndoorPoint>,
}

fn world(seed: u64) -> World {
    let building = generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        one_way_rooms: 1,
        ..BuildingConfig::with_floors(3)
    })
    .unwrap();
    let store = generate_objects(
        &building,
        &ObjectConfig {
            count: 250,
            radius: 10.0,
            instances: 12,
            seed,
        },
    )
    .unwrap();
    let index = CompositeIndex::build(&building.space, &store, IndexConfig::default()).unwrap();
    let queries = generate_query_points(
        &building,
        &QueryPointConfig {
            count: 6,
            seed: seed ^ 0xAB,
        },
    );
    World {
        building,
        store,
        index,
        queries,
    }
}

#[test]
fn irq_matches_oracle_across_seeds_and_radii() {
    for seed in [1u64, 2, 3] {
        let w = world(seed);
        let opts = QueryOptions::for_max_radius(10.0);
        for &q in &w.queries {
            for r in [50.0, 100.0, 150.0] {
                let fast = range_query(&w.building.space, &w.index, &w.store, q, r, &opts).unwrap();
                let slow =
                    naive_range(&w.building.space, w.index.doors_graph(), &w.store, q, r).unwrap();
                let fast_ids: Vec<ObjectId> = fast.results.iter().map(|h| h.object).collect();
                let slow_ids: Vec<ObjectId> = slow.iter().map(|x| x.0).collect();
                assert_eq!(fast_ids, slow_ids, "seed={seed} q={q} r={r}");
            }
        }
    }
}

#[test]
fn iknn_matches_oracle_across_seeds_and_k() {
    for seed in [1u64, 2, 3] {
        let w = world(seed);
        let opts = QueryOptions::for_max_radius(10.0);
        for &q in &w.queries {
            for k in [1usize, 10, 40] {
                let fast = knn_query(&w.building.space, &w.index, &w.store, q, k, &opts).unwrap();
                let slow =
                    naive_knn(&w.building.space, w.index.doors_graph(), &w.store, q, k).unwrap();
                assert_eq!(fast.results.len(), slow.len(), "seed={seed} q={q} k={k}");
                for (hit, (oid, od)) in fast.results.iter().zip(&slow) {
                    // Distances must match exactly; ids may permute only
                    // under exact ties.
                    assert!(
                        (hit.distance - od).abs() < 1e-9,
                        "seed={seed} q={q} k={k}: {} vs {od}",
                        hit.distance
                    );
                    if (hit.distance - od).abs() < 1e-12 && hit.object != *oid {
                        continue; // tie permutation
                    }
                    assert_eq!(hit.object, *oid, "seed={seed} q={q} k={k}");
                }
            }
        }
    }
}

#[test]
fn ablations_preserve_answers() {
    let w = world(7);
    let base = QueryOptions::for_max_radius(10.0);
    let variants = [
        base,
        base.without_pruning(),
        base.without_skeleton(),
        base.with_exact_refinement(),
        base.without_pruning().without_skeleton(),
    ];
    for &q in w.queries.iter().take(3) {
        let reference =
            range_query(&w.building.space, &w.index, &w.store, q, 100.0, &base).unwrap();
        let ref_ids: Vec<ObjectId> = reference.results.iter().map(|h| h.object).collect();
        for (i, v) in variants.iter().enumerate() {
            let out = range_query(&w.building.space, &w.index, &w.store, q, 100.0, v).unwrap();
            let ids: Vec<ObjectId> = out.results.iter().map(|h| h.object).collect();
            assert_eq!(ids, ref_ids, "variant {i} diverged at q={q}");
        }
        let knn_ref = knn_query(&w.building.space, &w.index, &w.store, q, 25, &base).unwrap();
        for (i, v) in variants.iter().enumerate() {
            let out = knn_query(&w.building.space, &w.index, &w.store, q, 25, v).unwrap();
            assert_eq!(out.results.len(), knn_ref.results.len(), "variant {i}");
            for (a, b) in out.results.iter().zip(&knn_ref.results) {
                assert!((a.distance - b.distance).abs() < 1e-9, "variant {i}");
            }
        }
    }
}

#[test]
fn filtering_keeps_all_true_results_as_candidates() {
    // Lemma 6's zero-false-negative guarantee, checked directly on the
    // filtering phase output.
    let w = world(11);
    for &q in w.queries.iter().take(3) {
        for r in [50.0, 120.0] {
            let filtered = w.index.range_search(&w.building.space, q, r, true);
            let truth =
                naive_range(&w.building.space, w.index.doors_graph(), &w.store, q, r).unwrap();
            for (oid, _) in truth {
                assert!(
                    filtered.objects.contains(&oid),
                    "true result {oid} missing from filter output at q={q} r={r}"
                );
            }
        }
    }
}

#[test]
fn stats_are_plausible() {
    let w = world(13);
    let opts = QueryOptions::for_max_radius(10.0);
    let q = w.queries[0];
    let out = range_query(&w.building.space, &w.index, &w.store, q, 100.0, &opts).unwrap();
    let s = &out.stats;
    assert_eq!(s.total_objects, 250);
    assert!(s.candidates_after_filter <= s.total_objects);
    assert!(s.refined <= s.candidates_after_filter);
    assert!(s.filtering_ratio() >= 0.0 && s.filtering_ratio() <= 1.0);
    assert!(s.pruning_ratio() >= s.filtering_ratio() - 1e-9);
    assert!(s.total_ms() > 0.0);
    assert!(s.partitions_retrieved > 0);
}
