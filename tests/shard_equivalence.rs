//! Shard-equivalence suite for the floor-sharded MVCC state.
//!
//! The engine's state is sharded by floor (per-floor `StoreShard`s and
//! o-table `FloorShard`s, `Arc`-per-bucket, `Arc`-per-geometry-tier), and
//! a commit deep-copies only what it touches. This suite pins down both
//! halves of that contract, reusing `tests/concurrency_stress.rs`'s
//! replay harness (bit-exact per-query digests, epoch-by-epoch replay):
//!
//! 1. **Equivalence** — answers from the sharded incremental engine are
//!    bit-identical, at every epoch, to (a) a fresh engine replaying the
//!    same batches and (b) an engine **rebuilt from scratch** over that
//!    epoch's space and population, across multi-floor object batches and
//!    topology batches (door churn, split/merge, and partition insertion
//!    that *resizes the shard set*);
//! 2. **Sharing** — a commit structurally shares every floor shard it did
//!    not touch (verified by `Arc` pointer identity through
//!    `ObjectStore::same_shard` / `ObjectLayer::same_shard` /
//!    `CompositeIndex::shares_geometry_with`), and `UpdateStats`
//!    reports the touched-shard count.

use indoor_dq::geom::Polygon;
use indoor_dq::model::{Floor, PartitionSpec, SplitLine};
use indoor_dq::prelude::*;
use indoor_dq::workloads::{
    generate_building, generate_objects, generate_query_points, generate_update_stream,
    GeneratedBuilding, QueryPointConfig, UpdateStreamConfig,
};
use proptest::prelude::*;

const FLOORS: u16 = 3;

fn building() -> GeneratedBuilding {
    generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(FLOORS)
    })
    .unwrap()
}

fn engine(b: &GeneratedBuilding, seed: u64) -> IndoorEngine {
    let store = generate_objects(
        b,
        &ObjectConfig {
            count: 60,
            radius: 6.0,
            instances: 6,
            seed,
        },
    )
    .unwrap();
    IndoorEngine::with_objects(b.space.clone(), store, EngineConfig::default()).unwrap()
}

/// Fixed options for every comparison: the engines under test differ in
/// *history* (a rebuilt engine never saw removed objects), so the
/// history-dependent effective defaults are pinned to an explicit value.
fn options() -> QueryOptions {
    QueryOptions::for_max_radius(10.0)
}

fn query_batch(points: &[IndoorPoint]) -> Vec<Query> {
    let mut queries = Vec::new();
    for &q in points {
        queries.push(Query::Range { q, r: 60.0 });
        queries.push(Query::Range { q, r: 120.0 });
        queries.push(Query::Knn { q, k: 5 });
    }
    queries.push(Query::Distance {
        q: points[0],
        p: points[1],
    });
    queries
}

/// A bit-exact digest of one outcome (ids + distance bits) — the same
/// digest the concurrency stress suite replays against.
fn digest(out: &Outcome) -> Vec<(u64, u64)> {
    match out {
        Outcome::Range(r) => r
            .results
            .iter()
            .map(|h| (h.object.0, h.distance.to_bits()))
            .collect(),
        Outcome::Knn(k) => k
            .results
            .iter()
            .map(|h| (h.object.0, h.distance.to_bits()))
            .collect(),
        Outcome::Distance(d) => vec![(u64::MAX, d.distance.to_bits())],
        Outcome::Path(p) => match &p.path {
            None => vec![],
            Some((len, doors)) => std::iter::once((u64::MAX, len.to_bits()))
                .chain(doors.iter().map(|d| (d.0 as u64, 0)))
                .collect(),
        },
    }
}

fn digests(e: &IndoorEngine, queries: &[Query]) -> Vec<Vec<(u64, u64)>> {
    e.snapshot_with(options())
        .execute_batch(queries)
        .unwrap()
        .iter()
        .map(digest)
        .collect()
}

/// An engine **rebuilt from scratch** over another engine's current space
/// and population — fresh bulk-loaded index, fresh shards, no history.
fn rebuilt(e: &IndoorEngine) -> IndoorEngine {
    IndoorEngine::with_objects(
        e.space().clone(),
        e.store().clone(),
        EngineConfig::default(),
    )
    .unwrap()
}

/// The core property: advance an engine batch by batch, and at every
/// epoch demand bit-identical answers from (a) a from-scratch **rebuilt**
/// engine over that epoch's world and (b) a fresh engine **replaying**
/// the prefix of batches. Returns the incremental engine for follow-ups.
fn assert_epochwise_equivalence(
    b: &GeneratedBuilding,
    seed: u64,
    batches: &[Vec<Update>],
    queries: &[Query],
) -> IndoorEngine {
    let mut incremental = engine(b, seed);
    let mut trajectory = vec![digests(&incremental, queries)];
    for batch in batches {
        incremental.apply_batch(batch).unwrap();
        incremental.validate().unwrap();
        let seen = digests(&incremental, queries);
        assert_eq!(
            seen,
            digests(&rebuilt(&incremental), queries),
            "sharded engine diverges from a from-scratch rebuild at epoch {}",
            incremental.epoch()
        );
        trajectory.push(seen);
    }
    // Replay on a second fresh engine: every epoch's digests reproduce.
    let mut replay = engine(b, seed);
    assert_eq!(trajectory[0], digests(&replay, queries), "epoch 0");
    for (k, batch) in batches.iter().enumerate() {
        replay.apply_batch(batch).unwrap();
        assert_eq!(
            trajectory[k + 1],
            digests(&replay, queries),
            "replay diverges at epoch {}",
            k + 1
        );
    }
    incremental
}

/// Mixed multi-floor batches (the generator scatters positions across all
/// floors, so batches routinely touch several shards) with door churn.
fn mixed_batches(
    b: &GeneratedBuilding,
    seed: u64,
    count: usize,
    per_batch: usize,
) -> Vec<Vec<Update>> {
    let mut scratch = engine(b, seed);
    let mut out = Vec::new();
    for k in 0..count {
        let stream = generate_update_stream(
            b,
            scratch.store(),
            &UpdateStreamConfig {
                count: per_batch,
                seed: seed ^ 0xD1CE ^ (k as u64) << 8,
                ..Default::default()
            },
        );
        scratch.apply_batch(&stream).unwrap();
        out.push(stream);
    }
    out
}

#[test]
fn sharded_commits_match_rebuilt_engines_at_every_epoch() {
    let b = building();
    let batches = mixed_batches(&b, 5, 6, 30);
    let points = generate_query_points(&b, &QueryPointConfig { count: 3, seed: 77 });
    let queries = query_batch(&points);
    assert_epochwise_equivalence(&b, 5, &batches, &queries);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The same property over randomized populations and streams.
    #[test]
    fn randomized_streams_stay_equivalent(seed in 1u64..1000) {
        let b = building();
        let batches = mixed_batches(&b, seed, 4, 20);
        let points = generate_query_points(&b, &QueryPointConfig { count: 2, seed });
        let queries = query_batch(&points);
        assert_epochwise_equivalence(&b, seed, &batches, &queries);
    }
}

/// Topology updates that change the partition population — including an
/// insertion on a **brand-new floor**, which grows the shard set — keep
/// the sharded engine equivalent to a rebuilt one.
#[test]
fn topology_ops_that_resize_the_shard_set_stay_equivalent() {
    let b = building();
    let points = generate_query_points(&b, &QueryPointConfig { count: 2, seed: 3 });

    // Split a floor-0 room through its centre, then merge it back — the
    // rebucketing path — and churn a door for good measure.
    let room = b.rooms_by_floor[0][0];
    let center = b.space.partition(room).unwrap().bbox.center();
    let (cx, cy) = (center.x, center.y);
    let door = b.space.doors().next().unwrap().id;
    let split_batch = vec![
        Update::SplitPartition {
            partition: room,
            line: SplitLine::AtX(cx),
            connecting_door: Some(Point2::new(cx, cy)),
        },
        Update::CloseDoor(door),
        Update::OpenDoor(door),
    ];

    // A penthouse on a floor no shard exists for yet (isolated is fine —
    // reachability is a query property, not a topology invariant), plus
    // an object on it in the *same* batch.
    let new_floor = FLOORS;
    let spec = PartitionSpec {
        kind: PartitionKind::Room,
        name: Some("penthouse".into()),
        floor: new_floor,
        footprint: Polygon::from_rect(Rect2::from_bounds(20.0, 20.0, 60.0, 60.0)),
        doors: vec![],
    };
    let penthouse_batch = vec![
        Update::InsertPartition(spec),
        Update::InsertObjectAt {
            center: Point2::new(40.0, 40.0),
            floor: new_floor,
            radius: 2.0,
            instances: 6,
            seed: 99,
        },
    ];

    let mut queries = query_batch(&points);
    let up = IndoorPoint::new(Point2::new(40.0, 40.0), new_floor);
    let mut e = engine(&b, 11);
    let shards_before = e.store().shard_count();
    assert_eq!(shards_before, FLOORS as usize, "one shard per built floor");

    for batch in [split_batch, penthouse_batch] {
        let report = e.apply_batch(&batch).unwrap();
        assert!(report.stats.checkpointed, "topology batches checkpoint");
        e.validate().unwrap();
        assert_eq!(
            digests(&e, &queries),
            digests(&rebuilt(&e), &queries),
            "topology batch diverges from a rebuild"
        );
    }

    // The shard set grew, and the new floor answers queries.
    assert_eq!(e.store().shard_count(), new_floor as usize + 1);
    assert_eq!(
        e.index().object_layer().shard_count(),
        new_floor as usize + 1
    );
    queries.push(Query::Range { q: up, r: 10.0 });
    let out = e
        .snapshot_with(options())
        .execute(&Query::Range { q: up, r: 10.0 })
        .unwrap();
    assert_eq!(out.as_range().unwrap().results.len(), 1, "penthouse object");
    assert_eq!(
        digests(&e, &queries),
        digests(&rebuilt(&e), &queries),
        "grown shard set still equivalent"
    );
}

/// The sharing half of the contract: a commit deep-copies exactly the
/// floor shards its updates land in; everything else — other floors,
/// untouched buckets, the whole geometry — is pointer-identical across
/// versions. (This is what turned the PR 4 whole-state copy-on-write tax
/// into O(touched).)
#[test]
fn commits_copy_only_the_shards_they_touch() {
    let b = building();
    let mut e = engine(&b, 21);
    let on_floor = |e: &IndoorEngine, f: Floor| -> ObjectId {
        e.store()
            .shard(f)
            .unwrap()
            .iter()
            .map(|o| o.id)
            .min()
            .expect("every floor is populated")
    };

    // One insert on floor 1: floors 0 and 2 stay structurally shared.
    let before = e.snapshot();
    let report = e
        .apply_batch(&[Update::InsertObjectAt {
            center: Point2::new(40.0, 40.0),
            floor: 1,
            radius: 2.0,
            instances: 4,
            seed: 7,
        }])
        .unwrap();
    let after = e.snapshot();
    assert_eq!(report.stats.shards_touched, 1);
    assert!(!report.stats.checkpointed);
    for f in 0..FLOORS {
        let (same_store, same_layer) = (
            before.store().same_shard(after.store(), f),
            before
                .index()
                .object_layer()
                .same_shard(after.index().object_layer(), f),
        );
        assert_eq!(same_store, f != 1, "store shard {f}");
        assert_eq!(same_layer, f != 1, "o-table shard {f}");
    }
    assert!(
        before.index().shares_geometry_with(after.index()),
        "object commits never copy the geometry tiers"
    );

    // A cross-floor move touches exactly its two shards.
    let mover = on_floor(&e, 0);
    let before = e.snapshot();
    let report = e
        .apply_batch(&[Update::MoveObject {
            id: mover,
            center: Point2::new(40.0, 40.0),
            floor: 2,
            seed: 9,
        }])
        .unwrap();
    let after = e.snapshot();
    assert_eq!(report.stats.shards_touched, 2);
    assert!(before.store().same_shard(after.store(), 1));
    assert!(!before.store().same_shard(after.store(), 0));
    assert!(!before.store().same_shard(after.store(), 2));
    assert!(before.index().shares_geometry_with(after.index()));

    // A topology commit is the documented degradation: the geometry tiers
    // are copied, but floors whose objects it never re-bucketed are still
    // shared.
    let door = e.space().doors().next().unwrap().id;
    let before = e.snapshot();
    let report = e.apply_batch(&[Update::CloseDoor(door)]).unwrap();
    let after = e.snapshot();
    assert!(report.stats.checkpointed);
    assert_eq!(report.stats.shards_touched, 0, "no object op in the batch");
    assert!(
        !before.index().shares_geometry_with(after.index()),
        "topology commits copy the geometry"
    );
    for f in 0..FLOORS {
        assert!(
            before.store().same_shard(after.store(), f),
            "door churn leaves every store shard shared"
        );
    }

    // Pinned snapshots keep answering their own version bit-identically
    // while the writer moves on (the MVCC contract the sharding must not
    // bend): pin the post-close world, commit more, re-ask.
    let q = IndoorPoint::new(Point2::new(40.0, 40.0), 2);
    let pinned = digest(&after.execute(&Query::Range { q, r: 80.0 }).unwrap());
    e.apply_batch(&[
        Update::MoveObject {
            id: mover,
            center: Point2::new(40.0, 40.0),
            floor: 0,
            seed: 13,
        },
        Update::RemoveObject(on_floor(&e, 1)),
    ])
    .unwrap();
    assert_eq!(
        pinned,
        digest(&after.execute(&Query::Range { q, r: 80.0 }).unwrap()),
        "pinned snapshot drifted under later shard commits"
    );
}
