//! Deterministic interleaving tests for the sequencer's conflict window.
//!
//! The dangerous interval in the parallel write path is between a batch's
//! **stage** (validated against the version it read) and its **sequencing**
//! (ordered against whatever committed meanwhile). `WriteHandle`'s
//! test-support `apply_batch_gated` hook parks a batch exactly in that
//! window, so each test here pins one adversarial schedule — the
//! hand-rolled equivalent of a model-checked interleaving — and asserts
//! the sequencer's answer matches a serial execution in commit order.

use indoor_dq::model::Floor;
use indoor_dq::objects::ObjectError;
use indoor_dq::prelude::*;
use indoor_dq::workloads::{generate_building, generate_objects, GeneratedBuilding};
use std::sync::mpsc;

fn building() -> GeneratedBuilding {
    generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(3)
    })
    .unwrap()
}

fn engine(b: &GeneratedBuilding, seed: u64) -> IndoorEngine {
    let store = generate_objects(
        b,
        &ObjectConfig {
            count: 60,
            radius: 6.0,
            instances: 6,
            seed,
        },
    )
    .unwrap();
    IndoorEngine::with_objects(b.space.clone(), store, EngineConfig::default()).unwrap()
}

fn room_center(b: &GeneratedBuilding, floor: Floor, i: usize) -> Point2 {
    let rooms = &b.rooms_by_floor[floor as usize];
    b.space
        .partition(rooms[i % rooms.len()])
        .unwrap()
        .bbox
        .center()
}

fn floor_ids(e: &IndoorEngine, floor: Floor) -> Vec<ObjectId> {
    let mut ids: Vec<ObjectId> = e
        .store()
        .shard(floor)
        .unwrap()
        .iter()
        .map(|o| o.id)
        .collect();
    ids.sort_unstable();
    ids
}

fn assert_same_objects(a: &IndoorEngine, b: &IndoorEngine) {
    assert_eq!(a.store().ids_sorted(), b.store().ids_sorted());
    for id in a.store().ids_sorted() {
        let (x, y) = (a.store().get(id).unwrap(), b.store().get(id).unwrap());
        assert_eq!(x.region.center, y.region.center, "object {id}");
        assert_eq!(x.floor, y.floor, "object {id}");
        assert_eq!(x.len(), y.len(), "object {id}");
    }
}

/// Stages `batch` on a separate thread, parks it in the stage/sequence
/// window, runs `interfere` on this thread while it is parked, then lets
/// the batch proceed into the sequencer and returns its result.
fn stage_then(
    writer: WriteHandle,
    batch: Vec<Update>,
    interfere: impl FnOnce(),
) -> Result<UpdateReport, EngineError> {
    let (staged_tx, staged_rx) = mpsc::channel();
    let (go_tx, go_rx) = mpsc::channel::<()>();
    let parked = std::thread::spawn(move || {
        writer.apply_batch_gated(&batch, move || {
            staged_tx.send(()).unwrap();
            go_rx.recv().unwrap();
        })
    });
    staged_rx.recv().unwrap();
    interfere();
    go_tx.send(()).unwrap();
    parked.join().unwrap()
}

/// Stages every batch in its own thread, releases none until all are
/// parked in the conflict window, then lets them all race to sequence.
fn race_all(
    writers: Vec<WriteHandle>,
    batches: Vec<Vec<Update>>,
) -> Vec<Result<UpdateReport, EngineError>> {
    let (staged_tx, staged_rx) = mpsc::channel();
    let mut gates = Vec::new();
    let threads: Vec<_> = writers
        .into_iter()
        .zip(batches)
        .map(|(writer, batch)| {
            let staged_tx = staged_tx.clone();
            let (go_tx, go_rx) = mpsc::channel::<()>();
            gates.push(go_tx);
            std::thread::spawn(move || {
                writer.apply_batch_gated(&batch, move || {
                    staged_tx.send(()).unwrap();
                    go_rx.recv().unwrap();
                })
            })
        })
        .collect();
    for _ in 0..threads.len() {
        staged_rx.recv().unwrap();
    }
    for gate in gates {
        gate.send(()).unwrap();
    }
    threads.into_iter().map(|t| t.join().unwrap()).collect()
}

/// A commit on the same floor lands inside the window: the parked batch
/// must detect the floor-footprint conflict, re-stage against the new
/// state, and still end bit-equal to the serial schedule B-then-A.
#[test]
fn same_floor_commit_in_window_forces_restage() {
    let b = building();
    let mut e = engine(&b, 31);
    let ids = floor_ids(&e, 0);
    let (x, y) = (ids[0], ids[1]);
    let batch_a = vec![Update::MoveObject {
        id: x,
        center: room_center(&b, 0, 1),
        floor: 0,
        seed: 71,
    }];
    let batch_b = vec![Update::MoveObject {
        id: y,
        center: room_center(&b, 0, 2),
        floor: 0,
        seed: 72,
    }];

    let writer_b = e.writer();
    let report = stage_then(e.writer(), batch_a.clone(), || {
        writer_b.apply_batch(&batch_b).unwrap();
    })
    .unwrap();
    assert!(
        report.stats.restaged,
        "a same-floor commit inside the window must force a re-stage"
    );
    e.refresh();
    assert_eq!(e.epoch(), 2);

    let mut serial = engine(&b, 31);
    serial.apply_batch(&batch_b).unwrap();
    serial.apply_batch(&batch_a).unwrap();
    assert_same_objects(&e, &serial);
    e.validate().unwrap();
}

/// Two writers race the same external id onto *different* floors, both
/// staging before either sequences (so both stage-time checks pass).
/// Exactly one may win; the other must surface `DuplicateObject`, not
/// silently clobber or double-insert.
#[test]
fn duplicate_external_id_race_has_one_winner() {
    let b = building();
    let mut e = engine(&b, 32);
    let id = ObjectId(5_000);
    let batches: Vec<Vec<Update>> = (0..2)
        .map(|f| {
            vec![Update::InsertObject(Box::new(
                UncertainObject::point_object(
                    id,
                    IndoorPoint::new(room_center(&b, f as Floor, 0), f as Floor),
                ),
            ))]
        })
        .collect();
    let results = race_all(vec![e.writer(), e.writer()], batches);

    let wins = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(wins, 1, "exactly one insert of a raced id may commit");
    let err = results.iter().find(|r| r.is_err()).unwrap().as_ref();
    assert!(
        matches!(
            err.unwrap_err(),
            EngineError::Object(ObjectError::DuplicateObject(dup)) if *dup == id
        ),
        "the loser sees the duplicate it raced against"
    );
    e.refresh();
    assert_eq!(e.epoch(), 1, "one commit, one epoch");
    assert!(e.store().get(id).is_ok());
    e.validate().unwrap();
}

/// Two allocating inserts race: both stage against the same watermark and
/// would mint the same id. The sequencer must serialize the allocation —
/// the loser re-stages and mints the next id, never a duplicate.
#[test]
fn allocator_race_mints_distinct_ids() {
    let b = building();
    let mut e = engine(&b, 33);
    let watermark = e.store().id_watermark();
    let batches: Vec<Vec<Update>> = (0..2)
        .map(|f| {
            vec![Update::InsertObjectAt {
                center: room_center(&b, f as Floor, 1),
                floor: f as Floor,
                radius: 2.0,
                instances: 4,
                seed: 90 + f as u64,
            }]
        })
        .collect();
    let reports: Vec<UpdateReport> = race_all(vec![e.writer(), e.writer()], batches)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    let mut minted: Vec<u64> = reports
        .iter()
        .map(|r| match r.outcomes[0] {
            UpdateOutcome::ObjectInserted(id) => id.0,
            ref other => panic!("unexpected outcome {other:?}"),
        })
        .collect();
    minted.sort_unstable();
    assert_eq!(
        minted,
        vec![watermark, watermark + 1],
        "raced allocations mint consecutive distinct ids"
    );
    assert_eq!(
        reports.iter().filter(|r| r.stats.restaged).count(),
        1,
        "exactly one side loses the allocation race and re-stages"
    );
    e.refresh();
    assert!(e.store().get(ObjectId(watermark)).is_ok());
    assert!(e.store().get(ObjectId(watermark + 1)).is_ok());
    e.validate().unwrap();
}

/// Disjoint floor footprints staged concurrently never conflict: both
/// batches keep the fast path (prepared ops applied as staged) whichever
/// order the sequencer picks.
#[test]
fn disjoint_floors_race_keeps_the_fast_path() {
    let b = building();
    let mut e = engine(&b, 34);
    let batches: Vec<Vec<Update>> = (0..2)
        .map(|f| {
            vec![Update::MoveObject {
                id: floor_ids(&e, f as Floor)[0],
                center: room_center(&b, f as Floor, 2),
                floor: f as Floor,
                seed: 50 + f as u64,
            }]
        })
        .collect();
    let reports: Vec<UpdateReport> = race_all(vec![e.writer(), e.writer()], batches)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    for report in &reports {
        assert!(
            !report.stats.restaged,
            "disjoint footprints must not re-stage"
        );
    }
    e.refresh();
    e.validate().unwrap();
}

/// A topology change (door closed) commits inside a position batch's
/// window. Topology conflicts with everything: the parked batch re-stages
/// against the post-topology state and the result equals the serial
/// schedule topology-then-move.
#[test]
fn topology_commit_in_window_forces_restage() {
    let b = building();
    let mut e = engine(&b, 35);
    let door = e.space().doors().next().unwrap().id;
    let mover = floor_ids(&e, 0)[0];
    let batch_a = vec![Update::MoveObject {
        id: mover,
        center: room_center(&b, 0, 1),
        floor: 0,
        seed: 77,
    }];

    let writer_b = e.writer();
    let report = stage_then(e.writer(), batch_a.clone(), || {
        writer_b.apply_batch(&[Update::CloseDoor(door)]).unwrap();
    })
    .unwrap();
    assert!(
        report.stats.restaged,
        "a topology commit invalidates every staged batch"
    );
    e.refresh();

    let mut serial = engine(&b, 35);
    serial.apply_batch(&[Update::CloseDoor(door)]).unwrap();
    serial.apply_batch(&batch_a).unwrap();
    assert_same_objects(&e, &serial);
    assert_eq!(
        e.space().door(door).unwrap().open,
        serial.space().door(door).unwrap().open
    );
    e.validate().unwrap();
}
