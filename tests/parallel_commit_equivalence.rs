//! Linearizability oracle for the parallel write path.
//!
//! N writer threads apply update batches concurrently through cloned
//! `WriteHandle`s. The sequencer promises that the committed history is
//! **exactly** a serial execution of the batches in commit order —
//! `(epoch, offset_in_epoch)` — so the oracle replays every batch, in
//! that order, on a fresh single-threaded engine and demands:
//!
//! 1. **bit-exact outcomes** — every batch's per-update outcomes (object
//!    ids included, so allocator races are covered) equal the serial
//!    replay's;
//! 2. **bit-exact final state** — object populations match id-for-id and
//!    instance-for-instance, and a mixed query battery returns
//!    bit-identical digests;
//! 3. **structural sharing** — parallel staging still copies only the
//!    floor shards a commit touches (`Arc` pointer identity on the
//!    untouched ones);
//! 4. **group commit** — concurrent small applies coalesce into one
//!    epoch whose merged subscription report carries every batch's
//!    outcomes exactly once.

use indoor_dq::model::Floor;
use indoor_dq::prelude::*;
use indoor_dq::workloads::{generate_building, generate_objects, GeneratedBuilding};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Barrier;
use std::time::Duration;

const FLOORS: u16 = 3;
const WRITERS: usize = 3;
const ROUNDS: usize = 3;

fn building() -> GeneratedBuilding {
    generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(FLOORS)
    })
    .unwrap()
}

fn engine(b: &GeneratedBuilding, seed: u64) -> IndoorEngine {
    let store = generate_objects(
        b,
        &ObjectConfig {
            count: 60,
            radius: 6.0,
            instances: 6,
            seed,
        },
    )
    .unwrap();
    IndoorEngine::with_objects(b.space.clone(), store, EngineConfig::default()).unwrap()
}

/// Fixed options for every digest comparison (effective defaults are
/// history-dependent; the engines under comparison share history, but
/// pinning removes the question entirely).
fn options() -> QueryOptions {
    QueryOptions::for_max_radius(10.0)
}

fn room_center(b: &GeneratedBuilding, floor: Floor, i: usize) -> Point2 {
    let rooms = &b.rooms_by_floor[floor as usize];
    b.space
        .partition(rooms[i % rooms.len()])
        .unwrap()
        .bbox
        .center()
}

fn digests(e: &IndoorEngine, b: &GeneratedBuilding) -> Vec<Vec<(u64, u64)>> {
    let points = [
        IndoorPoint::new(room_center(b, 0, 0), 0),
        IndoorPoint::new(room_center(b, 1, 1), 1),
        IndoorPoint::new(room_center(b, 2, 2), 2),
    ];
    let mut queries = Vec::new();
    for &q in &points {
        queries.push(Query::Range { q, r: 60.0 });
        queries.push(Query::Range { q, r: 120.0 });
        queries.push(Query::Knn { q, k: 5 });
    }
    e.snapshot_with(options())
        .execute_batch(&queries)
        .unwrap()
        .iter()
        .map(|out| match out {
            Outcome::Range(r) => r
                .results
                .iter()
                .map(|h| (h.object.0, h.distance.to_bits()))
                .collect(),
            Outcome::Knn(k) => k
                .results
                .iter()
                .map(|h| (h.object.0, h.distance.to_bits()))
                .collect(),
            _ => unreachable!("battery is ranges and knn"),
        })
        .collect()
}

/// One writer's committed batches, each paired with its receipt.
type Committed = Vec<(Vec<Update>, UpdateReport)>;

/// Sorts all writers' committed batches into the sequencer's total order.
fn commit_order(per_writer: Vec<Committed>) -> Committed {
    let mut all: Committed = per_writer.into_iter().flatten().collect();
    all.sort_by_key(|(_, r)| (r.epoch, r.offset_in_epoch));
    all
}

/// Group-commit bookkeeping must be self-consistent: epochs contiguous
/// from 1, offsets contiguous from 0 within each epoch, and every member
/// of a group naming the group's size.
fn assert_group_metadata(ordered: &Committed, final_epoch: u64) {
    let mut groups: BTreeMap<u64, Vec<&UpdateReport>> = BTreeMap::new();
    for (_, report) in ordered {
        groups.entry(report.epoch).or_default().push(report);
    }
    assert_eq!(
        groups.keys().copied().collect::<Vec<_>>(),
        (1..=final_epoch).collect::<Vec<_>>(),
        "every epoch is produced by exactly one commit group"
    );
    for (epoch, members) in &groups {
        for (offset, report) in members.iter().enumerate() {
            assert_eq!(
                report.offset_in_epoch, offset,
                "offsets contiguous at {epoch}"
            );
            assert_eq!(
                report.stats.group_batches,
                members.len(),
                "group size recorded at {epoch}"
            );
        }
    }
}

/// The oracle: replay the committed batches serially, in commit order, on
/// a fresh engine; every batch's outcomes must be bit-identical to what
/// the concurrent run reported.
fn replay_serially(b: &GeneratedBuilding, seed: u64, ordered: &Committed) -> IndoorEngine {
    let mut replay = engine(b, seed);
    for (k, (updates, report)) in ordered.iter().enumerate() {
        let serial = replay.apply_batch(updates).unwrap();
        assert_eq!(
            serial.outcomes, report.outcomes,
            "batch {k} (epoch {}, offset {}) diverges from its serial replay",
            report.epoch, report.offset_in_epoch
        );
    }
    replay
}

fn assert_states_identical(
    concurrent: &IndoorEngine,
    replay: &IndoorEngine,
    b: &GeneratedBuilding,
) {
    assert_eq!(concurrent.store().ids_sorted(), replay.store().ids_sorted());
    for id in concurrent.store().ids_sorted() {
        let (c, r) = (
            concurrent.store().get(id).unwrap(),
            replay.store().get(id).unwrap(),
        );
        assert_eq!(c.region.center, r.region.center, "object {id}");
        assert_eq!(c.floor, r.floor, "object {id}");
        assert_eq!(c.len(), r.len(), "object {id}");
    }
    assert_eq!(
        digests(concurrent, b),
        digests(replay, b),
        "query digests diverge from the serial replay"
    );
}

/// Runs `WRITERS` concurrent writer threads, each committing the batches
/// `make_batch(writer, round, &engine_before_the_run)` produces, and
/// returns the commit-ordered receipts plus the final epoch.
fn run_writers(
    e: &mut IndoorEngine,
    window: Duration,
    make_batch: impl Fn(usize, usize) -> Vec<Update> + Sync,
) -> (Committed, u64) {
    let per_writer: Vec<Committed> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let writer = e.writer().with_commit_window(window);
                let make_batch = &make_batch;
                scope.spawn(move || {
                    let mut committed = Committed::new();
                    for round in 0..ROUNDS {
                        let updates = make_batch(w, round);
                        let report = writer.apply_batch(&updates).unwrap();
                        committed.push((updates, report));
                    }
                    committed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    e.refresh();
    (commit_order(per_writer), e.epoch())
}

/// Sorted object ids living on one floor of the initial population.
fn floor_ids(e: &IndoorEngine, floor: Floor) -> Vec<ObjectId> {
    let mut ids: Vec<ObjectId> = e
        .store()
        .shard(floor)
        .unwrap()
        .iter()
        .map(|o| o.id)
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn disjoint_floor_writers_commit_without_restaging() {
    let b = building();
    let mut e = engine(&b, 5);
    // Writer w owns floor w: moves its objects between that floor's
    // rooms. Footprints never overlap, so every batch must take the
    // fast path (prepared ops applied as staged, no re-validation).
    let ids: Vec<Vec<ObjectId>> = (0..WRITERS).map(|w| floor_ids(&e, w as Floor)).collect();
    let (ordered, final_epoch) = run_writers(&mut e, Duration::ZERO, |w, round| {
        ids[w]
            .iter()
            .enumerate()
            .map(|(i, &id)| Update::MoveObject {
                id,
                center: room_center(&b, w as Floor, i + round),
                floor: w as Floor,
                seed: (w as u64) << 32 | round as u64,
            })
            .collect()
    });
    assert_eq!(ordered.len(), WRITERS * ROUNDS);
    assert_group_metadata(&ordered, final_epoch);
    for (_, report) in &ordered {
        assert!(
            !report.stats.restaged,
            "disjoint footprints never lose the staging race"
        );
        assert!(!report.stats.checkpointed);
    }
    let replay = replay_serially(&b, 5, &ordered);
    assert_states_identical(&e, &replay, &b);
    e.validate().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The full adversarial mix: writers share floors (floor-footprint
    /// conflicts force re-stages), race the id allocator
    /// (`InsertObjectAt` on every writer), and move objects across
    /// floors — and the commit history must still replay serially,
    /// bit-exactly, outcomes included (which pins the allocator order).
    #[test]
    fn conflicting_writers_stay_serially_replayable(seed in 1u64..1000) {
        let b = building();
        let mut e = engine(&b, seed);
        // Interleaved ownership: writer w gets every WRITERS-th object,
        // so each writer's batch spans several floors.
        let all_ids = e.store().ids_sorted();
        let ids: Vec<Vec<ObjectId>> = (0..WRITERS)
            .map(|w| {
                all_ids
                    .iter()
                    .skip(w)
                    .step_by(WRITERS)
                    .take(6)
                    .copied()
                    .collect()
            })
            .collect();
        let (ordered, final_epoch) = run_writers(&mut e, Duration::ZERO, |w, round| {
            let mut batch: Vec<Update> = ids[w]
                .iter()
                .enumerate()
                .map(|(i, &id)| {
                    let floor = ((id.0 as usize + round) % FLOORS as usize) as Floor;
                    Update::MoveObject {
                        id,
                        center: room_center(&b, floor, i + round + w),
                        floor,
                        seed: seed ^ (w as u64) << 24 ^ round as u64,
                    }
                })
                .collect();
            // Every writer also races the allocator each round.
            batch.push(Update::InsertObjectAt {
                center: room_center(&b, w as Floor, round),
                floor: w as Floor,
                radius: 2.0,
                instances: 4,
                seed: seed ^ 0xA110C ^ (w as u64) << 8 ^ round as u64,
            });
            batch
        });
        prop_assert_eq!(ordered.len(), WRITERS * ROUNDS);
        assert_group_metadata(&ordered, final_epoch);
        let replay = replay_serially(&b, seed, &ordered);
        assert_states_identical(&e, &replay, &b);
        e.validate().unwrap();
    }
}

#[test]
fn parallel_staging_copies_only_touched_shards() {
    let b = building();
    let mut e = engine(&b, 21);
    let before = e.snapshot();
    let movers = [floor_ids(&e, 0)[0], floor_ids(&e, 1)[0]];
    // Two concurrent writers, floors 0 and 1; floor 2 is never touched.
    let barrier = Barrier::new(2);
    std::thread::scope(|scope| {
        let barrier = &barrier;
        for (w, &id) in movers.iter().enumerate() {
            let writer = e.writer();
            let b = &b;
            scope.spawn(move || {
                barrier.wait();
                writer
                    .apply(Update::MoveObject {
                        id,
                        center: room_center(b, w as Floor, 3),
                        floor: w as Floor,
                        seed: 7,
                    })
                    .unwrap();
            });
        }
    });
    e.refresh();
    let after = e.snapshot();
    // Floors 0 and 1 were deep-copied by their commits; floor 2's store
    // shard and o-table shard are pointer-identical across the whole
    // concurrent run, and the geometry tiers were never copied.
    assert!(!before.store().same_shard(after.store(), 0));
    assert!(!before.store().same_shard(after.store(), 1));
    assert!(
        before.store().same_shard(after.store(), 2),
        "floor 2 store shared"
    );
    assert!(
        before
            .index()
            .object_layer()
            .same_shard(after.index().object_layer(), 2),
        "floor 2 o-table shared"
    );
    assert!(
        before.index().shares_geometry_with(after.index()),
        "object commits never copy the geometry tiers"
    );
    e.validate().unwrap();
}

#[test]
fn concurrent_applies_coalesce_into_one_epoch() {
    // Group formation is timing-dependent (a thread descheduled past the
    // commit window misses the group), so the scenario retries until the
    // schedule lands — every attempt still checks the invariants that
    // must hold on ANY schedule, and the full group-commit assertions run
    // on the first attempt whose three applies share one epoch.
    let b = building();
    for attempt in 0..25 {
        let mut e = engine(&b, 9);
        let service = e.service();
        let q = IndoorPoint::new(room_center(&b, 0, 0), 0);
        let mut sub = service.subscribe(Query::Range { q, r: 200.0 }).unwrap();
        let base = e.epoch();
        let movers: Vec<ObjectId> = (0..3).map(|f| floor_ids(&e, f as Floor)[0]).collect();

        // Three writers, one barrier, a generous commit window: whoever
        // leads holds the group open long enough for the other two staged
        // batches to join, so all three normally coalesce into one epoch.
        let barrier = Barrier::new(3);
        let reports: Vec<UpdateReport> = std::thread::scope(|scope| {
            let barrier = &barrier;
            let handles: Vec<_> = movers
                .iter()
                .enumerate()
                .map(|(w, &id)| {
                    let writer = e.writer().with_commit_window(Duration::from_millis(300));
                    let b = &b;
                    scope.spawn(move || {
                        barrier.wait();
                        writer
                            .apply_batch(&[Update::MoveObject {
                                id,
                                center: room_center(b, w as Floor, 1),
                                floor: w as Floor,
                                seed: 11,
                            }])
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        e.refresh();

        // Schedule-independent invariants: per-epoch offsets contiguous,
        // every member names its group's size, own outcomes/footprint kept.
        let mut by_epoch: BTreeMap<u64, Vec<&UpdateReport>> = BTreeMap::new();
        for r in &reports {
            assert_eq!(r.outcomes.len(), 1, "each batch keeps its own outcomes");
            assert_eq!(
                r.stats.shards_touched, 1,
                "each batch reports its own footprint"
            );
            by_epoch.entry(r.epoch).or_default().push(r);
        }
        for members in by_epoch.values_mut() {
            members.sort_by_key(|r| r.offset_in_epoch);
            for (offset, r) in members.iter().enumerate() {
                assert_eq!(r.offset_in_epoch, offset);
                assert_eq!(r.stats.group_batches, members.len());
            }
        }
        // Routed delivery: quiesce the dispatcher past the final commit,
        // then drain. Each routed epoch arrives at most once, in order,
        // carrying its whole group's *merged* report — no double
        // delivery, on any schedule.
        service.quiesce();
        let notes = sub.poll().unwrap();
        let mut last = base;
        for n in &notes {
            assert!(n.epoch > last, "delivered epochs strictly increase");
            assert!(n.epoch <= e.epoch());
            last = n.epoch;
            assert_eq!(n.report.offset_in_epoch, 0);
            assert_eq!(n.report.outcomes.len(), by_epoch[&n.epoch].len());
            assert_eq!(n.report.stats.group_batches, by_epoch[&n.epoch].len());
        }
        assert!(sub.poll().unwrap().is_empty(), "no extra delivery");
        e.validate().unwrap();

        if e.epoch() == base + 1 {
            // The schedule landed: all three applies shared one epoch swap.
            let offsets: Vec<usize> = by_epoch[&(base + 1)]
                .iter()
                .map(|r| r.offset_in_epoch)
                .collect();
            assert_eq!(offsets, vec![0, 1, 2]);
            for r in &reports {
                assert_eq!(r.stats.group_batches, 3);
            }
            // The merged group moved an object on the subscription's own
            // floor, so the one commit is necessarily routed — and its
            // report carries every batch's outcomes exactly once.
            assert_eq!(notes.len(), 1, "the merged group is one delivery");
            assert_eq!(notes[0].report.outcomes.len(), 3);
            return;
        }
        eprintln!(
            "attempt {attempt}: applies split across {} epochs, retrying",
            e.epoch() - base
        );
    }
    panic!("three windowed applies never coalesced into one epoch in 25 attempts");
}
