//! Batch-update semantics (PR 3's write-side contract):
//!
//! 1. **Sequential equivalence** — `apply_batch` leaves the engine in a
//!    state query-equivalent (and object-for-object identical) to applying
//!    the same updates one at a time through `apply`;
//! 2. **Atomicity** — a batch failing mid-way leaves the engine in the
//!    exact observable state it had before the batch (objects, instances,
//!    topology version, epoch, id watermark, query answers);
//! 3. **Monitor absorption** — feeding a committed report to
//!    `RangeMonitor::absorb` matches a from-scratch `refresh`.

use indoor_dq::prelude::*;
use indoor_dq::workloads::{
    generate_building, generate_objects, generate_query_points, generate_update_stream,
    QueryPointConfig,
};

fn world(seed: u64) -> (indoor_dq::workloads::GeneratedBuilding, IndoorEngine) {
    let building = generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(2)
    })
    .unwrap();
    let store = generate_objects(
        &building,
        &ObjectConfig {
            count: 60,
            radius: 6.0,
            instances: 6,
            seed,
        },
    )
    .unwrap();
    let engine =
        IndoorEngine::with_objects(building.space.clone(), store, EngineConfig::default()).unwrap();
    (building, engine)
}

/// One object's exact state: id, centre, radius, floor, instances.
type ObjectDigest = (u64, (f64, f64), f64, u16, Vec<(f64, f64, f64)>);

/// Full observable digest of an engine: every object's exact state plus
/// the space version, epoch and allocator watermark.
#[derive(Debug, PartialEq)]
struct Digest {
    objects: Vec<ObjectDigest>,
    space_version: u64,
    epoch: u64,
    watermark: u64,
    doors_open: Vec<(u32, bool)>,
}

fn digest(engine: &IndoorEngine) -> Digest {
    let objects = engine
        .store()
        .ids_sorted()
        .into_iter()
        .map(|id| {
            let o = engine.store().get(id).unwrap();
            (
                id.0,
                (o.region.center.x, o.region.center.y),
                o.region.radius,
                o.floor,
                o.instances()
                    .iter()
                    .map(|i| (i.position.x, i.position.y, i.weight))
                    .collect(),
            )
        })
        .collect();
    let doors_open = engine.space().doors().map(|d| (d.id.0, d.open)).collect();
    Digest {
        objects,
        space_version: engine.space().version(),
        epoch: engine.epoch(),
        watermark: engine.store().id_watermark(),
        doors_open,
    }
}

fn assert_query_equivalent(a: &IndoorEngine, b: &IndoorEngine, queries: &[IndoorPoint]) {
    for &q in queries {
        if a.space().partition_at(q).is_none() {
            continue;
        }
        let (ra, rb) = (
            a.range_query(q, 80.0).unwrap(),
            b.range_query(q, 80.0).unwrap(),
        );
        let ids = |r: &RangeResult| r.results.iter().map(|h| h.object).collect::<Vec<_>>();
        assert_eq!(ids(&ra), ids(&rb), "range parity at q={q}");
        let (ka, kb) = (a.knn(q, 10).unwrap(), b.knn(q, 10).unwrap());
        assert_eq!(ka.results.len(), kb.results.len(), "knn parity at q={q}");
        for (x, y) in ka.results.iter().zip(&kb.results) {
            assert_eq!(x.object, y.object);
            assert!((x.distance - y.distance).abs() < 1e-9);
        }
    }
}

#[test]
fn apply_batch_is_query_equivalent_to_sequential_apply() {
    for seed in [1u64, 7, 23] {
        let (building, mut seq) = world(seed);
        let (_, mut bat) = world(seed);
        let stream = generate_update_stream(
            &building,
            seq.store(),
            &indoor_dq::workloads::UpdateStreamConfig {
                count: 160,
                seed: seed ^ 0xA5,
                ..Default::default()
            },
        );
        for update in &stream {
            seq.apply(update.clone()).unwrap();
        }
        // Mixed chunk sizes so runs straddle chunk boundaries.
        for chunk in stream.chunks(37) {
            bat.apply_batch(chunk).unwrap();
        }
        seq.validate().unwrap();
        bat.validate().unwrap();
        // Identical objects — ids, regions, every instance, every weight.
        let (da, db) = (digest(&seq), digest(&bat));
        assert_eq!(da.objects, db.objects, "object parity at seed {seed}");
        assert_eq!(da.space_version, db.space_version);
        assert_eq!(da.watermark, db.watermark);
        assert_eq!(da.doors_open, db.doors_open);
        // Identical answers.
        let queries = generate_query_points(&building, &QueryPointConfig { count: 5, seed: 99 });
        assert_query_equivalent(&seq, &bat, &queries);
    }
}

#[test]
fn failed_batch_restores_the_exact_observable_state() {
    for seed in [3u64, 11] {
        let (building, mut engine) = world(seed);
        let queries = generate_query_points(&building, &QueryPointConfig { count: 4, seed: 5 });
        let (_, reference) = world(seed);

        // A realistic prefix (moves + a door event) followed by a failing
        // update; every prefix length must roll back completely.
        let mut stream = generate_update_stream(
            &building,
            engine.store(),
            &indoor_dq::workloads::UpdateStreamConfig {
                count: 30,
                seed: seed ^ 0x1D,
                ..Default::default()
            },
        );
        stream.push(Update::RemoveObject(ObjectId(999_999)));
        let before = digest(&engine);
        assert!(engine.apply_batch(&stream).is_err());
        engine.validate().unwrap();
        assert_eq!(digest(&engine), before, "exact rollback at seed {seed}");
        assert_query_equivalent(&engine, &reference, &queries);

        // Failing mid-way through a pure object batch (no checkpoint
        // path): same contract.
        let mut stream = generate_update_stream(
            &building,
            engine.store(),
            &indoor_dq::workloads::UpdateStreamConfig {
                count: 12,
                door_events: 0.0,
                seed: seed ^ 0x2E,
                ..Default::default()
            },
        );
        stream.insert(
            6,
            Update::MoveObject {
                id: ObjectId(0),
                center: Point2::new(-1e6, -1e6),
                floor: 0,
                seed: 1,
            },
        );
        let before = digest(&engine);
        assert!(engine.apply_batch(&stream).is_err());
        engine.validate().unwrap();
        assert_eq!(
            digest(&engine),
            before,
            "object-only rollback at seed {seed}"
        );
    }
}

#[test]
fn monitor_absorb_matches_from_scratch_refresh() {
    let (building, mut engine) = world(17);
    let queries = generate_query_points(&building, &QueryPointConfig { count: 3, seed: 41 });
    let q = queries[0];
    let mut absorbed = RangeMonitor::new(q, 70.0, engine.query_options()).unwrap();
    absorbed.refresh_on(&engine.snapshot()).unwrap();

    // Several mixed batches (object churn + door events); after each, the
    // absorbed monitor must match a monitor refreshed from scratch.
    for round in 0..4u64 {
        let stream = generate_update_stream(
            &building,
            engine.store(),
            &indoor_dq::workloads::UpdateStreamConfig {
                count: 40,
                seed: round ^ 0xBEE,
                ..Default::default()
            },
        );
        let report = engine.apply_batch(&stream).unwrap();
        let snapshot = engine.snapshot();
        assert_eq!(snapshot.version(), report.epoch);
        let changes = absorbed.absorb(&report, &snapshot).unwrap();
        for (id, change) in &changes {
            match change {
                MonitorChange::Entered => assert!(absorbed.contains(*id)),
                MonitorChange::Left => assert!(!absorbed.contains(*id)),
                MonitorChange::Unchanged => unreachable!("absorb reports changes only"),
            }
        }
        let mut fresh = RangeMonitor::new(q, 70.0, engine.query_options()).unwrap();
        let expect = fresh.refresh_on(&snapshot).unwrap();
        assert_eq!(absorbed.current(), expect, "round {round}");
    }
}

#[test]
fn report_delta_names_exactly_the_net_changes() {
    let (_, mut engine) = world(29);
    let ids = engine.store().ids_sorted();
    let (a, b) = (ids[0], ids[1]);
    let report = engine
        .apply_batch(&[
            Update::MoveObject {
                id: a,
                center: Point2::new(50.0, 50.0),
                floor: 0,
                seed: 1,
            },
            Update::RemoveObject(b),
            Update::InsertObjectAt {
                center: Point2::new(80.0, 50.0),
                floor: 0,
                radius: 2.0,
                instances: 4,
                seed: 2,
            },
        ])
        .unwrap();
    assert_eq!(report.delta.moved, vec![a]);
    assert_eq!(report.delta.removed, vec![b]);
    assert_eq!(report.delta.inserted.len(), 1);
    assert!(!report.delta.topology_changed);
    assert_eq!(report.outcomes.len(), 3);
    assert_eq!(report.stats.position_updates, 3);
    assert!(report.stats.footprint_searches <= 2, "writes share groups");
    assert!(!report.stats.checkpointed);
}
