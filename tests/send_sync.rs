//! Compile-time thread-safety assertions for the concurrent service API.
//!
//! The MVCC redesign's contract is that these types cross thread
//! boundaries: snapshots and services are cloned into reader threads,
//! outcomes and reports are sent back over channels, subscriptions live
//! on consumer threads. A field change that silently loses `Send`/`Sync`
//! (an `Rc`, a `RefCell`, a raw pointer) must fail *compilation*, not a
//! stress test — so these are `const` assertions in the style of
//! `static_assertions`, with no external dependency.

use indoor_dq::prelude::*;

const fn assert_send<T: Send>() {}
const fn assert_sync<T: Sync>() {}
const fn assert_static<T: 'static>() {}
const fn assert_clone<T: Clone>() {}

// Evaluated at compile time: a regression here is a build error.
const _: () = {
    // The owned session handle: cloned into every reader thread.
    assert_send::<Snapshot>();
    assert_sync::<Snapshot>();
    assert_static::<Snapshot>();
    assert_clone::<Snapshot>();
    // Query results travel back from worker threads.
    assert_send::<Outcome>();
    assert_sync::<Outcome>();
    assert_static::<Outcome>();
    // Commit receipts are broadcast to subscriptions on other threads.
    assert_send::<UpdateReport>();
    assert_sync::<UpdateReport>();
    assert_static::<UpdateReport>();
    assert_clone::<UpdateReport>();
    // Subscriptions are consumed on their own threads.
    assert_send::<Subscription>();
    assert_sync::<Subscription>();
    assert_static::<Subscription>();
    assert_send::<Notification>();
    assert_sync::<Notification>();
    // The service handle itself, and the writer (movable into a thread).
    assert_send::<IndoorService>();
    assert_sync::<IndoorService>();
    assert_clone::<IndoorService>();
    assert_send::<IndoorEngine>();
    assert_sync::<IndoorEngine>();
    // Write handles are cloned into concurrent writer threads; they stage
    // batches on their own threads and meet only at the sequencer.
    assert_send::<WriteHandle>();
    assert_sync::<WriteHandle>();
    assert_static::<WriteHandle>();
    assert_clone::<WriteHandle>();
    // The state a snapshot pins.
    assert_send::<indoor_dq::core::EngineState>();
    assert_sync::<indoor_dq::core::EngineState>();
};

/// The `const` block above is the real test; this keeps the harness from
/// reporting an empty suite and exercises a cross-thread round trip.
#[test]
fn snapshot_and_outcome_cross_threads() {
    let mut b = FloorPlanBuilder::new(4.0);
    let a = b
        .add_room(0, indoor_dq::geom::Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
        .unwrap();
    let c = b
        .add_room(
            0,
            indoor_dq::geom::Rect2::from_bounds(10.0, 0.0, 20.0, 10.0),
        )
        .unwrap();
    b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
    let mut engine = IndoorEngine::new(b.finish().unwrap(), EngineConfig::default()).unwrap();
    let id = engine
        .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 7)
        .unwrap();

    let snapshot = engine.snapshot();
    let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
    let outcome: Outcome = std::thread::spawn(move || {
        // The snapshot moved into this thread; the outcome moves back.
        snapshot.execute(&Query::Range { q, r: 30.0 }).unwrap()
    })
    .join()
    .unwrap();
    assert_eq!(outcome.as_range().unwrap().results[0].object, id);
}
