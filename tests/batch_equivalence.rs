//! Batch-vs-single equivalence of the session API: `execute_batch` must
//! return bit-identical results (objects *and* expected distances) to
//! issuing the same queries one at a time — the batch path may share
//! evaluation contexts, never change answers. Covers mixed floors,
//! shared query points and all four query kinds, on generated mall
//! workloads (the paper's §V-A family, scaled down).

use indoor_dq::index::{CompositeIndex, IndexConfig};
use indoor_dq::model::IndoorPoint;
use indoor_dq::prelude::*;
use indoor_dq::query::{execute, execute_batch};
use indoor_dq::workloads::{
    generate_building, generate_objects, generate_query_points, GeneratedBuilding,
};
use proptest::prelude::*;

struct World {
    building: GeneratedBuilding,
    space: std::sync::Arc<indoor_dq::model::IndoorSpace>,
    store: std::sync::Arc<indoor_dq::objects::ObjectStore>,
    index: std::sync::Arc<CompositeIndex>,
    points: Vec<IndoorPoint>,
}

impl World {
    /// An owned snapshot over the world's layers (the session entry point
    /// the engine-less harness uses) — three pointer clones per call.
    fn snapshot(&self, options: QueryOptions) -> Snapshot {
        Snapshot::from_parts(
            std::sync::Arc::clone(&self.space),
            std::sync::Arc::clone(&self.store),
            std::sync::Arc::clone(&self.index),
            options,
        )
    }
}

fn world(seed: u64) -> World {
    let building = generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        one_way_rooms: 1,
        ..BuildingConfig::with_floors(3)
    })
    .unwrap();
    let store = generate_objects(
        &building,
        &ObjectConfig {
            count: 200,
            radius: 10.0,
            instances: 10,
            seed,
        },
    )
    .unwrap();
    let index = CompositeIndex::build(&building.space, &store, IndexConfig::default()).unwrap();
    let points = generate_query_points(
        &building,
        &QueryPointConfig {
            count: 6,
            seed: seed ^ 0xAB,
        },
    );
    let space = std::sync::Arc::new(building.space.clone());
    World {
        building,
        space,
        store: std::sync::Arc::new(store),
        index: std::sync::Arc::new(index),
        points,
    }
}

/// Asserts two outcomes of the same query are bit-identical in their
/// result payloads (hit vectors, distances, kbound, path).
fn assert_identical(batch: &Outcome, single: &Outcome, ctx: &str) {
    match (batch, single) {
        (Outcome::Range(a), Outcome::Range(b)) => {
            assert_eq!(a.results, b.results, "{ctx}: range hits diverge");
        }
        (Outcome::Knn(a), Outcome::Knn(b)) => {
            assert_eq!(a.results, b.results, "{ctx}: kNN hits diverge");
            assert_eq!(a.kbound, b.kbound, "{ctx}: kbound diverges");
        }
        (Outcome::Distance(a), Outcome::Distance(b)) => {
            assert_eq!(
                a.distance.to_bits(),
                b.distance.to_bits(),
                "{ctx}: distance diverges"
            );
        }
        (Outcome::Path(a), Outcome::Path(b)) => {
            assert_eq!(a.path, b.path, "{ctx}: path diverges");
        }
        _ => panic!("{ctx}: outcome variant does not match the query"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random mixes of all four query kinds over a random world, with
    /// query points drawn *with replacement* (so shared points and
    /// singleton groups both occur, across all three floors).
    #[test]
    fn execute_batch_is_bit_identical_to_single_issue(
        seed in 1u64..5,
        picks in collection::vec((0usize..6, 0usize..6), 4..12),
    ) {
        let w = world(seed);
        let opts = QueryOptions::for_max_radius(10.0);
        let queries: Vec<Query> = picks
            .iter()
            .map(|&(qi, kind)| {
                let q = w.points[qi];
                let p = w.points[(qi + 1) % w.points.len()];
                match kind {
                    0 => Query::Range { q, r: 60.0 },
                    1 => Query::Range { q, r: 120.0 },
                    2 => Query::Knn { q, k: 5 },
                    3 => Query::Knn { q, k: 20 },
                    4 => Query::Distance { q, p },
                    _ => Query::Path { q, p },
                }
            })
            .collect();

        let batch =
            execute_batch(&w.building.space, &w.index, &w.store, &queries, &opts).unwrap();
        prop_assert_eq!(batch.len(), queries.len());
        for (i, (query, out)) in queries.iter().zip(&batch).enumerate() {
            let single =
                execute(&w.building.space, &w.index, &w.store, query, &opts).unwrap();
            assert_identical(out, &single, &format!("seed={seed} query#{i} {query}"));
        }
    }
}

/// The acceptance criterion of the batch path: N range queries sharing
/// one query point run exactly one restricted door-distance Dijkstra,
/// observable through the `QueryStats` reuse counters.
#[test]
fn shared_point_batch_runs_exactly_one_dijkstra() {
    let w = world(7);
    let snapshot = w.snapshot(QueryOptions::for_max_radius(10.0));
    let q = w.points[0];
    let queries: Vec<Query> = [40.0, 60.0, 80.0, 100.0, 120.0, 150.0]
        .iter()
        .map(|&r| Query::Range { q, r })
        .collect();
    let outcomes = snapshot.execute_batch(&queries).unwrap();

    let dijkstras: usize = outcomes.iter().map(|o| o.stats().dijkstras_run).sum();
    let reuses: usize = outcomes.iter().map(|o| o.stats().context_reuses).sum();
    assert_eq!(dijkstras, 1, "one restricted Dijkstra for the whole group");
    assert_eq!(reuses, queries.len() - 1, "every other query reuses it");

    // Filtering still ran per query (it is what determines candidates).
    for out in &outcomes {
        assert!(out.stats().nodes_visited > 0, "per-query filtering ran");
    }
}

/// Same planar position on different floors must not share a context —
/// they are different indoor points — while same-floor repeats do.
#[test]
fn groups_split_by_floor_and_merge_by_point() {
    let w = world(9);
    let snapshot = w.snapshot(QueryOptions::for_max_radius(10.0));
    let planar = w.points[0].point;
    let q0 = IndoorPoint::new(planar, 0);
    let q1 = IndoorPoint::new(planar, 1);
    let queries = vec![
        Query::Range { q: q0, r: 80.0 },
        Query::Range { q: q1, r: 80.0 },
        Query::Knn { q: q0, k: 10 },
        Query::Knn { q: q1, k: 10 },
    ];
    let outcomes = snapshot.execute_batch(&queries).unwrap();
    let dijkstras: usize = outcomes.iter().map(|o| o.stats().dijkstras_run).sum();
    assert_eq!(dijkstras, 2, "one context per floor");
    for (query, out) in queries.iter().zip(&outcomes) {
        let single = snapshot.execute(query).unwrap();
        assert_identical(out, &single, &format!("{query}"));
    }
}

/// kNN queries in a group hand their seed decompositions to the shared
/// cache: later queries of the group observe cache hits.
#[test]
fn knn_seeds_feed_the_shared_cache() {
    let w = world(11);
    let snapshot = w.snapshot(QueryOptions::for_max_radius(10.0));
    let q = w.points[1];
    let queries = vec![Query::Knn { q, k: 15 }, Query::Range { q, r: 100.0 }];
    let outcomes = snapshot.execute_batch(&queries).unwrap();
    assert!(
        outcomes[1].stats().subregion_cache_hits > 0,
        "the range query reuses decompositions the kNN seed phase paid for"
    );
    for (query, out) in queries.iter().zip(&outcomes) {
        let single = snapshot.execute(query).unwrap();
        assert_identical(out, &single, &format!("{query}"));
    }
}
