//! Equivalence oracle for the history ring (idq-history):
//!
//! 1. **Bit-identity** — every retained epoch reconstructs to a snapshot
//!    whose checkpoint bytes equal the live snapshot pinned when that
//!    epoch was published;
//! 2. **RangeDuring** — the historical answer over a window equals the
//!    union of fresh per-epoch range queries on the pinned live
//!    snapshots (and the per-epoch membership walk matches epoch by
//!    epoch);
//! 3. **Eviction** — a bounded ring never silently serves a
//!    partially-evicted window: requests below the retention horizon
//!    fail with the typed `Evicted` error, and everything at or above it
//!    still answers exactly.

use indoor_dq::history::{HistoryError, HistoryOptions, HistoryRecorder};
use indoor_dq::prelude::*;
use indoor_dq::workloads::{
    generate_building, generate_objects, generate_query_points, generate_update_stream,
    GeneratedBuilding,
};
use proptest::prelude::*;

const BATCH: usize = 6;

fn building() -> GeneratedBuilding {
    generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(2)
    })
    .unwrap()
}

fn engine_with_stream(
    b: &GeneratedBuilding,
    seed: u64,
    updates: usize,
) -> (IndoorEngine, Vec<Vec<Update>>) {
    let store = generate_objects(
        b,
        &ObjectConfig {
            count: 80,
            radius: 6.0,
            instances: 5,
            seed,
        },
    )
    .unwrap();
    let stream = generate_update_stream(
        b,
        &store,
        &UpdateStreamConfig {
            count: updates,
            seed: seed ^ 0x51C3,
            ..UpdateStreamConfig::default()
        },
    );
    let batches = stream.chunks(BATCH).map(<[Update]>::to_vec).collect();
    let engine =
        IndoorEngine::with_objects(b.space.clone(), store, EngineConfig::default()).unwrap();
    (engine, batches)
}

/// Fresh per-epoch range answer on a pinned live snapshot, ascending.
fn fresh_range(snapshot: &Snapshot, q: IndoorPoint, r: f64) -> Vec<ObjectId> {
    let outcome = snapshot.execute(&Query::Range { q, r }).unwrap();
    let mut ids: Vec<ObjectId> = outcome
        .as_range()
        .unwrap()
        .results
        .iter()
        .map(|h| h.object)
        .collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn reconstruction_and_range_during_match_live_pins(seed in 1u64..400) {
        let b = building();
        let (mut engine, batches) = engine_with_stream(&b, seed, 90);
        let recorder = HistoryRecorder::attach(
            &engine,
            HistoryOptions { keyframe_every: 5, ..HistoryOptions::default() },
        )
        .unwrap();

        // Commit the stream, pinning the live snapshot of every epoch.
        let mut live = vec![engine.snapshot()];
        for batch in &batches {
            engine.apply_batch(batch).unwrap();
            live.push(engine.snapshot());
        }
        recorder.sync();
        let session = recorder.session();
        prop_assert_eq!(session.oldest(), 0);
        prop_assert_eq!(session.newest(), batches.len() as u64);

        // 1. Bit-identity at every retained epoch.
        for pinned in &live {
            let rebuilt = session.reconstruct(pinned.version()).unwrap();
            prop_assert_eq!(
                rebuilt.encode_checkpoint(),
                pinned.encode_checkpoint(),
                "epoch {} reconstructs differently",
                pinned.version()
            );
        }

        // 2. Historical range answers against per-epoch fresh queries.
        let queries = generate_query_points(
            &b,
            &QueryPointConfig { count: 3, seed: seed ^ 0xAB },
        );
        for &q in &queries {
            for r in [40.0, 90.0] {
                let walked = session
                    .range_membership(q, r, 0, session.newest())
                    .unwrap();
                prop_assert_eq!(walked.len(), live.len());
                let mut union: Vec<ObjectId> = Vec::new();
                for (epoch, members) in &walked {
                    let fresh = fresh_range(&live[*epoch as usize], q, r);
                    prop_assert_eq!(
                        members.clone(),
                        fresh.clone(),
                        "membership diverges at epoch {} (q={} r={})",
                        epoch, q, r
                    );
                    union.extend(fresh);
                }
                union.sort_unstable();
                union.dedup();
                let during = session.range_during(q, r, 0, session.newest()).unwrap();
                prop_assert_eq!(during, union, "RangeDuring ≠ union of fresh answers");
            }
        }
    }

    #[test]
    fn eviction_fails_typed_and_never_serves_partial_windows(seed in 1u64..400) {
        let b = building();
        let (mut engine, batches) = engine_with_stream(&b, seed, 180);
        let recorder = HistoryRecorder::attach(
            &engine,
            HistoryOptions {
                max_epochs: 10,
                keyframe_every: 4,
                ..HistoryOptions::default()
            },
        )
        .unwrap();

        let mut live = vec![engine.snapshot()];
        for batch in &batches {
            engine.apply_batch(batch).unwrap();
            live.push(engine.snapshot());
        }
        recorder.sync();
        let session = recorder.session();
        let (oldest, newest) = (session.oldest(), session.newest());
        prop_assert!(oldest > 0, "30 epochs must overflow a 10-epoch ring");
        prop_assert_eq!(newest, batches.len() as u64);

        // Every evicted epoch fails typed — reconstruction and windows.
        for epoch in [0, oldest / 2, oldest - 1] {
            prop_assert_eq!(
                session.reconstruct(epoch).unwrap_err(),
                HistoryError::Evicted { requested: epoch, oldest_retained: oldest }
            );
        }
        let q = generate_query_points(&b, &QueryPointConfig { count: 1, seed })[0];
        prop_assert!(matches!(
            session.range_during(q, 60.0, oldest - 1, newest).unwrap_err(),
            HistoryError::Evicted { requested, .. } if requested == oldest - 1
        ));
        prop_assert!(matches!(
            session.trajectory(ObjectId(0), 0, newest).unwrap_err(),
            HistoryError::Evicted { requested: 0, .. }
        ));

        // The surviving window answers exactly — bit-identical
        // reconstructions and per-epoch agreement with the live pins.
        for epoch in oldest..=newest {
            let rebuilt = session.reconstruct(epoch).unwrap();
            prop_assert_eq!(
                rebuilt.encode_checkpoint(),
                live[epoch as usize].encode_checkpoint(),
                "surviving epoch {} reconstructs differently",
                epoch
            );
        }
        for (epoch, members) in session.range_membership(q, 60.0, oldest, newest).unwrap() {
            prop_assert_eq!(
                members,
                fresh_range(&live[epoch as usize], q, 60.0),
                "surviving epoch {} membership diverges",
                epoch
            );
        }
    }
}
