//! Routing-equivalence oracle for the query-indexed dispatcher.
//!
//! A fleet of standing subscriptions (mixed range/kNN, skewed floors —
//! the `generate_subscription_set` workload) watches a mixed update
//! stream of moves, inserts, removes and door churn. The dispatcher
//! routes each commit only to the subscriptions whose candidate-partition
//! footprint it intersects; everyone else is skipped without absorbing
//! anything. This suite proves the routed trajectory exact against three
//! independently computed oracles, for every subscription and epoch:
//!
//! 1. **from-scratch refresh** — at every epoch a fresh replay engine
//!    answers the standing query from scratch; at routed epochs the
//!    subscription's delta-maintained set must match, and at *skipped*
//!    epochs the fresh answer must equal the carried set (the skip was
//!    provably sound);
//! 2. **full-report absorption** — a `MonitorExt`-driven `RangeMonitor`
//!    absorbs *every* commit's report (the pre-dispatch broadcast
//!    semantics) and must land on the same set as both the routed
//!    subscription and the fresh refresh;
//! 3. **fresh kNN per epoch** — a kNN subscription's maintained ranking
//!    (ids *and* distance bits) must equal a from-scratch `Query::Knn`
//!    at every routed epoch, and carry unchanged across skipped ones.

use indoor_dq::prelude::*;
use indoor_dq::workloads::{
    generate_building, generate_objects, generate_subscription_set, generate_update_stream,
    GeneratedBuilding, SubscriptionSetConfig, UpdateStreamConfig,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const BATCHES: usize = 5;
const UPDATES_PER_BATCH: usize = 20;
const SUBSCRIPTIONS: usize = 10;

fn building() -> GeneratedBuilding {
    generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(3)
    })
    .unwrap()
}

fn engine(b: &GeneratedBuilding, seed: u64) -> IndoorEngine {
    let store = generate_objects(
        b,
        &ObjectConfig {
            count: 40,
            radius: 4.0,
            instances: 4,
            seed,
        },
    )
    .unwrap();
    IndoorEngine::with_objects(b.space.clone(), store, EngineConfig::default()).unwrap()
}

/// The deterministic update stream, pre-split into per-epoch batches
/// (generated against a scratch engine so id-dependent updates see the
/// population the real writer will).
fn batches(b: &GeneratedBuilding, seed: u64) -> Vec<Vec<Update>> {
    let mut scratch = engine(b, seed);
    (0..BATCHES)
        .map(|k| {
            let stream = generate_update_stream(
                b,
                scratch.store(),
                &UpdateStreamConfig {
                    count: UPDATES_PER_BATCH,
                    seed: seed ^ (0xD15 << 8) ^ k as u64,
                    ..Default::default()
                },
            );
            scratch.apply_batch(&stream).unwrap();
            stream
        })
        .collect()
}

/// Sorted member ids of a standing query answered from scratch on a
/// snapshot, plus the ranked `(id, distance)` pairs for kNN.
fn fresh_answer(snap: &Snapshot, query: &Query) -> (Vec<ObjectId>, Option<Vec<(ObjectId, f64)>>) {
    match snap.execute(query).unwrap() {
        Outcome::Range(r) => {
            let mut ids: Vec<ObjectId> = r.results.iter().map(|h| h.object).collect();
            ids.sort_unstable();
            (ids, None)
        }
        Outcome::Knn(k) => {
            let ranked: Vec<(ObjectId, f64)> =
                k.results.iter().map(|h| (h.object, h.distance)).collect();
            let mut ids: Vec<ObjectId> = ranked.iter().map(|&(id, _)| id).collect();
            ids.sort_unstable();
            (ids, Some(ranked))
        }
        _ => unreachable!("subscription workloads are range and kNN"),
    }
}

/// Bit-exact ranking comparison (`f64` doesn't implement `Eq`).
fn ranked_bits(ranked: &[(ObjectId, f64)]) -> Vec<(ObjectId, u64)> {
    ranked.iter().map(|&(id, d)| (id, d.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn routed_trajectories_match_absorption_and_fresh_refresh(seed in 1u64..500) {
        let b = building();
        let mut e = engine(&b, seed);
        let service = e.service();
        let queries = generate_subscription_set(
            &b,
            &SubscriptionSetConfig {
                count: SUBSCRIPTIONS,
                knn_fraction: 0.4,
                radii: vec![25.0, 50.0],
                ks: vec![2, 4],
                floor_skew: 1.0,
                seed,
            },
        );
        let mut subs: Vec<Subscription> = queries
            .iter()
            .map(|&q| service.subscribe(q).unwrap())
            .collect();

        // Commit the stream; every report is kept for the absorption
        // oracle. Then quiesce: the dispatcher has routed every commit.
        let batches = batches(&b, seed);
        let reports: Vec<UpdateReport> = batches
            .iter()
            .map(|batch| e.apply_batch(batch).unwrap())
            .collect();
        prop_assert_eq!(e.epoch(), BATCHES as u64);
        service.quiesce();

        // Baseline views, captured before draining mutates the
        // subscriptions' maintained state.
        let mut carried: Vec<BTreeSet<ObjectId>> = subs
            .iter()
            .map(|s| s.initial().iter().copied().collect())
            .collect();
        let mut carried_ranked: Vec<Option<Vec<(ObjectId, f64)>>> = subs
            .iter()
            .map(|s| s.ranked().map(<[_]>::to_vec))
            .collect();

        // Drain each subscription's routed trajectory: epoch → delivered
        // notification. Epochs must be strictly increasing and unlagged
        // (the mailboxes are far from full here).
        let mut routed: Vec<BTreeMap<u64, Notification>> = Vec::new();
        for sub in &mut subs {
            let notes = sub.poll().unwrap();
            let mut by_epoch = BTreeMap::new();
            let mut last = 0;
            for n in notes {
                prop_assert!(n.epoch > last, "epochs strictly increase");
                prop_assert!(!n.lagged, "nothing coalesced in a drained run");
                last = n.epoch;
                by_epoch.insert(n.epoch, n);
            }
            routed.push(by_epoch);
        }
        let stats = service.dispatch_stats();
        prop_assert_eq!(stats.commits, BATCHES as u64);
        prop_assert_eq!(
            stats.deliveries as usize,
            routed.iter().map(BTreeMap::len).sum::<usize>(),
            "every delivery drained, none invented"
        );

        // Replay epoch by epoch on a fresh engine. Per subscription we
        // carry the delta-maintained member set (and ranking); a
        // `MonitorExt` monitor per *range* subscription absorbs every
        // report — the broadcast oracle the dispatcher replaced.
        let mut replay = engine(&b, seed);
        let snap0 = replay.snapshot();
        let mut oracles: Vec<Option<RangeMonitor>> = queries
            .iter()
            .map(|q| match q {
                Query::Range { q, r } => {
                    let mut m = RangeMonitor::new(*q, *r, *snap0.options()).unwrap();
                    m.refresh_on(&snap0).unwrap();
                    Some(m)
                }
                _ => None,
            })
            .collect();

        for epoch in 0..=BATCHES as u64 {
            if epoch > 0 {
                replay.apply_batch(&batches[epoch as usize - 1]).unwrap();
            }
            prop_assert_eq!(replay.epoch(), epoch);
            let snap = replay.snapshot();
            for (i, query) in queries.iter().enumerate() {
                // The broadcast oracle tracks the engine's effective
                // options the same way the dispatcher does for
                // default-options subscriptions, then absorbs the epoch's
                // full report.
                if let Some(mon) = oracles[i].as_mut() {
                    if epoch > 0 {
                        if mon.options() != snap.options() {
                            mon.set_options(*snap.options());
                        }
                        mon.absorb(&reports[epoch as usize - 1], &snap).unwrap();
                    }
                }
                let (fresh_ids, fresh_ranked) = fresh_answer(&snap, query);
                // When the dispatcher skipped this epoch for this
                // subscription, the from-scratch answer below must prove
                // the commit irrelevant to it.
                if let Some(n) = routed[i].get(&epoch) {
                    // Routed: fold the delivered changes into the
                    // carried set, then everything must agree.
                    for (id, change) in &n.changes {
                        match change {
                            MonitorChange::Entered => {
                                prop_assert!(carried[i].insert(*id), "duplicate enter")
                            }
                            MonitorChange::Left => {
                                prop_assert!(carried[i].remove(id), "spurious leave")
                            }
                            MonitorChange::Unchanged => {
                                prop_assert!(false, "notifications carry changes only")
                            }
                        }
                    }
                    if let Some(r) = &n.ranked {
                        carried_ranked[i] = Some(r.clone());
                    }
                }
                prop_assert_eq!(
                    carried[i].iter().copied().collect::<Vec<_>>(),
                    fresh_ids.clone(),
                    "sub {} ({:?}) diverges from a fresh answer at epoch {}",
                    i,
                    query,
                    epoch
                );
                if let Some(fresh) = &fresh_ranked {
                    let maintained = carried_ranked[i].as_deref().unwrap_or(&[]);
                    prop_assert_eq!(
                        ranked_bits(maintained),
                        ranked_bits(fresh),
                        "sub {} ranking diverges at epoch {}",
                        i,
                        epoch
                    );
                }
                if let Some(mon) = oracles[i].as_ref() {
                    prop_assert_eq!(
                        mon.current(),
                        fresh_ids,
                        "broadcast oracle for sub {} diverges at epoch {}",
                        i,
                        epoch
                    );
                }
            }
        }

        // The subscriptions' own maintained views agree with the carried
        // trajectories, and nothing else is queued.
        for (i, sub) in subs.iter_mut().enumerate() {
            prop_assert_eq!(
                sub.current(),
                carried[i].iter().copied().collect::<Vec<_>>()
            );
            prop_assert!(sub.poll().unwrap().is_empty());
        }
    }
}
