//! # indoor-dq — distance-aware queries on indoor moving objects
//!
//! A from-scratch Rust implementation of the system described in
//! *Efficient Distance-Aware Query Evaluation on Indoor Moving Objects*
//! (Xie, Lu, Pedersen — ICDE 2013): indoor range queries (`iRQ`) and indoor
//! k-nearest-neighbour queries (`ikNNQ`) over uncertain moving objects in
//! dynamic indoor spaces, backed by a composite index (indR-tree tier,
//! skeleton tier, topological layer, object layer) and a family of indoor
//! distance bounds that avoid door-to-door distance pre-computation.
//!
//! The facade re-exports the component crates:
//!
//! * [`geom`] — geometry substrate (points, rectangles, polygons, bisectors,
//!   partition decomposition);
//! * [`model`] — the indoor space (partitions, directional doors,
//!   staircases, doors graph, temporal topology changes);
//! * [`objects`] — uncertain objects with instance-based PDFs;
//! * [`distance`] — indoor distances and pruning bounds;
//! * [`index`] — the composite index;
//! * [`query`] — the iRQ / ikNNQ processors and baselines;
//! * [`storage`] — the durability substrate (write-ahead log, epoch
//!   checkpoints, pluggable [`storage::StorageBackend`]s);
//! * [`core`] — [`core::IndoorEngine`], the integrated public API;
//! * [`history`] — bounded epoch retention, the 3D `(x, y, time)`
//!   trajectory index and the historical query family
//!   ([`history::HistoryRecorder`], [`history::HistorySession`]);
//! * [`workloads`] — synthetic buildings, objects and query workloads
//!   reproducing the paper's evaluation setup.
//!
//! ## Quickstart
//!
//! Queries are typed [`query::Query`] values executed through a
//! [`core::Snapshot`] — an owned, consistent read view pinned to one
//! committed version of the engine (`Clone + Send + Sync`, so sessions
//! run from any thread in parallel with the writer; see
//! [`core::IndoorService`] and `examples/live_service.rs`). Batched
//! execution reuses one door-distance Dijkstra and one subregion cache
//! across queries that share a query point. See
//! `examples/quickstart.rs`; in short:
//!
//! ```
//! use indoor_dq::prelude::*;
//!
//! // A tiny two-room floor plan.
//! let mut builder = FloorPlanBuilder::new(4.0);
//! let a = builder.add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0)).unwrap();
//! let b = builder.add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0)).unwrap();
//! builder.add_door_between(a, b, Point2::new(10.0, 5.0)).unwrap();
//! let space = builder.finish().unwrap();
//!
//! let mut engine = IndoorEngine::new(space, EngineConfig::default()).unwrap();
//! let o1 = engine
//!     .insert_object_at(Point2::new(18.0, 5.0), 0, 1.0, 16, 7)
//!     .unwrap();
//!
//! // One snapshot, three queries, one shared evaluation context.
//! let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
//! let snapshot = engine.snapshot();
//! let outcomes = snapshot
//!     .execute_batch(&[
//!         Query::Range { q, r: 25.0 },
//!         Query::Range { q, r: 5.0 },
//!         Query::Knn { q, k: 1 },
//!     ])
//!     .unwrap();
//! assert_eq!(outcomes[0].as_range().unwrap().results[0].object, o1);
//! assert!(outcomes[1].as_range().unwrap().results.is_empty());
//! assert_eq!(outcomes[2].as_knn().unwrap().results[0].object, o1);
//! let dijkstras: usize = outcomes.iter().map(|o| o.stats().dijkstras_run).sum();
//! assert_eq!(dijkstras, 1);
//!
//! // The pre-session convenience methods remain as thin delegations onto
//! // a default snapshot.
//! let hits = engine.range_query(q, 25.0).unwrap();
//! assert_eq!(hits.results.len(), 1);
//! assert_eq!(hits.results[0].object, o1);
//! ```

pub use idq_core as core;
pub use idq_distance as distance;
pub use idq_geom as geom;
pub use idq_history as history;
pub use idq_index as index;
pub use idq_model as model;
pub use idq_objects as objects;
pub use idq_query as query;
pub use idq_storage as storage;
pub use idq_workloads as workloads;

/// Convenience re-exports of the types most applications need.
pub mod prelude {
    pub use idq_core::{
        DurabilityOptions, EngineConfig, EngineError, IndoorEngine, IndoorService, MonitorExt,
        Notification, Snapshot, Subscription, Update, UpdateDelta, UpdateOutcome, UpdateReport,
        UpdateStats, WriteHandle,
    };
    pub use idq_geom::{Circle, Point2, Point3, Rect2};
    pub use idq_history::{
        HistoryError, HistoryOptions, HistoryOutcome, HistoryQuery, HistoryRecorder,
        HistorySession, HistoryStats,
    };
    pub use idq_index::CompositeIndex;
    pub use idq_model::{
        Direction, DoorId, FloorPlanBuilder, IndoorPoint, IndoorSpace, PartitionId, PartitionKind,
    };
    pub use idq_objects::{ObjectId, UncertainObject};
    pub use idq_query::{
        KnnResult, MonitorChange, Outcome, Query, QueryOptions, QueryStats, RangeMonitor,
        RangeResult,
    };
    pub use idq_storage::{FileBackend, MemBackend, StorageBackend, SyncPolicy};
    pub use idq_workloads::{
        BuildingConfig, ObjectConfig, QueryPointConfig, TrajectoryStreamConfig, UpdateStreamConfig,
    };
}
