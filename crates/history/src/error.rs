//! The historical query family's error type.

use idq_core::EngineError;

/// Any error surfaced by the history ring and its query family.
///
/// The central contract is that retention limits surface as **typed
/// errors, never as wrong answers**: a window that touches epochs the
/// ring has evicted fails with [`HistoryError::Evicted`] instead of
/// silently answering from the partial tail it still holds.
#[derive(Clone, Debug, PartialEq)]
pub enum HistoryError {
    /// The window names an epoch older than the ring retains. The answer
    /// over the surviving suffix would be silently partial, so no answer
    /// is given; re-issue the query clamped to `oldest_retained`.
    Evicted {
        /// The requested epoch that fell out of retention.
        requested: u64,
        /// The oldest epoch the ring can still reconstruct.
        oldest_retained: u64,
    },
    /// The window names an epoch the recorder has not absorbed yet —
    /// either genuinely in the future, or committed but still in the
    /// recorder's queue (`HistoryRecorder::sync` drains it).
    FutureEpoch {
        /// The requested epoch past the ring's newest.
        requested: u64,
        /// The newest epoch the ring has absorbed.
        newest: u64,
    },
    /// The window is inverted (`from > to`).
    EmptyWindow {
        /// Window start.
        from: u64,
        /// Window end (exclusive of nothing — windows are inclusive).
        to: u64,
    },
    /// The engine already has a retention sink attached — at most one
    /// `HistoryRecorder` per engine.
    AlreadyAttached,
    /// Replay or historical query evaluation failed in an engine layer
    /// ([`std::error::Error::source`] exposes it).
    Engine(EngineError),
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryError::Evicted {
                requested,
                oldest_retained,
            } => write!(
                f,
                "epoch {requested} is out of retention (oldest retained epoch is {oldest_retained})"
            ),
            HistoryError::FutureEpoch { requested, newest } => write!(
                f,
                "epoch {requested} is not recorded yet (newest recorded epoch is {newest})"
            ),
            HistoryError::EmptyWindow { from, to } => {
                write!(f, "inverted history window [{from}, {to}]")
            }
            HistoryError::AlreadyAttached => {
                write!(f, "the engine already has a retention sink attached")
            }
            HistoryError::Engine(e) => write!(f, "historical replay failed: {e}"),
        }
    }
}

impl std::error::Error for HistoryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HistoryError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for HistoryError {
    fn from(e: EngineError) -> Self {
        HistoryError::Engine(e)
    }
}
impl From<idq_query::QueryError> for HistoryError {
    fn from(e: idq_query::QueryError) -> Self {
        HistoryError::Engine(e.into())
    }
}
impl From<idq_objects::ObjectError> for HistoryError {
    fn from(e: idq_objects::ObjectError) -> Self {
        HistoryError::Engine(e.into())
    }
}
impl From<idq_index::IndexError> for HistoryError {
    fn from(e: idq_index::IndexError) -> Self {
        HistoryError::Engine(e.into())
    }
}
