//! The retention sink and its worker thread.
//!
//! The commit path must never block on history: the sink the engine
//! calls from its sequencer section does exactly one thing — push the
//! [`CommitRecord`] onto a queue and notify. All real retention work
//! (track maintenance, delta capture, eviction) happens on the
//! recorder's own thread, `idq-history`. Records arrive in strictly
//! increasing epoch order because the hook runs in the serial commit
//! section, so the ring never needs reordering.

use crate::error::HistoryError;
use crate::options::{HistoryOptions, HistoryStats};
use crate::ring::Ring;
use crate::session::HistorySession;
use idq_core::{CommitRecord, IndoorEngine, RetentionSink};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<CommitRecord>,
    closed: bool,
    /// A record has been popped but not yet absorbed — `sync` must wait
    /// for it, not just for an empty queue.
    in_flight: bool,
}

#[derive(Debug)]
struct RecorderCore {
    queue: Mutex<QueueState>,
    /// Signals the worker: new record or close.
    work_cv: Condvar,
    /// Signals `sync` waiters: queue drained and nothing in flight.
    idle_cv: Condvar,
    ring: Mutex<Ring>,
}

/// The object handed to the engine. Enqueue-only by contract.
#[derive(Debug)]
struct Sink {
    core: Arc<RecorderCore>,
}

impl RetentionSink for Sink {
    fn record(&self, record: CommitRecord) {
        let mut q = self.core.queue.lock().unwrap();
        if q.closed {
            return;
        }
        q.queue.push_back(record);
        self.core.work_cv.notify_one();
    }

    fn close(&self) {
        let mut q = self.core.queue.lock().unwrap();
        q.closed = true;
        self.core.work_cv.notify_all();
    }
}

/// Owns the history ring and the worker thread that feeds it from the
/// engine's commit stream.
///
/// Attach one per engine with [`HistoryRecorder::attach`] **before
/// spawning concurrent writers** — the recorder baselines on a snapshot
/// taken right after attaching, and commits racing the attach are
/// covered by that baseline keyframe. Dropping the recorder stops the
/// worker; the engine keeps committing (its sink enqueues into a closed
/// queue, which discards).
#[derive(Debug)]
pub struct HistoryRecorder {
    core: Arc<RecorderCore>,
    worker: Option<thread::JoinHandle<()>>,
}

impl HistoryRecorder {
    /// Attaches retention to `engine` and starts the worker thread.
    ///
    /// Fails with [`HistoryError::AlreadyAttached`] if the engine already
    /// has a retention sink (at most one recorder per engine, for its
    /// whole life).
    pub fn attach(engine: &IndoorEngine, options: HistoryOptions) -> Result<Self, HistoryError> {
        // Placeholder base options; fixed from the baseline below before
        // the worker ever reads the ring.
        let core = Arc::new(RecorderCore {
            queue: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            ring: Mutex::new(Ring::new(options, Default::default())),
        });

        // Attach the sink FIRST, then take the baseline snapshot: any
        // commit after the attach lands in the queue, and absorb()
        // discards queued epochs the baseline already covers. The other
        // order would lose commits between snapshot and attach.
        let sink = Arc::new(Sink {
            core: Arc::clone(&core),
        });
        if !engine.attach_retention(sink) {
            return Err(HistoryError::AlreadyAttached);
        }
        let baseline = engine.snapshot();
        let wall_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        {
            let mut ring = core.ring.lock().unwrap();
            *ring = Ring::new(options, baseline.state().base_options());
            ring.init_baseline(baseline, wall_ms);
        }

        let worker_core = Arc::clone(&core);
        let worker = thread::Builder::new()
            .name("idq-history".into())
            .spawn(move || Self::run(worker_core))
            .expect("spawn history worker");
        Ok(HistoryRecorder {
            core,
            worker: Some(worker),
        })
    }

    fn run(core: Arc<RecorderCore>) {
        loop {
            let record = {
                let mut q = core.queue.lock().unwrap();
                loop {
                    if let Some(r) = q.queue.pop_front() {
                        q.in_flight = true;
                        break Some(r);
                    }
                    if q.closed {
                        break None;
                    }
                    core.idle_cv.notify_all();
                    q = core.work_cv.wait(q).unwrap();
                }
            };
            let Some(record) = record else {
                core.idle_cv.notify_all();
                return;
            };
            core.ring.lock().unwrap().absorb(record);
            let mut q = core.queue.lock().unwrap();
            q.in_flight = false;
            if q.queue.is_empty() {
                core.idle_cv.notify_all();
            }
        }
    }

    /// Blocks until every record enqueued so far has been absorbed into
    /// the ring — call before opening a session that must see an epoch
    /// the engine just committed.
    pub fn sync(&self) {
        let mut q = self.core.queue.lock().unwrap();
        while !q.queue.is_empty() || q.in_flight {
            q = self.core.idle_cv.wait(q).unwrap();
        }
    }

    /// A consistent read view over the retained window (snapshots the
    /// ring; later commits don't move the session's window). Does not
    /// [`HistoryRecorder::sync`] first.
    pub fn session(&self) -> HistorySession {
        HistorySession::from_ring(&self.core.ring.lock().unwrap())
    }

    /// Current retention counters.
    pub fn stats(&self) -> HistoryStats {
        self.core.ring.lock().unwrap().stats()
    }
}

impl Drop for HistoryRecorder {
    fn drop(&mut self) {
        {
            let mut q = self.core.queue.lock().unwrap();
            q.closed = true;
            self.core.work_cv.notify_all();
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}
