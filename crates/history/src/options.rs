//! Retention knobs and observability counters.

/// Bounds and cadence of the history ring.
///
/// Retention is bounded **twice**: by epoch count and by approximate
/// bytes. Whichever bound is hit first drives eviction, and eviction is
/// at **keyframe-group granularity** — the ring always starts at a
/// keyframe (deltas are useless without their base), so the oldest
/// retained epoch moves forward one keyframe group at a time, and the
/// effective epoch bound can overshoot `max_epochs` by up to
/// `keyframe_every - 1`. The newest keyframe group is never evicted.
#[derive(Clone, Copy, Debug)]
pub struct HistoryOptions {
    /// Retained epochs before eviction starts (≥ 1).
    pub max_epochs: usize,
    /// Approximate retained bytes — delta payloads, keyframe pins and
    /// trajectory segments, estimated from instance counts, not measured
    /// allocations — before eviction starts.
    pub max_bytes: usize,
    /// Keyframe cadence: a full pinned snapshot every this many epochs
    /// (≥ 1). Topology commits force a keyframe regardless (a delta
    /// cannot replay a rewired space). Smaller values reconstruct faster
    /// and evict at finer granularity; larger values retain longer per
    /// byte.
    pub keyframe_every: u64,
}

impl Default for HistoryOptions {
    fn default() -> Self {
        HistoryOptions {
            max_epochs: 1024,
            max_bytes: 512 << 20,
            keyframe_every: 64,
        }
    }
}

/// A point-in-time summary of the ring (`HistoryRecorder::stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistoryStats {
    /// Oldest retained (reconstructable) epoch.
    pub oldest: u64,
    /// Newest absorbed epoch.
    pub newest: u64,
    /// Retained epoch count (`newest - oldest + 1`).
    pub retained_epochs: usize,
    /// Keyframes among the retained records.
    pub keyframes: usize,
    /// Approximate retained bytes (same estimate eviction uses).
    pub approx_bytes: usize,
    /// Epochs evicted so far.
    pub evicted_epochs: u64,
    /// Closed movement segments in the 3D (x, y, time) index.
    pub segments: usize,
    /// Open segments (objects resting at their current position).
    pub open_tracks: usize,
}
