//! [`HistorySession`] — a consistent read view over the retained window,
//! and the historical query family evaluated against it.
//!
//! A session snapshots the ring once: later commits and evictions do not
//! move its window, so a multi-query analysis sees one consistent
//! history. Epoch reconstruction replays forward from the nearest
//! keyframe at or before the target, applying delta records through the
//! same store/index maintenance entry points the live engine uses —
//! which is what makes reconstructed snapshots **bit-identical**
//! (checkpoint-byte equal) to the versions the engine once published.

use crate::error::HistoryError;
use crate::index3d::{Box3, SegmentStore};
use crate::ring::{DeltaRecord, EpochRecord, Payload, Ring};
use idq_core::{EngineState, Snapshot};
use idq_geom::{Point2, Rect2};
use idq_index::CompositeIndex;
use idq_model::{Floor, IndoorPoint, IndoorSpace, PartitionId};
use idq_objects::{ObjectId, ObjectStore};
use idq_query::{KnnResult, Query, QueryOptions, RangeMonitor};
use std::collections::HashMap;
use std::sync::Arc;

/// One leg of a historical trajectory: the object rested at `position`
/// over the **inclusive** epoch interval `[from_epoch, to_epoch]`,
/// clamped to the query window.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectorySpan {
    /// Floor rested on.
    pub floor: Floor,
    /// Partition of the resting position (`None` when the position did
    /// not resolve to one).
    pub partition: Option<PartitionId>,
    /// Uncertainty-region centre while resting.
    pub position: Point2,
    /// First epoch of the span (inclusive, ≥ query `from`).
    pub from_epoch: u64,
    /// Last epoch of the span (inclusive, ≤ query `to`).
    pub to_epoch: u64,
    /// Wall-clock stamp of the commit that started the leg (ms since the
    /// Unix epoch; 0 if the clock was unreadable at commit time).
    pub entered_wall_ms: u64,
}

/// One co-mover found by [`HistoryQuery::Together`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Companion {
    /// The other object.
    pub object: ObjectId,
    /// Epochs the two objects spent in the same partition within the
    /// query window.
    pub shared_epochs: u64,
}

/// The historical query family (MOIST-style co-movement included).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HistoryQuery {
    /// Which objects were inside range `r` of `q` at **any** epoch of
    /// `[from, to]` (union of per-epoch `iRQ` answers).
    RangeDuring {
        /// The query point.
        q: IndoorPoint,
        /// The range radius, metres.
        r: f64,
        /// Window start epoch (inclusive).
        from: u64,
        /// Window end epoch (inclusive).
        to: u64,
    },
    /// Where object `object` was over `[from, to]`.
    Trajectory {
        /// The object to trace.
        object: ObjectId,
        /// Window start epoch (inclusive).
        from: u64,
        /// Window end epoch (inclusive).
        to: u64,
    },
    /// The `k` nearest objects to `q` as of epoch `epoch`.
    KnnAt {
        /// The query point.
        q: IndoorPoint,
        /// How many neighbours.
        k: usize,
        /// The epoch to reconstruct.
        epoch: u64,
    },
    /// Objects that moved together with `object`: shared at least
    /// `min_shared` epochs of partition co-residence within `[from, to]`.
    Together {
        /// The reference object.
        object: ObjectId,
        /// Window start epoch (inclusive).
        from: u64,
        /// Window end epoch (inclusive).
        to: u64,
        /// Minimum shared epochs to qualify.
        min_shared: u64,
    },
}

/// The outcome of one [`HistoryQuery`], matching its variant.
#[derive(Clone, Debug)]
pub enum HistoryOutcome {
    /// [`HistoryQuery::RangeDuring`]: union of members, ascending.
    Members(Vec<ObjectId>),
    /// [`HistoryQuery::Trajectory`]: spans in time order.
    Trajectory(Vec<TrajectorySpan>),
    /// [`HistoryQuery::KnnAt`]: the reconstructed-epoch kNN answer.
    Knn(KnnResult),
    /// [`HistoryQuery::Together`]: companions, most-shared first.
    Companions(Vec<Companion>),
}

/// A consistent historical read view: the retained records and the 3D
/// trajectory index, frozen at session-open time.
#[derive(Debug)]
pub struct HistorySession {
    records: Vec<EpochRecord>,
    oldest: u64,
    newest: u64,
    base_options: QueryOptions,
    segments: SegmentStore,
}

/// The mutable layers of a version being replayed forward from a
/// keyframe, maintained through the same entry points the live write
/// path uses.
struct ReplayState {
    space: Arc<IndoorSpace>,
    store: ObjectStore,
    index: CompositeIndex,
    max_radius: f64,
    epoch: u64,
}

impl ReplayState {
    fn from_keyframe(snapshot: &Snapshot) -> Self {
        let state = snapshot.state();
        ReplayState {
            space: state.space_arc(),
            store: state.store().clone(),
            // The index clone shares the keyframe's Arc-owned geometry
            // *and* its shared distance cache: delta records carry no
            // topology events, so rows cached by earlier replays (or by
            // the live engine against the same geometry) stay valid and
            // serve every historical query over this keyframe's span.
            index: state.index().clone(),
            max_radius: state.max_radius(),
            epoch: state.epoch(),
        }
    }

    /// Applies one delta record, advancing to `epoch`.
    fn apply(&mut self, delta: &DeltaRecord, epoch: u64) -> Result<(), HistoryError> {
        for obj in &delta.upserts {
            let obj = (**obj).clone();
            if self.store.contains(obj.id) {
                self.index.update_object(&self.space, &obj)?;
                self.store.replace_discarding(obj)?;
            } else {
                self.index.insert_object(&self.space, &obj)?;
                self.store.insert(obj)?;
            }
        }
        for &id in &delta.removed {
            self.index.remove_object(id)?;
            self.store.discard(id)?;
        }
        self.store.restore_id_watermark(delta.watermark);
        self.max_radius = delta.max_radius;
        self.epoch = epoch;
        Ok(())
    }

    /// Per-epoch effective query options (the live engine's widening
    /// rule, replayed from the recorded high-water mark).
    fn effective_options(&self, base: QueryOptions) -> QueryOptions {
        EngineState::effective_options_for(base, self.max_radius)
    }

    /// Freezes into a pinned snapshot, checkpoint-byte identical to the
    /// version the engine published at this epoch.
    fn into_snapshot(self, base: QueryOptions) -> Snapshot {
        let state = EngineState::from_parts_at(
            self.space,
            Arc::new(self.store),
            Arc::new(self.index),
            base,
            self.max_radius,
            self.epoch,
        );
        let effective = state.effective_options();
        Snapshot::from_state(Arc::new(state), effective)
    }
}

impl HistorySession {
    pub(crate) fn from_ring(ring: &Ring) -> Self {
        let records: Vec<EpochRecord> = ring.records().iter().cloned().collect();
        let oldest = ring.oldest().unwrap_or(0);
        let newest = ring.newest().unwrap_or(0);
        let mut segments = ring.segments.clone();
        for seg in ring.materialized_open_tracks(newest + 1) {
            segments.push(seg);
        }
        HistorySession {
            records,
            oldest,
            newest,
            base_options: ring.base_options,
            segments,
        }
    }

    /// Oldest reconstructable epoch of this session.
    pub fn oldest(&self) -> u64 {
        self.oldest
    }

    /// Newest recorded epoch of this session.
    pub fn newest(&self) -> u64 {
        self.newest
    }

    /// Validates an inclusive epoch window against the session's
    /// retained range: inverted windows, windows reaching past the
    /// newest absorbed epoch and windows touching evicted epochs all
    /// fail typed — never answered partially.
    fn check_window(&self, from: u64, to: u64) -> Result<(), HistoryError> {
        if from > to {
            return Err(HistoryError::EmptyWindow { from, to });
        }
        if to > self.newest {
            return Err(HistoryError::FutureEpoch {
                requested: to,
                newest: self.newest,
            });
        }
        if from < self.oldest {
            return Err(HistoryError::Evicted {
                requested: from,
                oldest_retained: self.oldest,
            });
        }
        Ok(())
    }

    fn record_at(&self, epoch: u64) -> &EpochRecord {
        let rec = &self.records[(epoch - self.oldest) as usize];
        debug_assert_eq!(rec.epoch, epoch, "ring records are epoch-dense");
        rec
    }

    /// Replays to `epoch` from the nearest keyframe at or before it.
    fn replay_to(&self, epoch: u64) -> Result<ReplayState, HistoryError> {
        let ti = (epoch - self.oldest) as usize;
        let ki = (0..=ti)
            .rev()
            .find(|&i| matches!(self.records[i].payload, Payload::Keyframe { .. }))
            .expect("the ring always starts at a keyframe");
        let Payload::Keyframe { snapshot } = &self.records[ki].payload else {
            unreachable!()
        };
        let mut state = ReplayState::from_keyframe(snapshot);
        for rec in &self.records[ki + 1..=ti] {
            let Payload::Delta(delta) = &rec.payload else {
                unreachable!("no keyframe between a keyframe and its nearest successor")
            };
            state.apply(delta, rec.epoch)?;
        }
        Ok(state)
    }

    /// Reconstructs the engine's published version at `epoch` as a
    /// pinned snapshot — checkpoint-byte identical to the live one
    /// (`Snapshot::encode_checkpoint` equality is the tested contract).
    pub fn reconstruct(&self, epoch: u64) -> Result<Snapshot, HistoryError> {
        self.check_window(epoch, epoch)?;
        if let Payload::Keyframe { snapshot } = &self.record_at(epoch).payload {
            return Ok(snapshot.clone());
        }
        Ok(self.replay_to(epoch)?.into_snapshot(self.base_options))
    }

    /// Per-epoch `iRQ(q, r)` membership over `[from, to]`: one
    /// `(epoch, members)` pair per epoch, members ascending. Evaluated
    /// with one standing monitor walked across the delta stream — not
    /// `to - from` full reconstructions — after a 3D-tree prefilter that
    /// answers provably-empty windows without replaying at all.
    pub fn range_membership(
        &self,
        q: IndoorPoint,
        r: f64,
        from: u64,
        to: u64,
    ) -> Result<Vec<(u64, Vec<ObjectId>)>, HistoryError> {
        self.check_window(from, to)?;
        let probe = Box3 {
            rect: Rect2::from_bounds(q.point.x - r, q.point.y - r, q.point.x + r, q.point.y + r),
            t_lo: from,
            t_hi: to,
        };
        if !self.segments.any_has(&probe) {
            return Ok((from..=to).map(|e| (e, Vec::new())).collect());
        }

        let mut state = self.replay_to(from)?;
        let mut monitor = RangeMonitor::new(q, r, state.effective_options(self.base_options))?;
        let mut members = monitor.refresh(&state.space, &state.index, &state.store)?;
        members.sort_unstable();
        let mut out = Vec::with_capacity((to - from + 1) as usize);
        out.push((from, members));
        for epoch in from + 1..=to {
            let rec = self.record_at(epoch);
            let mut members = match &rec.payload {
                Payload::Keyframe { snapshot } => {
                    // Swap the layers wholesale; the monitor's cached
                    // distance tree may reference the old topology, so
                    // rebuild it against the keyframe's.
                    state = ReplayState::from_keyframe(snapshot);
                    monitor = RangeMonitor::new(q, r, state.effective_options(self.base_options))?;
                    monitor.refresh(&state.space, &state.index, &state.store)?
                }
                Payload::Delta(delta) => {
                    let updated: Vec<ObjectId> = delta.upserts.iter().map(|o| o.id).collect();
                    let widened = delta.max_radius > state.max_radius;
                    state.apply(delta, rec.epoch)?;
                    if widened {
                        // The effective options just widened: the
                        // monitor's subgraph slack is stale, re-arm.
                        monitor =
                            RangeMonitor::new(q, r, state.effective_options(self.base_options))?;
                        monitor.refresh(&state.space, &state.index, &state.store)?
                    } else {
                        monitor.absorb_delta(
                            &updated,
                            &delta.removed,
                            false,
                            &state.space,
                            &state.index,
                            &state.store,
                        )?;
                        monitor.current()
                    }
                }
            };
            members.sort_unstable();
            out.push((epoch, members));
        }
        Ok(out)
    }

    /// Which objects crossed range `r` of `q` during `[from, to]` —
    /// the union of per-epoch range answers, ascending.
    pub fn range_during(
        &self,
        q: IndoorPoint,
        r: f64,
        from: u64,
        to: u64,
    ) -> Result<Vec<ObjectId>, HistoryError> {
        let mut all: Vec<ObjectId> = self
            .range_membership(q, r, from, to)?
            .into_iter()
            .flat_map(|(_, members)| members)
            .collect();
        all.sort_unstable();
        all.dedup();
        Ok(all)
    }

    /// The trajectory of `object` over `[from, to]`: its resting spans
    /// in time order, clamped to the window. An object absent (not yet
    /// inserted, or removed) over the whole window yields no spans.
    pub fn trajectory(
        &self,
        object: ObjectId,
        from: u64,
        to: u64,
    ) -> Result<Vec<TrajectorySpan>, HistoryError> {
        self.check_window(from, to)?;
        let mut spans: Vec<TrajectorySpan> = self
            .segments
            .of_object(object, from, to)
            .into_iter()
            .map(|s| TrajectorySpan {
                floor: s.floor,
                partition: s.partition,
                position: s.position,
                from_epoch: s.from_epoch.max(from),
                to_epoch: (s.to_epoch - 1).min(to),
                entered_wall_ms: s.from_wall_ms,
            })
            .collect();
        spans.sort_by_key(|s| s.from_epoch);
        Ok(spans)
    }

    /// Objects that moved together with `object` over `[from, to]`:
    /// every other object sharing at least `min_shared` epochs of
    /// partition co-residence, most-shared first (ties by id). Exact
    /// over the recorded partition sequences — evaluated through the
    /// per-partition segment table, not spatial overlap, so co-residents
    /// far apart inside one large partition still count.
    pub fn together(
        &self,
        object: ObjectId,
        from: u64,
        to: u64,
        min_shared: u64,
    ) -> Result<Vec<Companion>, HistoryError> {
        self.check_window(from, to)?;
        let mut shared: HashMap<ObjectId, u64> = HashMap::new();
        for span in self.segments.of_object(object, from, to) {
            let Some(partition) = span.partition else {
                continue;
            };
            let lo = span.from_epoch.max(from);
            let hi = (span.to_epoch - 1).min(to);
            for other in self.segments.in_partition(partition, lo, hi) {
                if other.object == object {
                    continue;
                }
                let o_lo = other.from_epoch.max(lo);
                let o_hi = (other.to_epoch - 1).min(hi);
                if o_lo <= o_hi {
                    *shared.entry(other.object).or_default() += o_hi - o_lo + 1;
                }
            }
        }
        let mut out: Vec<Companion> = shared
            .into_iter()
            .filter(|&(_, n)| n >= min_shared)
            .map(|(object, shared_epochs)| Companion {
                object,
                shared_epochs,
            })
            .collect();
        out.sort_by(|a, b| {
            b.shared_epochs
                .cmp(&a.shared_epochs)
                .then(a.object.cmp(&b.object))
        });
        Ok(out)
    }

    /// `ikNNQ(q, k)` as of epoch `epoch`, against the reconstructed
    /// version — the same answer a live snapshot of that version gave.
    pub fn knn_at(&self, q: IndoorPoint, k: usize, epoch: u64) -> Result<KnnResult, HistoryError> {
        let snapshot = self.reconstruct(epoch)?;
        let outcome = snapshot.execute(&Query::Knn { q, k })?;
        Ok(outcome
            .as_knn()
            .expect("a Knn query yields a Knn outcome")
            .clone())
    }

    /// Evaluates one query of the family.
    pub fn execute(&self, query: &HistoryQuery) -> Result<HistoryOutcome, HistoryError> {
        match *query {
            HistoryQuery::RangeDuring { q, r, from, to } => self
                .range_during(q, r, from, to)
                .map(HistoryOutcome::Members),
            HistoryQuery::Trajectory { object, from, to } => self
                .trajectory(object, from, to)
                .map(HistoryOutcome::Trajectory),
            HistoryQuery::KnnAt { q, k, epoch } => {
                self.knn_at(q, k, epoch).map(HistoryOutcome::Knn)
            }
            HistoryQuery::Together {
                object,
                from,
                to,
                min_shared,
            } => self
                .together(object, from, to, min_shared)
                .map(HistoryOutcome::Companions),
        }
    }
}
