//! The bounded, delta-compressed history ring.
//!
//! One [`EpochRecord`] per absorbed commit group, in strictly increasing
//! epoch order. Most records are [`Payload::Delta`]s — the commit's
//! upserted objects (shared by `Arc` with the store shard that already
//! holds them, so a delta costs pointers, not copies) plus removed ids
//! and the two non-derivable scalars (`id_watermark`, `max_radius`).
//! Every `keyframe_every` epochs, and on every topology commit, the ring
//! pins the published [`Snapshot`] itself as a [`Payload::Keyframe`]:
//! replay starts at the nearest keyframe at or before the target epoch
//! and applies deltas forward, so reconstruction cost is bounded by the
//! keyframe cadence.
//!
//! The ring always begins at a keyframe, and eviction removes whole
//! keyframe groups from the front — which is what makes the eviction
//! contract checkable: either an epoch is reconstructable bit-for-bit,
//! or it is gone and queries over it fail typed.

use crate::index3d::{Segment, SegmentStore};
use crate::options::{HistoryOptions, HistoryStats};
use idq_core::{CommitRecord, Snapshot};
use idq_geom::{Point2, Rect2};
use idq_model::{Floor, IndoorPoint, PartitionId};
use idq_objects::{ObjectId, UncertainObject};
use idq_query::QueryOptions;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// The compressed payload of one non-keyframe epoch: what the commit
/// group changed, plus the scalars a replay cannot derive from the
/// surviving objects.
#[derive(Clone, Debug)]
pub struct DeltaRecord {
    /// Inserted-or-moved objects, ascending by id, shared with the
    /// version's store shards.
    pub upserts: Vec<Arc<UncertainObject>>,
    /// Removed object ids, ascending.
    pub removed: Vec<ObjectId>,
    /// The store's id watermark after this epoch (removals can lower the
    /// live ceiling without lowering the watermark).
    pub watermark: u64,
    /// The engine's uncertainty-radius high-water mark after this epoch.
    pub max_radius: f64,
}

/// What an epoch record holds: a pinned full snapshot or a delta.
#[derive(Clone, Debug)]
pub enum Payload {
    /// A pinned version — replay base and bit-identity anchor.
    Keyframe {
        /// The snapshot the engine published for this epoch.
        snapshot: Snapshot,
    },
    /// A delta against the previous record.
    Delta(DeltaRecord),
}

/// One retained epoch.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// The commit epoch this record reproduces.
    pub epoch: u64,
    /// Wall-clock stamp of the commit (ms since Unix epoch, 0 if the
    /// clock was unreadable). Metadata only.
    pub wall_ms: u64,
    /// Approximate bytes this record retains (the eviction currency).
    pub bytes: usize,
    /// Keyframe or delta.
    pub payload: Payload,
}

/// An object currently resting: the segment-in-progress that closes when
/// the object next moves, is removed, or the ring snapshots a session.
#[derive(Clone, Debug)]
struct OpenTrack {
    floor: Floor,
    partition: Option<PartitionId>,
    position: Point2,
    rect: Rect2,
    from_epoch: u64,
    from_wall_ms: u64,
}

impl OpenTrack {
    fn close(&self, object: ObjectId, to_epoch: u64) -> Segment {
        Segment {
            object,
            floor: self.floor,
            partition: self.partition,
            position: self.position,
            rect: self.rect,
            from_epoch: self.from_epoch,
            from_wall_ms: self.from_wall_ms,
            to_epoch,
            alive: true,
        }
    }
}

fn object_bytes(obj: &UncertainObject) -> usize {
    96 + obj.len() * 48
}

fn snapshot_bytes(snapshot: &Snapshot) -> usize {
    256 + snapshot.store().iter().map(object_bytes).sum::<usize>()
}

/// The retention state: records, trajectory segments, open tracks and
/// byte accounting. Owned by the recorder thread behind a mutex;
/// [`crate::HistorySession`] snapshots it by clone (record payloads are
/// `Arc`-backed, segments are plain data).
#[derive(Clone, Debug)]
pub(crate) struct Ring {
    records: VecDeque<EpochRecord>,
    pub(crate) segments: SegmentStore,
    open: HashMap<ObjectId, OpenTrack>,
    options: HistoryOptions,
    pub(crate) base_options: QueryOptions,
    /// Sum of `records[i].bytes` plus the segment store estimate.
    rec_bytes: usize,
    /// Epoch of the newest keyframe record.
    last_keyframe: u64,
    pub(crate) evicted_epochs: u64,
    keyframes: usize,
}

impl Ring {
    pub(crate) fn new(options: HistoryOptions, base_options: QueryOptions) -> Self {
        Ring {
            records: VecDeque::new(),
            segments: SegmentStore::default(),
            open: HashMap::new(),
            options: HistoryOptions {
                max_epochs: options.max_epochs.max(1),
                max_bytes: options.max_bytes,
                keyframe_every: options.keyframe_every.max(1),
            },
            base_options,
            rec_bytes: 0,
            last_keyframe: 0,
            evicted_epochs: 0,
            keyframes: 0,
        }
    }

    /// Seeds the ring with the engine's current version: a keyframe for
    /// its epoch, and an open track per live object.
    pub(crate) fn init_baseline(&mut self, snapshot: Snapshot, wall_ms: u64) {
        let epoch = snapshot.version();
        self.records.clear();
        self.segments = SegmentStore::default();
        self.open.clear();
        self.rec_bytes = 0;
        self.keyframes = 0;
        self.open_tracks_for_population(&snapshot, epoch, wall_ms);
        self.push_keyframe(snapshot, epoch, wall_ms);
    }

    fn open_tracks_for_population(&mut self, snapshot: &Snapshot, epoch: u64, wall_ms: u64) {
        let space = snapshot.state().space();
        for obj in snapshot.store().iter() {
            let position = obj.region.center;
            let partition = space.partition_at(IndoorPoint {
                point: position,
                floor: obj.floor,
            });
            self.open.insert(
                obj.id,
                OpenTrack {
                    floor: obj.floor,
                    partition,
                    position,
                    rect: obj.footprint_rect(),
                    from_epoch: epoch,
                    from_wall_ms: wall_ms,
                },
            );
        }
    }

    fn push_keyframe(&mut self, snapshot: Snapshot, epoch: u64, wall_ms: u64) {
        let bytes = snapshot_bytes(&snapshot);
        self.records.push_back(EpochRecord {
            epoch,
            wall_ms,
            bytes,
            payload: Payload::Keyframe { snapshot },
        });
        self.rec_bytes += bytes;
        self.last_keyframe = epoch;
        self.keyframes += 1;
    }

    /// Oldest retained epoch (`None` before the baseline lands).
    pub(crate) fn oldest(&self) -> Option<u64> {
        self.records.front().map(|r| r.epoch)
    }

    /// Newest absorbed epoch.
    pub(crate) fn newest(&self) -> Option<u64> {
        self.records.back().map(|r| r.epoch)
    }

    /// Absorbs one commit record into the ring — track maintenance,
    /// keyframe-or-delta capture, then bounded eviction. Runs on the
    /// recorder thread only.
    pub(crate) fn absorb(&mut self, record: CommitRecord) {
        let CommitRecord {
            epoch,
            wall_ms,
            report,
            snapshot,
        } = record;
        let Some(newest) = self.newest() else {
            // No baseline (engine dropped before attach finished) —
            // treat the record's snapshot as the baseline.
            self.init_baseline(snapshot, wall_ms);
            return;
        };
        if epoch <= newest {
            // Commits raced the attach baseline; the baseline keyframe
            // already covers them.
            return;
        }
        if epoch != newest + 1 {
            // A gap means dropped records (cannot happen through the
            // in-order sequencer hook, but a ring must not serve wrong
            // answers if it ever does): restart from this snapshot.
            self.evicted_epochs += self.records.len() as u64;
            self.init_baseline(snapshot, wall_ms);
            self.evict();
            return;
        }

        let delta = &report.delta;
        if delta.topology_changed {
            // Partitions may have been rewired: close every open track
            // and reopen against the new space so recorded partition
            // sequences stay truthful.
            let open = std::mem::take(&mut self.open);
            for (id, track) in open {
                if track.from_epoch < epoch {
                    self.segments.push(track.close(id, epoch));
                }
            }
            self.open_tracks_for_population(&snapshot, epoch, wall_ms);
        } else {
            for &id in &delta.removed {
                if let Some(track) = self.open.remove(&id) {
                    if track.from_epoch < epoch {
                        self.segments.push(track.close(id, epoch));
                    }
                }
            }
            let space = snapshot.state().space();
            for id in delta.updated() {
                let Ok(obj) = snapshot.store().get_shared(id) else {
                    continue; // upserted then removed within the group
                };
                if let Some(track) = self.open.remove(&id) {
                    if track.from_epoch < epoch {
                        self.segments.push(track.close(id, epoch));
                    }
                }
                let position = obj.region.center;
                let partition = space.partition_at(IndoorPoint {
                    point: position,
                    floor: obj.floor,
                });
                self.open.insert(
                    id,
                    OpenTrack {
                        floor: obj.floor,
                        partition,
                        position,
                        rect: obj.footprint_rect(),
                        from_epoch: epoch,
                        from_wall_ms: wall_ms,
                    },
                );
            }
        }

        let force_keyframe = delta.topology_changed;
        if force_keyframe || epoch - self.last_keyframe >= self.options.keyframe_every {
            self.push_keyframe(snapshot, epoch, wall_ms);
        } else {
            let mut upserts = Vec::new();
            for id in delta.updated() {
                if let Ok(obj) = snapshot.store().get_shared(id) {
                    upserts.push(obj);
                }
            }
            let rec = DeltaRecord {
                upserts,
                removed: delta.removed.clone(),
                watermark: snapshot.store().id_watermark(),
                max_radius: snapshot.state().max_radius(),
            };
            let bytes = 64
                + rec.upserts.iter().map(|o| object_bytes(o)).sum::<usize>()
                + rec.removed.len() * 8;
            self.records.push_back(EpochRecord {
                epoch,
                wall_ms,
                bytes,
                payload: Payload::Delta(rec),
            });
            self.rec_bytes += bytes;
        }
        self.evict();
    }

    /// Drops whole keyframe groups from the front while either bound is
    /// exceeded, never touching the newest keyframe's group (the ring
    /// must stay able to answer for its newest epochs).
    fn evict(&mut self) {
        loop {
            let over_epochs = self.records.len() > self.options.max_epochs;
            let over_bytes = self.approx_bytes() > self.options.max_bytes;
            if !(over_epochs || over_bytes) {
                break;
            }
            // The group to drop: front keyframe plus its deltas, ending
            // before the next keyframe. If there is no next keyframe the
            // front group is the newest group — keep it.
            let mut next_keyframe = None;
            for (i, rec) in self.records.iter().enumerate().skip(1) {
                if matches!(rec.payload, Payload::Keyframe { .. }) {
                    next_keyframe = Some(i);
                    break;
                }
            }
            let Some(cut) = next_keyframe else { break };
            for _ in 0..cut {
                let rec = self.records.pop_front().expect("cut < len");
                self.rec_bytes -= rec.bytes;
                if matches!(rec.payload, Payload::Keyframe { .. }) {
                    self.keyframes -= 1;
                }
                self.evicted_epochs += 1;
            }
            let oldest = self.records.front().map(|r| r.epoch).unwrap_or(0);
            self.segments.retire_before(oldest);
        }
    }

    /// Retained-byte estimate: records plus the segment arena.
    fn approx_bytes(&self) -> usize {
        self.rec_bytes + self.segments.approx_bytes()
    }

    pub(crate) fn stats(&self) -> HistoryStats {
        HistoryStats {
            oldest: self.oldest().unwrap_or(0),
            newest: self.newest().unwrap_or(0),
            retained_epochs: self.records.len(),
            keyframes: self.keyframes,
            approx_bytes: self.approx_bytes(),
            evicted_epochs: self.evicted_epochs,
            segments: self.segments.len(),
            open_tracks: self.open.len(),
        }
    }

    /// The retained records, oldest first (session construction).
    pub(crate) fn records(&self) -> &VecDeque<EpochRecord> {
        &self.records
    }

    /// Materialises the open tracks as segments closed at `to_epoch`
    /// (exclusive) — sessions use `newest + 1` so resting objects cover
    /// the whole retained window.
    pub(crate) fn materialized_open_tracks(&self, to_epoch: u64) -> Vec<Segment> {
        let mut out: Vec<Segment> = self
            .open
            .iter()
            .filter(|(_, t)| t.from_epoch < to_epoch)
            .map(|(&id, t)| t.close(id, to_epoch))
            .collect();
        out.sort_by_key(|s| (s.object, s.from_epoch));
        out
    }
}
