//! # idq-history
//!
//! Bounded epoch retention, a 3D `(x, y, time)` trajectory index, and a
//! historical query family for the indoor MVCC engine.
//!
//! The live engine answers "where is everything **now**"; this crate
//! answers "where was everything **then**" — without slowing the writers
//! that keep "now" moving:
//!
//! * **Retention hook.** [`HistoryRecorder::attach`] plugs a
//!   [`idq_core::RetentionSink`] into the engine's commit path. The hook
//!   runs in the serial sequencer section, so records arrive in strict
//!   epoch order — but it only *enqueues*; all retention work happens on
//!   the recorder's own thread, keeping the write path's overhead to a
//!   queue push and a snapshot pin.
//! * **Delta-compressed ring.** Each commit group is retained as its net
//!   delta (upserted objects `Arc`-shared with the version's own store —
//!   pointers, not copies) with periodic **keyframes**: full pinned
//!   snapshots, forced on topology changes. Any retained epoch replays
//!   from the nearest keyframe through the same store/index maintenance
//!   the live engine uses, making reconstruction **bit-identical**
//!   (checkpoint-byte equal) to the version the engine once published.
//!   Retention is bounded by epoch count *and* approximate bytes
//!   ([`HistoryOptions`]); eviction drops whole keyframe groups and is
//!   surfaced as typed [`HistoryError::Evicted`] — never a silently
//!   partial answer.
//! * **3D trajectory index.** Object movement is decomposed into resting
//!   segments indexed per floor by a 3D R-tree over `(x, y, epoch)`
//!   boxes, with exact per-object and per-partition side tables.
//! * **Query family** ([`HistoryQuery`], evaluated on a
//!   [`HistorySession`] — a frozen view of the retained window):
//!   [`HistoryQuery::RangeDuring`] (who crossed a region during a
//!   window, via a standing monitor walked across the delta stream),
//!   [`HistoryQuery::Trajectory`] (where an object was),
//!   [`HistoryQuery::KnnAt`] (nearest neighbours at a past epoch, on the
//!   reconstructed version), and [`HistoryQuery::Together`] (MOIST-style
//!   co-movement over shared partition sequences).
//!
//! ```no_run
//! use idq_history::{HistoryOptions, HistoryQuery, HistoryRecorder};
//! # fn demo(engine: &idq_core::IndoorEngine) -> Result<(), Box<dyn std::error::Error>> {
//! let recorder = HistoryRecorder::attach(engine, HistoryOptions::default())?;
//! // ... commit updates through the engine as usual ...
//! recorder.sync(); // drain the queue before reading
//! let session = recorder.session();
//! let at = session.reconstruct(session.newest())?; // a pinned past version
//! # let _ = at; Ok(()) }
//! ```

mod error;
mod index3d;
mod options;
mod recorder;
mod ring;
mod session;

pub use error::HistoryError;
pub use index3d::{Box3, RTree3, Segment, SegmentStore};
pub use options::{HistoryOptions, HistoryStats};
pub use recorder::HistoryRecorder;
pub use ring::{DeltaRecord, EpochRecord, Payload};
pub use session::{Companion, HistoryOutcome, HistoryQuery, HistorySession, TrajectorySpan};
