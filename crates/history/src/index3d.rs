//! The 3D `(x, y, time)` trajectory index.
//!
//! Object movement between epochs is stored as **presence segments**: one
//! segment per (object, resting position) pair, spanning the inclusive
//! epoch interval the object spent at that position. An object that moves
//! at epoch `e` closes its open segment at `e - 1` and opens a new one at
//! `e`; a stationary object contributes one long segment, so historical
//! range queries see resting objects too — a pure per-move index would
//! miss them.
//!
//! Closed segments are indexed per floor in an insert-only 3D R-tree over
//! boxes `(footprint rect, epoch interval)`, the classic 3D R-tree layout
//! for historical trajectories with time as the third axis. Because the
//! planar indoor distance is lower-bounded by Euclidean xy distance, a
//! box probe with the query circle's bounding rect is a sound prefilter
//! for distance-aware historical queries: it can over-approximate but
//! never miss.
//!
//! Segments are never deleted individually; eviction retires whole time
//! prefixes by flipping `alive` flags and rebuilding a floor's tree once
//! the dead fraction passes one half.

use idq_geom::{Point2, Rect2};
use idq_model::{Floor, PartitionId};
use idq_objects::ObjectId;
use std::collections::HashMap;

/// A 3D axis-aligned box: a planar rect extruded over an inclusive epoch
/// interval `[t_lo, t_hi]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Box3 {
    /// Planar extent.
    pub rect: Rect2,
    /// First epoch covered (inclusive).
    pub t_lo: u64,
    /// Last epoch covered (inclusive).
    pub t_hi: u64,
}

impl Box3 {
    /// The empty box for running unions.
    fn empty_sentinel() -> Self {
        Box3 {
            rect: Rect2::empty_sentinel(),
            t_lo: u64::MAX,
            t_hi: 0,
        }
    }

    /// Smallest box covering both.
    fn union(&self, other: &Box3) -> Box3 {
        Box3 {
            rect: self.rect.union(&other.rect),
            t_lo: self.t_lo.min(other.t_lo),
            t_hi: self.t_hi.max(other.t_hi),
        }
    }

    /// Closed-interval overlap on all three axes.
    pub fn intersects(&self, other: &Box3) -> bool {
        self.t_lo <= other.t_hi && other.t_lo <= self.t_hi && self.rect.intersects(&other.rect)
    }

    /// Volume proxy for least-enlargement descent: planar area times the
    /// epoch-count extent. Degenerate (point) rects still get a positive
    /// time extent, so pure-time enlargement is visible to the heuristic.
    fn measure(&self) -> f64 {
        if self.rect.is_empty_sentinel() || self.t_lo > self.t_hi {
            return 0.0;
        }
        self.rect.area().max(1e-9) * (self.t_hi - self.t_lo + 1) as f64
    }
}

/// One presence segment: an object resting at `position` from `from_epoch`
/// until (exclusively) `to_epoch`.
#[derive(Clone, Debug)]
pub struct Segment {
    /// The object this segment belongs to.
    pub object: ObjectId,
    /// Floor the object rested on.
    pub floor: Floor,
    /// Partition of the resting position, when it resolves to one
    /// (objects in doors or dead zones carry `None`).
    pub partition: Option<PartitionId>,
    /// Center of the uncertainty region while resting.
    pub position: Point2,
    /// Planar footprint (region bbox ∪ instance bbox) while resting.
    pub rect: Rect2,
    /// First epoch at this position (inclusive).
    pub from_epoch: u64,
    /// Wall-clock stamp of the commit that opened the segment
    /// (milliseconds since the Unix epoch; 0 when the clock was
    /// unreadable). Metadata only — queries are epoch-addressed.
    pub from_wall_ms: u64,
    /// First epoch *not* at this position (exclusive bound).
    pub to_epoch: u64,
    /// Cleared when the segment's whole interval falls out of retention.
    pub alive: bool,
}

impl Segment {
    /// The 3D box this segment occupies (inclusive epoch interval).
    pub fn box3(&self) -> Box3 {
        Box3 {
            rect: self.rect,
            t_lo: self.from_epoch,
            t_hi: self.to_epoch.saturating_sub(1).max(self.from_epoch),
        }
    }
}

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = MAX_ENTRIES / 2;

#[derive(Clone, Debug)]
struct Node {
    bounds: Box3,
    /// Child node ids (internal) — empty for leaves.
    children: Vec<u32>,
    /// Segment arena ids (leaf) — empty for internal nodes.
    entries: Vec<u32>,
    leaf: bool,
}

impl Node {
    fn leaf() -> Self {
        Node {
            bounds: Box3::empty_sentinel(),
            children: Vec::new(),
            entries: Vec::new(),
            leaf: true,
        }
    }
}

/// An insert-only 3D R-tree over segment boxes for one floor.
///
/// Quadratic-cost-free variant: least-enlargement descent on insert, and
/// a widest-axis center-sort half split — simple, deterministic, and
/// fine for the append-mostly workload (segments arrive roughly sorted by
/// time, so time-axis splits dominate and the tree stays narrow).
#[derive(Clone, Debug, Default)]
pub struct RTree3 {
    nodes: Vec<Node>,
    root: Option<u32>,
    len: usize,
}

impl RTree3 {
    /// Appends every arena id whose box intersects `probe` to `out`.
    pub fn search(&self, probe: &Box3, out: &mut Vec<u32>, seg_box: impl Fn(u32) -> Box3) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n as usize];
            if !node.bounds.intersects(probe) {
                continue;
            }
            if node.leaf {
                for &e in &node.entries {
                    if seg_box(e).intersects(probe) {
                        out.push(e);
                    }
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
    }

    /// Entries indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The segment arena plus its per-floor 3D R-trees and the exact lookup
/// side tables (`by_object` for trajectories, `by_partition` for
/// co-movement).
#[derive(Clone, Debug, Default)]
pub struct SegmentStore {
    arena: Vec<Segment>,
    /// One tree per floor, indexed by floor number; grown on demand.
    trees: Vec<RTree3>,
    by_object: HashMap<ObjectId, Vec<u32>>,
    by_partition: HashMap<PartitionId, Vec<u32>>,
    dead: usize,
}

impl SegmentStore {
    /// Appends a closed segment to the arena and every lookup structure.
    pub fn push(&mut self, seg: Segment) {
        debug_assert!(seg.to_epoch > seg.from_epoch);
        let id = self.arena.len() as u32;
        let floor = seg.floor as usize;
        if self.trees.len() <= floor {
            self.trees.resize_with(floor + 1, RTree3::default);
        }
        let key = seg.box3();
        self.by_object.entry(seg.object).or_default().push(id);
        if let Some(p) = seg.partition {
            self.by_partition.entry(p).or_default().push(id);
        }
        self.arena.push(seg);
        // Borrow dance: the split closure needs the arena for leaf keys.
        let mut tree = std::mem::take(&mut self.trees[floor]);
        Self::tree_insert(&mut tree, &self.arena, key, id);
        self.trees[floor] = tree;
    }

    fn tree_insert(tree: &mut RTree3, arena: &[Segment], key: Box3, id: u32) {
        // RTree3::insert calls back into seg_box via split; route leaf
        // splits through the arena by temporarily inlining the logic.
        // (RTree3 keeps node boxes itself; only leaf entries need this.)
        let root = match tree.root {
            Some(r) => r,
            None => {
                tree.nodes.push(Node::leaf());
                let r = (tree.nodes.len() - 1) as u32;
                tree.root = Some(r);
                r
            }
        };
        if let Some((left, right)) = Self::tree_insert_at(tree, arena, root, key, id) {
            let bounds = tree.nodes[left as usize]
                .bounds
                .union(&tree.nodes[right as usize].bounds);
            tree.nodes.push(Node {
                bounds,
                children: vec![left, right],
                entries: Vec::new(),
                leaf: false,
            });
            tree.root = Some((tree.nodes.len() - 1) as u32);
        }
        tree.len += 1;
    }

    fn tree_insert_at(
        tree: &mut RTree3,
        arena: &[Segment],
        node: u32,
        key: Box3,
        entry: u32,
    ) -> Option<(u32, u32)> {
        let ni = node as usize;
        tree.nodes[ni].bounds = tree.nodes[ni].bounds.union(&key);
        if tree.nodes[ni].leaf {
            tree.nodes[ni].entries.push(entry);
            if tree.nodes[ni].entries.len() > MAX_ENTRIES {
                return Some(Self::tree_split(tree, arena, node));
            }
            return None;
        }
        let mut best = tree.nodes[ni].children[0];
        let mut best_cost = (f64::INFINITY, f64::INFINITY);
        for &c in &tree.nodes[ni].children {
            let b = &tree.nodes[c as usize].bounds;
            let grown = b.union(&key);
            let cost = (grown.measure() - b.measure(), b.measure());
            if cost < best_cost {
                best_cost = cost;
                best = c;
            }
        }
        if let Some((left, right)) = Self::tree_insert_at(tree, arena, best, key, entry) {
            let children = &mut tree.nodes[ni].children;
            children.retain(|&c| c != best && c != left);
            children.push(left);
            children.push(right);
            if children.len() > MAX_ENTRIES {
                return Some(Self::tree_split(tree, arena, node));
            }
        }
        None
    }

    fn tree_split(tree: &mut RTree3, arena: &[Segment], node: u32) -> (u32, u32) {
        let ni = node as usize;
        let leaf = tree.nodes[ni].leaf;
        let key_of = |tree: &RTree3, id: u32| -> Box3 {
            if leaf {
                arena[id as usize].box3()
            } else {
                tree.nodes[id as usize].bounds
            }
        };
        let mut items: Vec<u32> = if leaf {
            std::mem::take(&mut tree.nodes[ni].entries)
        } else {
            std::mem::take(&mut tree.nodes[ni].children)
        };
        let b = tree.nodes[ni].bounds;
        let (dx, dy) = (b.rect.width(), b.rect.height());
        let dt = (b.t_hi.saturating_sub(b.t_lo)) as f64;
        let mut keyed: Vec<(f64, u32)> = items
            .iter()
            .map(|&id| {
                let k = key_of(tree, id);
                let c = if dt >= dx && dt >= dy {
                    (k.t_lo + k.t_hi) as f64 * 0.5
                } else if dx >= dy {
                    k.rect.center().x
                } else {
                    k.rect.center().y
                };
                (c, id)
            })
            .collect();
        keyed.sort_by(|a, b_| a.0.partial_cmp(&b_.0).unwrap_or(std::cmp::Ordering::Equal));
        items = keyed.into_iter().map(|(_, id)| id).collect();
        let split_at = (items.len() / 2).max(MIN_ENTRIES).min(items.len() - 1);
        let right_items = items.split_off(split_at);

        let rebound = |tree: &RTree3, ids: &[u32]| {
            ids.iter().fold(Box3::empty_sentinel(), |acc, &id| {
                acc.union(&key_of(tree, id))
            })
        };
        let left_bounds = rebound(tree, &items);
        let right_bounds = rebound(tree, &right_items);
        tree.nodes[ni].bounds = left_bounds;
        if leaf {
            tree.nodes[ni].entries = items;
        } else {
            tree.nodes[ni].children = items;
        }
        tree.nodes.push(Node {
            bounds: right_bounds,
            children: if leaf {
                Vec::new()
            } else {
                right_items.clone()
            },
            entries: if leaf { right_items } else { Vec::new() },
            leaf,
        });
        (node, (tree.nodes.len() - 1) as u32)
    }

    /// The segment with arena id `id`.
    pub fn get(&self, id: u32) -> &Segment {
        &self.arena[id as usize]
    }

    /// Live segments of `object` whose interval intersects `[from, to]`
    /// (inclusive), in arena (time) order.
    pub fn of_object(&self, object: ObjectId, from: u64, to: u64) -> Vec<&Segment> {
        let Some(ids) = self.by_object.get(&object) else {
            return Vec::new();
        };
        ids.iter()
            .map(|&id| &self.arena[id as usize])
            .filter(|s| s.alive && s.from_epoch <= to && s.to_epoch > from)
            .collect()
    }

    /// Live segments resting in `partition` whose interval intersects
    /// `[from, to]` (inclusive).
    pub fn in_partition(&self, partition: PartitionId, from: u64, to: u64) -> Vec<&Segment> {
        let Some(ids) = self.by_partition.get(&partition) else {
            return Vec::new();
        };
        ids.iter()
            .map(|&id| &self.arena[id as usize])
            .filter(|s| s.alive && s.from_epoch <= to && s.to_epoch > from)
            .collect()
    }

    /// Live segments on `floor` intersecting `probe` via the floor's 3D
    /// tree (arena ids, unordered).
    pub fn probe_floor(&self, floor: Floor, probe: &Box3) -> Vec<u32> {
        let Some(tree) = self.trees.get(floor as usize) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        tree.search(probe, &mut out, |id| self.arena[id as usize].box3());
        out.retain(|&id| self.arena[id as usize].alive);
        out
    }

    /// Whether any live segment on `floor` intersects `probe` — the
    /// cheap existence prefilter historical range walks use to skip
    /// epochs whose window provably holds nothing near the query.
    pub fn floor_has_any(&self, floor: Floor, probe: &Box3) -> bool {
        let Some(tree) = self.trees.get(floor as usize) else {
            return false;
        };
        let Some(root) = tree.root else { return false };
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let node = &tree.nodes[n as usize];
            if !node.bounds.intersects(probe) {
                continue;
            }
            if node.leaf {
                for &e in &node.entries {
                    let s = &self.arena[e as usize];
                    if s.alive && s.box3().intersects(probe) {
                        return true;
                    }
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        false
    }

    /// Whether any live segment on **any** floor intersects `probe`.
    /// Sound as a historical range prefilter across floors too: indoor
    /// distance is lower-bounded by planar Euclidean distance regardless
    /// of the floors involved, so an object in range of `q` always has a
    /// footprint intersecting the `q ± r` rect.
    pub fn any_has(&self, probe: &Box3) -> bool {
        (0..self.trees.len()).any(|f| self.floor_has_any(f as Floor, probe))
    }

    /// Retires every segment whose whole interval precedes `oldest`
    /// (i.e. `to_epoch <= oldest`), then compacts once dead segments
    /// outnumber live ones.
    pub fn retire_before(&mut self, oldest: u64) {
        for seg in &mut self.arena {
            if seg.alive && seg.to_epoch <= oldest {
                seg.alive = false;
                self.dead += 1;
            }
        }
        if self.dead * 2 > self.arena.len() {
            self.rebuild();
        }
    }

    /// Drops dead segments and rebuilds the arena, trees and side tables
    /// from the survivors.
    fn rebuild(&mut self) {
        let survivors: Vec<Segment> = self.arena.drain(..).filter(|s| s.alive).collect();
        self.trees.clear();
        self.by_object.clear();
        self.by_partition.clear();
        self.dead = 0;
        for seg in survivors {
            self.push(seg);
        }
    }

    /// Live (closed) segments.
    pub fn len(&self) -> usize {
        self.arena.len() - self.dead
    }

    /// Whether no live segment remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate retained bytes of the arena and trees.
    pub fn approx_bytes(&self) -> usize {
        self.arena.len() * 96
            + self
                .trees
                .iter()
                .map(|t| t.nodes.len() * 160)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(object: u64, x: f64, y: f64, from: u64, to: u64) -> Segment {
        Segment {
            object: ObjectId(object),
            floor: 0,
            partition: Some(PartitionId((x as u32) / 10)),
            position: Point2::new(x, y),
            rect: Rect2::from_bounds(x - 1.0, y - 1.0, x + 1.0, y + 1.0),
            from_epoch: from,
            from_wall_ms: 0,
            to_epoch: to,
            alive: true,
        }
    }

    fn probe(x0: f64, y0: f64, x1: f64, y1: f64, t0: u64, t1: u64) -> Box3 {
        Box3 {
            rect: Rect2::from_bounds(x0, y0, x1, y1),
            t_lo: t0,
            t_hi: t1,
        }
    }

    /// Brute-force reference for the tree probe.
    fn brute(store: &SegmentStore, p: &Box3) -> Vec<u32> {
        (0..store.arena.len() as u32)
            .filter(|&id| {
                let s = &store.arena[id as usize];
                s.alive && s.floor == 0 && s.box3().intersects(p)
            })
            .collect()
    }

    #[test]
    fn probe_matches_brute_force() {
        let mut store = SegmentStore::default();
        // A grid of objects stepping right every 7 epochs.
        for o in 0..40u64 {
            for step in 0..12u64 {
                let x = (o % 8) as f64 * 9.0 + step as f64;
                let y = (o / 8) as f64 * 11.0;
                store.push(seg(o, x, y, step * 7, (step + 1) * 7));
            }
        }
        for (p, label) in [
            (probe(0.0, 0.0, 20.0, 20.0, 0, 10), "corner"),
            (probe(30.0, 30.0, 60.0, 60.0, 40, 80), "middle"),
            (probe(-5.0, -5.0, 200.0, 200.0, 0, 200), "everything"),
            (probe(500.0, 500.0, 510.0, 510.0, 0, 200), "nothing"),
            (probe(0.0, 0.0, 200.0, 200.0, 83, 83), "last instant"),
        ] {
            let mut got = store.probe_floor(0, &p);
            let mut want = brute(&store, &p);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "probe {label}");
            assert_eq!(store.floor_has_any(0, &p), !want.is_empty(), "any {label}");
        }
    }

    #[test]
    fn of_object_returns_time_ordered_overlaps() {
        let mut store = SegmentStore::default();
        for step in 0..10u64 {
            store.push(seg(3, step as f64, 0.0, step * 5, (step + 1) * 5));
        }
        store.push(seg(4, 99.0, 99.0, 0, 50));
        let spans = store.of_object(ObjectId(3), 12, 27);
        let got: Vec<(u64, u64)> = spans.iter().map(|s| (s.from_epoch, s.to_epoch)).collect();
        assert_eq!(got, vec![(10, 15), (15, 20), (20, 25), (25, 30)]);
        assert!(store.of_object(ObjectId(9), 0, 100).is_empty());
    }

    #[test]
    fn retire_drops_old_segments_and_rebuilds() {
        let mut store = SegmentStore::default();
        for o in 0..30u64 {
            store.push(seg(o, o as f64, 0.0, 0, 10));
            store.push(seg(o, o as f64 + 1.0, 0.0, 10, 20));
        }
        assert_eq!(store.len(), 60);
        store.retire_before(10);
        // Half dead triggers nothing yet (strictly more than half does);
        // either way no retired segment is visible.
        assert_eq!(store.len(), 30);
        let p = probe(-10.0, -10.0, 100.0, 100.0, 0, 9);
        assert!(store.probe_floor(0, &p).is_empty());
        assert!(!store.floor_has_any(0, &p));
        store.retire_before(20);
        assert_eq!(store.len(), 0);
        assert_eq!(store.dead, 0, "full retire compacts the arena");
    }

    #[test]
    fn partition_lookup_filters_by_window() {
        let mut store = SegmentStore::default();
        store.push(seg(1, 5.0, 0.0, 0, 10)); // partition 0
        store.push(seg(2, 5.0, 1.0, 8, 20)); // partition 0
        store.push(seg(3, 25.0, 0.0, 0, 20)); // partition 2
        let hits = store.in_partition(PartitionId(0), 9, 9);
        let ids: Vec<u64> = hits.iter().map(|s| s.object.0).collect();
        assert_eq!(ids, vec![1, 2]);
        assert!(store.in_partition(PartitionId(0), 12, 15).len() == 1);
        assert!(store.in_partition(PartitionId(7), 0, 100).is_empty());
    }
}
