//! In-crate behaviour tests for the history ring: bit-identical
//! reconstruction, typed eviction, trajectory and co-movement answers,
//! and the attach contract.

use idq_core::{EngineConfig, IndoorEngine, Update};
use idq_geom::Point2;
use idq_history::{HistoryError, HistoryOptions, HistoryQuery, HistoryRecorder, TrajectorySpan};
use idq_model::Floor;
use idq_objects::ObjectId;
use idq_workloads::{
    generate_building, generate_objects, BuildingConfig, GeneratedBuilding, ObjectConfig,
};

fn building() -> GeneratedBuilding {
    generate_building(&BuildingConfig {
        bands: 2,
        rooms_per_side: 3,
        ..BuildingConfig::with_floors(2)
    })
    .unwrap()
}

fn engine(b: &GeneratedBuilding, count: usize, seed: u64) -> IndoorEngine {
    let store = generate_objects(
        b,
        &ObjectConfig {
            count,
            radius: 5.0,
            instances: 4,
            seed,
        },
    )
    .unwrap();
    IndoorEngine::with_objects(b.space.clone(), store, EngineConfig::default()).unwrap()
}

fn room_center(b: &GeneratedBuilding, floor: Floor, i: usize) -> Point2 {
    let rooms = &b.rooms_by_floor[floor as usize];
    b.space
        .partition(rooms[i % rooms.len()])
        .unwrap()
        .bbox
        .center()
}

fn move_to_room(b: &GeneratedBuilding, id: u64, floor: Floor, room: usize, seed: u64) -> Update {
    Update::MoveObject {
        id: ObjectId(id),
        center: room_center(b, floor, room),
        floor,
        seed,
    }
}

#[test]
fn reconstruction_is_bit_identical_to_live_snapshots() {
    let b = building();
    let mut engine = engine(&b, 40, 7);
    let recorder = HistoryRecorder::attach(
        &engine,
        HistoryOptions {
            keyframe_every: 4,
            ..HistoryOptions::default()
        },
    )
    .unwrap();

    // Commit a scripted stream, pinning the live snapshot after each
    // epoch as ground truth.
    let mut live = vec![engine.snapshot()];
    for step in 0..20u64 {
        let mut batch = vec![
            move_to_room(&b, step % 40, (step % 2) as Floor, step as usize, step),
            move_to_room(&b, (step + 11) % 40, 0, step as usize + 1, step ^ 7),
        ];
        if step % 5 == 0 {
            batch.push(Update::InsertObjectAt {
                center: room_center(&b, 1, step as usize),
                floor: 1,
                radius: 4.0,
                instances: 3,
                seed: step,
            });
        }
        if step % 7 == 3 {
            batch.push(Update::RemoveObject(ObjectId(step % 40)));
        }
        engine.apply_batch(&batch).unwrap();
        live.push(engine.snapshot());
    }

    recorder.sync();
    let session = recorder.session();
    assert_eq!(session.newest(), live.last().unwrap().version());
    for pinned in &live {
        let rebuilt = session.reconstruct(pinned.version()).unwrap();
        assert_eq!(rebuilt.version(), pinned.version());
        assert_eq!(
            rebuilt.encode_checkpoint(),
            pinned.encode_checkpoint(),
            "epoch {} reconstruction differs from the live version",
            pinned.version()
        );
    }
}

#[test]
fn eviction_is_typed_and_bounded() {
    let b = building();
    let mut engine = engine(&b, 20, 3);
    let recorder = HistoryRecorder::attach(
        &engine,
        HistoryOptions {
            max_epochs: 8,
            keyframe_every: 4,
            ..HistoryOptions::default()
        },
    )
    .unwrap();

    for step in 0..40u64 {
        engine
            .apply_batch(&[move_to_room(&b, step % 20, 0, step as usize, step)])
            .unwrap();
    }
    recorder.sync();
    let stats = recorder.stats();
    assert!(stats.evicted_epochs > 0, "40 epochs must overflow 8");
    assert!(
        stats.retained_epochs <= 8 + 3,
        "keyframe-group eviction may overshoot by at most keyframe_every - 1, got {}",
        stats.retained_epochs
    );
    assert!(stats.oldest > 0);

    let session = recorder.session();
    // Touching an evicted epoch fails typed, with the clamp hint.
    let err = session.reconstruct(0).unwrap_err();
    assert_eq!(
        err,
        HistoryError::Evicted {
            requested: 0,
            oldest_retained: session.oldest()
        }
    );
    let err = session
        .trajectory(ObjectId(1), 0, session.newest())
        .unwrap_err();
    assert!(matches!(err, HistoryError::Evicted { requested: 0, .. }));
    // The surviving window still answers.
    session.reconstruct(session.oldest()).unwrap();
    session.reconstruct(session.newest()).unwrap();
}

#[test]
fn window_validation_is_typed() {
    let b = building();
    let mut engine = engine(&b, 10, 1);
    let recorder = HistoryRecorder::attach(&engine, HistoryOptions::default()).unwrap();
    engine.apply_batch(&[move_to_room(&b, 0, 0, 1, 9)]).unwrap();
    recorder.sync();
    let session = recorder.session();
    let newest = session.newest();
    assert_eq!(
        session.trajectory(ObjectId(0), 5, 2).unwrap_err(),
        HistoryError::EmptyWindow { from: 5, to: 2 }
    );
    assert_eq!(
        session.reconstruct(newest + 3).unwrap_err(),
        HistoryError::FutureEpoch {
            requested: newest + 3,
            newest
        }
    );
}

#[test]
fn at_most_one_recorder_per_engine() {
    let b = building();
    let engine = engine(&b, 5, 2);
    let _first = HistoryRecorder::attach(&engine, HistoryOptions::default()).unwrap();
    match HistoryRecorder::attach(&engine, HistoryOptions::default()) {
        Err(HistoryError::AlreadyAttached) => {}
        other => panic!("expected AlreadyAttached, got {other:?}"),
    }
}

#[test]
fn trajectory_reports_scripted_moves() {
    let b = building();
    let mut engine = engine(&b, 6, 11);
    let recorder = HistoryRecorder::attach(&engine, HistoryOptions::default()).unwrap();

    // Object 0 visits rooms 0, 1, 2 for 3 epochs each (other objects
    // churn so epochs advance even when object 0 rests).
    for step in 0..9u64 {
        let mut batch = vec![move_to_room(&b, 5, 1, step as usize, step)];
        if step % 3 == 0 {
            batch.push(move_to_room(&b, 0, 0, (step / 3) as usize, 100 + step));
        }
        engine.apply_batch(&batch).unwrap();
    }
    recorder.sync();
    let session = recorder.session();
    let spans = session
        .trajectory(ObjectId(0), 1, session.newest())
        .unwrap();
    assert_eq!(spans.len(), 3, "three resting legs, got {spans:?}");
    let expect_rooms: Vec<Point2> = (0..3).map(|i| room_center(&b, 0, i)).collect();
    for (i, span) in spans.iter().enumerate() {
        assert_eq!(span.floor, 0);
        assert_eq!(span.position, expect_rooms[i], "leg {i}");
        assert_eq!(span.from_epoch, (i as u64 * 3 + 1).max(1), "leg {i} start");
        assert!(span.partition.is_some());
    }
    // Legs tile the window.
    for w in spans.windows(2) {
        assert_eq!(w[0].to_epoch + 1, w[1].from_epoch);
    }
    assert_eq!(spans.last().unwrap().to_epoch, session.newest());

    // A never-present object yields no spans.
    assert!(session
        .trajectory(ObjectId(999), 1, session.newest())
        .unwrap()
        .is_empty());
}

#[test]
fn together_finds_co_movers() {
    let b = building();
    let mut engine = engine(&b, 8, 13);
    let recorder = HistoryRecorder::attach(&engine, HistoryOptions::default()).unwrap();

    // Objects 0 and 1 tour rooms together; object 2 tours in antiphase;
    // the rest sit still wherever the generator put them.
    for step in 0..12u64 {
        let room = (step / 3) as usize;
        engine
            .apply_batch(&[
                move_to_room(&b, 0, 0, room, step),
                move_to_room(&b, 1, 0, room, step ^ 21),
                move_to_room(&b, 2, 0, room + 3, step ^ 42),
            ])
            .unwrap();
    }
    recorder.sync();
    let session = recorder.session();
    let window = (1, session.newest());
    let companions = session
        .together(ObjectId(0), window.0, window.1, 6)
        .unwrap();
    assert!(
        companions.iter().any(|c| c.object == ObjectId(1)),
        "object 1 toured with object 0: {companions:?}"
    );
    let one = companions.iter().find(|c| c.object == ObjectId(1)).unwrap();
    assert!(
        one.shared_epochs >= 10,
        "co-toured nearly the whole window, got {}",
        one.shared_epochs
    );
    assert!(
        !companions.iter().any(|c| c.object == ObjectId(2)),
        "object 2 toured in antiphase: {companions:?}"
    );

    // The outcome enum routes to the same answer.
    let via_enum = session
        .execute(&HistoryQuery::Together {
            object: ObjectId(0),
            from: window.0,
            to: window.1,
            min_shared: 6,
        })
        .unwrap();
    match via_enum {
        idq_history::HistoryOutcome::Companions(c) => assert_eq!(c, companions),
        other => panic!("wrong outcome variant: {other:?}"),
    }
}

#[test]
fn spans_survive_topology_keyframes() {
    let b = building();
    let mut engine = engine(&b, 6, 17);
    let recorder = HistoryRecorder::attach(&engine, HistoryOptions::default()).unwrap();

    engine.apply_batch(&[move_to_room(&b, 0, 0, 0, 1)]).unwrap();
    let door = b
        .space
        .doors()
        .next()
        .expect("generated buildings have doors")
        .id;
    engine.apply_batch(&[Update::CloseDoor(door)]).unwrap();
    engine.apply_batch(&[move_to_room(&b, 1, 0, 2, 2)]).unwrap();
    engine.apply_batch(&[Update::OpenDoor(door)]).unwrap();
    recorder.sync();

    let session = recorder.session();
    // Reconstruction works on both sides of the forced keyframes.
    for e in session.oldest()..=session.newest() {
        session.reconstruct(e).unwrap();
    }
    // Object 0's leg in room 0 spans the topology change unbroken in
    // time (tracks are closed and reopened at the keyframe, and the
    // spans tile).
    let spans: Vec<TrajectorySpan> = session
        .trajectory(ObjectId(0), 1, session.newest())
        .unwrap();
    assert_eq!(spans.first().unwrap().from_epoch, 1);
    assert_eq!(spans.last().unwrap().to_epoch, session.newest());
    for w in spans.windows(2) {
        assert_eq!(w[0].to_epoch + 1, w[1].from_epoch, "gap in {spans:?}");
    }
}
