//! Indoor Range Query — `iRQ` (Def. 3, Algorithm 1).

use crate::error::QueryError;
use crate::options::QueryOptions;
use crate::pipeline::EvalContext;
use crate::stats::QueryStats;
use idq_index::CompositeIndex;
use idq_model::IndoorPoint;
use idq_model::IndoorSpace;
use idq_objects::{ObjectId, ObjectStore};
use std::time::Instant;

/// One qualifying object of a range query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RangeHit {
    /// The object.
    pub object: ObjectId,
    /// Its expected indoor distance. When `certified_by_bound` is set the
    /// value is the certifying *upper bound* (the exact distance was never
    /// computed — that is the point of the pruning phase); otherwise it is
    /// the exact expected distance (refinement only accepts restricted
    /// values it can prove equal to the full-graph value).
    pub distance: f64,
    /// Whether membership was certified by `O.u ≤ r` without refinement.
    pub certified_by_bound: bool,
}

/// Result of a range query.
#[derive(Clone, Debug)]
pub struct RangeResult {
    /// Qualifying objects, sorted by object id.
    pub results: Vec<RangeHit>,
    /// Phase timings and counters.
    pub stats: QueryStats,
}

/// Phase-1 output of a range query: everything needed to finish the
/// evaluation against an [`EvalContext`] — its own or a shared one.
pub(crate) struct RangePrep {
    pub q: IndoorPoint,
    pub r: f64,
    pub objects: Vec<ObjectId>,
    pub stats: QueryStats,
}

/// Validates the query and runs the filtering phase (Algorithm 4).
pub(crate) fn range_prep(
    space: &IndoorSpace,
    index: &CompositeIndex,
    store: &ObjectStore,
    q: IndoorPoint,
    r: f64,
    options: &QueryOptions,
) -> Result<RangePrep, QueryError> {
    if !r.is_finite() || r < 0.0 {
        return Err(QueryError::BadRange(r));
    }
    index.check_fresh(space)?;
    let mut stats = QueryStats {
        total_objects: store.len(),
        ..QueryStats::default()
    };

    // Phase 1: filtering via the geometric layer (Algorithm 4).
    let t = Instant::now();
    let filtered = index.range_search_dual(
        space,
        q,
        r,
        r + options.subgraph_slack,
        options.use_skeleton,
    );
    stats.filtering_ms = t.elapsed().as_secs_f64() * 1e3;
    stats.candidates_after_filter = filtered.objects.len();
    stats.partitions_retrieved = filtered.partitions.len();
    stats.nodes_visited = filtered.stats.nodes_visited;
    stats.entries_checked = filtered.stats.entries_checked;

    Ok(RangePrep {
        q,
        r,
        objects: filtered.objects,
        stats,
    })
}

/// Phases 3–4 against an evaluation context whose banded door distances
/// cover (at least) the prep's reach `r + slack`.
pub(crate) fn range_finish(
    ctx: &mut EvalContext<'_>,
    prep: RangePrep,
    options: &QueryOptions,
) -> Result<RangeResult, QueryError> {
    let RangePrep {
        r,
        objects,
        mut stats,
        ..
    } = prep;
    let fallbacks_before = ctx.fallbacks;
    let computed_before = ctx.subregions_computed;
    let hits_before = ctx.subregion_cache_hits;
    let shared_lookups_before = ctx.shared_lookups;
    let shared_hits_before = ctx.shared_hits;
    let shared_misses_before = ctx.shared_misses;
    let shared_evictions_before = ctx.shared_evictions;

    // Phase 3: pruning by topological / probabilistic bounds (Table III).
    let t = Instant::now();
    let mut results: Vec<RangeHit> = Vec::new();
    let mut undecided: Vec<ObjectId> = Vec::new();
    if options.use_pruning {
        for &o in &objects {
            let b = ctx.bounds(o)?;
            if b.upper <= r {
                stats.accepted_by_bounds += 1;
                results.push(RangeHit {
                    object: o,
                    distance: b.upper,
                    certified_by_bound: true,
                });
            } else if b.lower <= r {
                undecided.push(o);
            } else {
                stats.pruned_by_bounds += 1;
            }
        }
    } else {
        undecided = objects;
    }
    stats.pruning_ms = t.elapsed().as_secs_f64() * 1e3;

    // Phase 4: refinement — exact expected distances for the undecided.
    let t = Instant::now();
    for o in undecided {
        stats.refined += 1;
        let v = ctx.refine_with_threshold(o, r, options)?;
        if v <= r {
            results.push(RangeHit {
                object: o,
                distance: v,
                certified_by_bound: false,
            });
        }
    }
    stats.refinement_ms = t.elapsed().as_secs_f64() * 1e3;
    stats.full_graph_fallbacks = ctx.fallbacks - fallbacks_before;
    stats.subregions_computed = ctx.subregions_computed - computed_before;
    stats.subregion_cache_hits = ctx.subregion_cache_hits - hits_before;
    // Shared-cache traffic this finish caused (lazy full-graph fallbacks);
    // the context-build traffic was charged by the entry point.
    stats.shared_cache_lookups += ctx.shared_lookups - shared_lookups_before;
    stats.shared_cache_hits += ctx.shared_hits - shared_hits_before;
    stats.shared_cache_misses += ctx.shared_misses - shared_misses_before;
    stats.shared_cache_evictions += ctx.shared_evictions - shared_evictions_before;
    if options.distance_cache {
        stats.shared_cache_bytes = ctx.index.distance_cache().bytes() as usize;
    }

    results.sort_by_key(|h| h.object);
    Ok(RangeResult { results, stats })
}

/// Evaluates `iRQ_{q,r}(O) = { O : |q,O|_I ≤ r }` (Algorithm 1).
pub fn range_query(
    space: &IndoorSpace,
    index: &CompositeIndex,
    store: &ObjectStore,
    q: IndoorPoint,
    r: f64,
    options: &QueryOptions,
) -> Result<RangeResult, QueryError> {
    let mut prep = range_prep(space, index, store, q, r, options)?;

    // Phase 2: subgraph — door distances composed from shared rows,
    // truncated at the query's reach (the same bound the dual filter
    // retrieved partitions for).
    let t = Instant::now();
    let horizon = r + options.subgraph_slack;
    let mut ctx = EvalContext::new(
        space,
        store,
        index,
        q,
        horizon,
        options,
        crate::pipeline::SubregionCache::new(),
    )?;
    prep.stats.subgraph_ms = t.elapsed().as_secs_f64() * 1e3;
    prep.stats.dijkstras_run = 1;
    prep.stats.shared_cache_lookups = ctx.shared_lookups;
    prep.stats.shared_cache_hits = ctx.shared_hits;
    prep.stats.shared_cache_misses = ctx.shared_misses;
    prep.stats.shared_cache_evictions = ctx.shared_evictions;

    range_finish(&mut ctx, prep, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_range;
    use idq_geom::{Circle, Point2, Rect2};
    use idq_index::IndexConfig;
    use idq_model::FloorPlanBuilder;
    use idq_objects::UncertainObject;

    /// A 2-floor, 6-room world with a staircase and assorted objects.
    fn setup() -> (IndoorSpace, ObjectStore, CompositeIndex) {
        let mut b = FloorPlanBuilder::new(4.0);
        let mut rooms = Vec::new();
        for f in 0..2u16 {
            for i in 0..3 {
                rooms.push(
                    b.add_room(
                        f,
                        Rect2::from_bounds(20.0 * i as f64, 0.0, 20.0 * (i + 1) as f64, 10.0),
                    )
                    .unwrap(),
                );
            }
        }
        for f in 0..2usize {
            for i in 0..2 {
                b.add_door_between(
                    rooms[f * 3 + i],
                    rooms[f * 3 + i + 1],
                    Point2::new(20.0 * (i + 1) as f64, 5.0),
                )
                .unwrap();
            }
        }
        let st = b
            .add_staircase((0, 1), Rect2::from_bounds(60.0, 0.0, 64.0, 10.0))
            .unwrap();
        b.add_staircase_entrance(st, rooms[2], 0, Point2::new(60.0, 5.0))
            .unwrap();
        b.add_staircase_entrance(st, rooms[5], 1, Point2::new(60.0, 5.0))
            .unwrap();
        let space = b.finish().unwrap();

        let mut store = ObjectStore::new();
        let mut add = |id: u64, x: f64, f: u16| {
            store
                .insert(
                    UncertainObject::with_uniform_weights(
                        ObjectId(id),
                        Circle::new(Point2::new(x, 5.0), 2.0),
                        f,
                        vec![Point2::new(x - 1.0, 5.0), Point2::new(x + 1.0, 4.0)],
                    )
                    .unwrap(),
                )
                .unwrap();
        };
        add(1, 5.0, 0);
        add(2, 30.0, 0);
        add(3, 55.0, 0);
        add(4, 5.0, 1);
        add(5, 55.0, 1);
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        (space, store, index)
    }

    fn ids(r: &RangeResult) -> Vec<ObjectId> {
        r.results.iter().map(|h| h.object).collect()
    }

    #[test]
    fn matches_naive_oracle_across_radii() {
        let (space, store, index) = setup();
        let opts = QueryOptions::default();
        for (qx, qf) in [(5.0, 0u16), (30.0, 0), (55.0, 1)] {
            let q = IndoorPoint::new(Point2::new(qx, 5.0), qf);
            for r in [5.0, 15.0, 40.0, 80.0, 200.0] {
                let fast = range_query(&space, &index, &store, q, r, &opts).unwrap();
                let slow = naive_range(&space, index.doors_graph(), &store, q, r).unwrap();
                let slow_ids: Vec<ObjectId> = slow.iter().map(|x| x.0).collect();
                assert_eq!(ids(&fast), slow_ids, "q=({qx},{qf}) r={r}");
            }
        }
    }

    #[test]
    fn refined_distances_match_oracle_values() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let fast = range_query(&space, &index, &store, q, 200.0, &QueryOptions::default()).unwrap();
        let slow = naive_range(&space, index.doors_graph(), &store, q, 200.0).unwrap();
        for (hit, (oid, od)) in fast.results.iter().zip(slow) {
            assert_eq!(hit.object, oid);
            if !hit.certified_by_bound {
                assert!((hit.distance - od).abs() < 1e-9);
            } else {
                assert!(hit.distance >= od - 1e-9, "bound certifies from above");
            }
        }
    }

    #[test]
    fn ablations_return_identical_sets() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(30.0, 5.0), 0);
        let base = QueryOptions::default();
        let a = range_query(&space, &index, &store, q, 60.0, &base).unwrap();
        let b = range_query(&space, &index, &store, q, 60.0, &base.without_pruning()).unwrap();
        let c = range_query(&space, &index, &store, q, 60.0, &base.without_skeleton()).unwrap();
        let d = range_query(
            &space,
            &index,
            &store,
            q,
            60.0,
            &base.with_exact_refinement(),
        )
        .unwrap();
        assert_eq!(ids(&a), ids(&b));
        assert_eq!(ids(&a), ids(&c));
        assert_eq!(ids(&a), ids(&d));
        // Pruning boosts certified acceptances; without it everything is
        // refined.
        assert_eq!(b.stats.accepted_by_bounds, 0);
        assert!(b.stats.refined >= a.stats.refined);
    }

    #[test]
    fn skeleton_prunes_other_floors() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let with = range_query(&space, &index, &store, q, 10.0, &QueryOptions::default()).unwrap();
        let without = range_query(
            &space,
            &index,
            &store,
            q,
            10.0,
            &QueryOptions::default().without_skeleton(),
        )
        .unwrap();
        // Same answers…
        assert_eq!(ids(&with), ids(&without));
        // …but the Euclidean filter admits the upstairs object (4 m away
        // vertically) as a candidate while the skeleton rejects it.
        assert!(without.stats.candidates_after_filter > with.stats.candidates_after_filter);
    }

    #[test]
    fn zero_and_bad_ranges() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let z = range_query(&space, &index, &store, q, 0.0, &QueryOptions::default()).unwrap();
        assert!(z.results.is_empty());
        assert!(matches!(
            range_query(&space, &index, &store, q, -1.0, &QueryOptions::default()),
            Err(QueryError::BadRange(_))
        ));
        assert!(matches!(
            range_query(
                &space,
                &index,
                &store,
                q,
                f64::NAN,
                &QueryOptions::default()
            ),
            Err(QueryError::BadRange(_))
        ));
    }

    #[test]
    fn closed_door_changes_result() {
        let (mut space, store, mut index) = setup();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let before =
            range_query(&space, &index, &store, q, 40.0, &QueryOptions::default()).unwrap();
        assert!(ids(&before).contains(&ObjectId(2)));
        // Close the door between rooms 0 and 1 on floor 0.
        let d = space
            .doors()
            .find(|d| d.position == Point2::new(20.0, 5.0) && d.floor == 0)
            .unwrap()
            .id;
        let ev = space.close_door(d).unwrap();
        index.apply_topology(&space, &store, &ev).unwrap();
        let after = range_query(&space, &index, &store, q, 40.0, &QueryOptions::default()).unwrap();
        assert!(
            !ids(&after).contains(&ObjectId(2)),
            "object now unreachable"
        );
    }
}
