//! Snapshot-based query sessions: a typed [`Query`] / [`Outcome`] surface
//! with cross-query computation reuse (the paper's §VII future-work item).
//!
//! [`execute`] evaluates one query; [`execute_batch`] evaluates a slice of
//! queries and **groups them by query point and floor**: every group
//! shares one evaluation context, i.e. one banded door-distance assembly
//! (the subgraph phase, composed from the shared
//! [`idq_distance::DistanceCache`] rows) and one subregion-decomposition
//! cache — the two artefacts [`crate::RangeMonitor`] already identified
//! as the dominant reusable cost. The group's context is truncated at the
//! *maximum* of the members' reaches, so each member sees at least the
//! horizon its own filtering phase retrieved partitions for. Batched and
//! single-issue execution return bit-identical results because every
//! refinement value is horizon-independent: the pipeline returns a banded
//! value only when it is provably exact (at or below the context's
//! [`exit horizon`](idq_distance::DoorDistances::exit_horizon)) and falls
//! back to the full graph otherwise, and bound certifications below the
//! query radius cannot differ between any two sound horizons that cover
//! the filtering retrieval ball.
//!
//! Reuse is observable through [`QueryStats`]: within a batch only the
//! query that builds a group's context has `dijkstras_run == 1`; every
//! other member reports `context_reuses == 1` and `dijkstras_run == 0`.

use crate::error::QueryError;
use crate::iknn::{knn_finish, knn_prep, KnnPrep, KnnResult};
use crate::irq::{range_finish, range_prep, RangePrep, RangeResult};
use crate::options::QueryOptions;
use crate::pipeline::{EvalContext, SubregionCache};
use crate::stats::QueryStats;
use idq_distance::{indoor_distance, shortest_path};
use idq_index::CompositeIndex;
use idq_model::{DoorId, IndoorPoint, IndoorSpace};
use idq_objects::ObjectStore;
use std::collections::HashMap;
use std::time::Instant;

/// A typed query against one consistent view of the indoor world.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Query {
    /// `iRQ(q, r)`: objects with expected indoor distance `|q,O|_I ≤ r`
    /// (Def. 3, Algorithm 1).
    Range {
        /// The query point.
        q: IndoorPoint,
        /// The range radius, metres.
        r: f64,
    },
    /// `ikNNQ(q, k)`: the `k` objects with the smallest `|q,O|_I`
    /// (Def. 4, Algorithm 2).
    Knn {
        /// The query point.
        q: IndoorPoint,
        /// How many neighbours.
        k: usize,
    },
    /// Point-to-point indoor distance `|q,p|_I` (Eq. 1).
    Distance {
        /// The source point.
        q: IndoorPoint,
        /// The target point.
        p: IndoorPoint,
    },
    /// Shortest indoor path `q ⇝ p`: length plus the door sequence.
    Path {
        /// The source point.
        q: IndoorPoint,
        /// The target point.
        p: IndoorPoint,
    },
}

impl Query {
    /// The query point the evaluation starts from.
    pub fn query_point(&self) -> IndoorPoint {
        match *self {
            Query::Range { q, .. }
            | Query::Knn { q, .. }
            | Query::Distance { q, .. }
            | Query::Path { q, .. } => q,
        }
    }

    /// Batch-grouping key: queries whose evaluation context (door-distance
    /// tree + subregion cache) is shareable map to the same key. Distance
    /// and path queries run their own point-to-point search and are not
    /// grouped.
    fn group_key(&self) -> Option<(u64, u64, u16)> {
        match self {
            Query::Range { q, .. } | Query::Knn { q, .. } => {
                Some((q.point.x.to_bits(), q.point.y.to_bits(), q.floor))
            }
            Query::Distance { .. } | Query::Path { .. } => None,
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Query::Range { q, r } => write!(f, "iRQ({q}, r={r})"),
            Query::Knn { q, k } => write!(f, "ikNNQ({q}, k={k})"),
            Query::Distance { q, p } => write!(f, "dist({q} → {p})"),
            Query::Path { q, p } => write!(f, "path({q} ⇝ {p})"),
        }
    }
}

/// Result of a [`Query::Distance`] evaluation.
#[derive(Clone, Debug)]
pub struct DistanceResult {
    /// `|q,p|_I`; `∞` when `p` is unreachable from `q`.
    pub distance: f64,
    /// Evaluation statistics.
    pub stats: QueryStats,
}

/// Result of a [`Query::Path`] evaluation.
#[derive(Clone, Debug)]
pub struct PathResult {
    /// Path length and door sequence, or `None` when unreachable.
    pub path: Option<(f64, Vec<DoorId>)>,
    /// Evaluation statistics.
    pub stats: QueryStats,
}

/// The outcome of one [`Query`], matching its variant. Every outcome
/// carries [`QueryStats`] — uniform observability is part of the session
/// contract.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Outcome of a [`Query::Range`].
    Range(RangeResult),
    /// Outcome of a [`Query::Knn`].
    Knn(KnnResult),
    /// Outcome of a [`Query::Distance`].
    Distance(DistanceResult),
    /// Outcome of a [`Query::Path`].
    Path(PathResult),
}

impl Outcome {
    /// The evaluation statistics, regardless of variant.
    pub fn stats(&self) -> &QueryStats {
        match self {
            Outcome::Range(r) => &r.stats,
            Outcome::Knn(r) => &r.stats,
            Outcome::Distance(r) => &r.stats,
            Outcome::Path(r) => &r.stats,
        }
    }

    /// The range result, if this is a range outcome.
    pub fn as_range(&self) -> Option<&RangeResult> {
        match self {
            Outcome::Range(r) => Some(r),
            _ => None,
        }
    }

    /// The kNN result, if this is a kNN outcome.
    pub fn as_knn(&self) -> Option<&KnnResult> {
        match self {
            Outcome::Knn(r) => Some(r),
            _ => None,
        }
    }

    /// The distance result, if this is a distance outcome.
    pub fn as_distance(&self) -> Option<&DistanceResult> {
        match self {
            Outcome::Distance(r) => Some(r),
            _ => None,
        }
    }

    /// The path result, if this is a path outcome.
    pub fn as_path(&self) -> Option<&PathResult> {
        match self {
            Outcome::Path(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes into the range result, if this is a range outcome.
    pub fn into_range(self) -> Option<RangeResult> {
        match self {
            Outcome::Range(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes into the kNN result, if this is a kNN outcome.
    pub fn into_knn(self) -> Option<KnnResult> {
        match self {
            Outcome::Knn(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes into the distance result, if this is a distance outcome.
    pub fn into_distance(self) -> Option<DistanceResult> {
        match self {
            Outcome::Distance(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes into the path result, if this is a path outcome.
    pub fn into_path(self) -> Option<PathResult> {
        match self {
            Outcome::Path(r) => Some(r),
            _ => None,
        }
    }
}

fn execute_distance(
    space: &IndoorSpace,
    index: &CompositeIndex,
    store: &ObjectStore,
    q: IndoorPoint,
    p: IndoorPoint,
) -> Result<DistanceResult, QueryError> {
    let t = Instant::now();
    let distance = indoor_distance(space, index.doors_graph(), q, p)?;
    Ok(DistanceResult {
        distance,
        stats: QueryStats {
            subgraph_ms: t.elapsed().as_secs_f64() * 1e3,
            total_objects: store.len(),
            dijkstras_run: 1,
            ..QueryStats::default()
        },
    })
}

fn execute_path(
    space: &IndoorSpace,
    index: &CompositeIndex,
    store: &ObjectStore,
    q: IndoorPoint,
    p: IndoorPoint,
) -> Result<PathResult, QueryError> {
    let t = Instant::now();
    let path = shortest_path(space, index.doors_graph(), q, p)?;
    Ok(PathResult {
        path,
        stats: QueryStats {
            subgraph_ms: t.elapsed().as_secs_f64() * 1e3,
            total_objects: store.len(),
            dijkstras_run: 1,
            ..QueryStats::default()
        },
    })
}

/// Evaluates one query. Equivalent to [`execute_batch`] over a singleton
/// slice, without the batching bookkeeping.
pub fn execute(
    space: &IndoorSpace,
    index: &CompositeIndex,
    store: &ObjectStore,
    query: &Query,
    options: &QueryOptions,
) -> Result<Outcome, QueryError> {
    match *query {
        Query::Range { q, r } => {
            crate::irq::range_query(space, index, store, q, r, options).map(Outcome::Range)
        }
        Query::Knn { q, k } => {
            crate::iknn::knn_query(space, index, store, q, k, options).map(Outcome::Knn)
        }
        Query::Distance { q, p } => {
            execute_distance(space, index, store, q, p).map(Outcome::Distance)
        }
        Query::Path { q, p } => execute_path(space, index, store, q, p).map(Outcome::Path),
    }
}

/// One prepared context query (range or kNN) awaiting phases 3–4.
enum Prepped {
    Range(RangePrep),
    Knn(KnnPrep),
}

impl Prepped {
    fn query_point(&self) -> IndoorPoint {
        match self {
            Prepped::Range(p) => p.q,
            Prepped::Knn(p) => p.q,
        }
    }

    /// How far this member's evaluation needs exact distances: the reach
    /// the filtering phase retrieved candidates for.
    fn reach(&self, options: &QueryOptions) -> f64 {
        match self {
            Prepped::Range(p) => p.r + options.subgraph_slack,
            Prepped::Knn(p) => p.kbound + options.subgraph_slack,
        }
    }

    fn stats_mut(&mut self) -> &mut QueryStats {
        match self {
            Prepped::Range(p) => &mut p.stats,
            Prepped::Knn(p) => &mut p.stats,
        }
    }
}

/// Evaluates a batch of queries, reusing one evaluation context per
/// `(query point, floor)` group.
///
/// Results are returned in input order and are identical to evaluating
/// each query individually with [`execute`]; only the [`QueryStats`]
/// reuse counters (`dijkstras_run`, `context_reuses`,
/// `subregion_cache_hits`) differ. The filtering phase still runs per
/// query — it is cheap and determines each query's candidates — while the
/// group shares the banded door-distance context (truncated at the
/// maximum of the members' reaches) and the subregion cache.
///
/// Errors abort the whole batch: queries are validated during their
/// filtering phase, so an invalid radius or `k = 0` anywhere surfaces
/// before any group context is built.
pub fn execute_batch(
    space: &IndoorSpace,
    index: &CompositeIndex,
    store: &ObjectStore,
    queries: &[Query],
    options: &QueryOptions,
) -> Result<Vec<Outcome>, QueryError> {
    // Phase 1 for every query, in input order. Distance/path queries are
    // finished immediately — they run their own point-to-point search.
    let mut outcomes: Vec<Option<Outcome>> = Vec::with_capacity(queries.len());
    let mut prepped: Vec<Option<Prepped>> = Vec::with_capacity(queries.len());
    // Group key → slot in `groups`; groups keep first-seen order so the
    // evaluation order is deterministic. The map keeps bucketing O(n) for
    // large batches of mostly-distinct query points.
    let mut group_slots: HashMap<(u64, u64, u16), usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, query) in queries.iter().enumerate() {
        match *query {
            Query::Range { q, r } => {
                prepped.push(Some(Prepped::Range(range_prep(
                    space, index, store, q, r, options,
                )?)));
                outcomes.push(None);
            }
            Query::Knn { q, k } => {
                prepped.push(Some(Prepped::Knn(knn_prep(
                    space, index, store, q, k, options,
                )?)));
                outcomes.push(None);
            }
            Query::Distance { q, p } => {
                outcomes.push(Some(Outcome::Distance(execute_distance(
                    space, index, store, q, p,
                )?)));
                prepped.push(None);
                continue;
            }
            Query::Path { q, p } => {
                outcomes.push(Some(Outcome::Path(execute_path(
                    space, index, store, q, p,
                )?)));
                prepped.push(None);
                continue;
            }
        }
        let key = query.group_key().expect("context queries have a key");
        match group_slots.get(&key) {
            Some(&slot) => groups[slot].push(i),
            None => {
                group_slots.insert(key, groups.len());
                groups.push(vec![i]);
            }
        }
    }

    // Phases 2–4 per group: one banded context truncated at the maximum
    // of the members' reaches, one shared subregion cache.
    for members in groups {
        let q = prepped[members[0]]
            .as_ref()
            .expect("grouped queries are prepped")
            .query_point();

        // Maximum reach across the group, plus the kNN seed decompositions.
        let mut horizon = 0.0f64;
        let mut cache = SubregionCache::new();
        for &i in &members {
            let p = prepped[i].as_mut().expect("grouped queries are prepped");
            horizon = horizon.max(p.reach(options));
            if let Prepped::Knn(k) = p {
                cache.merge(std::mem::take(&mut k.seeds));
            }
        }

        // The context build (the banded row composition) is charged to
        // the group's first member; the rest record a reuse.
        let t = Instant::now();
        let mut ctx = EvalContext::new(space, store, index, q, horizon, options, cache)?;
        let build_ms = t.elapsed().as_secs_f64() * 1e3;
        for (j, &i) in members.iter().enumerate() {
            let p = prepped[i].as_mut().expect("grouped queries are prepped");
            let stats = p.stats_mut();
            if j == 0 {
                stats.subgraph_ms = build_ms;
                stats.dijkstras_run = 1;
                // Build-time shared-cache traffic is charged here too;
                // finish-phase traffic is drained per member.
                stats.shared_cache_lookups = ctx.shared_lookups;
                stats.shared_cache_hits = ctx.shared_hits;
                stats.shared_cache_misses = ctx.shared_misses;
                stats.shared_cache_evictions = ctx.shared_evictions;
            } else {
                stats.context_reuses = 1;
            }
        }

        for &i in &members {
            let outcome = match prepped[i].take().expect("grouped queries are prepped") {
                Prepped::Range(p) => Outcome::Range(range_finish(&mut ctx, p, options)?),
                Prepped::Knn(p) => Outcome::Knn(knn_finish(&mut ctx, p, options)?),
            };
            outcomes[i] = Some(outcome);
        }
    }

    Ok(outcomes
        .into_iter()
        .map(|o| o.expect("every query was finished"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Circle, Point2, Rect2};
    use idq_index::IndexConfig;
    use idq_model::FloorPlanBuilder;
    use idq_objects::{ObjectId, UncertainObject};

    /// Same two-floor world as the iRQ/ikNN unit tests.
    fn setup() -> (IndoorSpace, ObjectStore, CompositeIndex) {
        let mut b = FloorPlanBuilder::new(4.0);
        let mut rooms = Vec::new();
        for f in 0..2u16 {
            for i in 0..3 {
                rooms.push(
                    b.add_room(
                        f,
                        Rect2::from_bounds(20.0 * i as f64, 0.0, 20.0 * (i + 1) as f64, 10.0),
                    )
                    .unwrap(),
                );
            }
        }
        for f in 0..2usize {
            for i in 0..2 {
                b.add_door_between(
                    rooms[f * 3 + i],
                    rooms[f * 3 + i + 1],
                    Point2::new(20.0 * (i + 1) as f64, 5.0),
                )
                .unwrap();
            }
        }
        let st = b
            .add_staircase((0, 1), Rect2::from_bounds(60.0, 0.0, 64.0, 10.0))
            .unwrap();
        b.add_staircase_entrance(st, rooms[2], 0, Point2::new(60.0, 5.0))
            .unwrap();
        b.add_staircase_entrance(st, rooms[5], 1, Point2::new(60.0, 5.0))
            .unwrap();
        let space = b.finish().unwrap();

        let mut store = ObjectStore::new();
        let mut add = |id: u64, x: f64, f: u16| {
            store
                .insert(
                    UncertainObject::with_uniform_weights(
                        ObjectId(id),
                        Circle::new(Point2::new(x, 5.0), 2.0),
                        f,
                        vec![Point2::new(x - 1.0, 5.0), Point2::new(x + 1.0, 4.0)],
                    )
                    .unwrap(),
                )
                .unwrap();
        };
        add(1, 5.0, 0);
        add(2, 30.0, 0);
        add(3, 55.0, 0);
        add(4, 5.0, 1);
        add(5, 55.0, 1);
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        (space, store, index)
    }

    #[test]
    fn execute_matches_direct_calls() {
        let (space, store, index) = setup();
        let opts = QueryOptions::default();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(55.0, 5.0), 1);

        let out = execute(&space, &index, &store, &Query::Range { q, r: 40.0 }, &opts).unwrap();
        let direct = crate::irq::range_query(&space, &index, &store, q, 40.0, &opts).unwrap();
        assert_eq!(out.as_range().unwrap().results, direct.results);

        let out = execute(&space, &index, &store, &Query::Knn { q, k: 2 }, &opts).unwrap();
        let direct = crate::iknn::knn_query(&space, &index, &store, q, 2, &opts).unwrap();
        assert_eq!(out.as_knn().unwrap().results, direct.results);

        let out = execute(&space, &index, &store, &Query::Distance { q, p }, &opts).unwrap();
        let direct = indoor_distance(&space, index.doors_graph(), q, p).unwrap();
        assert_eq!(out.as_distance().unwrap().distance, direct);
        assert_eq!(out.stats().dijkstras_run, 1);

        let out = execute(&space, &index, &store, &Query::Path { q, p }, &opts).unwrap();
        let direct = shortest_path(&space, index.doors_graph(), q, p).unwrap();
        assert_eq!(out.as_path().unwrap().path, direct);
    }

    #[test]
    fn batch_shares_one_dijkstra_per_query_point() {
        let (space, store, index) = setup();
        let opts = QueryOptions::default();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let queries: Vec<Query> = [20.0, 40.0, 60.0, 80.0]
            .iter()
            .map(|&r| Query::Range { q, r })
            .collect();

        let outcomes = execute_batch(&space, &index, &store, &queries, &opts).unwrap();
        assert_eq!(outcomes.len(), queries.len());
        let dijkstras: usize = outcomes.iter().map(|o| o.stats().dijkstras_run).sum();
        let reuses: usize = outcomes.iter().map(|o| o.stats().context_reuses).sum();
        assert_eq!(dijkstras, 1, "one restricted Dijkstra for the group");
        assert_eq!(reuses, queries.len() - 1);

        // Results identical to single-issue execution.
        for (query, out) in queries.iter().zip(&outcomes) {
            let single = execute(&space, &index, &store, query, &opts).unwrap();
            assert_eq!(
                out.as_range().unwrap().results,
                single.as_range().unwrap().results
            );
        }
    }

    #[test]
    fn batch_groups_by_floor_and_point() {
        let (space, store, index) = setup();
        let opts = QueryOptions::default();
        let q0 = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let q1 = IndoorPoint::new(Point2::new(5.0, 5.0), 1); // same planar point, other floor
        let p = IndoorPoint::new(Point2::new(55.0, 5.0), 0);
        let queries = vec![
            Query::Range { q: q0, r: 40.0 },
            Query::Knn { q: q1, k: 2 },
            Query::Distance { q: q0, p },
            Query::Range { q: q1, r: 60.0 },
            Query::Knn { q: q0, k: 1 },
        ];
        let outcomes = execute_batch(&space, &index, &store, &queries, &opts).unwrap();
        // Two groups (q0, q1) → two context Dijkstras; the distance query
        // runs its own search.
        let dijkstras: usize = outcomes
            .iter()
            .zip(&queries)
            .filter(|(_, q)| !matches!(q, Query::Distance { .. } | Query::Path { .. }))
            .map(|(o, _)| o.stats().dijkstras_run)
            .sum();
        assert_eq!(dijkstras, 2);
        for (query, out) in queries.iter().zip(&outcomes) {
            let single = execute(&space, &index, &store, query, &opts).unwrap();
            match (out, single) {
                (Outcome::Range(a), Outcome::Range(b)) => assert_eq!(a.results, b.results),
                (Outcome::Knn(a), Outcome::Knn(b)) => assert_eq!(a.results, b.results),
                (Outcome::Distance(a), Outcome::Distance(b)) => {
                    assert_eq!(a.distance, b.distance)
                }
                _ => panic!("variant mismatch"),
            }
        }
    }

    #[test]
    fn batch_propagates_validation_errors() {
        let (space, store, index) = setup();
        let opts = QueryOptions::default();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let bad = vec![Query::Range { q, r: 40.0 }, Query::Range { q, r: -1.0 }];
        assert!(matches!(
            execute_batch(&space, &index, &store, &bad, &opts),
            Err(QueryError::BadRange(_))
        ));
        let bad = vec![Query::Knn { q, k: 0 }];
        assert!(matches!(
            execute_batch(&space, &index, &store, &bad, &opts),
            Err(QueryError::ZeroK)
        ));
        assert!(execute_batch(&space, &index, &store, &[], &opts)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn query_display_and_accessors() {
        let q = IndoorPoint::new(Point2::new(1.0, 2.0), 0);
        let p = IndoorPoint::new(Point2::new(3.0, 4.0), 1);
        assert_eq!(Query::Range { q, r: 5.0 }.query_point(), q);
        assert_eq!(Query::Knn { q, k: 3 }.query_point(), q);
        assert_eq!(Query::Distance { q, p }.query_point(), q);
        assert_eq!(Query::Path { q, p }.query_point(), q);
        assert!(Query::Range { q, r: 5.0 }.to_string().contains("iRQ"));
        assert!(Query::Knn { q, k: 3 }.to_string().contains("k=3"));
    }
}
