//! Shared evaluation machinery of the four-phase pipeline: the candidate
//! evaluation context caching subregions, restricted door distances and
//! the lazy full-graph fallback.

use crate::error::QueryError;
use crate::options::QueryOptions;
use idq_distance::{expected_indoor_distance, object_bounds, DoorDistances, ObjectBounds};
use idq_index::CompositeIndex;
use idq_model::{IndoorPoint, IndoorSpace, PartitionId};
use idq_objects::{ObjectId, ObjectStore, Subregions};
use std::collections::{HashMap, HashSet};

/// Per-query evaluation context.
///
/// Holds the restricted door distances of the subgraph phase and computes
/// bounds and exact expected distances per object, caching subregion
/// decompositions and lazily falling back to full-graph distances when the
/// restriction truncates a needed path.
pub(crate) struct EvalContext<'a> {
    pub space: &'a IndoorSpace,
    pub store: &'a ObjectStore,
    pub index: &'a CompositeIndex,
    pub q: IndoorPoint,
    pub dd: DoorDistances,
    full_dd: Option<DoorDistances>,
    subregions: HashMap<ObjectId, Subregions>,
    /// Number of refinements that needed the full-graph fallback.
    pub fallbacks: usize,
}

impl<'a> EvalContext<'a> {
    /// Builds the context, running the subgraph-phase Dijkstra restricted
    /// to `allowed` (or the full graph when `None`).
    pub fn new(
        space: &'a IndoorSpace,
        store: &'a ObjectStore,
        index: &'a CompositeIndex,
        q: IndoorPoint,
        allowed: Option<&HashSet<PartitionId>>,
    ) -> Result<Self, QueryError> {
        let graph = index.doors_graph();
        let dd = match allowed {
            Some(a) => DoorDistances::compute_restricted(space, graph, q, a)?,
            None => DoorDistances::compute(space, graph, q)?,
        };
        Ok(EvalContext {
            space,
            store,
            index,
            q,
            dd,
            full_dd: None,
            subregions: HashMap::new(),
            fallbacks: 0,
        })
    }

    /// Pre-seeds the subregion cache (used by `ikNNQ`, whose seed phase
    /// already decomposed the seed objects).
    pub fn preseed_subregions(&mut self, cache: HashMap<ObjectId, Subregions>) {
        self.subregions.extend(cache);
    }

    fn ensure_subregions(&mut self, id: ObjectId) -> Result<(), QueryError> {
        if !self.subregions.contains_key(&id) {
            let obj = self.store.get(id)?;
            // The o-table already knows which partitions the object
            // overlaps: point location per instance becomes a handful of
            // containment checks.
            let hint = object_partition_hint(self.index, id);
            let subs = Subregions::compute_with_hint(obj, self.space, &hint)?;
            self.subregions.insert(id, subs);
        }
        Ok(())
    }

    /// Decomposition of one object (cached).
    #[allow(dead_code)] // part of the crate-internal evaluation API
    pub fn subregions_of(&mut self, id: ObjectId) -> Result<&Subregions, QueryError> {
        self.ensure_subregions(id)?;
        Ok(&self.subregions[&id])
    }

    /// Phase-3 bounds for one object (Table III dispatch).
    pub fn bounds(&mut self, id: ObjectId) -> Result<ObjectBounds, QueryError> {
        self.ensure_subregions(id)?;
        let obj = self.store.get(id)?;
        Ok(object_bounds(
            self.space,
            &self.dd,
            obj,
            &self.subregions[&id],
        ))
    }

    fn full_dd(&mut self) -> Result<&DoorDistances, QueryError> {
        if self.full_dd.is_none() {
            self.full_dd = Some(DoorDistances::compute(
                self.space,
                self.index.doors_graph(),
                self.q,
            )?);
        }
        Ok(self.full_dd.as_ref().expect("just set"))
    }

    /// Exact expected indoor distance against the full graph.
    pub fn refine_full(&mut self, id: ObjectId) -> Result<f64, QueryError> {
        self.ensure_subregions(id)?;
        self.full_dd()?;
        let obj = self.store.get(id)?;
        let dd = self.full_dd.as_ref().expect("computed above");
        Ok(expected_indoor_distance(self.space, dd, obj, &self.subregions[&id]).value)
    }

    /// Refinement with a decision threshold: computes the expected
    /// distance against the restricted subgraph; when the result *exceeds*
    /// the threshold (so a truncated path could have inflated it past the
    /// accept boundary) it is recomputed against the full graph, making
    /// iRQ membership decisions exact (see the soundness argument in
    /// `idq_distance::bounds`).
    pub fn refine_with_threshold(
        &mut self,
        id: ObjectId,
        threshold: f64,
        options: &QueryOptions,
    ) -> Result<f64, QueryError> {
        if options.exact_refinement || !self.dd.is_restricted() {
            return self.refine_full_or_direct(id);
        }
        self.ensure_subregions(id)?;
        let obj = self.store.get(id)?;
        let v = expected_indoor_distance(self.space, &self.dd, obj, &self.subregions[&id]).value;
        if v <= threshold {
            return Ok(v); // restricted ≥ true, so acceptance is safe
        }
        self.fallbacks += 1;
        self.refine_full(id)
    }

    fn refine_full_or_direct(&mut self, id: ObjectId) -> Result<f64, QueryError> {
        if self.dd.is_restricted() {
            self.refine_full(id)
        } else {
            self.ensure_subregions(id)?;
            let obj = self.store.get(id)?;
            Ok(expected_indoor_distance(self.space, &self.dd, obj, &self.subregions[&id]).value)
        }
    }
}

/// The partitions an object overlaps according to the index's o-table
/// (via the h-table); empty when the object is not indexed.
pub(crate) fn object_partition_hint(index: &CompositeIndex, id: ObjectId) -> Vec<PartitionId> {
    let mut hint: Vec<PartitionId> = index
        .object_layer()
        .units_of(id)
        .map(|units| {
            units
                .iter()
                .filter_map(|&u| index.units().partition_of(u))
                .collect()
        })
        .unwrap_or_default();
    hint.sort_unstable();
    hint.dedup();
    hint
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Circle, Point2, Rect2};
    use idq_index::IndexConfig;
    use idq_model::FloorPlanBuilder;
    use idq_objects::UncertainObject;

    fn setup() -> (IndoorSpace, ObjectStore, CompositeIndex) {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        let space = b.finish().unwrap();
        let mut store = ObjectStore::new();
        store
            .insert(
                UncertainObject::with_uniform_weights(
                    ObjectId(1),
                    Circle::new(Point2::new(25.0, 5.0), 2.0),
                    0,
                    vec![Point2::new(24.0, 5.0), Point2::new(26.0, 5.0)],
                )
                .unwrap(),
            )
            .unwrap();
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        (space, store, index)
    }

    #[test]
    fn threshold_fallback_recovers_truncated_paths() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        // Restrict to the source partition only: the object is unreachable
        // in the subgraph.
        let allowed: HashSet<PartitionId> = HashSet::new();
        let mut ctx = EvalContext::new(&space, &store, &index, q, Some(&allowed)).unwrap();
        let b = ctx.bounds(ObjectId(1)).unwrap();
        assert!(b.upper.is_infinite(), "restricted bounds see no path");
        // Threshold refinement falls back to the full graph.
        let v = ctx
            .refine_with_threshold(ObjectId(1), 30.0, &QueryOptions::default())
            .unwrap();
        assert!(v.is_finite());
        assert_eq!(ctx.fallbacks, 1);
        // The full value matches an unrestricted context.
        let mut full = EvalContext::new(&space, &store, &index, q, None).unwrap();
        let fv = full
            .refine_with_threshold(ObjectId(1), 30.0, &QueryOptions::default())
            .unwrap();
        assert!((v - fv).abs() < 1e-9);
    }

    #[test]
    fn exact_refinement_option_uses_full_graph() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let allowed: HashSet<PartitionId> = HashSet::new();
        let mut ctx = EvalContext::new(&space, &store, &index, q, Some(&allowed)).unwrap();
        let opts = QueryOptions::default().with_exact_refinement();
        let v = ctx.refine_with_threshold(ObjectId(1), 0.0, &opts).unwrap();
        assert!(v.is_finite());
    }
}
