//! Shared evaluation machinery of the four-phase pipeline: the candidate
//! evaluation context caching subregions, horizon-banded door distances
//! composed from the shared distance cache, and the lazy full-graph
//! fallback.
//!
//! Since the shared-cache PR, **every** door-distance context here is
//! assembled by [`DoorDistances::compute_banded`] — a composition of
//! per-seed-door expansion rows — whether the rows come from the
//! service-lifetime [`idq_distance::DistanceCache`] (the default) or are
//! expanded locally (`distance_cache: false`). The two paths run the
//! same arithmetic on the same row prefixes, which is what makes the
//! off-switch bit-identical.

use crate::error::QueryError;
use crate::options::QueryOptions;
use idq_distance::{expected_indoor_distance, object_bounds, DoorDistances, DoorRow, ObjectBounds};
use idq_index::CompositeIndex;
use idq_model::{IndoorPoint, IndoorSpace, PartitionId};
use idq_objects::{ObjectId, ObjectStore, Subregions};
use std::collections::HashMap;
use std::sync::Arc;

/// A reusable cache of per-object subregion decompositions.
///
/// Decompositions are pure functions of an object's instance set and the
/// space, so a cache can be shared freely: the `ikNNQ` seed phase
/// pre-populates one with the decompositions it already computed, and
/// batched execution ([`crate::execute_batch`]) keeps one per query group
/// so that queries sharing a query point never decompose the same object
/// twice.
#[derive(Debug, Default)]
pub struct SubregionCache {
    map: HashMap<ObjectId, Subregions>,
}

impl SubregionCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caches one object's decomposition.
    pub fn insert(&mut self, id: ObjectId, subs: Subregions) {
        self.map.insert(id, subs);
    }

    /// Whether the object's decomposition is cached.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    /// Number of cached decompositions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Absorbs another cache (right-hand entries win on collision; entries
    /// are identical by construction anyway).
    pub fn merge(&mut self, other: SubregionCache) {
        self.map.extend(other.map);
    }
}

/// Per-query evaluation context.
///
/// Holds the restricted door distances of the subgraph phase and computes
/// bounds and exact expected distances per object, caching subregion
/// decompositions and lazily falling back to full-graph distances when the
/// restriction truncates a needed path.
pub(crate) struct EvalContext<'a> {
    pub space: &'a IndoorSpace,
    pub store: &'a ObjectStore,
    pub index: &'a CompositeIndex,
    pub q: IndoorPoint,
    pub dd: DoorDistances,
    full_dd: Option<DoorDistances>,
    subregions: SubregionCache,
    use_shared_cache: bool,
    cache_budget: usize,
    /// Number of refinements that needed the full-graph fallback.
    pub fallbacks: usize,
    /// Decompositions computed by this context (cache misses).
    pub subregions_computed: usize,
    /// Decompositions served from the cache.
    pub subregion_cache_hits: usize,
    /// Shared-distance-cache row lookups issued by this context.
    pub shared_lookups: usize,
    /// ... of which were served by a resident row.
    pub shared_hits: usize,
    /// ... of which had to expand a row.
    pub shared_misses: usize,
    /// Rows the budget evicted while this context was filling the cache.
    pub shared_evictions: usize,
}

/// Assembles a door-distance context at `horizon` by composing per-door
/// rows — from the shared cache when `use_shared` is set, freshly
/// expanded otherwise. Both paths read rows truncated at the requested
/// horizon, so the result is a pure function of `(q, horizon, geometry)`
/// and the on/off switch is bit-neutral. `counters` accumulates
/// `(lookups, hits, misses, evictions)`.
fn assemble_dd(
    space: &IndoorSpace,
    index: &CompositeIndex,
    q: IndoorPoint,
    horizon: f64,
    use_shared: bool,
    budget: usize,
    counters: &mut (usize, usize, usize, usize),
) -> Result<DoorDistances, QueryError> {
    let graph = index.doors_graph();
    Ok(if use_shared {
        let cache = index.distance_cache();
        DoorDistances::compute_banded(space, graph, q, horizon, |g, d, h| {
            let (row, fetch) = cache.row(g, d, h, budget);
            counters.0 += 1;
            if fetch.hit {
                counters.1 += 1;
            } else {
                counters.2 += 1;
            }
            counters.3 += fetch.evicted;
            row
        })?
    } else {
        // Cache off: expand rows locally at exactly the requested
        // horizon. Same composition, same truncated reads — bitwise the
        // same context, minus the memoization.
        DoorDistances::compute_banded(space, graph, q, horizon, |g, d, h| {
            Arc::new(DoorRow::expand(g, d, h))
        })?
    })
}

/// A complete (infinite-horizon) door-distance context for callers
/// outside the four-phase pipeline — monitors and other unrestricted
/// consumers. Honors `options.distance_cache`; per-query counters are
/// dropped (the cache's own global counters still tick).
pub(crate) fn complete_dd(
    space: &IndoorSpace,
    index: &CompositeIndex,
    q: IndoorPoint,
    options: &QueryOptions,
) -> Result<DoorDistances, QueryError> {
    let mut counters = (0, 0, 0, 0);
    assemble_dd(
        space,
        index,
        q,
        f64::INFINITY,
        options.distance_cache,
        options.distance_cache_bytes,
        &mut counters,
    )
}

impl<'a> EvalContext<'a> {
    /// Builds the context, assembling door distances truncated at
    /// `horizon` (pass `f64::INFINITY` for a complete context) from the
    /// shared distance cache per `options`. `cache` seeds the subregion
    /// store — pass `SubregionCache::new()` when nothing was decomposed
    /// yet.
    pub fn new(
        space: &'a IndoorSpace,
        store: &'a ObjectStore,
        index: &'a CompositeIndex,
        q: IndoorPoint,
        horizon: f64,
        options: &QueryOptions,
        cache: SubregionCache,
    ) -> Result<Self, QueryError> {
        let use_shared = options.distance_cache;
        let budget = options.distance_cache_bytes;
        let mut counters = (0, 0, 0, 0);
        let dd = assemble_dd(space, index, q, horizon, use_shared, budget, &mut counters)?;
        Ok(EvalContext {
            space,
            store,
            index,
            q,
            dd,
            full_dd: None,
            subregions: cache,
            use_shared_cache: use_shared,
            cache_budget: budget,
            fallbacks: 0,
            subregions_computed: 0,
            subregion_cache_hits: 0,
            shared_lookups: counters.0,
            shared_hits: counters.1,
            shared_misses: counters.2,
            shared_evictions: counters.3,
        })
    }

    /// Decomposition of one object, computed on first use and cached for
    /// every later bound or refinement that touches the same object.
    pub fn subregions_of(&mut self, id: ObjectId) -> Result<&Subregions, QueryError> {
        if self.subregions.contains(id) {
            self.subregion_cache_hits += 1;
        } else {
            let obj = self.store.get(id)?;
            // The o-table already knows which partitions the object
            // overlaps: point location per instance becomes a handful of
            // containment checks.
            let hint = object_partition_hint(self.index, id);
            let subs = Subregions::compute_with_hint(obj, self.space, &hint)?;
            self.subregions.insert(id, subs);
            self.subregions_computed += 1;
        }
        Ok(&self.subregions.map[&id])
    }

    /// Phase-3 bounds for one object (Table III dispatch).
    pub fn bounds(&mut self, id: ObjectId) -> Result<ObjectBounds, QueryError> {
        self.subregions_of(id)?;
        let obj = self.store.get(id)?;
        Ok(object_bounds(
            self.space,
            &self.dd,
            obj,
            &self.subregions.map[&id],
        ))
    }

    fn full_dd(&mut self) -> Result<&DoorDistances, QueryError> {
        if self.full_dd.is_none() {
            let mut counters = (0, 0, 0, 0);
            self.full_dd = Some(assemble_dd(
                self.space,
                self.index,
                self.q,
                f64::INFINITY,
                self.use_shared_cache,
                self.cache_budget,
                &mut counters,
            )?);
            self.shared_lookups += counters.0;
            self.shared_hits += counters.1;
            self.shared_misses += counters.2;
            self.shared_evictions += counters.3;
        }
        Ok(self.full_dd.as_ref().expect("just set"))
    }

    /// Exact expected indoor distance against the full graph.
    pub fn refine_full(&mut self, id: ObjectId) -> Result<f64, QueryError> {
        self.subregions_of(id)?;
        self.full_dd()?;
        let obj = self.store.get(id)?;
        let dd = self.full_dd.as_ref().expect("computed above");
        Ok(expected_indoor_distance(self.space, dd, obj, &self.subregions.map[&id]).value)
    }

    /// Refinement with a decision threshold: computes the expected
    /// distance against the restricted subgraph and returns it only when
    /// it is *provably exact* — within the accept threshold **and** below
    /// the subgraph's [`exit horizon`](idq_distance::DoorDistances::exit_horizon)
    /// (no path escaping the candidate set can undercut any instance
    /// cost). Otherwise the value is recomputed against the full graph.
    /// Every returned refinement value therefore equals the full-graph
    /// expected distance bit for bit, independent of how the horizon was
    /// chosen — which is what makes batched execution (whose shared
    /// context is truncated at the *maximum* of a group's reaches)
    /// return the same answers as single-issue execution.
    pub fn refine_with_threshold(
        &mut self,
        id: ObjectId,
        threshold: f64,
        options: &QueryOptions,
    ) -> Result<f64, QueryError> {
        if options.exact_refinement || !self.dd.is_restricted() {
            return self.refine_full_or_direct(id);
        }
        self.subregions_of(id)?;
        let obj = self.store.get(id)?;
        let e = expected_indoor_distance(self.space, &self.dd, obj, &self.subregions.map[&id]);
        if e.value <= threshold && e.max_instance_cost <= self.dd.exit_horizon() {
            return Ok(e.value); // provably exact, and acceptance is safe
        }
        self.fallbacks += 1;
        self.refine_full(id)
    }

    fn refine_full_or_direct(&mut self, id: ObjectId) -> Result<f64, QueryError> {
        if self.dd.is_restricted() {
            self.refine_full(id)
        } else {
            self.subregions_of(id)?;
            let obj = self.store.get(id)?;
            Ok(
                expected_indoor_distance(self.space, &self.dd, obj, &self.subregions.map[&id])
                    .value,
            )
        }
    }
}

/// The partitions an object overlaps according to the index's o-table
/// (via the h-table); empty when the object is not indexed.
pub(crate) fn object_partition_hint(index: &CompositeIndex, id: ObjectId) -> Vec<PartitionId> {
    let mut hint: Vec<PartitionId> = index
        .object_layer()
        .units_of(id)
        .map(|units| {
            units
                .iter()
                .filter_map(|&u| index.units().partition_of(u))
                .collect()
        })
        .unwrap_or_default();
    hint.sort_unstable();
    hint.dedup();
    hint
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Circle, Point2, Rect2};
    use idq_index::IndexConfig;
    use idq_model::FloorPlanBuilder;
    use idq_objects::UncertainObject;

    fn setup() -> (IndoorSpace, ObjectStore, CompositeIndex) {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        let space = b.finish().unwrap();
        let mut store = ObjectStore::new();
        store
            .insert(
                UncertainObject::with_uniform_weights(
                    ObjectId(1),
                    Circle::new(Point2::new(25.0, 5.0), 2.0),
                    0,
                    vec![Point2::new(24.0, 5.0), Point2::new(26.0, 5.0)],
                )
                .unwrap(),
            )
            .unwrap();
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        (space, store, index)
    }

    #[test]
    fn threshold_fallback_recovers_truncated_paths() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        // A 5 m horizon truncates the rows before the second door (10 m
        // from the first): the object in r2 is unreachable in the banded
        // context.
        let opts = QueryOptions::default();
        let mut ctx =
            EvalContext::new(&space, &store, &index, q, 5.0, &opts, SubregionCache::new()).unwrap();
        let b = ctx.bounds(ObjectId(1)).unwrap();
        assert!(b.upper.is_infinite(), "banded bounds see no path");
        // Threshold refinement falls back to the full graph.
        let v = ctx.refine_with_threshold(ObjectId(1), 30.0, &opts).unwrap();
        assert!(v.is_finite());
        assert_eq!(ctx.fallbacks, 1);
        // The full value matches a complete context, bit for bit.
        let mut full = EvalContext::new(
            &space,
            &store,
            &index,
            q,
            f64::INFINITY,
            &opts,
            SubregionCache::new(),
        )
        .unwrap();
        let fv = full
            .refine_with_threshold(ObjectId(1), 30.0, &opts)
            .unwrap();
        assert_eq!(v.to_bits(), fv.to_bits());
    }

    #[test]
    fn exact_refinement_option_uses_full_graph() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let opts = QueryOptions::default().with_exact_refinement();
        let mut ctx =
            EvalContext::new(&space, &store, &index, q, 5.0, &opts, SubregionCache::new()).unwrap();
        let v = ctx.refine_with_threshold(ObjectId(1), 0.0, &opts).unwrap();
        assert!(v.is_finite());
    }

    #[test]
    fn inflated_but_accepted_values_fall_back_to_exact() {
        // Three rooms: A spans the south, B and C split the north. The
        // object sits in C just above the B/C wall. The cheap route runs
        // through B (door dAB at (10,10), then dBC at (50,15)); a direct
        // but far door dAC at (90,10) also enters C. A 30 m horizon
        // truncates every row before dBC (≈40 m from both seeds), so the
        // banded context reaches C only through dAC and *inflates* the
        // object's value (≈120 m vs ≈49 m truth) — finitely, and below a
        // generous threshold. The exit-horizon check (min seed weight 5 +
        // horizon 30 = 35) rejects the inflated acceptance and forces the
        // full-graph fallback, keeping refinement horizon-independent.
        let mut b = FloorPlanBuilder::new(4.0);
        let a = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 100.0, 10.0))
            .unwrap();
        let rb = b
            .add_room(0, Rect2::from_bounds(0.0, 10.0, 50.0, 20.0))
            .unwrap();
        let rc = b
            .add_room(0, Rect2::from_bounds(50.0, 10.0, 100.0, 20.0))
            .unwrap();
        b.add_door_between(a, rb, Point2::new(10.0, 10.0)).unwrap(); // dAB
        b.add_door_between(a, rc, Point2::new(90.0, 10.0)).unwrap(); // dAC
        b.add_door_between(rb, rc, Point2::new(50.0, 15.0)).unwrap(); // dBC
        let space = b.finish().unwrap();
        let mut store = ObjectStore::new();
        store
            .insert(UncertainObject::point_object(
                ObjectId(1),
                idq_model::IndoorPoint::new(Point2::new(51.0, 11.0), 0),
            ))
            .unwrap();
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        let q = IndoorPoint::new(Point2::new(10.0, 5.0), 0);
        let opts = QueryOptions::default();

        let mut ctx = EvalContext::new(
            &space,
            &store,
            &index,
            q,
            30.0,
            &opts,
            SubregionCache::new(),
        )
        .unwrap();
        assert!(
            (ctx.dd.exit_horizon() - 35.0).abs() < 1e-9,
            "trust bound = min seed weight (5) + horizon (30)"
        );
        let v = ctx
            .refine_with_threshold(ObjectId(1), 200.0, &opts)
            .unwrap();
        assert_eq!(ctx.fallbacks, 1, "inexact-but-under-threshold falls back");
        let mut full = EvalContext::new(
            &space,
            &store,
            &index,
            q,
            f64::INFINITY,
            &opts,
            SubregionCache::new(),
        )
        .unwrap();
        assert!(full.dd.exit_horizon().is_infinite());
        let fv = full
            .refine_with_threshold(ObjectId(1), 200.0, &opts)
            .unwrap();
        assert_eq!(v.to_bits(), fv.to_bits(), "refined value is exact");
        // Truth: q → dAB (5) → dBC (√(40²+5²)) → object (√17).
        let truth = 5.0 + 1625f64.sqrt() + 17f64.sqrt();
        assert!((v - truth).abs() < 1e-9, "true route through B: {v}");
    }

    #[test]
    fn cache_counters_track_hits_and_misses() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let opts = QueryOptions::default();
        let mut ctx = EvalContext::new(
            &space,
            &store,
            &index,
            q,
            f64::INFINITY,
            &opts,
            SubregionCache::new(),
        )
        .unwrap();
        ctx.subregions_of(ObjectId(1)).unwrap();
        assert_eq!(ctx.subregions_computed, 1);
        ctx.bounds(ObjectId(1)).unwrap();
        assert_eq!(ctx.subregions_computed, 1);
        assert_eq!(ctx.subregion_cache_hits, 1);

        // A pre-seeded cache never recomputes.
        let mut seeded = SubregionCache::new();
        let subs = Subregions::compute(store.get(ObjectId(1)).unwrap(), &space).unwrap();
        seeded.insert(ObjectId(1), subs);
        assert_eq!(seeded.len(), 1);
        assert!(!seeded.is_empty());
        let mut ctx =
            EvalContext::new(&space, &store, &index, q, f64::INFINITY, &opts, seeded).unwrap();
        ctx.subregions_of(ObjectId(1)).unwrap();
        assert_eq!(ctx.subregions_computed, 0);
        assert_eq!(ctx.subregion_cache_hits, 1);
    }

    #[test]
    fn shared_cache_counters_and_off_switch() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let opts = QueryOptions::default();
        // Fresh index: the first context misses once per seed door.
        let ctx = EvalContext::new(
            &space,
            &store,
            &index,
            q,
            f64::INFINITY,
            &opts,
            SubregionCache::new(),
        )
        .unwrap();
        assert!(ctx.shared_lookups >= 1);
        assert_eq!(ctx.shared_misses, ctx.shared_lookups);
        assert_eq!(ctx.shared_hits, 0);
        // Same query point again: every row is resident now.
        let ctx2 = EvalContext::new(
            &space,
            &store,
            &index,
            q,
            f64::INFINITY,
            &opts,
            SubregionCache::new(),
        )
        .unwrap();
        assert_eq!(ctx2.shared_hits, ctx2.shared_lookups);
        assert_eq!(ctx2.shared_misses, 0);
        // Off switch: no lookups at all, identical distances.
        let off = QueryOptions::default().without_distance_cache();
        let ctx3 = EvalContext::new(
            &space,
            &store,
            &index,
            q,
            f64::INFINITY,
            &off,
            SubregionCache::new(),
        )
        .unwrap();
        assert_eq!(ctx3.shared_lookups, 0);
        assert_eq!(
            ctx3.shared_hits + ctx3.shared_misses + ctx3.shared_evictions,
            0
        );
        for d in space.doors() {
            assert_eq!(
                ctx3.dd.door_distance(d.id).to_bits(),
                ctx2.dd.door_distance(d.id).to_bits()
            );
        }
    }
}
