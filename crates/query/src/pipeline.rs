//! Shared evaluation machinery of the four-phase pipeline: the candidate
//! evaluation context caching subregions, restricted door distances and
//! the lazy full-graph fallback.

use crate::error::QueryError;
use crate::options::QueryOptions;
use idq_distance::{expected_indoor_distance, object_bounds, DoorDistances, ObjectBounds};
use idq_index::CompositeIndex;
use idq_model::{IndoorPoint, IndoorSpace, PartitionId};
use idq_objects::{ObjectId, ObjectStore, Subregions};
use std::collections::{HashMap, HashSet};

/// A reusable cache of per-object subregion decompositions.
///
/// Decompositions are pure functions of an object's instance set and the
/// space, so a cache can be shared freely: the `ikNNQ` seed phase
/// pre-populates one with the decompositions it already computed, and
/// batched execution ([`crate::execute_batch`]) keeps one per query group
/// so that queries sharing a query point never decompose the same object
/// twice.
#[derive(Debug, Default)]
pub struct SubregionCache {
    map: HashMap<ObjectId, Subregions>,
}

impl SubregionCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caches one object's decomposition.
    pub fn insert(&mut self, id: ObjectId, subs: Subregions) {
        self.map.insert(id, subs);
    }

    /// Whether the object's decomposition is cached.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    /// Number of cached decompositions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Absorbs another cache (right-hand entries win on collision; entries
    /// are identical by construction anyway).
    pub fn merge(&mut self, other: SubregionCache) {
        self.map.extend(other.map);
    }
}

/// Per-query evaluation context.
///
/// Holds the restricted door distances of the subgraph phase and computes
/// bounds and exact expected distances per object, caching subregion
/// decompositions and lazily falling back to full-graph distances when the
/// restriction truncates a needed path.
pub(crate) struct EvalContext<'a> {
    pub space: &'a IndoorSpace,
    pub store: &'a ObjectStore,
    pub index: &'a CompositeIndex,
    pub q: IndoorPoint,
    pub dd: DoorDistances,
    full_dd: Option<DoorDistances>,
    subregions: SubregionCache,
    /// Number of refinements that needed the full-graph fallback.
    pub fallbacks: usize,
    /// Decompositions computed by this context (cache misses).
    pub subregions_computed: usize,
    /// Decompositions served from the cache.
    pub subregion_cache_hits: usize,
}

impl<'a> EvalContext<'a> {
    /// Builds the context, running the subgraph-phase Dijkstra restricted
    /// to `allowed` (or the full graph when `None`). `cache` seeds the
    /// subregion store — pass `SubregionCache::new()` when nothing was
    /// decomposed yet.
    pub fn new(
        space: &'a IndoorSpace,
        store: &'a ObjectStore,
        index: &'a CompositeIndex,
        q: IndoorPoint,
        allowed: Option<&HashSet<PartitionId>>,
        cache: SubregionCache,
    ) -> Result<Self, QueryError> {
        let graph = index.doors_graph();
        let dd = match allowed {
            Some(a) => DoorDistances::compute_restricted(space, graph, q, a)?,
            None => DoorDistances::compute(space, graph, q)?,
        };
        Ok(EvalContext {
            space,
            store,
            index,
            q,
            dd,
            full_dd: None,
            subregions: cache,
            fallbacks: 0,
            subregions_computed: 0,
            subregion_cache_hits: 0,
        })
    }

    /// Decomposition of one object, computed on first use and cached for
    /// every later bound or refinement that touches the same object.
    pub fn subregions_of(&mut self, id: ObjectId) -> Result<&Subregions, QueryError> {
        if self.subregions.contains(id) {
            self.subregion_cache_hits += 1;
        } else {
            let obj = self.store.get(id)?;
            // The o-table already knows which partitions the object
            // overlaps: point location per instance becomes a handful of
            // containment checks.
            let hint = object_partition_hint(self.index, id);
            let subs = Subregions::compute_with_hint(obj, self.space, &hint)?;
            self.subregions.insert(id, subs);
            self.subregions_computed += 1;
        }
        Ok(&self.subregions.map[&id])
    }

    /// Phase-3 bounds for one object (Table III dispatch).
    pub fn bounds(&mut self, id: ObjectId) -> Result<ObjectBounds, QueryError> {
        self.subregions_of(id)?;
        let obj = self.store.get(id)?;
        Ok(object_bounds(
            self.space,
            &self.dd,
            obj,
            &self.subregions.map[&id],
        ))
    }

    fn full_dd(&mut self) -> Result<&DoorDistances, QueryError> {
        if self.full_dd.is_none() {
            self.full_dd = Some(DoorDistances::compute(
                self.space,
                self.index.doors_graph(),
                self.q,
            )?);
        }
        Ok(self.full_dd.as_ref().expect("just set"))
    }

    /// Exact expected indoor distance against the full graph.
    pub fn refine_full(&mut self, id: ObjectId) -> Result<f64, QueryError> {
        self.subregions_of(id)?;
        self.full_dd()?;
        let obj = self.store.get(id)?;
        let dd = self.full_dd.as_ref().expect("computed above");
        Ok(expected_indoor_distance(self.space, dd, obj, &self.subregions.map[&id]).value)
    }

    /// Refinement with a decision threshold: computes the expected
    /// distance against the restricted subgraph and returns it only when
    /// it is *provably exact* — within the accept threshold **and** below
    /// the subgraph's [`exit horizon`](idq_distance::DoorDistances::exit_horizon)
    /// (no path escaping the candidate set can undercut any instance
    /// cost). Otherwise the value is recomputed against the full graph.
    /// Every returned refinement value therefore equals the full-graph
    /// expected distance bit for bit, independent of how the restriction
    /// was chosen — which is what makes batched execution (whose shared
    /// context restricts to the *union* of a group's candidate
    /// partitions) return the same answers as single-issue execution.
    pub fn refine_with_threshold(
        &mut self,
        id: ObjectId,
        threshold: f64,
        options: &QueryOptions,
    ) -> Result<f64, QueryError> {
        if options.exact_refinement || !self.dd.is_restricted() {
            return self.refine_full_or_direct(id);
        }
        self.subregions_of(id)?;
        let obj = self.store.get(id)?;
        let e = expected_indoor_distance(self.space, &self.dd, obj, &self.subregions.map[&id]);
        if e.value <= threshold && e.max_instance_cost <= self.dd.exit_horizon() {
            return Ok(e.value); // provably exact, and acceptance is safe
        }
        self.fallbacks += 1;
        self.refine_full(id)
    }

    fn refine_full_or_direct(&mut self, id: ObjectId) -> Result<f64, QueryError> {
        if self.dd.is_restricted() {
            self.refine_full(id)
        } else {
            self.subregions_of(id)?;
            let obj = self.store.get(id)?;
            Ok(
                expected_indoor_distance(self.space, &self.dd, obj, &self.subregions.map[&id])
                    .value,
            )
        }
    }
}

/// The partitions an object overlaps according to the index's o-table
/// (via the h-table); empty when the object is not indexed.
pub(crate) fn object_partition_hint(index: &CompositeIndex, id: ObjectId) -> Vec<PartitionId> {
    let mut hint: Vec<PartitionId> = index
        .object_layer()
        .units_of(id)
        .map(|units| {
            units
                .iter()
                .filter_map(|&u| index.units().partition_of(u))
                .collect()
        })
        .unwrap_or_default();
    hint.sort_unstable();
    hint.dedup();
    hint
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Circle, Point2, Rect2};
    use idq_index::IndexConfig;
    use idq_model::FloorPlanBuilder;
    use idq_objects::UncertainObject;

    fn setup() -> (IndoorSpace, ObjectStore, CompositeIndex) {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        let space = b.finish().unwrap();
        let mut store = ObjectStore::new();
        store
            .insert(
                UncertainObject::with_uniform_weights(
                    ObjectId(1),
                    Circle::new(Point2::new(25.0, 5.0), 2.0),
                    0,
                    vec![Point2::new(24.0, 5.0), Point2::new(26.0, 5.0)],
                )
                .unwrap(),
            )
            .unwrap();
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        (space, store, index)
    }

    #[test]
    fn threshold_fallback_recovers_truncated_paths() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        // Restrict to the source partition only: the object is unreachable
        // in the subgraph.
        let allowed: HashSet<PartitionId> = HashSet::new();
        let mut ctx = EvalContext::new(
            &space,
            &store,
            &index,
            q,
            Some(&allowed),
            SubregionCache::new(),
        )
        .unwrap();
        let b = ctx.bounds(ObjectId(1)).unwrap();
        assert!(b.upper.is_infinite(), "restricted bounds see no path");
        // Threshold refinement falls back to the full graph.
        let v = ctx
            .refine_with_threshold(ObjectId(1), 30.0, &QueryOptions::default())
            .unwrap();
        assert!(v.is_finite());
        assert_eq!(ctx.fallbacks, 1);
        // The full value matches an unrestricted context.
        let mut full =
            EvalContext::new(&space, &store, &index, q, None, SubregionCache::new()).unwrap();
        let fv = full
            .refine_with_threshold(ObjectId(1), 30.0, &QueryOptions::default())
            .unwrap();
        assert!((v - fv).abs() < 1e-9);
    }

    #[test]
    fn exact_refinement_option_uses_full_graph() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let allowed: HashSet<PartitionId> = HashSet::new();
        let mut ctx = EvalContext::new(
            &space,
            &store,
            &index,
            q,
            Some(&allowed),
            SubregionCache::new(),
        )
        .unwrap();
        let opts = QueryOptions::default().with_exact_refinement();
        let v = ctx.refine_with_threshold(ObjectId(1), 0.0, &opts).unwrap();
        assert!(v.is_finite());
    }

    #[test]
    fn inflated_but_accepted_values_fall_back_to_exact() {
        // Two routes from q (room A) to the object (room B): a short
        // corridor S and a long corridor L. Restricting to {A, L, B}
        // inflates the value (30 m via L) while the truth is 20 m via S.
        // The inflated value sits below the threshold, so the pre-horizon
        // code would have returned it; the exit-horizon check (the escape
        // into S costs only 5 m) forces the full-graph fallback, keeping
        // refinement values restriction-independent.
        let mut b = FloorPlanBuilder::new(4.0);
        let a = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let s = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let bb = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        let l = b
            .add_room(0, Rect2::from_bounds(0.0, 10.0, 30.0, 20.0))
            .unwrap();
        b.add_door_between(a, s, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(s, bb, Point2::new(20.0, 5.0)).unwrap();
        b.add_door_between(a, l, Point2::new(5.0, 10.0)).unwrap();
        b.add_door_between(l, bb, Point2::new(25.0, 10.0)).unwrap();
        let space = b.finish().unwrap();
        let mut store = ObjectStore::new();
        store
            .insert(UncertainObject::point_object(
                ObjectId(1),
                idq_model::IndoorPoint::new(Point2::new(25.0, 5.0), 0),
            ))
            .unwrap();
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);

        let allowed: HashSet<PartitionId> = [a, l, bb].into_iter().collect();
        let mut ctx = EvalContext::new(
            &space,
            &store,
            &index,
            q,
            Some(&allowed),
            SubregionCache::new(),
        )
        .unwrap();
        assert!(
            ctx.dd.exit_horizon() <= 5.0 + 1e-9,
            "escape into S is cheap"
        );
        let v = ctx
            .refine_with_threshold(ObjectId(1), 50.0, &QueryOptions::default())
            .unwrap();
        assert_eq!(ctx.fallbacks, 1, "inexact-but-under-threshold falls back");
        let mut full =
            EvalContext::new(&space, &store, &index, q, None, SubregionCache::new()).unwrap();
        assert!(full.dd.exit_horizon().is_infinite());
        let fv = full
            .refine_with_threshold(ObjectId(1), 50.0, &QueryOptions::default())
            .unwrap();
        assert_eq!(v.to_bits(), fv.to_bits(), "refined value is exact");
        assert!((v - 20.0).abs() < 1e-9, "true route through S: {v}");
    }

    #[test]
    fn cache_counters_track_hits_and_misses() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut ctx =
            EvalContext::new(&space, &store, &index, q, None, SubregionCache::new()).unwrap();
        ctx.subregions_of(ObjectId(1)).unwrap();
        assert_eq!(ctx.subregions_computed, 1);
        ctx.bounds(ObjectId(1)).unwrap();
        assert_eq!(ctx.subregions_computed, 1);
        assert_eq!(ctx.subregion_cache_hits, 1);

        // A pre-seeded cache never recomputes.
        let mut seeded = SubregionCache::new();
        let subs = Subregions::compute(store.get(ObjectId(1)).unwrap(), &space).unwrap();
        seeded.insert(ObjectId(1), subs);
        assert_eq!(seeded.len(), 1);
        assert!(!seeded.is_empty());
        let mut ctx = EvalContext::new(&space, &store, &index, q, None, seeded).unwrap();
        ctx.subregions_of(ObjectId(1)).unwrap();
        assert_eq!(ctx.subregions_computed, 0);
        assert_eq!(ctx.subregion_cache_hits, 1);
    }
}
