//! Continuous range monitoring with computation reuse.
//!
//! The paper's future-work list (§VII) proposes reusing computational
//! effort when related queries arrive in a short period. The dominant
//! reusable artefact of the pipeline is the single-source door-distance
//! tree from the query point: for a *standing* range query (the airport
//! perimeter of §I), the query point never moves — only objects do. A
//! [`RangeMonitor`] therefore caches full-graph [`DoorDistances`] for its
//! query point and re-evaluates **only the updated object** on each object
//! update, falling back to a full refresh when the topology changes
//! (which invalidates cached distances). [`KnnMonitor`] applies the same
//! idea to a standing `ikNNQ(q, k)`: incremental top-k maintenance where
//! it is provably exact, and threshold re-verification (one fresh query)
//! whenever the result set may shrink.

use crate::error::QueryError;
use crate::options::QueryOptions;
use crate::pipeline::object_partition_hint;
use idq_distance::{expected_indoor_distance, object_bounds, DoorDistances};
use idq_index::CompositeIndex;
use idq_model::IndoorPoint;
use idq_model::IndoorSpace;
use idq_objects::{ObjectId, ObjectStore, Subregions};
use std::collections::BTreeSet;

/// A standing `iRQ(q, r)` kept current under object updates.
#[derive(Debug)]
pub struct RangeMonitor {
    q: IndoorPoint,
    r: f64,
    options: QueryOptions,
    /// Cached single-source door distances from `q` (full graph).
    dd: Option<DoorDistances>,
    /// Space version the cache is valid for.
    cached_version: u64,
    /// Current result set.
    inside: BTreeSet<ObjectId>,
}

/// Outcome of feeding one object update to the monitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorChange {
    /// The object entered the range.
    Entered,
    /// The object left the range.
    Left,
    /// Membership did not change.
    Unchanged,
}

impl std::fmt::Display for MonitorChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorChange::Entered => write!(f, "entered"),
            MonitorChange::Left => write!(f, "left"),
            MonitorChange::Unchanged => write!(f, "unchanged"),
        }
    }
}

impl RangeMonitor {
    /// Creates a monitor; call [`RangeMonitor::refresh`] to initialise the
    /// result set.
    pub fn new(q: IndoorPoint, r: f64, options: QueryOptions) -> Result<Self, QueryError> {
        if !r.is_finite() || r < 0.0 {
            return Err(QueryError::BadRange(r));
        }
        Ok(RangeMonitor {
            q,
            r,
            options,
            dd: None,
            cached_version: u64::MAX,
            inside: BTreeSet::new(),
        })
    }

    /// The standing query point.
    pub fn query_point(&self) -> IndoorPoint {
        self.q
    }

    /// The standing radius.
    pub fn radius(&self) -> f64 {
        self.r
    }

    /// The query options evaluations use.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// Replaces the query options (e.g. a serving engine's effective
    /// options widened because a larger uncertainty region arrived).
    /// Takes effect from the next evaluation; the cached distance tree
    /// stays valid — it is a full-graph artefact, independent of the
    /// options.
    pub fn set_options(&mut self, options: QueryOptions) {
        self.options = options;
    }

    /// Objects currently inside the range, ascending by id.
    pub fn current(&self) -> Vec<ObjectId> {
        self.inside.iter().copied().collect()
    }

    /// Whether an object is currently inside.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.inside.contains(&id)
    }

    fn ensure_dd(
        &mut self,
        space: &IndoorSpace,
        index: &CompositeIndex,
    ) -> Result<&DoorDistances, QueryError> {
        if self.dd.is_none() || self.cached_version != space.version() {
            self.dd = Some(crate::pipeline::complete_dd(
                space,
                index,
                self.q,
                &self.options,
            )?);
            self.cached_version = space.version();
        }
        Ok(self.dd.as_ref().expect("just ensured"))
    }

    /// Full re-evaluation through the indexed pipeline (used at start-up
    /// and after topology changes). Returns the objects inside.
    pub fn refresh(
        &mut self,
        space: &IndoorSpace,
        index: &CompositeIndex,
        store: &ObjectStore,
    ) -> Result<Vec<ObjectId>, QueryError> {
        let out = crate::irq::range_query(space, index, store, self.q, self.r, &self.options)?;
        self.inside = out.results.iter().map(|h| h.object).collect();
        // Drop the cached distance context; `ensure_dd` rebuilds it
        // lazily at the first incremental update that needs it. Keeping
        // the rebuild out of refresh makes registration (and topology
        // fallback) pay only for the query — a fleet of mostly-idle
        // monitors never materializes per-monitor distance vectors.
        self.dd = None;
        Ok(self.current())
    }

    /// Processes one object update (insert, move or re-sample): evaluates
    /// **only** that object against the cached distance tree — bounds
    /// first, exact expected distance only when they straddle `r`.
    pub fn on_object_update(
        &mut self,
        space: &IndoorSpace,
        index: &CompositeIndex,
        store: &ObjectStore,
        id: ObjectId,
    ) -> Result<MonitorChange, QueryError> {
        self.ensure_dd(space, index)?;
        let dd = self.dd.as_ref().expect("ensured above");
        let was_inside = self.inside.contains(&id);
        let obj = store.get(id)?;
        let hint = object_partition_hint(index, id);
        let subs = Subregions::compute_with_hint(obj, space, &hint)?;

        let inside_now = if self.options.use_pruning {
            let b = object_bounds(space, dd, obj, &subs);
            if b.upper <= self.r {
                true
            } else if b.lower > self.r {
                false
            } else {
                expected_indoor_distance(space, dd, obj, &subs).value <= self.r
            }
        } else {
            expected_indoor_distance(space, dd, obj, &subs).value <= self.r
        };

        Ok(match (was_inside, inside_now) {
            (false, true) => {
                self.inside.insert(id);
                MonitorChange::Entered
            }
            (true, false) => {
                self.inside.remove(&id);
                MonitorChange::Left
            }
            _ => MonitorChange::Unchanged,
        })
    }

    /// Absorbs a whole update delta — the net effect of a committed update
    /// batch — in one call: removals drop out of the result set, updated
    /// objects (inserts and moves) are re-evaluated against the cached
    /// distance tree, and a topology change falls back to one full
    /// [`RangeMonitor::refresh`]. Returns every membership change, ascending
    /// by object id. This is the raw form behind the engine-level
    /// `RangeMonitor::absorb(&report, &snapshot)` entry point.
    pub fn absorb_delta(
        &mut self,
        updated: &[ObjectId],
        removed: &[ObjectId],
        topology_changed: bool,
        space: &IndoorSpace,
        index: &CompositeIndex,
        store: &ObjectStore,
    ) -> Result<Vec<(ObjectId, MonitorChange)>, QueryError> {
        if topology_changed {
            let before = self.inside.clone();
            self.invalidate();
            self.refresh(space, index, store)?;
            let mut changes = Vec::new();
            for &id in before.difference(&self.inside) {
                changes.push((id, MonitorChange::Left));
            }
            for &id in self.inside.difference(&before) {
                changes.push((id, MonitorChange::Entered));
            }
            changes.sort_unstable_by_key(|(id, _)| *id);
            return Ok(changes);
        }
        let mut changes = Vec::new();
        for &id in removed {
            let change = self.on_object_removed(id);
            if change != MonitorChange::Unchanged {
                changes.push((id, change));
            }
        }
        for &id in updated {
            let change = self.on_object_update(space, index, store, id)?;
            if change != MonitorChange::Unchanged {
                changes.push((id, change));
            }
        }
        changes.sort_unstable_by_key(|(id, _)| *id);
        Ok(changes)
    }

    /// Processes an object removal.
    pub fn on_object_removed(&mut self, id: ObjectId) -> MonitorChange {
        if self.inside.remove(&id) {
            MonitorChange::Left
        } else {
            MonitorChange::Unchanged
        }
    }

    /// Invalidate after a topology change: the cached distance tree no
    /// longer reflects the space. Callers should [`RangeMonitor::refresh`]
    /// afterwards (cheap relative to re-pre-computing door-to-door
    /// distances, which this design never does).
    pub fn invalidate(&mut self) {
        self.dd = None;
        self.cached_version = u64::MAX;
    }
}

/// A standing `ikNNQ(q, k)` kept current under object updates — the kNN
/// twin of [`RangeMonitor`].
///
/// Caches the full-graph door-distance tree from `q` and maintains the
/// ranked top-k in exactly [`crate::iknn::knn_query`]'s order (ascending
/// `(distance, id)`). Object updates fold in incrementally where that is
/// provably equivalent to a fresh query: a non-member beating the current
/// kth (bounds first, exact expected distance only when they straddle the
/// threshold), a member improving, or any change while fewer than `k`
/// objects are reachable. When the result set may *shrink* — a member
/// worsened, became unreachable, or was removed — the kth threshold can
/// grow, which can admit objects the monitor never evaluated; the monitor
/// then **re-verifies** with one fresh query per absorbed batch rather
/// than guess. Either path leaves the ranking bit-identical to evaluating
/// `ikNNQ(q, k)` from scratch on the current state.
#[derive(Debug)]
pub struct KnnMonitor {
    q: IndoorPoint,
    k: usize,
    options: QueryOptions,
    /// Cached single-source door distances from `q` (full graph).
    dd: Option<DoorDistances>,
    /// Space version the cache is valid for.
    cached_version: u64,
    /// Current top-k, ascending by `(distance, id)` — fresh-query order.
    topk: Vec<(f64, ObjectId)>,
}

impl KnnMonitor {
    /// Creates a monitor; call [`KnnMonitor::refresh`] to initialise the
    /// result set.
    pub fn new(q: IndoorPoint, k: usize, options: QueryOptions) -> Result<Self, QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        Ok(KnnMonitor {
            q,
            k,
            options,
            dd: None,
            cached_version: u64::MAX,
            topk: Vec::new(),
        })
    }

    /// The standing query point.
    pub fn query_point(&self) -> IndoorPoint {
        self.q
    }

    /// The standing `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The query options evaluations use.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// Replaces the query options (see [`RangeMonitor::set_options`]).
    pub fn set_options(&mut self, options: QueryOptions) {
        self.options = options;
    }

    /// The current top-k as `(object, distance)`, ascending by
    /// `(distance, id)` — the exact order a fresh
    /// [`crate::iknn::knn_query`] returns. May hold fewer than `k` entries
    /// when fewer objects are reachable.
    pub fn ranked(&self) -> Vec<(ObjectId, f64)> {
        self.topk.iter().map(|&(d, id)| (id, d)).collect()
    }

    /// Objects currently in the top-k, ascending by id.
    pub fn current(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.topk.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// Whether an object is currently in the top-k.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.topk.iter().any(|&(_, m)| m == id)
    }

    /// The distance a candidate must beat to enter the result — the kth
    /// distance, or `+∞` while fewer than `k` objects are reachable (then
    /// *every* reachable object qualifies).
    pub fn threshold(&self) -> f64 {
        if self.topk.len() < self.k {
            f64::INFINITY
        } else {
            self.topk.last().map_or(f64::INFINITY, |&(d, _)| d)
        }
    }

    fn ensure_dd(&mut self, space: &IndoorSpace, index: &CompositeIndex) -> Result<(), QueryError> {
        if self.dd.is_none() || self.cached_version != space.version() {
            self.dd = Some(crate::pipeline::complete_dd(
                space,
                index,
                self.q,
                &self.options,
            )?);
            self.cached_version = space.version();
        }
        Ok(())
    }

    fn resort(&mut self) {
        self.topk.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite distances")
                .then(a.1.cmp(&b.1))
        });
    }

    /// Full re-evaluation through the indexed pipeline (used at start-up
    /// and after topology changes or shrink re-verification). Returns the
    /// ranked result.
    pub fn refresh(
        &mut self,
        space: &IndoorSpace,
        index: &CompositeIndex,
        store: &ObjectStore,
    ) -> Result<Vec<(ObjectId, f64)>, QueryError> {
        let out = crate::iknn::knn_query(space, index, store, self.q, self.k, &self.options)?;
        self.topk = out.results.iter().map(|h| (h.distance, h.object)).collect();
        // Drop the cached distance context; `ensure_dd` rebuilds it
        // lazily at the first incremental update that needs it (see the
        // range monitor's refresh for the registration-cost rationale).
        self.dd = None;
        Ok(self.ranked())
    }

    /// Folds one object update into the top-k. Returns `true` when the
    /// incremental step is not provably exact — the result set may shrink,
    /// raising the threshold — and the caller must fall back to a fresh
    /// re-query.
    fn absorb_object_update(
        &mut self,
        space: &IndoorSpace,
        index: &CompositeIndex,
        store: &ObjectStore,
        id: ObjectId,
    ) -> Result<bool, QueryError> {
        self.ensure_dd(space, index)?;
        let dd = self.dd.as_ref().expect("ensured above");
        let obj = store.get(id)?;
        let hint = object_partition_hint(index, id);
        let subs = Subregions::compute_with_hint(obj, space, &hint)?;

        if let Some(pos) = self.topk.iter().position(|&(_, m)| m == id) {
            let old = self.topk[pos].0;
            let d = expected_indoor_distance(space, dd, obj, &subs).value;
            if !d.is_finite() || d > old {
                // A member worsened: objects the monitor never evaluated
                // may now beat the (grown) threshold. Re-verify.
                return Ok(true);
            }
            self.topk[pos].0 = d;
            self.resort();
            return Ok(false);
        }

        if self.topk.len() < self.k {
            // Fewer than k reachable: every reachable object qualifies.
            let d = expected_indoor_distance(space, dd, obj, &subs).value;
            if d.is_finite() {
                self.topk.push((d, id));
                self.resort();
            }
            return Ok(false);
        }

        let &(dk, idk) = self.topk.last().expect("len == k >= 1");
        let d = if self.options.use_pruning {
            let b = object_bounds(space, dd, obj, &subs);
            if b.lower > dk {
                // Cannot beat the kth even on a tie: d ≥ lower > dk.
                return Ok(false);
            }
            expected_indoor_distance(space, dd, obj, &subs).value
        } else {
            expected_indoor_distance(space, dd, obj, &subs).value
        };
        if d.is_finite() && (d < dk || (d == dk && id < idk)) {
            self.topk.pop();
            self.topk.push((d, id));
            self.resort();
        }
        Ok(false)
    }

    /// Absorbs a whole update delta in one call — the kNN counterpart of
    /// [`RangeMonitor::absorb_delta`]. Incremental per-object maintenance
    /// where exact, one fresh re-query for the whole batch when the
    /// threshold may have grown. Returns every **membership** change,
    /// ascending by object id (rank-only changes are visible through
    /// [`KnnMonitor::ranked`]).
    pub fn absorb_delta(
        &mut self,
        updated: &[ObjectId],
        removed: &[ObjectId],
        topology_changed: bool,
        space: &IndoorSpace,
        index: &CompositeIndex,
        store: &ObjectStore,
    ) -> Result<Vec<(ObjectId, MonitorChange)>, QueryError> {
        let before: BTreeSet<ObjectId> = self.topk.iter().map(|&(_, id)| id).collect();
        let mut need_refresh = topology_changed;
        if topology_changed {
            self.invalidate();
        }
        // A removed member shrinks the set: the threshold grows.
        need_refresh = need_refresh || removed.iter().any(|id| before.contains(id));
        if !need_refresh {
            for &id in updated {
                if self.absorb_object_update(space, index, store, id)? {
                    need_refresh = true;
                    break;
                }
            }
        }
        if need_refresh {
            self.refresh(space, index, store)?;
        }
        let after: BTreeSet<ObjectId> = self.topk.iter().map(|&(_, id)| id).collect();
        let mut changes: Vec<(ObjectId, MonitorChange)> = Vec::new();
        for &id in before.difference(&after) {
            changes.push((id, MonitorChange::Left));
        }
        for &id in after.difference(&before) {
            changes.push((id, MonitorChange::Entered));
        }
        changes.sort_unstable_by_key(|(id, _)| *id);
        Ok(changes)
    }

    /// Invalidate after a topology change (see
    /// [`RangeMonitor::invalidate`]).
    pub fn invalidate(&mut self) {
        self.dd = None;
        self.cached_version = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Point2, Rect2};
    use idq_index::IndexConfig;
    use idq_model::FloorPlanBuilder;
    use idq_objects::UncertainObject;

    fn setup() -> (IndoorSpace, ObjectStore, CompositeIndex) {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        let space = b.finish().unwrap();
        let store = ObjectStore::new();
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        (space, store, index)
    }

    fn point_obj(id: u64, x: f64) -> UncertainObject {
        UncertainObject::point_object(
            ObjectId(id),
            idq_model::IndoorPoint::new(Point2::new(x, 5.0), 0),
        )
    }

    fn move_to(
        store: &mut ObjectStore,
        index: &mut CompositeIndex,
        space: &IndoorSpace,
        id: u64,
        x: f64,
    ) {
        let obj = point_obj(id, x);
        if store.contains(ObjectId(id)) {
            store.remove(ObjectId(id)).unwrap();
            store.insert(obj).unwrap();
            index
                .update_object(space, store.get(ObjectId(id)).unwrap())
                .unwrap();
        } else {
            index.insert_object(space, &obj).unwrap();
            store.insert(obj).unwrap();
        }
    }

    #[test]
    fn incremental_tracking_matches_fresh_queries() {
        let (space, mut store, mut index) = setup();
        let q = idq_model::IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut mon = RangeMonitor::new(q, 15.0, QueryOptions::default()).unwrap();
        mon.refresh(&space, &index, &store).unwrap();
        assert!(mon.current().is_empty());

        // Object appears inside the range.
        move_to(&mut store, &mut index, &space, 1, 12.0);
        let c = mon
            .on_object_update(&space, &index, &store, ObjectId(1))
            .unwrap();
        assert_eq!(c, MonitorChange::Entered);
        assert!(mon.contains(ObjectId(1)));

        // It wanders out.
        move_to(&mut store, &mut index, &space, 1, 28.0);
        let c = mon
            .on_object_update(&space, &index, &store, ObjectId(1))
            .unwrap();
        assert_eq!(c, MonitorChange::Left);

        // Cross-check against a fresh range query after a series of moves.
        for (id, x) in [(2u64, 5.0), (3, 16.0), (4, 25.0)] {
            move_to(&mut store, &mut index, &space, id, x);
            mon.on_object_update(&space, &index, &store, ObjectId(id))
                .unwrap();
        }
        let fresh =
            crate::irq::range_query(&space, &index, &store, q, 15.0, &QueryOptions::default())
                .unwrap();
        let fresh_ids: Vec<ObjectId> = fresh.results.iter().map(|h| h.object).collect();
        assert_eq!(mon.current(), fresh_ids);
    }

    #[test]
    fn removal_and_topology_invalidation() {
        let (mut space, mut store, mut index) = setup();
        let q = idq_model::IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut mon = RangeMonitor::new(q, 25.0, QueryOptions::default()).unwrap();
        move_to(&mut store, &mut index, &space, 1, 15.0);
        mon.refresh(&space, &index, &store).unwrap();
        assert!(mon.contains(ObjectId(1)));

        // Removal.
        index.remove_object(ObjectId(1)).unwrap();
        store.remove(ObjectId(1)).unwrap();
        assert_eq!(mon.on_object_removed(ObjectId(1)), MonitorChange::Left);
        assert_eq!(mon.on_object_removed(ObjectId(1)), MonitorChange::Unchanged);

        // Topology change: close the first door, refresh, and verify the
        // monitor agrees with a fresh query (nothing reachable anymore).
        move_to(&mut store, &mut index, &space, 2, 15.0);
        mon.on_object_update(&space, &index, &store, ObjectId(2))
            .unwrap();
        assert!(mon.contains(ObjectId(2)));
        let d = space.doors().next().unwrap().id;
        let ev = space.close_door(d).unwrap();
        index.apply_topology(&space, &store, &ev).unwrap();
        mon.invalidate();
        let now = mon.refresh(&space, &index, &store).unwrap();
        assert!(now.is_empty(), "door closed: nothing in range");
    }

    #[test]
    fn stale_cache_is_detected_via_version() {
        let (mut space, mut store, mut index) = setup();
        let q = idq_model::IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut mon = RangeMonitor::new(q, 25.0, QueryOptions::default()).unwrap();
        mon.refresh(&space, &index, &store).unwrap();
        // A topology change bumps the version; the next update recomputes
        // the cached tree automatically (no invalidate() needed).
        let d = space.doors().next().unwrap().id;
        let ev = space.close_door(d).unwrap();
        index.apply_topology(&space, &store, &ev).unwrap();
        move_to(&mut store, &mut index, &space, 9, 15.0);
        let c = mon
            .on_object_update(&space, &index, &store, ObjectId(9))
            .unwrap();
        assert_eq!(c, MonitorChange::Unchanged, "unreachable after door close");
    }

    #[test]
    fn absorb_delta_matches_per_object_feeding() {
        let (mut space, mut store, mut index) = setup();
        let q = idq_model::IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut mon = RangeMonitor::new(q, 15.0, QueryOptions::default()).unwrap();
        mon.refresh(&space, &index, &store).unwrap();
        // One insert inside, one insert outside, then a removal: absorbed
        // as one delta.
        move_to(&mut store, &mut index, &space, 1, 12.0);
        move_to(&mut store, &mut index, &space, 2, 28.0);
        move_to(&mut store, &mut index, &space, 3, 8.0);
        index.remove_object(ObjectId(3)).unwrap();
        store.remove(ObjectId(3)).unwrap();
        let changes = mon
            .absorb_delta(
                &[ObjectId(1), ObjectId(2)],
                &[ObjectId(3)],
                false,
                &space,
                &index,
                &store,
            )
            .unwrap();
        assert_eq!(changes, vec![(ObjectId(1), MonitorChange::Entered)]);
        assert_eq!(mon.current(), vec![ObjectId(1)]);

        // A topology flag forces the refresh fallback and reports the net
        // membership diff.
        let d = space.doors().next().unwrap().id;
        let ev = space.close_door(d).unwrap();
        index.apply_topology(&space, &store, &ev).unwrap();
        let changes = mon
            .absorb_delta(&[], &[], true, &space, &index, &store)
            .unwrap();
        assert_eq!(changes, vec![(ObjectId(1), MonitorChange::Left)]);
        assert!(mon.current().is_empty());
    }

    #[test]
    fn bad_radius_rejected() {
        let q = idq_model::IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        assert!(RangeMonitor::new(q, f64::NAN, QueryOptions::default()).is_err());
        assert!(RangeMonitor::new(q, -1.0, QueryOptions::default()).is_err());
        assert!(KnnMonitor::new(q, 0, QueryOptions::default()).is_err());
    }

    /// Ranked result of a fresh kNN on the current state.
    fn fresh_knn(
        space: &IndoorSpace,
        index: &CompositeIndex,
        store: &ObjectStore,
        q: idq_model::IndoorPoint,
        k: usize,
    ) -> Vec<(ObjectId, f64)> {
        crate::iknn::knn_query(space, index, store, q, k, &QueryOptions::default())
            .unwrap()
            .results
            .iter()
            .map(|h| (h.object, h.distance))
            .collect()
    }

    #[test]
    fn knn_monitor_tracks_fresh_queries_incrementally() {
        let (space, mut store, mut index) = setup();
        let q = idq_model::IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut mon = KnnMonitor::new(q, 2, QueryOptions::default()).unwrap();
        mon.refresh(&space, &index, &store).unwrap();
        assert!(mon.ranked().is_empty());
        assert_eq!(mon.threshold(), f64::INFINITY, "fewer than k reachable");

        // Fill up below k, then admit a closer non-member, then worsen a
        // member (the shrink path), checking the ranking against a fresh
        // query after every absorbed delta.
        type Step<'a> = (&'a [(u64, f64)], &'a [u64]);
        let steps: &[Step] = &[
            (&[(1, 12.0)], &[]),           // first object: len < k
            (&[(2, 25.0)], &[]),           // second: len == k
            (&[(3, 5.0)], &[]),            // closer non-member admits
            (&[(1, 28.0)], &[]),           // member worsens: re-verify
            (&[(2, 6.0), (4, 14.0)], &[]), // mixed batch
            (&[], &[3]),                   // removed member: re-verify
        ];
        for (moves, removals) in steps {
            for &(id, x) in *moves {
                move_to(&mut store, &mut index, &space, id, x);
            }
            for &id in *removals {
                index.remove_object(ObjectId(id)).unwrap();
                store.remove(ObjectId(id)).unwrap();
            }
            let updated: Vec<ObjectId> = moves.iter().map(|&(id, _)| ObjectId(id)).collect();
            let removed: Vec<ObjectId> = removals.iter().map(|&id| ObjectId(id)).collect();
            mon.absorb_delta(&updated, &removed, false, &space, &index, &store)
                .unwrap();
            assert_eq!(
                mon.ranked(),
                fresh_knn(&space, &index, &store, q, 2),
                "after moves {moves:?} removals {removals:?}"
            );
        }
    }

    #[test]
    fn knn_monitor_membership_changes_and_topology_refresh() {
        let (mut space, mut store, mut index) = setup();
        let q = idq_model::IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut mon = KnnMonitor::new(q, 1, QueryOptions::default()).unwrap();
        move_to(&mut store, &mut index, &space, 1, 15.0);
        move_to(&mut store, &mut index, &space, 2, 25.0);
        mon.refresh(&space, &index, &store).unwrap();
        assert!(mon.contains(ObjectId(1)));
        assert_eq!(mon.current(), vec![ObjectId(1)]);

        // The far object moves closer than the current 1-NN (staying
        // behind the first door, so the door close below cuts it off).
        move_to(&mut store, &mut index, &space, 2, 12.0);
        let changes = mon
            .absorb_delta(&[ObjectId(2)], &[], false, &space, &index, &store)
            .unwrap();
        assert_eq!(
            changes,
            vec![
                (ObjectId(1), MonitorChange::Left),
                (ObjectId(2), MonitorChange::Entered)
            ]
        );

        // Closing the first door makes everything unreachable: the
        // topology flag forces a refresh and the set empties.
        let d = space.doors().next().unwrap().id;
        let ev = space.close_door(d).unwrap();
        index.apply_topology(&space, &store, &ev).unwrap();
        let changes = mon
            .absorb_delta(&[], &[], true, &space, &index, &store)
            .unwrap();
        assert_eq!(changes, vec![(ObjectId(2), MonitorChange::Left)]);
        assert!(mon.ranked().is_empty());
        assert_eq!(mon.ranked(), fresh_knn(&space, &index, &store, q, 1));
    }
}
