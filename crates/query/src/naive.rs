//! Brute-force oracle evaluation: no index, no bounds, no pruning.
//!
//! One full-graph Dijkstra from the query point, then the exact expected
//! indoor distance of *every* object by per-instance evaluation. The
//! oracle defines correctness for the optimized pipeline (the equivalence
//! tests in `irq`/`iknn` and the cross-crate integration tests) and serves
//! as the unindexed baseline in benchmarks.

use crate::error::QueryError;
use idq_distance::{expected::expected_indoor_distance_naive, DoorDistances};
use idq_geom::OrdF64;
use idq_model::IndoorPoint;
use idq_model::{DoorsGraph, IndoorSpace};
use idq_objects::{ObjectId, ObjectStore};

/// All objects with expected indoor distance ≤ `r`, sorted by object id.
pub fn naive_range(
    space: &IndoorSpace,
    graph: &DoorsGraph,
    store: &ObjectStore,
    q: IndoorPoint,
    r: f64,
) -> Result<Vec<(ObjectId, f64)>, QueryError> {
    if !r.is_finite() || r < 0.0 {
        return Err(QueryError::BadRange(r));
    }
    let dd = DoorDistances::compute(space, graph, q)?;
    let mut out = Vec::new();
    for id in store.ids_sorted() {
        let obj = store.get(id)?;
        let v = expected_indoor_distance_naive(space, &dd, obj);
        if v <= r {
            out.push((id, v));
        }
    }
    Ok(out)
}

/// The `k` objects with the smallest expected indoor distance, ascending
/// (ties broken by object id); unreachable objects are excluded.
pub fn naive_knn(
    space: &IndoorSpace,
    graph: &DoorsGraph,
    store: &ObjectStore,
    q: IndoorPoint,
    k: usize,
) -> Result<Vec<(ObjectId, f64)>, QueryError> {
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    let dd = DoorDistances::compute(space, graph, q)?;
    let mut scored: Vec<(OrdF64, ObjectId)> = Vec::with_capacity(store.len());
    for id in store.ids_sorted() {
        let obj = store.get(id)?;
        let v = expected_indoor_distance_naive(space, &dd, obj);
        if v.is_finite() {
            scored.push((OrdF64(v), id));
        }
    }
    scored.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    Ok(scored.into_iter().map(|(d, id)| (id, d.0)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Circle, Point2, Rect2};
    use idq_model::FloorPlanBuilder;
    use idq_objects::UncertainObject;

    fn setup() -> (IndoorSpace, DoorsGraph, ObjectStore) {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        let space = b.finish().unwrap();
        let graph = DoorsGraph::build(&space);
        let mut store = ObjectStore::new();
        for (id, x) in [(1u64, 2.0), (2, 8.0), (3, 15.0)] {
            store
                .insert(
                    UncertainObject::with_uniform_weights(
                        ObjectId(id),
                        Circle::new(Point2::new(x, 5.0), 1.0),
                        0,
                        vec![Point2::new(x, 5.0)],
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        (space, graph, store)
    }

    #[test]
    fn range_and_knn_are_consistent() {
        let (space, graph, store) = setup();
        let q = IndoorPoint::new(Point2::new(1.0, 5.0), 0);
        let knn = naive_knn(&space, &graph, &store, q, 3).unwrap();
        assert_eq!(knn.len(), 3);
        assert_eq!(knn[0].0, ObjectId(1));
        // The range at the 2nd distance contains exactly the first two.
        let rng = naive_range(&space, &graph, &store, q, knn[1].1).unwrap();
        assert_eq!(rng.len(), 2);
    }

    #[test]
    fn unreachable_objects_are_excluded() {
        let (mut space, _, store) = setup();
        let d = space.doors().next().unwrap().id;
        space.close_door(d).unwrap();
        let graph = DoorsGraph::build(&space);
        let q = IndoorPoint::new(Point2::new(1.0, 5.0), 0);
        let knn = naive_knn(&space, &graph, &store, q, 3).unwrap();
        assert_eq!(knn.len(), 2, "object 3 is sealed off");
        let rng = naive_range(&space, &graph, &store, q, 1e9).unwrap();
        assert_eq!(rng.len(), 2);
    }
}
