//! Per-query statistics: the raw material of the paper's evaluation
//! figures (phase breakdowns for Fig. 12(b)/13(b), pruning ratios for
//! Fig. 14, retrieval counts for Fig. 15(a)).

/// Phase timings and pruning counters of one query execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryStats {
    /// Phase 1 (filtering) wall time, ms.
    pub filtering_ms: f64,
    /// Phase 2 (subgraph Dijkstra) wall time, ms.
    pub subgraph_ms: f64,
    /// Phase 3 (bound pruning) wall time, ms.
    pub pruning_ms: f64,
    /// Phase 4 (refinement) wall time, ms.
    pub refinement_ms: f64,
    /// Objects in the store at query time (`|O|`).
    pub total_objects: usize,
    /// Candidates surviving the filtering phase (`|Ro|`).
    pub candidates_after_filter: usize,
    /// Candidate partitions (`|Rp|`).
    pub partitions_retrieved: usize,
    /// Objects accepted outright by their upper bound.
    pub accepted_by_bounds: usize,
    /// Objects discarded by their lower bound.
    pub pruned_by_bounds: usize,
    /// Objects whose exact expected distance was computed.
    pub refined: usize,
    /// Refinements that needed the full-graph Dijkstra fallback.
    pub full_graph_fallbacks: usize,
    /// indR-tree nodes visited during filtering.
    pub nodes_visited: usize,
    /// Leaf entries checked during filtering.
    pub entries_checked: usize,
    /// Subgraph-phase Dijkstra runs charged to this query. A single-issue
    /// query always runs its own (1); in a batch group only the query that
    /// builds the shared evaluation context pays for the run, so summing
    /// over a batch counts the Dijkstras actually executed.
    pub dijkstras_run: usize,
    /// 1 when this query reused a shared evaluation context built by an
    /// earlier query of its batch group, 0 otherwise.
    pub context_reuses: usize,
    /// Subregion decompositions computed while evaluating this query.
    pub subregions_computed: usize,
    /// Subregion decompositions found already cached (pre-seeded by the
    /// kNN seed phase or left behind by earlier queries of the group).
    pub subregion_cache_hits: usize,
    /// Shared-distance-cache row lookups this query issued (context
    /// build + lazy full-graph fallbacks). Always
    /// `shared_cache_hits + shared_cache_misses`.
    pub shared_cache_lookups: usize,
    /// Lookups served by a resident row of the shared distance cache.
    pub shared_cache_hits: usize,
    /// Lookups that expanded (and cached) a fresh row.
    pub shared_cache_misses: usize,
    /// Rows the shared cache's byte budget evicted during this query.
    pub shared_cache_evictions: usize,
    /// Approximate resident bytes of the shared distance cache after the
    /// query — a gauge, not a per-query delta (0 when the cache is off).
    pub shared_cache_bytes: usize,
}

impl QueryStats {
    /// Total query time across the four phases, ms.
    pub fn total_ms(&self) -> f64 {
        self.filtering_ms + self.subgraph_ms + self.pruning_ms + self.refinement_ms
    }

    /// Fraction of all objects disqualified by the *filtering* phase
    /// (Fig. 14(a)/(c), series "Filtering").
    pub fn filtering_ratio(&self) -> f64 {
        if self.total_objects == 0 {
            return 0.0;
        }
        1.0 - self.candidates_after_filter as f64 / self.total_objects as f64
    }

    /// Fraction of all objects disqualified after the *pruning* phase:
    /// everything except those needing refinement or accepted as results
    /// (Fig. 14(a)/(c), series "Pruning").
    pub fn pruning_ratio(&self) -> f64 {
        if self.total_objects == 0 {
            return 0.0;
        }
        1.0 - self.refined as f64 / self.total_objects as f64
    }

    /// Accumulates another run (for averaging over a query workload).
    pub fn accumulate(&mut self, other: &QueryStats) {
        self.filtering_ms += other.filtering_ms;
        self.subgraph_ms += other.subgraph_ms;
        self.pruning_ms += other.pruning_ms;
        self.refinement_ms += other.refinement_ms;
        self.total_objects += other.total_objects;
        self.candidates_after_filter += other.candidates_after_filter;
        self.partitions_retrieved += other.partitions_retrieved;
        self.accepted_by_bounds += other.accepted_by_bounds;
        self.pruned_by_bounds += other.pruned_by_bounds;
        self.refined += other.refined;
        self.full_graph_fallbacks += other.full_graph_fallbacks;
        self.nodes_visited += other.nodes_visited;
        self.entries_checked += other.entries_checked;
        self.dijkstras_run += other.dijkstras_run;
        self.context_reuses += other.context_reuses;
        self.subregions_computed += other.subregions_computed;
        self.subregion_cache_hits += other.subregion_cache_hits;
        self.shared_cache_lookups += other.shared_cache_lookups;
        self.shared_cache_hits += other.shared_cache_hits;
        self.shared_cache_misses += other.shared_cache_misses;
        self.shared_cache_evictions += other.shared_cache_evictions;
        // A gauge: keep the latest observation rather than summing.
        self.shared_cache_bytes = other.shared_cache_bytes;
    }

    /// Divides all counters/timings by `n` (averaging helper).
    pub fn scale_down(&self, n: usize) -> QueryStats {
        if n == 0 {
            return *self;
        }
        let f = n as f64;
        QueryStats {
            filtering_ms: self.filtering_ms / f,
            subgraph_ms: self.subgraph_ms / f,
            pruning_ms: self.pruning_ms / f,
            refinement_ms: self.refinement_ms / f,
            total_objects: self.total_objects / n,
            candidates_after_filter: self.candidates_after_filter / n,
            partitions_retrieved: self.partitions_retrieved / n,
            accepted_by_bounds: self.accepted_by_bounds / n,
            pruned_by_bounds: self.pruned_by_bounds / n,
            refined: self.refined / n,
            full_graph_fallbacks: self.full_graph_fallbacks / n,
            nodes_visited: self.nodes_visited / n,
            entries_checked: self.entries_checked / n,
            dijkstras_run: self.dijkstras_run / n,
            context_reuses: self.context_reuses / n,
            subregions_computed: self.subregions_computed / n,
            subregion_cache_hits: self.subregion_cache_hits / n,
            shared_cache_lookups: self.shared_cache_lookups / n,
            shared_cache_hits: self.shared_cache_hits / n,
            shared_cache_misses: self.shared_cache_misses / n,
            shared_cache_evictions: self.shared_cache_evictions / n,
            shared_cache_bytes: self.shared_cache_bytes,
        }
    }
}

impl std::fmt::Display for QueryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "phases[filter {:.3} ms, subgraph {:.3} ms, prune {:.3} ms, refine {:.3} ms] \
             candidates[{} of {}] bounds[accepted {} pruned {} refined {}] \
             dijkstra[runs {} reuses {} fallbacks {}] \
             subregions[computed {} hits {}] \
             shared-cache[lookups {} hits {} misses {} evictions {} ~{} B]",
            self.filtering_ms,
            self.subgraph_ms,
            self.pruning_ms,
            self.refinement_ms,
            self.candidates_after_filter,
            self.total_objects,
            self.accepted_by_bounds,
            self.pruned_by_bounds,
            self.refined,
            self.dijkstras_run,
            self.context_reuses,
            self.full_graph_fallbacks,
            self.subregions_computed,
            self.subregion_cache_hits,
            self.shared_cache_lookups,
            self.shared_cache_hits,
            self.shared_cache_misses,
            self.shared_cache_evictions,
            self.shared_cache_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = QueryStats {
            total_objects: 1000,
            candidates_after_filter: 30,
            refined: 5,
            ..QueryStats::default()
        };
        assert!((s.filtering_ratio() - 0.97).abs() < 1e-12);
        assert!((s.pruning_ratio() - 0.995).abs() < 1e-12);
        assert_eq!(QueryStats::default().filtering_ratio(), 0.0);
    }

    #[test]
    fn accumulate_and_scale() {
        let mut a = QueryStats {
            filtering_ms: 1.0,
            refined: 4,
            ..Default::default()
        };
        let b = QueryStats {
            filtering_ms: 3.0,
            refined: 2,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.filtering_ms, 4.0);
        assert_eq!(a.refined, 6);
        let avg = a.scale_down(2);
        assert_eq!(avg.filtering_ms, 2.0);
        assert_eq!(avg.refined, 3);
    }

    #[test]
    fn shared_cache_counters_are_self_consistent() {
        use idq_geom::{Circle, Point2, Rect2};
        use idq_index::{CompositeIndex, IndexConfig};
        use idq_model::{FloorPlanBuilder, IndoorPoint};
        use idq_objects::{ObjectId, ObjectStore, UncertainObject};

        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        let space = b.finish().unwrap();
        let mut store = ObjectStore::new();
        store
            .insert(
                UncertainObject::with_uniform_weights(
                    ObjectId(1),
                    Circle::new(Point2::new(25.0, 5.0), 2.0),
                    0,
                    vec![Point2::new(24.0, 5.0), Point2::new(26.0, 5.0)],
                )
                .unwrap(),
            )
            .unwrap();
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let opts = crate::QueryOptions::default();

        let cold = crate::range_query(&space, &index, &store, q, 30.0, &opts)
            .unwrap()
            .stats;
        assert_eq!(
            cold.shared_cache_hits + cold.shared_cache_misses,
            cold.shared_cache_lookups,
            "hits + misses == lookups"
        );
        assert!(cold.shared_cache_lookups >= 1);
        assert!(cold.shared_cache_misses >= 1, "fresh cache must miss");
        assert!(cold.shared_cache_bytes > 0);

        let warm = crate::range_query(&space, &index, &store, q, 30.0, &opts)
            .unwrap()
            .stats;
        assert_eq!(
            warm.shared_cache_hits + warm.shared_cache_misses,
            warm.shared_cache_lookups
        );
        assert!(warm.shared_cache_hits >= 1, "second run reuses rows");
        assert_eq!(warm.shared_cache_misses, 0);

        // Display carries the shared-cache segment, and accumulate keeps
        // the invariant.
        assert!(warm.to_string().contains("shared-cache["));
        let mut sum = cold;
        sum.accumulate(&warm);
        assert_eq!(
            sum.shared_cache_hits + sum.shared_cache_misses,
            sum.shared_cache_lookups
        );
    }
}
