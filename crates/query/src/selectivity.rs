//! Selectivity estimation for indoor distance-aware queries.
//!
//! The paper's future-work list (§VII) calls for estimating the
//! selectivity of distance-aware queries to drive query optimisation.
//! This module provides a compact, maintainable estimator: a per-floor
//! uniform grid of object-centre counts, probed with the *skeleton
//! distance* (the geometric lower bound of Lemma 6) scaled by a 4/π
//! rectilinear-detour factor that calibrates it towards the walking
//! distance the query actually measures against.
//!
//! The estimator answers two questions:
//!
//! * [`SelectivityEstimator::estimate_range`] — roughly how many objects
//!   will `iRQ(q, r)` return?
//! * [`SelectivityEstimator::estimate_knn_radius`] — roughly what radius
//!   captures `k` objects (a planning-time stand-in for `kbound`)?
//!
//! Estimates are intentionally cheap (no object access at query time) and
//! are *approximations* of the **result** size, not of the filter's
//! candidate count: the detour calibration means the estimate can fall
//! either side of what the (uncalibrated) filtering phase retrieves.
//! Accuracy is validated statistically in the tests.

use idq_index::SkeletonTier;
use idq_model::{Floor, IndoorPoint, IndoorSpace};
use idq_objects::ObjectStore;

/// Mean rectilinear detour over the skeleton lower bound (4/π): indoor
/// walking paths are axis-aligned, so the straight-line skeleton distance
/// under-estimates them by this factor on average.
const DETOUR_FACTOR: f64 = 4.0 / std::f64::consts::PI;

/// Per-floor grid histogram of object centres.
#[derive(Clone, Debug)]
pub struct SelectivityEstimator {
    cell: f64,
    width: f64,
    depth: f64,
    cols: usize,
    rows: usize,
    /// `counts[floor][row * cols + col]`.
    counts: Vec<Vec<u32>>,
    total: usize,
}

impl SelectivityEstimator {
    /// Builds the histogram from the current population. `cell` is the
    /// grid pitch in metres (30–60 m works well for mall-scale floors).
    pub fn build(space: &IndoorSpace, store: &ObjectStore, cell: f64) -> Self {
        let cell = cell.max(1.0);
        // Building extent from the partitions.
        let mut width = 0.0f64;
        let mut depth = 0.0f64;
        for p in space.partitions() {
            width = width.max(p.bbox.hi.x);
            depth = depth.max(p.bbox.hi.y);
        }
        let cols = (width / cell).ceil().max(1.0) as usize;
        let rows = (depth / cell).ceil().max(1.0) as usize;
        let mut counts = vec![vec![0u32; cols * rows]; space.num_floors().max(1)];
        for o in store.iter() {
            let c = o.region.center;
            let col = ((c.x / cell) as usize).min(cols - 1);
            let row = ((c.y / cell) as usize).min(rows - 1);
            if let Some(floor) = counts.get_mut(o.floor as usize) {
                floor[row * cols + col] += 1;
            }
        }
        SelectivityEstimator {
            cell,
            width,
            depth,
            cols,
            rows,
            counts,
            total: store.len(),
        }
    }

    /// Total objects the histogram covers.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Calibrated distance and object count of every occupied cell, as
    /// seen from `q`. The expensive part of an estimate (one skeleton
    /// shortest-path probe per occupied cell) is independent of the query
    /// radius, so callers that evaluate many radii compute this once.
    fn cell_distances(&self, skeleton: &SkeletonTier, q: IndoorPoint) -> Vec<(f64, u32)> {
        let mut cells = Vec::new();
        for (floor, grid) in self.counts.iter().enumerate() {
            let floor = floor as Floor;
            for row in 0..self.rows {
                for col in 0..self.cols {
                    let n = grid[row * self.cols + col];
                    if n == 0 {
                        continue;
                    }
                    let centre = idq_geom::Point2::new(
                        (col as f64 + 0.5) * self.cell,
                        (row as f64 + 0.5) * self.cell,
                    );
                    // Calibrate the skeleton lower bound towards walking
                    // distance: indoor routes are rectilinear, and the mean
                    // L1/L2 detour over uniformly random directions is 4/π.
                    let d = DETOUR_FACTOR
                        * skeleton.skeleton_distance(q, IndoorPoint::new(centre, floor));
                    cells.push((d, n));
                }
            }
        }
        cells
    }

    /// Sums the cells within radius `r`, counting rim cells fractionally:
    /// cells whose centre is within `r` ± half-diagonal contribute
    /// proportionally.
    fn sum_within(&self, cells: &[(f64, u32)], r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        let half_diag = self.cell * std::f64::consts::FRAC_1_SQRT_2;
        let mut acc = 0.0;
        for &(d, n) in cells {
            if d + half_diag <= r {
                acc += n as f64;
            } else if d - half_diag <= r {
                let frac = ((r - (d - half_diag)) / (2.0 * half_diag)).clamp(0.0, 1.0);
                acc += n as f64 * frac;
            }
        }
        acc
    }

    /// Estimated number of objects `iRQ(q, r)` returns: cell counts whose
    /// detour-calibrated skeleton distance from `q` is within `r`.
    pub fn estimate_range(&self, skeleton: &SkeletonTier, q: IndoorPoint, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        self.sum_within(&self.cell_distances(skeleton, q), r)
    }

    /// Estimated radius capturing `k` objects from `q`: binary search over
    /// the per-cell distances (computed once, not per probe). Returns
    /// `None` when even the whole building holds fewer than `k`.
    pub fn estimate_knn_radius(
        &self,
        skeleton: &SkeletonTier,
        q: IndoorPoint,
        k: usize,
    ) -> Option<f64> {
        if k == 0 || self.total < k {
            return None;
        }
        let cells = self.cell_distances(skeleton, q);
        let mut lo = 0.0f64;
        // Upper limit: planar diagonal plus a generous vertical allowance.
        let mut hi = (self.width * self.width + self.depth * self.depth).sqrt()
            + 8.0 * self.counts.len() as f64 * self.cell;
        if self.sum_within(&cells, hi) < k as f64 {
            return None; // disconnected floors etc.
        }
        for _ in 0..40 {
            let mid = (lo + hi) / 2.0;
            if self.sum_within(&cells, mid) >= k as f64 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_index::{CompositeIndex, IndexConfig};
    use idq_workloads::{
        generate_building, generate_objects, generate_query_points, BuildingConfig, ObjectConfig,
        QueryPointConfig,
    };

    fn world() -> (
        idq_workloads::GeneratedBuilding,
        ObjectStore,
        CompositeIndex,
        Vec<IndoorPoint>,
    ) {
        let building = generate_building(&BuildingConfig {
            bands: 2,
            rooms_per_side: 3,
            ..BuildingConfig::with_floors(3)
        })
        .unwrap();
        let store = generate_objects(
            &building,
            &ObjectConfig {
                count: 600,
                radius: 8.0,
                instances: 4,
                seed: 5,
            },
        )
        .unwrap();
        let index = CompositeIndex::build(&building.space, &store, IndexConfig::default()).unwrap();
        let queries = generate_query_points(&building, &QueryPointConfig { count: 5, seed: 9 });
        (building, store, index, queries)
    }

    #[test]
    fn estimate_is_monotone_and_bounded() {
        let (building, store, index, queries) = world();
        let est = SelectivityEstimator::build(&building.space, &store, 50.0);
        assert_eq!(est.total(), 600);
        for &q in &queries {
            let mut prev = 0.0;
            for r in [0.0, 50.0, 150.0, 400.0, 4000.0] {
                let e = est.estimate_range(index.skeleton(), q, r);
                assert!(e >= prev - 1e-9, "monotone in r");
                assert!(e <= 600.0 + 1e-9, "never exceeds the population");
                prev = e;
            }
        }
    }

    #[test]
    fn estimate_tracks_filter_candidates() {
        let (building, store, index, queries) = world();
        let est = SelectivityEstimator::build(&building.space, &store, 40.0);
        for &q in &queries {
            for r in [100.0, 200.0] {
                let estimated = est.estimate_range(index.skeleton(), q, r);
                let filtered = index
                    .range_search(&building.space, q, r, true)
                    .objects
                    .len() as f64;
                // Coarse statistical agreement: within a factor of 3 plus
                // a small absolute slack (grid rim effects).
                let lo = filtered / 3.0 - 15.0;
                let hi = filtered * 3.0 + 15.0;
                assert!(
                    estimated >= lo && estimated <= hi,
                    "q={q} r={r}: estimated {estimated:.1} vs filtered {filtered}"
                );
            }
        }
    }

    #[test]
    fn knn_radius_estimate_captures_k() {
        let (building, store, index, queries) = world();
        let est = SelectivityEstimator::build(&building.space, &store, 40.0);
        let q = queries[0];
        let r = est
            .estimate_knn_radius(index.skeleton(), q, 30)
            .expect("population is large enough");
        assert!(r > 0.0);
        // The estimated radius should retrieve at least a sizeable share
        // of k candidates through the real filter.
        let got = index
            .range_search(&building.space, q, r, true)
            .objects
            .len();
        assert!(got >= 10, "radius {r:.1} retrieved only {got}");
        // And k far beyond the population is rejected.
        assert!(est
            .estimate_knn_radius(index.skeleton(), q, 10_000)
            .is_none());
    }

    #[test]
    fn zero_and_empty_cases() {
        let (building, store, index, queries) = world();
        let est = SelectivityEstimator::build(&building.space, &store, 40.0);
        assert_eq!(est.estimate_range(index.skeleton(), queries[0], 0.0), 0.0);
        let empty = ObjectStore::new();
        let est = SelectivityEstimator::build(&building.space, &empty, 40.0);
        assert_eq!(est.total(), 0);
        assert!(est
            .estimate_knn_radius(index.skeleton(), queries[0], 1)
            .is_none());
    }
}
