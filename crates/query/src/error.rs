//! Query-layer errors.

/// Errors raised during query evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// Propagated index error (stale index, unknown object…).
    Index(idq_index::IndexError),
    /// Propagated distance error (query outside the building…).
    Distance(idq_distance::DistanceError),
    /// Propagated object error.
    Object(idq_objects::ObjectError),
    /// `k` must be positive.
    ZeroK,
    /// The range must be non-negative and finite.
    BadRange(f64),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Index(e) => write!(f, "index error: {e}"),
            QueryError::Distance(e) => write!(f, "distance error: {e}"),
            QueryError::Object(e) => write!(f, "object error: {e}"),
            QueryError::ZeroK => write!(f, "k must be at least 1"),
            QueryError::BadRange(r) => write!(f, "invalid query range {r}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<idq_index::IndexError> for QueryError {
    fn from(e: idq_index::IndexError) -> Self {
        QueryError::Index(e)
    }
}

impl From<idq_distance::DistanceError> for QueryError {
    fn from(e: idq_distance::DistanceError) -> Self {
        QueryError::Distance(e)
    }
}

impl From<idq_objects::ObjectError> for QueryError {
    fn from(e: idq_objects::ObjectError) -> Self {
        QueryError::Object(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert!(QueryError::ZeroK.to_string().contains('1'));
        assert!(QueryError::BadRange(-3.0).to_string().contains("-3"));
    }
}
