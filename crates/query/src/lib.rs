//! Distance-aware query evaluation on indoor moving objects (§IV).
//!
//! Two query types over uncertain objects, both defined on the *expected
//! indoor distance* (Def. 3 / Def. 4):
//!
//! * [`range_query`] — `iRQ(q, r)`: objects with `|q,O|_I ≤ r`
//!   (Algorithm 1);
//! * [`knn_query`] — `ikNNQ(q, k)`: the `k` objects with the smallest
//!   `|q,O|_I` (Algorithm 2, seeded by `kSeedsSelection`, Algorithm 5).
//!
//! Both run the paper's four-phase pipeline — **filtering** (geometric
//! lower bounds through the composite index), **subgraph** (restricted
//! Dijkstra over candidate partitions), **pruning** (topological /
//! probabilistic bounds) and **refinement** (exact expected distances) —
//! and record per-phase timings plus pruning counters in [`QueryStats`]
//! (the raw material of the paper's Figures 12–14).
//!
//! [`QueryOptions`] exposes the evaluation's ablation switches
//! (`use_skeleton`, `use_pruning`) and the exactness controls discussed in
//! `bounds`' soundness note; [`QueryOptions::builder`] constructs them
//! fluently. The [`naive`] module provides the brute-force oracle, and
//! [`precomputed`] the door-to-door pre-computation baseline the paper
//! compares maintenance costs against (Fig. 15(d)).
//!
//! The [`session`] module is the typed front door: a [`Query`] names any
//! of the four query kinds (range, kNN, distance, path), [`execute`]
//! evaluates one, and [`execute_batch`] evaluates many with cross-query
//! computation reuse — queries sharing a query point share one restricted
//! door-distance Dijkstra and one [`SubregionCache`] (§VII's reuse
//! proposal). Every [`Outcome`] carries [`QueryStats`].

pub mod error;
pub mod iknn;
pub mod irq;
pub mod monitor;
pub mod naive;
pub mod options;
pub mod pipeline;
pub mod precomputed;
pub mod seeds;
pub mod selectivity;
pub mod session;
pub mod stats;

pub use error::QueryError;
pub use iknn::{knn_query, KnnHit, KnnResult};
pub use irq::{range_query, RangeHit, RangeResult};
pub use monitor::{KnnMonitor, MonitorChange, RangeMonitor};
pub use naive::{naive_knn, naive_range};
pub use options::{QueryOptions, QueryOptionsBuilder};
pub use pipeline::SubregionCache;
pub use precomputed::PrecomputedD2D;
pub use seeds::k_seeds_selection;
pub use selectivity::SelectivityEstimator;
pub use session::{execute, execute_batch, DistanceResult, Outcome, PathResult, Query};
pub use stats::QueryStats;
