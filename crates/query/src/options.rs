//! Query evaluation options and ablation switches.

/// Tuning knobs of the four-phase pipeline. The defaults reproduce the
/// paper's full method; the switches implement its ablations:
///
/// * `use_skeleton = false` → filtering falls back to the plain Euclidean
///   lower bound ("withoutSkeleton", Fig. 15(a));
/// * `use_pruning = false` → Phase 3 is skipped and every filtered
///   candidate is refined ("withoutPruning", Fig. 14(b)/(d)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryOptions {
    /// Use the skeleton tier's geometric lower bound in filtering.
    pub use_skeleton: bool,
    /// Apply the topological/probabilistic bounds in Phase 3.
    pub use_pruning: bool,
    /// Extra metres added to the *partition* retrieval radius of the
    /// filtering phase so the subgraph Dijkstra sees every partition a
    /// relevant shortest path can traverse. Covers the spread of an
    /// uncertainty region (instances reach up to a region diameter beyond
    /// the closest instance, plus indoor detours); see the soundness note
    /// in `idq_distance::bounds`.
    pub subgraph_slack: f64,
    /// Refine with full-graph door distances instead of the restricted
    /// subgraph (slower per query, immune to subgraph truncation; the
    /// restricted mode already falls back per-object when truncation is
    /// detectable).
    pub exact_refinement: bool,
    /// Serve door-distance rows from the shared, service-lifetime
    /// [`idq_distance::DistanceCache`] that travels with the index's
    /// geometry (on by default). Turning this off expands rows locally
    /// per query — **bit-identical results** (both paths compose the
    /// same truncated rows), just without cross-query reuse. The off
    /// switch exists for memory-constrained deployments where even the
    /// bounded cache footprint is unwelcome.
    pub distance_cache: bool,
    /// Approximate byte budget of the shared distance cache (default
    /// 256 MiB). Past the budget, least-recently-used rows are evicted
    /// at source-door granularity; eviction costs recompute on the next
    /// touch, never correctness.
    pub distance_cache_bytes: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            use_skeleton: true,
            use_pruning: true,
            subgraph_slack: 60.0,
            exact_refinement: false,
            distance_cache: true,
            distance_cache_bytes: 256 << 20,
        }
    }
}

impl QueryOptions {
    /// A builder starting from the defaults:
    /// `QueryOptions::builder().skeleton(false).exact_refinement().build()`.
    pub fn builder() -> QueryOptionsBuilder {
        QueryOptionsBuilder::default()
    }

    /// Options with a slack adequate for a maximum uncertainty-region
    /// radius (2× diameter + detour headroom).
    pub fn for_max_radius(max_radius: f64) -> Self {
        QueryOptions {
            subgraph_slack: (4.0 * max_radius + 20.0).max(60.0),
            ..Self::default()
        }
    }

    /// Disables the skeleton tier (Fig. 15(a) ablation).
    pub fn without_skeleton(self) -> Self {
        QueryOptions {
            use_skeleton: false,
            ..self
        }
    }

    /// Disables bound pruning (Fig. 14(b)/(d) ablation).
    pub fn without_pruning(self) -> Self {
        QueryOptions {
            use_pruning: false,
            ..self
        }
    }

    /// Forces full-graph refinement.
    pub fn with_exact_refinement(self) -> Self {
        QueryOptions {
            exact_refinement: true,
            ..self
        }
    }

    /// Disables the shared distance cache (bit-identical results, no
    /// cross-query reuse) — for memory-constrained deployments.
    pub fn without_distance_cache(self) -> Self {
        QueryOptions {
            distance_cache: false,
            ..self
        }
    }
}

/// Fluent construction of [`QueryOptions`], starting from the defaults.
///
/// The terminal [`QueryOptionsBuilder::build`] is infallible — every
/// combination of switches is a valid configuration; the builder exists so
/// call sites name exactly the knobs they change.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryOptionsBuilder {
    options: QueryOptions,
}

impl QueryOptionsBuilder {
    /// Enables/disables the skeleton tier's lower bound in filtering.
    pub fn skeleton(mut self, on: bool) -> Self {
        self.options.use_skeleton = on;
        self
    }

    /// Enables/disables the Phase-3 bound pruning.
    pub fn pruning(mut self, on: bool) -> Self {
        self.options.use_pruning = on;
        self
    }

    /// Sets the partition-retrieval slack (metres); see
    /// [`QueryOptions::subgraph_slack`].
    pub fn subgraph_slack(mut self, metres: f64) -> Self {
        self.options.subgraph_slack = metres;
        self
    }

    /// Widens the slack for a maximum uncertainty-region radius, like
    /// [`QueryOptions::for_max_radius`].
    pub fn max_radius(mut self, max_radius: f64) -> Self {
        self.options.subgraph_slack = QueryOptions::for_max_radius(max_radius).subgraph_slack;
        self
    }

    /// Forces full-graph refinement.
    pub fn exact_refinement(mut self) -> Self {
        self.options.exact_refinement = true;
        self
    }

    /// Enables/disables the shared distance cache; see
    /// [`QueryOptions::distance_cache`].
    pub fn distance_cache(mut self, on: bool) -> Self {
        self.options.distance_cache = on;
        self
    }

    /// Sets the shared distance cache's byte budget; see
    /// [`QueryOptions::distance_cache_bytes`].
    pub fn distance_cache_bytes(mut self, bytes: usize) -> Self {
        self.options.distance_cache_bytes = bytes;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> QueryOptions {
        self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let o = QueryOptions::default().without_skeleton().without_pruning();
        assert!(!o.use_skeleton);
        assert!(!o.use_pruning);
        let o = QueryOptions::for_max_radius(15.0);
        assert!(o.subgraph_slack >= 80.0);
        assert!(
            QueryOptions::default()
                .with_exact_refinement()
                .exact_refinement
        );
        let o = QueryOptions::default().without_distance_cache();
        assert!(!o.distance_cache);
        assert!(QueryOptions::default().distance_cache, "on by default");
    }

    #[test]
    fn builder_names_every_knob() {
        let o = QueryOptions::builder()
            .skeleton(false)
            .pruning(false)
            .subgraph_slack(75.0)
            .exact_refinement()
            .distance_cache(false)
            .distance_cache_bytes(1 << 20)
            .build();
        assert!(!o.use_skeleton);
        assert!(!o.use_pruning);
        assert_eq!(o.subgraph_slack, 75.0);
        assert!(o.exact_refinement);
        assert!(!o.distance_cache);
        assert_eq!(o.distance_cache_bytes, 1 << 20);
        // Untouched knobs keep their defaults; max_radius mirrors
        // for_max_radius.
        assert_eq!(QueryOptions::builder().build(), QueryOptions::default());
        assert_eq!(
            QueryOptions::builder().max_radius(15.0).build(),
            QueryOptions::for_max_radius(15.0)
        );
    }
}
