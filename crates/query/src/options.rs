//! Query evaluation options and ablation switches.

/// Tuning knobs of the four-phase pipeline. The defaults reproduce the
/// paper's full method; the switches implement its ablations:
///
/// * `use_skeleton = false` → filtering falls back to the plain Euclidean
///   lower bound ("withoutSkeleton", Fig. 15(a));
/// * `use_pruning = false` → Phase 3 is skipped and every filtered
///   candidate is refined ("withoutPruning", Fig. 14(b)/(d)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryOptions {
    /// Use the skeleton tier's geometric lower bound in filtering.
    pub use_skeleton: bool,
    /// Apply the topological/probabilistic bounds in Phase 3.
    pub use_pruning: bool,
    /// Extra metres added to the *partition* retrieval radius of the
    /// filtering phase so the subgraph Dijkstra sees every partition a
    /// relevant shortest path can traverse. Covers the spread of an
    /// uncertainty region (instances reach up to a region diameter beyond
    /// the closest instance, plus indoor detours); see the soundness note
    /// in `idq_distance::bounds`.
    pub subgraph_slack: f64,
    /// Refine with full-graph door distances instead of the restricted
    /// subgraph (slower per query, immune to subgraph truncation; the
    /// restricted mode already falls back per-object when truncation is
    /// detectable).
    pub exact_refinement: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            use_skeleton: true,
            use_pruning: true,
            subgraph_slack: 60.0,
            exact_refinement: false,
        }
    }
}

impl QueryOptions {
    /// Options with a slack adequate for a maximum uncertainty-region
    /// radius (2× diameter + detour headroom).
    pub fn for_max_radius(max_radius: f64) -> Self {
        QueryOptions {
            subgraph_slack: (4.0 * max_radius + 20.0).max(60.0),
            ..Self::default()
        }
    }

    /// Disables the skeleton tier (Fig. 15(a) ablation).
    pub fn without_skeleton(self) -> Self {
        QueryOptions {
            use_skeleton: false,
            ..self
        }
    }

    /// Disables bound pruning (Fig. 14(b)/(d) ablation).
    pub fn without_pruning(self) -> Self {
        QueryOptions {
            use_pruning: false,
            ..self
        }
    }

    /// Forces full-graph refinement.
    pub fn with_exact_refinement(self) -> Self {
        QueryOptions {
            exact_refinement: true,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let o = QueryOptions::default().without_skeleton().without_pruning();
        assert!(!o.use_skeleton);
        assert!(!o.use_pruning);
        let o = QueryOptions::for_max_radius(15.0);
        assert!(o.subgraph_slack >= 80.0);
        assert!(
            QueryOptions::default()
                .with_exact_refinement()
                .exact_refinement
        );
    }
}
