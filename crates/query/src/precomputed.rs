//! The distance pre-computation baseline (§V-B.4, Fig. 15(d)).
//!
//! Prior work (refs.\[16\], \[24\] of the paper) assumes all door-to-door shortest
//! distances are pre-computed. This module implements that alternative —
//! an all-pairs door distance matrix built by one Dijkstra per door — so
//! the repository can (a) measure its construction time against the
//! composite index's update costs, reproducing the paper's headline
//! maintenance argument, and (b) cross-check query results computed from
//! the matrix against the on-the-fly evaluation.

use crate::error::QueryError;
use idq_geom::OrdF64;
use idq_model::{DoorId, DoorsGraph, IndoorPoint, IndoorSpace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// All-pairs door-to-door shortest distances.
#[derive(Clone, Debug)]
pub struct PrecomputedD2D {
    n: usize,
    dist: Vec<f64>,
    /// Wall-clock construction time, milliseconds (the Fig. 15(d) metric).
    pub build_ms: f64,
}

impl PrecomputedD2D {
    /// Builds the matrix: one Dijkstra per door over the doors graph.
    pub fn build(space: &IndoorSpace, graph: &DoorsGraph) -> Self {
        let t = Instant::now();
        let n = space.door_slots();
        let mut dist = vec![f64::INFINITY; n * n];
        let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        for src in 0..n {
            let row = &mut dist[src * n..(src + 1) * n];
            row[src] = 0.0;
            heap.clear();
            heap.push(Reverse((OrdF64(0.0), src as u32)));
            while let Some(Reverse((OrdF64(du), u))) = heap.pop() {
                if du > row[u as usize] {
                    continue;
                }
                for e in graph.edges_from(DoorId(u)) {
                    let nd = du + e.weight;
                    if nd < row[e.to.index()] {
                        row[e.to.index()] = nd;
                        heap.push(Reverse((OrdF64(nd), e.to.0)));
                    }
                }
            }
        }
        PrecomputedD2D {
            n,
            dist,
            build_ms: t.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Number of door slots covered.
    pub fn door_slots(&self) -> usize {
        self.n
    }

    /// The pre-computed `|d_i ⇝ d_j|` (∞ if unreachable).
    #[inline]
    pub fn door_to_door(&self, from: DoorId, to: DoorId) -> f64 {
        if from.index() >= self.n || to.index() >= self.n {
            return f64::INFINITY;
        }
        self.dist[from.index() * self.n + to.index()]
    }

    /// Point-to-point indoor distance evaluated from the matrix (Eq. 1
    /// with pre-computed middle terms). Used to cross-validate on-the-fly
    /// evaluation.
    pub fn point_distance(
        &self,
        space: &IndoorSpace,
        q: IndoorPoint,
        p: IndoorPoint,
    ) -> Result<f64, QueryError> {
        let pq = space
            .partition_at(q)
            .ok_or(idq_distance::DistanceError::QueryOutsideSpace(q))?;
        let Some(pp) = space.partition_at(p) else {
            return Ok(f64::INFINITY);
        };
        let mut best = if pq == pp {
            space.intra_distance(q, p)
        } else {
            f64::INFINITY
        };
        for &dq in space.doors_of(pq).unwrap_or(&[]) {
            if !space.can_leave(dq, pq) {
                continue;
            }
            let head = space.point_to_door(q, dq).expect("door of P(q)");
            for &dp in space.doors_of(pp).unwrap_or(&[]) {
                if !space.can_enter(dp, pp) {
                    continue;
                }
                let mid = self.door_to_door(dq, dp);
                if !mid.is_finite() {
                    continue;
                }
                let tail = space.point_to_door(p, dp).expect("door of P(p)");
                let total = head + mid + tail;
                if total < best {
                    best = total;
                }
            }
        }
        Ok(best)
    }

    /// Approximate resident size of the matrix in bytes (reporting).
    pub fn matrix_bytes(&self) -> usize {
        self.dist.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_distance::indoor_distance;
    use idq_geom::{Point2, Rect2};
    use idq_model::FloorPlanBuilder;

    fn corridor(n: usize) -> (IndoorSpace, DoorsGraph) {
        let mut b = FloorPlanBuilder::new(4.0);
        let rooms: Vec<_> = (0..n)
            .map(|i| {
                b.add_room(
                    0,
                    Rect2::from_bounds(10.0 * i as f64, 0.0, 10.0 * (i + 1) as f64, 10.0),
                )
                .unwrap()
            })
            .collect();
        for i in 0..n - 1 {
            b.add_door_between(
                rooms[i],
                rooms[i + 1],
                Point2::new(10.0 * (i + 1) as f64, 5.0),
            )
            .unwrap();
        }
        let s = b.finish().unwrap();
        let g = DoorsGraph::build(&s);
        (s, g)
    }

    #[test]
    fn matrix_matches_on_the_fly_distances() {
        let (s, g) = corridor(6);
        let pre = PrecomputedD2D::build(&s, &g);
        assert!(pre.build_ms >= 0.0);
        for (ax, bx) in [(2.0, 55.0), (15.0, 35.0), (5.0, 5.0), (44.0, 12.0)] {
            let q = IndoorPoint::new(Point2::new(ax, 5.0), 0);
            let p = IndoorPoint::new(Point2::new(bx, 3.0), 0);
            let fast = pre.point_distance(&s, q, p).unwrap();
            let slow = indoor_distance(&s, &g, q, p).unwrap();
            assert!((fast - slow).abs() < 1e-9, "{ax}->{bx}: {fast} vs {slow}");
        }
    }

    #[test]
    fn one_way_asymmetry_is_preserved() {
        let mut b = FloorPlanBuilder::new(4.0);
        let a = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let c = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let m = b
            .add_room(0, Rect2::from_bounds(0.0, 10.0, 20.0, 20.0))
            .unwrap();
        b.add_one_way_door(a, c, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(a, m, Point2::new(5.0, 10.0)).unwrap();
        b.add_door_between(c, m, Point2::new(15.0, 10.0)).unwrap();
        let s = b.finish().unwrap();
        let g = DoorsGraph::build(&s);
        let pre = PrecomputedD2D::build(&s, &g);
        let qa = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let qc = IndoorPoint::new(Point2::new(18.0, 5.0), 0);
        let ac = pre.point_distance(&s, qa, qc).unwrap();
        let ca = pre.point_distance(&s, qc, qa).unwrap();
        assert!(
            ac < ca,
            "A→C uses the shortcut, C→A must detour: {ac} vs {ca}"
        );
        // Both must match the online evaluation.
        assert!((ac - indoor_distance(&s, &g, qa, qc).unwrap()).abs() < 1e-9);
        assert!((ca - indoor_distance(&s, &g, qc, qa).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn matrix_size_reported() {
        let (s, g) = corridor(4);
        let pre = PrecomputedD2D::build(&s, &g);
        assert_eq!(pre.door_slots(), 3);
        assert_eq!(pre.matrix_bytes(), 9 * 8);
    }
}
