//! `kSeedsSelection` (Algorithm 5): the filtering phase of `ikNNQ`.
//!
//! Starting from the query's partition, partitions are explored in order
//! of geometric proximity (a min-heap keyed by the skeleton lower bound of
//! Eq. 10) until at least `k` objects have been gathered from their
//! buckets. The seeds' looser upper bounds (Lemma 3) then yield the
//! `kbound` radius for the subsequent range search.

use idq_geom::{Mbr3, OrdF64};
use idq_index::CompositeIndex;
use idq_model::{IndoorPoint, IndoorSpace, PartitionId};
use idq_objects::ObjectId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Selects at least `k` seed objects from the partitions nearest to `q`
/// (fewer if the whole building holds fewer). Returns the seeds and the
/// partitions visited (`Ro_1`, `Rp_1` of Algorithm 2).
pub fn k_seeds_selection(
    space: &IndoorSpace,
    index: &CompositeIndex,
    q: IndoorPoint,
    k: usize,
) -> (Vec<ObjectId>, Vec<PartitionId>) {
    let mut seeds: Vec<ObjectId> = Vec::new();
    let mut seen_objects: HashSet<ObjectId> = HashSet::new();
    let mut visited: HashSet<PartitionId> = HashSet::new();
    let mut out_partitions: Vec<PartitionId> = Vec::new();

    let Some(start) = space.partition_at(q) else {
        return (seeds, out_partitions);
    };
    let mut heap: BinaryHeap<Reverse<(OrdF64, PartitionId)>> = BinaryHeap::new();
    heap.push(Reverse((OrdF64(0.0), start)));

    while let Some(Reverse((_, pid))) = heap.pop() {
        if !visited.insert(pid) {
            continue;
        }
        out_partitions.push(pid);
        // Gather the partition's bucketed objects.
        for &u in index.units().units_of(pid) {
            for &o in index.object_layer().objects_in(u) {
                if seen_objects.insert(o) {
                    seeds.push(o);
                }
            }
        }
        if seeds.len() >= k {
            break;
        }
        // Expand to adjacent partitions (doors leaving `pid`).
        let Ok(doors) = space.doors_of(pid) else {
            continue;
        };
        for &d in doors {
            if !space.can_leave(d, pid) {
                continue;
            }
            let Ok(door) = space.door(d) else { continue };
            let Some(next) = door.other_side(pid) else {
                continue;
            };
            if visited.contains(&next) {
                continue;
            }
            let Ok(p) = space.partition(next) else {
                continue;
            };
            let mbr = Mbr3::spanning(
                p.bbox,
                (p.floor_lo, p.floor_hi),
                (space.elevation(p.floor_lo), space.elevation(p.floor_hi)),
            );
            let key = index.min_skeleton_distance(space, q, &mbr);
            heap.push(Reverse((OrdF64(key), next)));
        }
    }
    (seeds, out_partitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Circle, Point2, Rect2};
    use idq_index::IndexConfig;
    use idq_model::FloorPlanBuilder;
    use idq_objects::{ObjectStore, UncertainObject};

    /// A corridor of 5 rooms with one object in each.
    fn setup() -> (IndoorSpace, ObjectStore, CompositeIndex) {
        let mut b = FloorPlanBuilder::new(4.0);
        let rooms: Vec<PartitionId> = (0..5)
            .map(|i| {
                b.add_room(
                    0,
                    Rect2::from_bounds(10.0 * i as f64, 0.0, 10.0 * (i + 1) as f64, 10.0),
                )
                .unwrap()
            })
            .collect();
        for i in 0..4 {
            b.add_door_between(
                rooms[i],
                rooms[i + 1],
                Point2::new(10.0 * (i + 1) as f64, 5.0),
            )
            .unwrap();
        }
        let space = b.finish().unwrap();
        let mut store = ObjectStore::new();
        for i in 0..5u64 {
            let x = 5.0 + 10.0 * i as f64;
            store
                .insert(
                    UncertainObject::with_uniform_weights(
                        ObjectId(i),
                        Circle::new(Point2::new(x, 5.0), 1.0),
                        0,
                        vec![Point2::new(x, 5.0), Point2::new(x, 4.0)],
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        (space, store, index)
    }

    #[test]
    fn collects_nearest_objects_first() {
        let (space, _, index) = setup();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let (seeds, partitions) = k_seeds_selection(&space, &index, q, 2);
        assert!(seeds.len() >= 2);
        // The first seed is the co-located object.
        assert_eq!(seeds[0], ObjectId(0));
        // Visited partitions form a prefix of the corridor from the left.
        assert!(!partitions.is_empty());
    }

    #[test]
    fn gathers_all_when_k_exceeds_population() {
        let (space, _, index) = setup();
        let q = IndoorPoint::new(Point2::new(25.0, 5.0), 0);
        let (seeds, partitions) = k_seeds_selection(&space, &index, q, 50);
        assert_eq!(seeds.len(), 5, "every object becomes a seed");
        assert_eq!(partitions.len(), 5, "every partition visited");
    }

    #[test]
    fn outside_query_returns_empty() {
        let (space, _, index) = setup();
        let q = IndoorPoint::new(Point2::new(500.0, 5.0), 0);
        let (seeds, partitions) = k_seeds_selection(&space, &index, q, 3);
        assert!(seeds.is_empty());
        assert!(partitions.is_empty());
    }

    #[test]
    fn one_way_doors_limit_expansion() {
        // q in a room whose only door is one-way INTO the room: expansion
        // cannot leave, so only co-located seeds are found.
        let mut b = FloorPlanBuilder::new(4.0);
        let inner = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let outer = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        b.add_one_way_door(outer, inner, Point2::new(10.0, 5.0))
            .unwrap();
        let space = b.finish().unwrap();
        let mut store = ObjectStore::new();
        store
            .insert(
                UncertainObject::with_uniform_weights(
                    ObjectId(7),
                    Circle::new(Point2::new(15.0, 5.0), 1.0),
                    0,
                    vec![Point2::new(15.0, 5.0)],
                )
                .unwrap(),
            )
            .unwrap();
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let (seeds, partitions) = k_seeds_selection(&space, &index, q, 1);
        assert!(seeds.is_empty(), "cannot reach the outer room's objects");
        assert_eq!(partitions.len(), 1);
    }
}
