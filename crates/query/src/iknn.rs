//! Indoor k-Nearest-Neighbour Query — `ikNNQ` (Def. 4, Algorithm 2).

use crate::error::QueryError;
use crate::options::QueryOptions;
use crate::pipeline::{EvalContext, SubregionCache};
use crate::stats::QueryStats;
use idq_distance::SharedPathUpper;
use idq_geom::{Mbr3, OrdF64};
use idq_index::CompositeIndex;
use idq_model::IndoorPoint;
use idq_model::{IndoorSpace, PartitionId};
use idq_objects::{ObjectId, ObjectStore, Subregions};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;

/// Derives `kbound` by adaptive seed expansion: partitions are explored in
/// ascending order of their geometric lower bound (as in `kSeedsSelection`,
/// Algorithm 5); every bucketed object contributes its Topological Looser
/// Upper Bound (Lemma 3), and expansion continues while an unexplored
/// partition's lower bound still beats the running k-th smallest TLU —
/// so a nearby-but-huge corridor cannot freeze a loose bound in place.
/// The k-th smallest TLU certifies that at least k objects lie within it.
///
/// Returns `∞` when fewer than `k` objects are expandable-to (the caller
/// then falls back to an unbounded search).
fn adaptive_kbound(
    space: &IndoorSpace,
    index: &CompositeIndex,
    store: &ObjectStore,
    q: IndoorPoint,
    k: usize,
    seed_subs: &mut SubregionCache,
) -> Result<f64, QueryError> {
    let Some(start) = space.partition_at(q) else {
        return Ok(f64::INFINITY);
    };
    let mut frontier: BinaryHeap<Reverse<(OrdF64, PartitionId)>> = BinaryHeap::new();
    frontier.push(Reverse((OrdF64(0.0), start)));
    let mut visited: HashSet<PartitionId> = HashSet::new();
    let mut seen: HashSet<ObjectId> = HashSet::new();
    // Max-heap keeping the k smallest TLUs seen so far.
    let mut best: BinaryHeap<OrdF64> = BinaryHeap::new();
    // One shared, lazily growing best-first search prices every seed.
    let mut tlu_eval = SharedPathUpper::new(space, index.doors_graph(), q);

    while let Some(Reverse((OrdF64(pmin), pid))) = frontier.pop() {
        if best.len() >= k && pmin > best.peek().expect("non-empty").0 {
            break; // no unexplored partition can improve the k-th TLU
        }
        if !visited.insert(pid) {
            continue;
        }
        for &u in index.units().units_of(pid) {
            for &o in index.object_layer().objects_in(u) {
                if !seen.insert(o) {
                    continue;
                }
                // Screen before pricing: once k TLUs are banked, an
                // object whose geometric lower bound (Lemma 6, the same
                // bound the filtering phase trusts) already exceeds the
                // running k-th TLU has `TLU ≥ |q,O|_I ≥ lb > kth` — it
                // cannot improve the heap, so skipping it leaves the
                // derived kbound bit-identical while saving the
                // subregion decomposition and path pricing.
                if best.len() >= k {
                    let kth = best.peek().expect("non-empty").0;
                    if let Ok(mbr) = index.object_layer().object_mbr(o) {
                        if index.min_skeleton_distance(space, q, &mbr) > kth {
                            continue;
                        }
                    }
                }
                let obj = store.get(o)?;
                let hint = crate::pipeline::object_partition_hint(index, o);
                let subs = Subregions::compute_with_hint(obj, space, &hint)?;
                let tlu = tlu_eval.upper(&subs);
                seed_subs.insert(o, subs);
                if tlu.is_finite() {
                    if best.len() < k {
                        best.push(OrdF64(tlu));
                    } else if OrdF64(tlu) < *best.peek().expect("non-empty") {
                        best.pop();
                        best.push(OrdF64(tlu));
                    }
                }
            }
        }
        // Expand to adjacent partitions, keyed by their geometric lower
        // bound (Eq. 10).
        let Ok(doors) = space.doors_of(pid) else {
            continue;
        };
        for &d in doors {
            if !space.can_leave(d, pid) {
                continue;
            }
            let Ok(door) = space.door(d) else { continue };
            let Some(next) = door.other_side(pid) else {
                continue;
            };
            if visited.contains(&next) {
                continue;
            }
            let Ok(p) = space.partition(next) else {
                continue;
            };
            let mbr = Mbr3::spanning(
                p.bbox,
                (p.floor_lo, p.floor_hi),
                (space.elevation(p.floor_lo), space.elevation(p.floor_hi)),
            );
            let key = index.min_skeleton_distance(space, q, &mbr);
            frontier.push(Reverse((OrdF64(key), next)));
        }
    }
    if best.len() >= k {
        Ok(best.peek().expect("non-empty").0)
    } else {
        Ok(f64::INFINITY)
    }
}

/// One result object of a kNN query, with its exact expected distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KnnHit {
    /// The object.
    pub object: ObjectId,
    /// Exact expected indoor distance `|q,O|_I`.
    pub distance: f64,
}

/// Result of a kNN query.
#[derive(Clone, Debug)]
pub struct KnnResult {
    /// The `k` nearest objects, ascending by distance (ties by id). May be
    /// shorter than `k` when the reachable population is smaller.
    pub results: Vec<KnnHit>,
    /// Phase timings and counters.
    pub stats: QueryStats,
    /// The `kbound` radius derived from the seeds' looser upper bounds.
    pub kbound: f64,
}

/// Phase-1 output of a kNN query: the kbound, the filtered candidates and
/// the subregion decompositions the seed phase already paid for.
pub(crate) struct KnnPrep {
    pub q: IndoorPoint,
    pub k: usize,
    pub kbound: f64,
    pub objects: Vec<ObjectId>,
    pub seeds: SubregionCache,
    pub stats: QueryStats,
}

/// Validates the query and runs seed selection + kbound + filtering.
pub(crate) fn knn_prep(
    space: &IndoorSpace,
    index: &CompositeIndex,
    store: &ObjectStore,
    q: IndoorPoint,
    k: usize,
    options: &QueryOptions,
) -> Result<KnnPrep, QueryError> {
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    index.check_fresh(space)?;
    let mut stats = QueryStats {
        total_objects: store.len(),
        ..QueryStats::default()
    };

    // Phase 1: seed selection + kbound + range search.
    let t = Instant::now();
    let mut seeds = SubregionCache::new();
    let kbound = adaptive_kbound(space, index, store, q, k, &mut seeds)?;
    let filtered = index.range_search_dual(
        space,
        q,
        kbound,
        kbound + options.subgraph_slack,
        options.use_skeleton,
    );
    stats.filtering_ms = t.elapsed().as_secs_f64() * 1e3;
    stats.candidates_after_filter = filtered.objects.len();
    stats.partitions_retrieved = filtered.partitions.len();
    stats.nodes_visited = filtered.stats.nodes_visited;
    stats.entries_checked = filtered.stats.entries_checked;

    Ok(KnnPrep {
        q,
        k,
        kbound,
        objects: filtered.objects,
        seeds,
        stats,
    })
}

/// Phases 3–4 against an evaluation context whose banded door distances
/// cover (at least) the prep's reach `kbound + slack`. The prep's seed
/// decompositions must already have been merged into the context's cache.
pub(crate) fn knn_finish(
    ctx: &mut EvalContext<'_>,
    prep: KnnPrep,
    options: &QueryOptions,
) -> Result<KnnResult, QueryError> {
    let KnnPrep {
        k,
        kbound,
        objects,
        mut stats,
        ..
    } = prep;
    let fallbacks_before = ctx.fallbacks;
    let computed_before = ctx.subregions_computed;
    let hits_before = ctx.subregion_cache_hits;
    let shared_lookups_before = ctx.shared_lookups;
    let shared_hits_before = ctx.shared_hits;
    let shared_misses_before = ctx.shared_misses;
    let shared_evictions_before = ctx.shared_evictions;

    // Phase 3: pruning around the k-th smallest upper bound.
    let t = Instant::now();
    let mut to_refine: Vec<ObjectId> = Vec::new();
    if options.use_pruning && objects.len() > k {
        let mut bounds = Vec::with_capacity(objects.len());
        for &o in &objects {
            bounds.push((o, ctx.bounds(o)?));
        }
        // O_k: the object with the k-th smallest upper bound.
        let mut uppers: Vec<f64> = bounds.iter().map(|(_, b)| b.upper).collect();
        uppers.sort_by(f64::total_cmp);
        let ok_upper = uppers[k - 1];
        // Sound under banding: lower bounds are clamped to the exit
        // horizon (see `subregion_bounds`) so they never exceed a true
        // distance, and upper bounds only loosen under truncation — a
        // pruned object's true distance therefore provably exceeds the
        // k-th smallest true distance.
        for (o, b) in bounds {
            if b.lower <= ok_upper {
                to_refine.push(o);
            } else {
                stats.pruned_by_bounds += 1;
            }
        }
    } else {
        to_refine = objects;
    }
    stats.pruning_ms = t.elapsed().as_secs_f64() * 1e3;

    // Phase 4: refinement and final ranking.
    let t = Instant::now();
    let mut scored: Vec<(OrdF64, ObjectId)> = Vec::with_capacity(to_refine.len());
    for o in to_refine {
        stats.refined += 1;
        // The k-th true distance is at most kbound; values beyond it can
        // only lose, so kbound is the safe fallback threshold.
        let v = ctx.refine_with_threshold(o, kbound, options)?;
        if v.is_finite() {
            scored.push((OrdF64(v), o));
        }
    }
    scored.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    stats.refinement_ms = t.elapsed().as_secs_f64() * 1e3;
    stats.full_graph_fallbacks = ctx.fallbacks - fallbacks_before;
    stats.subregions_computed = ctx.subregions_computed - computed_before;
    stats.subregion_cache_hits = ctx.subregion_cache_hits - hits_before;
    stats.shared_cache_lookups += ctx.shared_lookups - shared_lookups_before;
    stats.shared_cache_hits += ctx.shared_hits - shared_hits_before;
    stats.shared_cache_misses += ctx.shared_misses - shared_misses_before;
    stats.shared_cache_evictions += ctx.shared_evictions - shared_evictions_before;
    if options.distance_cache {
        stats.shared_cache_bytes = ctx.index.distance_cache().bytes() as usize;
    }

    Ok(KnnResult {
        results: scored
            .into_iter()
            .map(|(d, object)| KnnHit {
                object,
                distance: d.0,
            })
            .collect(),
        stats,
        kbound,
    })
}

/// Evaluates `ikNN_{q,k}(O)` (Algorithm 2).
pub fn knn_query(
    space: &IndoorSpace,
    index: &CompositeIndex,
    store: &ObjectStore,
    q: IndoorPoint,
    k: usize,
    options: &QueryOptions,
) -> Result<KnnResult, QueryError> {
    let mut prep = knn_prep(space, index, store, q, k, options)?;

    // Phase 2: banded door distances truncated at the kbound's reach
    // (∞ — a complete context — when fewer than k seeds were found),
    // seeded with the phase-1 decompositions.
    let t = Instant::now();
    let horizon = prep.kbound + options.subgraph_slack;
    let seeds = std::mem::take(&mut prep.seeds);
    let mut ctx = EvalContext::new(space, store, index, q, horizon, options, seeds)?;
    prep.stats.subgraph_ms = t.elapsed().as_secs_f64() * 1e3;
    prep.stats.dijkstras_run = 1;
    prep.stats.shared_cache_lookups = ctx.shared_lookups;
    prep.stats.shared_cache_hits = ctx.shared_hits;
    prep.stats.shared_cache_misses = ctx.shared_misses;
    prep.stats.shared_cache_evictions = ctx.shared_evictions;

    knn_finish(&mut ctx, prep, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_knn;
    use idq_geom::{Circle, Point2, Rect2};
    use idq_index::IndexConfig;
    use idq_model::FloorPlanBuilder;
    use idq_objects::UncertainObject;

    /// Same two-floor world as the iRQ tests.
    fn setup() -> (IndoorSpace, ObjectStore, CompositeIndex) {
        let mut b = FloorPlanBuilder::new(4.0);
        let mut rooms = Vec::new();
        for f in 0..2u16 {
            for i in 0..3 {
                rooms.push(
                    b.add_room(
                        f,
                        Rect2::from_bounds(20.0 * i as f64, 0.0, 20.0 * (i + 1) as f64, 10.0),
                    )
                    .unwrap(),
                );
            }
        }
        for f in 0..2usize {
            for i in 0..2 {
                b.add_door_between(
                    rooms[f * 3 + i],
                    rooms[f * 3 + i + 1],
                    Point2::new(20.0 * (i + 1) as f64, 5.0),
                )
                .unwrap();
            }
        }
        let st = b
            .add_staircase((0, 1), Rect2::from_bounds(60.0, 0.0, 64.0, 10.0))
            .unwrap();
        b.add_staircase_entrance(st, rooms[2], 0, Point2::new(60.0, 5.0))
            .unwrap();
        b.add_staircase_entrance(st, rooms[5], 1, Point2::new(60.0, 5.0))
            .unwrap();
        let space = b.finish().unwrap();

        let mut store = ObjectStore::new();
        let mut add = |id: u64, x: f64, f: u16| {
            store
                .insert(
                    UncertainObject::with_uniform_weights(
                        ObjectId(id),
                        Circle::new(Point2::new(x, 5.0), 2.0),
                        f,
                        vec![Point2::new(x - 1.0, 5.0), Point2::new(x + 1.0, 4.0)],
                    )
                    .unwrap(),
                )
                .unwrap();
        };
        add(1, 5.0, 0);
        add(2, 30.0, 0);
        add(3, 55.0, 0);
        add(4, 5.0, 1);
        add(5, 55.0, 1);
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        (space, store, index)
    }

    #[test]
    fn matches_naive_oracle_for_various_k() {
        let (space, store, index) = setup();
        let opts = QueryOptions::default();
        for (qx, qf) in [(5.0, 0u16), (30.0, 0), (55.0, 1)] {
            let q = IndoorPoint::new(Point2::new(qx, 5.0), qf);
            for k in [1, 2, 3, 5] {
                let fast = knn_query(&space, &index, &store, q, k, &opts).unwrap();
                let slow = naive_knn(&space, index.doors_graph(), &store, q, k).unwrap();
                assert_eq!(fast.results.len(), slow.len(), "q=({qx},{qf}) k={k}");
                for (hit, (oid, od)) in fast.results.iter().zip(&slow) {
                    assert_eq!(hit.object, *oid, "q=({qx},{qf}) k={k}");
                    assert!((hit.distance - od).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn k_larger_than_population() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let res = knn_query(&space, &index, &store, q, 50, &QueryOptions::default()).unwrap();
        assert_eq!(res.results.len(), 5, "all reachable objects returned");
        // Ascending distances.
        for w in res.results.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn zero_k_rejected_and_empty_store_ok() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        assert!(matches!(
            knn_query(&space, &index, &store, q, 0, &QueryOptions::default()),
            Err(QueryError::ZeroK)
        ));
        let empty = ObjectStore::new();
        let idx = CompositeIndex::build(&space, &empty, IndexConfig::default()).unwrap();
        let res = knn_query(&space, &idx, &empty, q, 3, &QueryOptions::default()).unwrap();
        assert!(res.results.is_empty());
    }

    #[test]
    fn ablations_agree_on_results() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(30.0, 5.0), 0);
        let base = QueryOptions::default();
        let a = knn_query(&space, &index, &store, q, 3, &base).unwrap();
        let b = knn_query(&space, &index, &store, q, 3, &base.without_pruning()).unwrap();
        let c = knn_query(&space, &index, &store, q, 3, &base.with_exact_refinement()).unwrap();
        let take = |r: &KnnResult| r.results.iter().map(|h| h.object).collect::<Vec<_>>();
        assert_eq!(take(&a), take(&b));
        assert_eq!(take(&a), take(&c));
        assert!(b.stats.refined >= a.stats.refined);
    }

    #[test]
    fn kbound_is_a_valid_upper_bound() {
        let (space, store, index) = setup();
        let q = IndoorPoint::new(Point2::new(5.0, 5.0), 0);
        let res = knn_query(&space, &index, &store, q, 2, &QueryOptions::default()).unwrap();
        assert!(res.kbound.is_finite());
        // Every returned distance is within kbound.
        for h in &res.results {
            assert!(h.distance <= res.kbound + 1e-9);
        }
    }
}
