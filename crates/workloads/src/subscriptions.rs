//! Standing-query subscription workloads for the dispatch engine.
//!
//! A subscription-set workload models a fleet of long-lived continuous
//! queries parked over the building — the "100k standing queries"
//! scenario the query-indexed dispatcher serves. The generator controls
//! the knobs that shape the dispatcher's routing index: how many
//! subscriptions, the range/kNN mix, the distribution of radii and `k`s
//! (which set each query's candidate-partition footprint), and a floor
//! skew concentrating queries on the lower floors the way mall traffic
//! concentrates near entrances — the skew is what makes routing pay,
//! because commits on quiet floors then miss most footprints.

use crate::building::GeneratedBuilding;
use idq_geom::Point2;
use idq_model::IndoorPoint;
use idq_query::Query;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of a standing-subscription workload.
#[derive(Clone, Debug)]
pub struct SubscriptionSetConfig {
    /// Number of standing queries to generate.
    pub count: usize,
    /// Fraction of subscriptions that are kNN (the rest are range),
    /// clamped to `[0, 1]`. Applied deterministically: subscription `i`
    /// is kNN iff the running quota crosses an integer at `i`, so the
    /// realized mix is exact to within one query.
    pub knn_fraction: f64,
    /// Radii range subscriptions cycle through (metres).
    pub radii: Vec<f64>,
    /// `k` values kNN subscriptions cycle through.
    pub ks: Vec<usize>,
    /// Floor-popularity skew: floor `f` is drawn with weight
    /// `(f + 1)^-skew`. `0.0` is uniform; larger values concentrate
    /// queries on the lower floors.
    pub floor_skew: f64,
    /// RNG seed (positions and floors are the only random choices).
    pub seed: u64,
}

impl Default for SubscriptionSetConfig {
    fn default() -> Self {
        SubscriptionSetConfig {
            count: 1000,
            knn_fraction: 0.25,
            radii: vec![25.0, 50.0, 100.0],
            ks: vec![1, 5, 10],
            floor_skew: 1.0,
            seed: 0x5AB5,
        }
    }
}

/// Generates a standing-query set over the building: each subscription
/// anchors at a random in-partition point on a skew-weighted floor and
/// is a range or kNN query per the configured mix, cycling through the
/// configured radii / `k`s. Deterministic in the config.
///
/// # Panics
///
/// Panics if `radii` is empty while the mix includes range queries, or
/// `ks` is empty while it includes kNN queries.
pub fn generate_subscription_set(
    building: &GeneratedBuilding,
    config: &SubscriptionSetConfig,
) -> Vec<Query> {
    let space = &building.space;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let floors = space.num_floors().max(1);
    // Cumulative floor weights under the skew, for inverse sampling.
    let mut cumulative = Vec::with_capacity(floors);
    let mut total = 0.0;
    for f in 0..floors {
        total += ((f + 1) as f64).powf(-config.floor_skew);
        cumulative.push(total);
    }
    let knn_fraction = config.knn_fraction.clamp(0.0, 1.0);

    let mut out = Vec::with_capacity(config.count);
    let (mut ranges, mut knns) = (0usize, 0usize);
    while out.len() < config.count {
        let pick = rng.random_range(0.0..total);
        let floor = cumulative.iter().position(|&c| pick < c).unwrap_or(0) as u16;
        let p = Point2::new(
            rng.random_range(0.0..building.config.width),
            rng.random_range(0.0..building.config.depth),
        );
        let q = IndoorPoint::new(p, floor);
        if space.partition_at(q).is_none() {
            continue;
        }
        // Exact-quota mix: kNN iff admitting one more kNN keeps the
        // realized fraction at or below the target.
        let quota = ((out.len() + 1) as f64 * knn_fraction).floor() as usize;
        out.push(if knns < quota {
            let k = config.ks[knns % config.ks.len()].max(1);
            knns += 1;
            Query::Knn { q, k }
        } else {
            let r = config.radii[ranges % config.radii.len()];
            ranges += 1;
            Query::Range { q, r }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::{generate_building, BuildingConfig};

    fn mall() -> GeneratedBuilding {
        generate_building(&BuildingConfig {
            bands: 2,
            rooms_per_side: 3,
            ..BuildingConfig::with_floors(4)
        })
        .unwrap()
    }

    #[test]
    fn mix_is_exact_and_parameters_cycle() {
        let b = mall();
        let set = generate_subscription_set(
            &b,
            &SubscriptionSetConfig {
                count: 200,
                knn_fraction: 0.25,
                ..Default::default()
            },
        );
        assert_eq!(set.len(), 200);
        let knns: Vec<usize> = set
            .iter()
            .filter_map(|q| match q {
                Query::Knn { k, .. } => Some(*k),
                _ => None,
            })
            .collect();
        let radii: Vec<f64> = set
            .iter()
            .filter_map(|q| match q {
                Query::Range { r, .. } => Some(*r),
                _ => None,
            })
            .collect();
        assert_eq!(knns.len(), 50, "quarter of 200 subscriptions are kNN");
        assert_eq!(radii.len(), 150);
        assert_eq!(&knns[..4], &[1, 5, 10, 1], "k values cycle");
        assert_eq!(&radii[..4], &[25.0, 50.0, 100.0, 25.0], "radii cycle");
        for q in &set {
            assert!(b.space.partition_at(q.query_point()).is_some());
        }
    }

    #[test]
    fn floor_skew_concentrates_low_and_zero_is_uniformish() {
        let b = mall();
        let per_floor = |skew: f64| -> Vec<usize> {
            let set = generate_subscription_set(
                &b,
                &SubscriptionSetConfig {
                    count: 400,
                    floor_skew: skew,
                    ..Default::default()
                },
            );
            let mut counts = vec![0usize; 4];
            for q in &set {
                counts[q.query_point().floor as usize] += 1;
            }
            counts
        };
        let skewed = per_floor(2.0);
        assert!(
            skewed[0] > 2 * skewed[3],
            "skew 2.0 concentrates on floor 0: {skewed:?}"
        );
        let uniform = per_floor(0.0);
        assert!(
            uniform.iter().all(|&c| c > 400 / 8),
            "skew 0.0 spreads across floors: {uniform:?}"
        );
    }

    #[test]
    fn deterministic_in_the_config() {
        let b = mall();
        let cfg = SubscriptionSetConfig {
            count: 64,
            seed: 9,
            ..Default::default()
        };
        assert_eq!(
            generate_subscription_set(&b, &cfg),
            generate_subscription_set(&b, &cfg)
        );
    }
}
