//! Trajectory-stream workloads: wave-major random-walk movement for the
//! history ring and its 3D trajectory index.
//!
//! Unlike the mixed feed of [`crate::updates`], this stream models
//! **coherent motion**: one batch ("wave") per epoch, each moving a
//! fraction of the population by a bounded step from its previous
//! position — so applying wave `k` as commit `k` yields a population
//! whose per-object position sequences are walkable trajectories
//! (short resting legs, small displacements, occasional floor changes),
//! which is what historical range/trajectory/co-movement queries need to
//! exercise realistic segment geometry.

use crate::building::GeneratedBuilding;
use idq_core::Update;
use idq_geom::Point2;
use idq_model::{Floor, IndoorPoint};
use idq_objects::{ObjectId, ObjectStore};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of a trajectory stream.
#[derive(Clone, Copy, Debug)]
pub struct TrajectoryStreamConfig {
    /// Waves to generate — one batch (one commit epoch) each.
    pub steps: usize,
    /// Fraction of the population that moves each wave (the rest rest,
    /// extending their current trajectory leg).
    pub move_fraction: f64,
    /// Largest per-wave displacement along each axis, metres.
    pub max_step: f64,
    /// Probability that a moving object changes floor this wave
    /// (teleporting to a uniform position on the new floor, modelling a
    /// stair/elevator transition).
    pub floor_change: f64,
    /// RNG seed — the stream is fully deterministic given the seed and
    /// the starting population.
    pub seed: u64,
}

impl Default for TrajectoryStreamConfig {
    fn default() -> Self {
        TrajectoryStreamConfig {
            steps: 256,
            move_fraction: 0.15,
            max_step: 6.0,
            floor_change: 0.02,
            seed: 0xCAFE,
        }
    }
}

/// Generates a wave-major trajectory stream over `store`'s population:
/// `steps` batches of [`Update::MoveObject`], valid for sequential
/// batch application from that starting state (each batch is one commit,
/// i.e. one epoch, i.e. one time slice of every trajectory).
pub fn generate_trajectory_stream(
    building: &GeneratedBuilding,
    store: &ObjectStore,
    config: &TrajectoryStreamConfig,
) -> Vec<Vec<Update>> {
    let space = &building.space;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let floors = space.num_floors().max(1) as Floor;

    // Simulated positions, id-sorted for deterministic wave order.
    let mut ids: Vec<ObjectId> = store.ids_sorted();
    let mut at: Vec<(Point2, Floor)> = ids
        .iter()
        .map(|&id| {
            let obj = store.get(id).expect("ids_sorted names live objects");
            (obj.region.center, obj.floor)
        })
        .collect();
    ids.sort_unstable();

    let mut out = Vec::with_capacity(config.steps);
    for _ in 0..config.steps {
        let mut wave = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            if rng.random::<f64>() >= config.move_fraction {
                continue;
            }
            let (pos, floor) = at[i];
            let (center, floor) = if floors > 1 && rng.random::<f64>() < config.floor_change {
                let f = rng.random_range(0..floors);
                (uniform_position(building, f, &mut rng), f)
            } else {
                walk_step(building, pos, floor, config.max_step, &mut rng)
            };
            at[i] = (center, floor);
            wave.push(Update::MoveObject {
                id,
                center,
                floor,
                seed: rng.random::<u64>(),
            });
        }
        out.push(wave);
    }
    out
}

/// One bounded random-walk step from `pos`, rejection-sampled onto the
/// floor's partitions (walls are not crossed diagonally through dead
/// space — a step that lands outside every partition re-rolls, and after
/// a few failures the object stays put rather than teleporting).
fn walk_step(
    building: &GeneratedBuilding,
    pos: Point2,
    floor: Floor,
    max_step: f64,
    rng: &mut StdRng,
) -> (Point2, Floor) {
    let space = &building.space;
    for _ in 0..16 {
        let c = Point2::new(
            pos.x + rng.random_range(-max_step..=max_step),
            pos.y + rng.random_range(-max_step..=max_step),
        );
        if space.partition_at(IndoorPoint::new(c, floor)).is_some() {
            return (c, floor);
        }
    }
    (pos, floor)
}

/// A uniform position inside some partition of `floor`.
fn uniform_position(building: &GeneratedBuilding, floor: Floor, rng: &mut StdRng) -> Point2 {
    let space = &building.space;
    loop {
        let c = Point2::new(
            rng.random_range(0.0..building.config.width),
            rng.random_range(0.0..building.config.depth),
        );
        if space.partition_at(IndoorPoint::new(c, floor)).is_some() {
            return c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::{generate_building, BuildingConfig};
    use crate::objects::{generate_objects, ObjectConfig};
    use idq_core::{EngineConfig, IndoorEngine};

    fn setup() -> (GeneratedBuilding, ObjectStore) {
        let building = generate_building(&BuildingConfig {
            bands: 2,
            rooms_per_side: 3,
            ..BuildingConfig::with_floors(2)
        })
        .unwrap();
        let store = generate_objects(
            &building,
            &ObjectConfig {
                count: 30,
                radius: 4.0,
                instances: 4,
                seed: 19,
            },
        )
        .unwrap();
        (building, store)
    }

    #[test]
    fn stream_is_deterministic_and_wave_major() {
        let (building, store) = setup();
        let cfg = TrajectoryStreamConfig {
            steps: 50,
            ..TrajectoryStreamConfig::default()
        };
        let a = generate_trajectory_stream(&building, &store, &cfg);
        let b = generate_trajectory_stream(&building, &store, &cfg);
        assert_eq!(a.len(), 50);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let moved: usize = a.iter().map(|w| w.len()).sum();
        assert!(moved > 0, "some object moves in 50 waves");
        assert!(
            a.iter().all(|w| w.len() < 30),
            "no wave moves the whole population at the default fraction"
        );
    }

    #[test]
    fn steps_are_bounded_walks() {
        let (building, store) = setup();
        let cfg = TrajectoryStreamConfig {
            steps: 80,
            floor_change: 0.0, // pure same-floor walk
            max_step: 3.0,
            ..TrajectoryStreamConfig::default()
        };
        let mut at: std::collections::HashMap<ObjectId, Point2> =
            store.iter().map(|o| (o.id, o.region.center)).collect();
        for wave in generate_trajectory_stream(&building, &store, &cfg) {
            for update in wave {
                let Update::MoveObject {
                    id, center, floor, ..
                } = update
                else {
                    panic!("trajectory streams are pure movement");
                };
                let prev = at.insert(id, center).unwrap();
                assert_eq!(floor, store.get(id).unwrap().floor, "no floor change");
                assert!(
                    (center.x - prev.x).abs() <= 3.0 + 1e-9
                        && (center.y - prev.y).abs() <= 3.0 + 1e-9,
                    "step bounded by max_step"
                );
            }
        }
    }

    #[test]
    fn stream_applies_cleanly_as_batches() {
        let (building, store) = setup();
        let mut engine = IndoorEngine::with_objects(
            building.space.clone(),
            store.clone(),
            EngineConfig::default(),
        )
        .unwrap();
        let cfg = TrajectoryStreamConfig {
            steps: 40,
            move_fraction: 0.5,
            seed: 5,
            ..TrajectoryStreamConfig::default()
        };
        for wave in generate_trajectory_stream(&building, &store, &cfg) {
            if !wave.is_empty() {
                engine.apply_batch(&wave).unwrap();
            }
        }
        engine.validate().unwrap();
    }
}
