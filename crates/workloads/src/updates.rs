//! Update-stream workloads: seeded mixed streams of typed
//! [`Update`]s for ingest benchmarks and batch-semantics tests.
//!
//! The stream models an indoor positioning feed over a live population:
//! mostly position reports (moves), some arrivals (inserts) and departures
//! (removes), and occasional topology events (door open/close churn). The
//! generator tracks the simulated population so every emitted update is
//! applicable when the stream is applied in order — moves and removes name
//! live ids, inserts carry fresh pre-sampled objects, and door events
//! alternate close/open per door.

use crate::building::GeneratedBuilding;
use crate::objects::sample_one;
use idq_core::Update;
use idq_model::DoorId;
use idq_objects::{ObjectId, ObjectStore};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// Parameters of a mixed update stream. The four kind weights are
/// normalized internally, so any non-negative mix works; kinds that need a
/// live object (moves, removes) fall back to inserts while the population
/// is empty.
#[derive(Clone, Copy, Debug)]
pub struct UpdateStreamConfig {
    /// Updates to generate.
    pub count: usize,
    /// Weight of position reports (`Update::MoveObject`).
    pub moves: f64,
    /// Weight of arrivals (`Update::InsertObject`, pre-sampled).
    pub inserts: f64,
    /// Weight of departures (`Update::RemoveObject`).
    pub removes: f64,
    /// Weight of door open/close events.
    pub door_events: f64,
    /// Uncertainty-region radius of inserted objects, metres.
    pub radius: f64,
    /// Instances per inserted object.
    pub instances: usize,
    /// RNG seed — the stream is fully deterministic given the seed and the
    /// starting population.
    pub seed: u64,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        UpdateStreamConfig {
            count: 1024,
            moves: 0.85,
            inserts: 0.06,
            removes: 0.05,
            door_events: 0.04,
            radius: 5.0,
            instances: 8,
            seed: 0xF00D,
        }
    }
}

/// Generates a mixed update stream against a building and its starting
/// population. The stream is valid for **sequential application from that
/// starting state** (single [`idq_core::IndoorEngine::apply`] calls or
/// [`idq_core::IndoorEngine::apply_batch`] chunks in order).
pub fn generate_update_stream(
    building: &GeneratedBuilding,
    store: &ObjectStore,
    config: &UpdateStreamConfig,
) -> Vec<Update> {
    let space = &building.space;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total = (config.moves + config.inserts + config.removes + config.door_events).max(1e-12);
    let (w_move, w_insert, w_remove) = (
        config.moves / total,
        config.inserts / total,
        config.removes / total,
    );

    // Simulated population state.
    let mut live: Vec<ObjectId> = store.ids_sorted();
    let mut next_id: u64 = live.iter().map(|id| id.0 + 1).max().unwrap_or(0);
    let doors: Vec<DoorId> = space.doors().map(|d| d.id).collect();
    let mut closed: HashSet<DoorId> = HashSet::new();

    let mut out = Vec::with_capacity(config.count);
    while out.len() < config.count {
        let roll: f64 = rng.random();
        let update = if roll < w_move && !live.is_empty() {
            let id = live[rng.random_range(0..live.len())];
            let (center, floor) = random_position(building, &mut rng);
            Update::MoveObject {
                id,
                center,
                floor,
                seed: rng.random::<u64>(),
            }
        } else if roll < w_move + w_insert || live.is_empty() {
            let id = ObjectId(next_id);
            next_id += 1;
            let object = sample_one(building, id, config.radius, config.instances, &mut rng)
                .expect("generator buildings host objects everywhere");
            live.push(id);
            Update::InsertObject(Box::new(object))
        } else if roll < w_move + w_insert + w_remove {
            let at = rng.random_range(0..live.len());
            let id = live.swap_remove(at);
            Update::RemoveObject(id)
        } else if doors.is_empty() {
            continue; // degenerate building: re-roll into the object kinds
        } else {
            let d = doors[rng.random_range(0..doors.len())];
            if closed.remove(&d) {
                Update::OpenDoor(d)
            } else {
                closed.insert(d);
                Update::CloseDoor(d)
            }
        };
        out.push(update);
    }
    out
}

fn random_position(building: &GeneratedBuilding, rng: &mut StdRng) -> (idq_geom::Point2, u16) {
    let space = &building.space;
    let floors = space.num_floors().max(1) as u16;
    loop {
        let floor = rng.random_range(0..floors);
        let c = idq_geom::Point2::new(
            rng.random_range(0.0..building.config.width),
            rng.random_range(0.0..building.config.depth),
        );
        if space
            .partition_at(idq_model::IndoorPoint::new(c, floor))
            .is_some()
        {
            return (c, floor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::{generate_building, BuildingConfig};
    use crate::objects::{generate_objects, ObjectConfig};
    use idq_core::{EngineConfig, IndoorEngine};

    fn setup() -> (GeneratedBuilding, ObjectStore) {
        let building = generate_building(&BuildingConfig {
            bands: 2,
            rooms_per_side: 3,
            ..BuildingConfig::with_floors(2)
        })
        .unwrap();
        let store = generate_objects(
            &building,
            &ObjectConfig {
                count: 40,
                radius: 4.0,
                instances: 4,
                seed: 11,
            },
        )
        .unwrap();
        (building, store)
    }

    #[test]
    fn stream_is_deterministic_and_mixed() {
        let (building, store) = setup();
        let cfg = UpdateStreamConfig {
            count: 200,
            ..UpdateStreamConfig::default()
        };
        let a = generate_update_stream(&building, &store, &cfg);
        let b = generate_update_stream(&building, &store, &cfg);
        assert_eq!(a.len(), 200);
        assert_eq!(
            a.iter().map(update_kind).collect::<Vec<_>>(),
            b.iter().map(update_kind).collect::<Vec<_>>()
        );
        let moves = a.iter().filter(|u| update_kind(u) == "move").count();
        let doors = a.iter().filter(|u| u.is_topology()).count();
        assert!(moves > 120, "moves dominate the default mix: {moves}");
        assert!(doors > 0, "door churn present");
    }

    #[test]
    fn stream_applies_cleanly_in_order() {
        let (building, store) = setup();
        let mut engine = IndoorEngine::with_objects(
            building.space.clone(),
            store.clone(),
            EngineConfig::default(),
        )
        .unwrap();
        let cfg = UpdateStreamConfig {
            count: 120,
            seed: 3,
            ..UpdateStreamConfig::default()
        };
        for update in generate_update_stream(&building, &store, &cfg) {
            engine.apply(update).unwrap();
        }
        engine.validate().unwrap();
        assert_eq!(engine.epoch(), 120);
    }

    #[test]
    fn pure_position_mix_has_no_topology() {
        let (building, store) = setup();
        let cfg = UpdateStreamConfig {
            count: 100,
            door_events: 0.0,
            ..UpdateStreamConfig::default()
        };
        let stream = generate_update_stream(&building, &store, &cfg);
        assert!(stream.iter().all(|u| !u.is_topology()));
    }

    fn update_kind(u: &Update) -> &'static str {
        match u {
            Update::MoveObject { .. } => "move",
            Update::InsertObject(_) => "insert",
            Update::RemoveObject(_) => "remove",
            Update::OpenDoor(_) => "open",
            Update::CloseDoor(_) => "close",
            _ => "other",
        }
    }
}
