//! Experiment utilities: timing, simple statistics, and paper-style series
//! tables shared by the figure binaries.

use std::time::{Duration, Instant};

/// A simple stopwatch accumulating named phases (used for query-phase
//  breakdowns à la Fig. 12(b)/13(b)).
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed milliseconds as `f64`.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Restarts and returns the lap time in milliseconds.
    pub fn lap_ms(&mut self) -> f64 {
        let t = self.elapsed_ms();
        self.start = Instant::now();
        t
    }
}

/// Arithmetic mean; 0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Percentile (nearest-rank, `p` in [0, 100]); 0 for empty input.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// A printable series table, mirroring one panel of a paper figure: one
/// row per x value, one column per series.
#[derive(Debug, Clone)]
pub struct SeriesTable {
    /// Panel title, e.g. `"Fig 12(a) iRQ Tq (ms) vs |O|"`.
    pub title: String,
    /// Label of the x column.
    pub x_label: String,
    /// Series names.
    pub series: Vec<String>,
    /// Rows: x label → one value per series.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl SeriesTable {
    /// Creates an empty table.
    pub fn new(title: &str, x_label: &str, series: &[&str]) -> Self {
        SeriesTable {
            title: title.to_string(),
            x_label: x_label.to_string(),
            series: series.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; `values.len()` must equal the series count.
    pub fn push_row(&mut self, x: impl ToString, values: Vec<f64>) {
        assert_eq!(values.len(), self.series.len(), "row width mismatch");
        self.rows.push((x.to_string(), values));
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().cloned());
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        let formatted: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(x, vals)| {
                let mut row = vec![x.clone()];
                row.extend(vals.iter().map(|v| format_value(*v)));
                row
            })
            .collect();
        for row in &formatted {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&header));
        out.push('\n');
        for row in &formatted {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// CSV rendering (for downstream plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for s in &self.series {
            out.push(',');
            out.push_str(s);
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            out.push_str(x);
            for v in vals {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 50.0), 3.0);
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 0.0), 1.0);
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 100.0), 5.0);
    }

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = SeriesTable::new("Fig X", "|O|", &["r=50", "r=100"]);
        t.push_row("10K", vec![1.25, 2.5]);
        t.push_row("20K", vec![2.0, 4.0]);
        let s = t.render();
        assert!(s.contains("Fig X"));
        assert!(s.contains("r=100"));
        assert!(s.lines().count() >= 4);
        let csv = t.to_csv();
        assert!(csv.starts_with("|O|,r=50,r=100\n"));
        assert!(csv.contains("10K,1.25,2.5"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = SeriesTable::new("t", "x", &["a"]);
        t.push_row("1", vec![1.0, 2.0]);
    }

    #[test]
    fn stopwatch_measures() {
        let mut w = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let lap = w.lap_ms();
        assert!(lap >= 1.0);
        assert!(w.elapsed_ms() < lap + 1000.0);
    }
}
