//! Synthetic workloads reproducing the paper's evaluation setup (§V-A).
//!
//! The paper evaluates on a real shopping-mall floor plan whose published
//! statistics are: floors of 600 m × 600 m × 4 m, 100 rooms and 4 corner
//! staircases per floor, hallways connecting everything; buildings of
//! 10/20/30 floors (≈1K/2K/3K partitions); 10K–30K objects with circular
//! uncertainty regions of radius 5/10/15 m sampled by 100 Gaussian
//! instances; 50 random query points per experiment.
//!
//! * [`BuildingConfig`] / [`generate_building`] — the parametric mall
//!   generator (see DESIGN.md for the substitution argument);
//! * [`ObjectConfig`] / [`generate_objects`] — uncertain-object populations;
//! * [`QueryPointConfig`] / [`generate_query_points`] — query workloads;
//! * [`UpdateStreamConfig`] / [`generate_update_stream`] — mixed typed
//!   update streams (position reports + door churn) for ingest benchmarks;
//! * [`TrajectoryStreamConfig`] / [`generate_trajectory_stream`] —
//!   wave-major bounded random walks for the history ring's trajectory
//!   and co-movement queries;
//! * [`SubscriptionSetConfig`] / [`generate_subscription_set`] — standing
//!   continuous-query fleets for the dispatch engine's routing benchmarks;
//! * [`experiment`] — timing, statistics and paper-style table printing
//!   shared by the figure binaries and Criterion benches.

pub mod building;
pub mod defaults;
pub mod experiment;
pub mod objects;
pub mod queries;
pub mod subscriptions;
pub mod trajectories;
pub mod updates;

pub use building::{generate_building, BuildingConfig, GeneratedBuilding};
pub use defaults::PaperDefaults;
pub use experiment::{mean, percentile, SeriesTable, Stopwatch};
pub use objects::{generate_objects, sample_one, ObjectConfig};
pub use queries::{generate_query_points, generate_range_batches, QueryPointConfig};
pub use subscriptions::{generate_subscription_set, SubscriptionSetConfig};
pub use trajectories::{generate_trajectory_stream, TrajectoryStreamConfig};
pub use updates::{generate_update_stream, UpdateStreamConfig};
