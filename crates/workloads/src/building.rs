//! Parametric multi-floor mall generator.
//!
//! Reproduces the statistics of the paper's evaluation building (§V-A):
//! every floor is `width × depth` metres (default 600 × 600) and contains
//!
//! * a **ring corridor** along the perimeter (four strips: south, north,
//!   west, east) — the mall's walkway;
//! * **five double-loaded corridor bands** in the interior, each with 10
//!   rooms on either side → exactly 100 rooms per floor;
//! * **four staircases in the corners**, each a single partition spanning
//!   all floors with one entrance door per floor onto the ring;
//! * doors: one per room onto its band corridor, two per band onto the
//!   west/east ring strips, four ring-corner doors, four staircase
//!   entrances per floor. A configurable number of rooms per floor instead
//!   get a one-way in / one-way out door pair (airport-security style,
//!   §I), exercising directed doors-graph edges.
//!
//! Per floor: 100 rooms + 5 band corridors + 4 ring strips = 109
//! single-floor partitions, plus the 4 shared staircases — so 10/20/30
//! floors give ≈1.1K/2.2K/3.3K partitions, matching the paper's 1K/2K/3K
//! x-axis.

use idq_geom::{Point2, Rect2};
use idq_model::{DoorId, Floor, FloorPlanBuilder, IndoorSpace, ModelError, PartitionId};

/// Parameters of the synthetic building.
#[derive(Clone, Debug)]
pub struct BuildingConfig {
    /// Number of floors (paper: 10 / 20 / **30**… defaults to 20, the
    /// middle setting).
    pub floors: Floor,
    /// Floor width (x extent), metres.
    pub width: f64,
    /// Floor depth (y extent), metres.
    pub depth: f64,
    /// Floor height, metres.
    pub floor_height: f64,
    /// Corridor width (ring strips and band corridors), metres.
    pub corridor_width: f64,
    /// Interior double-loaded corridor bands per floor.
    pub bands: usize,
    /// Rooms on each side of each band corridor.
    pub rooms_per_side: usize,
    /// Rooms per floor converted to a one-way in/out door pair.
    pub one_way_rooms: usize,
}

impl Default for BuildingConfig {
    fn default() -> Self {
        BuildingConfig {
            floors: 20,
            width: 600.0,
            depth: 600.0,
            floor_height: 4.0,
            corridor_width: 10.0,
            bands: 5,
            rooms_per_side: 10,
            one_way_rooms: 2,
        }
    }
}

impl BuildingConfig {
    /// A building with the given floor count and paper defaults otherwise.
    pub fn with_floors(floors: Floor) -> Self {
        BuildingConfig {
            floors,
            ..Self::default()
        }
    }

    /// Rooms per floor implied by the configuration.
    pub fn rooms_per_floor(&self) -> usize {
        2 * self.bands * self.rooms_per_side
    }
}

/// The generated building plus handles used by workloads and tests.
#[derive(Debug)]
pub struct GeneratedBuilding {
    /// The indoor space.
    pub space: IndoorSpace,
    /// The four staircase partitions (span all floors).
    pub staircases: Vec<PartitionId>,
    /// Room partitions, grouped by floor.
    pub rooms_by_floor: Vec<Vec<PartitionId>>,
    /// All corridor partitions (ring strips + band corridors), by floor.
    pub corridors_by_floor: Vec<Vec<PartitionId>>,
    /// Staircase entrance doors, by floor (4 per floor).
    pub stair_entrances_by_floor: Vec<Vec<DoorId>>,
    /// The configuration that produced the building.
    pub config: BuildingConfig,
}

impl GeneratedBuilding {
    /// Total active partitions.
    pub fn partition_count(&self) -> usize {
        self.space.partition_count()
    }

    /// Total active doors.
    pub fn door_count(&self) -> usize {
        self.space.door_count()
    }
}

/// Generates the synthetic mall described in the module docs.
pub fn generate_building(config: &BuildingConfig) -> Result<GeneratedBuilding, ModelError> {
    let mut b = FloorPlanBuilder::new(config.floor_height);
    let (w, d, cw) = (config.width, config.depth, config.corridor_width);
    let floors = config.floors.max(1);

    // Staircases: corner squares spanning all floors, tucked just inside
    // the ring corridor.
    let stair = cw; // staircase side length
    let stair_rects = [
        Rect2::from_bounds(cw, cw, cw + stair, cw + stair), // SW
        Rect2::from_bounds(w - cw - stair, cw, w - cw, cw + stair), // SE
        Rect2::from_bounds(cw, d - cw - stair, cw + stair, d - cw), // NW
        Rect2::from_bounds(w - cw - stair, d - cw - stair, w - cw, d - cw), // NE
    ];
    let mut staircases = Vec::with_capacity(4);
    for r in stair_rects {
        staircases.push(b.add_staircase((0, floors - 1), r)?);
    }

    let mut rooms_by_floor = Vec::with_capacity(floors as usize);
    let mut corridors_by_floor = Vec::with_capacity(floors as usize);
    let mut stair_entrances_by_floor = Vec::with_capacity(floors as usize);

    for f in 0..floors {
        let mut rooms = Vec::with_capacity(config.rooms_per_floor());
        let mut corridors = Vec::new();

        // Ring corridor strips.
        let south = b.add_room_kind(f, Rect2::from_bounds(0.0, 0.0, w, cw))?;
        let north = b.add_room_kind(f, Rect2::from_bounds(0.0, d - cw, w, d))?;
        let west = b.add_room_kind(f, Rect2::from_bounds(0.0, cw, cw, d - cw))?;
        let east = b.add_room_kind(f, Rect2::from_bounds(w - cw, cw, w, d - cw))?;
        corridors.extend([south, north, west, east]);
        // Ring corner doors.
        b.add_door_between(south, west, Point2::new(cw / 2.0, cw))?;
        b.add_door_between(south, east, Point2::new(w - cw / 2.0, cw))?;
        b.add_door_between(north, west, Point2::new(cw / 2.0, d - cw))?;
        b.add_door_between(north, east, Point2::new(w - cw / 2.0, d - cw))?;

        // Staircase entrances onto the west/east strips.
        let mut entrances = Vec::with_capacity(4);
        for (i, &st) in staircases.iter().enumerate() {
            let r = stair_rects[i];
            let (strip, x) = if r.lo.x < w / 2.0 {
                (west, cw) // west-side staircases share the x = cw edge
            } else {
                (east, w - cw)
            };
            let pos = Point2::new(x, (r.lo.y + r.hi.y) / 2.0);
            entrances.push(b.add_staircase_entrance(st, strip, f, pos)?);
        }

        // Interior bands of rooms around their own corridor.
        // Interior region: x ∈ [cw, w−cw], y ∈ [cw+stair, d−cw−stair].
        let ix0 = cw;
        let ix1 = w - cw;
        let iy0 = cw + stair;
        let iy1 = d - cw - stair;
        let band_h = (iy1 - iy0) / config.bands as f64;
        let room_d = (band_h - cw) / 2.0; // room depth on each side
        let room_w = (ix1 - ix0) / config.rooms_per_side as f64;
        let mut one_way_left = config.one_way_rooms;

        for band in 0..config.bands {
            let y0 = iy0 + band as f64 * band_h;
            let cy0 = y0 + room_d; // corridor bottom
            let cy1 = cy0 + cw; // corridor top
            let corridor = b.add_room_kind(f, Rect2::from_bounds(ix0, cy0, ix1, cy1))?;
            corridors.push(corridor);
            // Corridor ends open onto the west/east ring strips.
            b.add_door_between(corridor, west, Point2::new(ix0, (cy0 + cy1) / 2.0))?;
            b.add_door_between(corridor, east, Point2::new(ix1, (cy0 + cy1) / 2.0))?;

            for side in 0..2 {
                for i in 0..config.rooms_per_side {
                    let x0 = ix0 + i as f64 * room_w;
                    let x1 = x0 + room_w;
                    let (ry0, ry1, door_y) = if side == 0 {
                        (y0, cy0, cy0) // below the corridor, door on its top edge
                    } else {
                        (cy1, y0 + band_h, cy1) // above, door on its bottom edge
                    };
                    let room = b.add_room_kind(f, Rect2::from_bounds(x0, ry0, x1, ry1))?;
                    rooms.push(room);
                    let cx = (x0 + x1) / 2.0;
                    if one_way_left > 0 {
                        // Security-style room: separate entry and exit doors.
                        one_way_left -= 1;
                        b.add_one_way_door(corridor, room, Point2::new(cx - room_w / 4.0, door_y))?;
                        b.add_one_way_door(room, corridor, Point2::new(cx + room_w / 4.0, door_y))?;
                    } else {
                        b.add_door_between(room, corridor, Point2::new(cx, door_y))?;
                    }
                }
            }
        }
        rooms_by_floor.push(rooms);
        corridors_by_floor.push(corridors);
        stair_entrances_by_floor.push(entrances);
    }

    let space = b.finish()?;
    debug_assert_eq!(space.connected_components(), 1);
    Ok(GeneratedBuilding {
        space,
        staircases,
        rooms_by_floor,
        corridors_by_floor,
        stair_entrances_by_floor,
        config: config.clone(),
    })
}

/// Small extension so the generator reads naturally: ring strips and band
/// corridors are `Hallway` partitions; rooms are `Room`s.
trait BuilderExt {
    fn add_room_kind(&mut self, floor: Floor, rect: Rect2) -> Result<PartitionId, ModelError>;
}

impl BuilderExt for FloorPlanBuilder {
    fn add_room_kind(&mut self, floor: Floor, rect: Rect2) -> Result<PartitionId, ModelError> {
        // Wide, thin strips are hallways; compact rectangles are rooms.
        if rect.aspect_ratio() < 0.25 {
            self.add_hallway(floor, idq_geom::Polygon::from_rect(rect))
        } else {
            self.add_room(floor, rect)
        }
    }
}

/// One-way doors come from `add_one_way_door`; re-exported here so the
/// generator's callers can reason about direction without importing the
/// model crate.
pub use idq_model::Direction as DoorDirection;

#[cfg(test)]
mod tests {
    use super::*;
    use idq_model::{IndoorPoint, PartitionKind};

    fn small() -> GeneratedBuilding {
        generate_building(&BuildingConfig::with_floors(3)).unwrap()
    }

    #[test]
    fn paper_statistics_hold() {
        let g = small();
        let cfg = &g.config;
        assert_eq!(cfg.rooms_per_floor(), 100);
        // 109 per floor + 4 staircases.
        assert_eq!(g.partition_count(), 3 * 109 + 4);
        for f in 0..3 {
            assert_eq!(g.rooms_by_floor[f].len(), 100);
            assert_eq!(g.corridors_by_floor[f].len(), 9);
            assert_eq!(g.stair_entrances_by_floor[f].len(), 4);
        }
        assert_eq!(g.staircases.len(), 4);
        // Doors per floor: 100 room doors + 2 extra one-way (2 rooms get
        // pairs) + 10 corridor-ring + 4 corners + 4 stair entrances = 120.
        assert_eq!(g.door_count(), 3 * 120);
    }

    #[test]
    fn building_is_connected() {
        let g = small();
        assert_eq!(g.space.connected_components(), 1);
        assert!(g.space.sealed_partitions().is_empty());
    }

    #[test]
    fn staircases_span_all_floors() {
        let g = small();
        for &st in &g.staircases {
            let p = g.space.partition(st).unwrap();
            assert_eq!(p.kind, PartitionKind::Staircase);
            assert_eq!(p.floor_lo, 0);
            assert_eq!(p.floor_hi, 2);
        }
    }

    #[test]
    fn no_overlapping_partitions() {
        // Random probing: every interior point belongs to at most one
        // partition (ignoring shared boundaries).
        let g = small();
        let mut checked = 0;
        for gx in 0..30 {
            for gy in 0..30 {
                let p = Point2::new(7.0 + gx as f64 * 19.7, 3.0 + gy as f64 * 19.9);
                let hits = g.space.partitions_at(IndoorPoint::new(p, 1));
                assert!(hits.len() <= 1, "{p} in {hits:?}");
                checked += 1;
            }
        }
        assert_eq!(checked, 900);
    }

    #[test]
    fn one_way_rooms_have_directed_door_pairs() {
        let g = small();
        let one_way: Vec<_> = g
            .space
            .doors()
            .filter(|d| d.direction == idq_model::Direction::OneWay)
            .collect();
        // 2 rooms × 2 doors × 3 floors.
        assert_eq!(one_way.len(), 12);
    }

    #[test]
    fn every_room_reaches_the_ring() {
        // Doors-graph connectivity from a room on the top floor down to a
        // staircase on floor 0 would need Dijkstra; here we just verify
        // every room has at least one door and its corridor is connected.
        let g = small();
        for &room in &g.rooms_by_floor[2] {
            let doors = g.space.doors_of(room).unwrap();
            assert!(!doors.is_empty());
        }
    }

    #[test]
    fn scales_with_floor_count() {
        let g10 = generate_building(&BuildingConfig::with_floors(1)).unwrap();
        assert_eq!(g10.partition_count(), 109 + 4);
        let cfg = BuildingConfig {
            bands: 2,
            rooms_per_side: 3,
            ..BuildingConfig::with_floors(1)
        };
        let tiny = generate_building(&cfg).unwrap();
        assert_eq!(tiny.rooms_by_floor[0].len(), 12);
        assert_eq!(tiny.space.connected_components(), 1);
    }
}
