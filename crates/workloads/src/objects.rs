//! Uncertain-object population generator (§V-A).

use crate::building::GeneratedBuilding;
use idq_geom::Point2;
use idq_model::{IndoorPoint, PartitionId};
use idq_objects::{GaussianSampler, ObjectError, ObjectId, ObjectStore, UncertainObject};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the object population.
#[derive(Clone, Copy, Debug)]
pub struct ObjectConfig {
    /// Number of objects (paper: 10K / **20K** / 30K).
    pub count: usize,
    /// Uncertainty-region radius, metres (paper: 5 / **10** / 15).
    pub radius: f64,
    /// Instances per object (paper: 100).
    pub instances: usize,
    /// RNG seed — the population is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for ObjectConfig {
    fn default() -> Self {
        ObjectConfig {
            count: 20_000,
            radius: 10.0,
            instances: 100,
            seed: 0xD15C0,
        }
    }
}

/// Generates `config.count` uncertain objects uniformly over the building
/// volume: a host partition is drawn with probability proportional to its
/// area (staircases count once per covered floor), then the region centre
/// uniformly inside the partition footprint.
pub fn generate_objects(
    building: &GeneratedBuilding,
    config: &ObjectConfig,
) -> Result<ObjectStore, ObjectError> {
    let space = &building.space;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sampler = GaussianSampler {
        instances: config.instances.max(1),
        ..GaussianSampler::default()
    };

    // (partition, floor) cells weighted by area.
    let mut cells: Vec<(PartitionId, u16, f64)> = Vec::new();
    let mut total_area = 0.0;
    for p in space.partitions() {
        for f in p.floor_lo..=p.floor_hi {
            let a = p.area();
            cells.push((p.id, f, a));
            total_area += a;
        }
    }
    if cells.is_empty() || total_area <= 0.0 {
        return Err(ObjectError::NoHostPartition);
    }

    let mut store = ObjectStore::new();
    for i in 0..config.count {
        let (pid, floor) = pick_cell(&cells, total_area, &mut rng);
        let part = space.partition(pid).expect("cells hold active partitions");
        let bbox = part.bbox;
        // Uniform point inside the footprint by bbox rejection.
        let center = loop {
            let c = Point2::new(
                rng.random_range(bbox.lo.x..=bbox.hi.x),
                rng.random_range(bbox.lo.y..=bbox.hi.y),
            );
            if part.contains(c, floor) {
                break c;
            }
        };
        let obj = sampler.sample(
            ObjectId(i as u64),
            center,
            floor,
            config.radius,
            space,
            &mut rng,
        )?;
        store.insert(obj)?;
    }
    Ok(store)
}

/// Samples one additional object (used by update benchmarks that grow the
/// population on the fly).
pub fn sample_one(
    building: &GeneratedBuilding,
    id: ObjectId,
    radius: f64,
    instances: usize,
    rng: &mut StdRng,
) -> Result<UncertainObject, ObjectError> {
    let space = &building.space;
    let sampler = GaussianSampler {
        instances: instances.max(1),
        ..GaussianSampler::default()
    };
    // Rejection over the floor extent keeps this simple and exact.
    let floors = space.num_floors() as u16;
    loop {
        let floor = rng.random_range(0..floors);
        let c = Point2::new(
            rng.random_range(0.0..building.config.width),
            rng.random_range(0.0..building.config.depth),
        );
        if space.partition_at(IndoorPoint::new(c, floor)).is_some() {
            return sampler.sample(id, c, floor, radius, space, rng);
        }
    }
}

fn pick_cell(
    cells: &[(PartitionId, u16, f64)],
    total_area: f64,
    rng: &mut StdRng,
) -> (PartitionId, u16) {
    let mut t = rng.random_range(0.0..total_area);
    for &(pid, f, a) in cells {
        if t < a {
            return (pid, f);
        }
        t -= a;
    }
    let last = cells.last().expect("non-empty");
    (last.0, last.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::{generate_building, BuildingConfig};

    fn tiny_building() -> GeneratedBuilding {
        generate_building(&BuildingConfig {
            bands: 2,
            rooms_per_side: 3,
            ..BuildingConfig::with_floors(2)
        })
        .unwrap()
    }

    #[test]
    fn generates_requested_population() {
        let g = tiny_building();
        let cfg = ObjectConfig {
            count: 50,
            radius: 5.0,
            instances: 20,
            seed: 1,
        };
        let store = generate_objects(&g, &cfg).unwrap();
        assert_eq!(store.len(), 50);
        for o in store.iter() {
            assert_eq!(o.len(), 20);
            assert!((o.floor as usize) < g.space.num_floors());
            // Centre is inside the building.
            assert!(g
                .space
                .partition_at(IndoorPoint::new(o.region.center, o.floor))
                .is_some());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = tiny_building();
        let cfg = ObjectConfig {
            count: 10,
            radius: 5.0,
            instances: 5,
            seed: 42,
        };
        let a = generate_objects(&g, &cfg).unwrap();
        let b = generate_objects(&g, &cfg).unwrap();
        for id in a.ids_sorted() {
            let (oa, ob) = (a.get(id).unwrap(), b.get(id).unwrap());
            assert_eq!(oa.region.center, ob.region.center);
            for (x, y) in oa.instances().iter().zip(ob.instances()) {
                assert_eq!(x.position, y.position);
            }
        }
        let c = generate_objects(&g, &ObjectConfig { seed: 43, ..cfg }).unwrap();
        let differs = a
            .ids_sorted()
            .iter()
            .any(|&id| a.get(id).unwrap().region.center != c.get(id).unwrap().region.center);
        assert!(differs, "different seeds → different placements");
    }

    #[test]
    fn objects_spread_across_floors() {
        let g = tiny_building();
        let cfg = ObjectConfig {
            count: 200,
            radius: 5.0,
            instances: 2,
            seed: 7,
        };
        let store = generate_objects(&g, &cfg).unwrap();
        let on_floor0 = store.iter().filter(|o| o.floor == 0).count();
        assert!(on_floor0 > 0 && on_floor0 < 200, "both floors populated");
    }

    #[test]
    fn sample_one_is_valid() {
        let g = tiny_building();
        let mut rng = StdRng::seed_from_u64(9);
        let o = sample_one(&g, ObjectId(999), 5.0, 10, &mut rng).unwrap();
        assert_eq!(o.id, ObjectId(999));
        assert_eq!(o.len(), 10);
    }
}
