//! The paper's default experiment parameters (§V-A, defaults bolded in the
//! original; we use the middle values — see DESIGN.md "Deliberate
//! interpretation choices").

/// Default parameters of the paper's evaluation.
#[derive(Clone, Copy, Debug)]
pub struct PaperDefaults {
    /// Objects in the building.
    pub objects: usize,
    /// Floors (→ ≈2K partitions).
    pub floors: u16,
    /// Uncertainty-region radius, metres.
    pub radius: f64,
    /// Instances per object.
    pub instances: usize,
    /// iRQ range `r`, metres.
    pub range_r: f64,
    /// ikNNQ `k`.
    pub k: usize,
    /// Query points per experiment.
    pub queries: usize,
    /// indR-tree fanout.
    pub fanout: usize,
    /// Decomposition threshold `T_shape`.
    pub t_shape: f64,
}

impl Default for PaperDefaults {
    fn default() -> Self {
        PaperDefaults {
            objects: 20_000,
            floors: 20,
            radius: 10.0,
            instances: 100,
            range_r: 100.0,
            k: 100,
            queries: 50,
            fanout: 20,
            t_shape: 0.5,
        }
    }
}

impl PaperDefaults {
    /// The paper's sweep values for the object count (Fig. 12(a), 13(a),
    /// 14).
    pub const OBJECT_SWEEP: [usize; 3] = [10_000, 20_000, 30_000];
    /// Sweep of uncertainty-region radii (Fig. 12(c), 13(c); the figures'
    /// x-axis shows the diameter 10/20/30).
    pub const RADIUS_SWEEP: [f64; 3] = [5.0, 10.0, 15.0];
    /// Sweep of floor counts → ≈1K/2K/3K partitions (Fig. 12(d), 13(d),
    /// 15(b), 15(d)).
    pub const FLOOR_SWEEP: [u16; 3] = [10, 20, 30];
    /// iRQ range sweep (Fig. 12, 15(a)).
    pub const RANGE_SWEEP: [f64; 3] = [50.0, 100.0, 150.0];
    /// ikNNQ k sweep (Fig. 13).
    pub const K_SWEEP: [usize; 3] = [50, 100, 150];
    /// Update-operation counts (Fig. 15(c)).
    pub const OPS_SWEEP: [usize; 3] = [10, 50, 100];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_middle_sweep_values() {
        let d = PaperDefaults::default();
        assert_eq!(d.objects, PaperDefaults::OBJECT_SWEEP[1]);
        assert_eq!(d.floors, PaperDefaults::FLOOR_SWEEP[1]);
        assert_eq!(d.radius, PaperDefaults::RADIUS_SWEEP[1]);
        assert_eq!(d.range_r, PaperDefaults::RANGE_SWEEP[1]);
        assert_eq!(d.k, PaperDefaults::K_SWEEP[1]);
    }
}
