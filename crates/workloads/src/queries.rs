//! Query-point workloads (§V-A: 50 random query points per experiment)
//! and batched [`Query`] workloads for the session API's reuse path.

use crate::building::GeneratedBuilding;
use idq_geom::Point2;
use idq_model::IndoorPoint;
use idq_query::Query;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of a query-point workload.
#[derive(Clone, Copy, Debug)]
pub struct QueryPointConfig {
    /// Number of query points (paper: 50).
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryPointConfig {
    fn default() -> Self {
        QueryPointConfig {
            count: 50,
            seed: 0x9E71,
        }
    }
}

/// Generates query points uniformly over the building: random floor,
/// random planar position, rejected until it falls inside a partition.
pub fn generate_query_points(
    building: &GeneratedBuilding,
    config: &QueryPointConfig,
) -> Vec<IndoorPoint> {
    let space = &building.space;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let floors = space.num_floors().max(1) as u16;
    let mut out = Vec::with_capacity(config.count);
    while out.len() < config.count {
        let floor = rng.random_range(0..floors);
        let p = Point2::new(
            rng.random_range(0.0..building.config.width),
            rng.random_range(0.0..building.config.depth),
        );
        let q = IndoorPoint::new(p, floor);
        if space.partition_at(q).is_some() {
            out.push(q);
        }
    }
    out
}

/// Builds a batched range-query workload: for every query point one
/// batch of `per_point` `Query::Range`s anchored at it, cycling through
/// `radii` — the "related queries arrive in a short period" scenario the
/// paper's §VII reuse proposal targets. Each inner vector is one
/// `execute_batch` group sharing a query point (hence one evaluation
/// context).
pub fn generate_range_batches(
    points: &[IndoorPoint],
    radii: &[f64],
    per_point: usize,
) -> Vec<Vec<Query>> {
    assert!(!radii.is_empty(), "at least one radius");
    points
        .iter()
        .map(|&q| {
            (0..per_point)
                .map(|i| Query::Range {
                    q,
                    r: radii[i % radii.len()],
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::{generate_building, BuildingConfig};

    #[test]
    fn range_batches_share_points_and_cycle_radii() {
        let points = vec![
            IndoorPoint::new(Point2::new(1.0, 2.0), 0),
            IndoorPoint::new(Point2::new(3.0, 4.0), 1),
        ];
        let batches = generate_range_batches(&points, &[50.0, 100.0], 3);
        assert_eq!(batches.len(), 2);
        for (point, batch) in points.iter().zip(&batches) {
            assert_eq!(batch.len(), 3);
            for query in batch {
                assert_eq!(query.query_point(), *point);
            }
            assert_eq!(
                batch
                    .iter()
                    .map(|b| match b {
                        Query::Range { r, .. } => *r,
                        _ => unreachable!("range batches hold range queries"),
                    })
                    .collect::<Vec<_>>(),
                vec![50.0, 100.0, 50.0]
            );
        }
    }

    #[test]
    fn points_are_valid_and_deterministic() {
        let g = generate_building(&BuildingConfig {
            bands: 2,
            rooms_per_side: 3,
            ..BuildingConfig::with_floors(2)
        })
        .unwrap();
        let cfg = QueryPointConfig { count: 30, seed: 5 };
        let a = generate_query_points(&g, &cfg);
        assert_eq!(a.len(), 30);
        for q in &a {
            assert!(g.space.partition_at(*q).is_some());
        }
        let b = generate_query_points(&g, &cfg);
        assert_eq!(a, b);
    }
}
