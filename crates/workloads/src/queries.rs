//! Query-point workloads (§V-A: 50 random query points per experiment).

use crate::building::GeneratedBuilding;
use idq_geom::Point2;
use idq_model::IndoorPoint;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of a query-point workload.
#[derive(Clone, Copy, Debug)]
pub struct QueryPointConfig {
    /// Number of query points (paper: 50).
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryPointConfig {
    fn default() -> Self {
        QueryPointConfig {
            count: 50,
            seed: 0x9E71,
        }
    }
}

/// Generates query points uniformly over the building: random floor,
/// random planar position, rejected until it falls inside a partition.
pub fn generate_query_points(
    building: &GeneratedBuilding,
    config: &QueryPointConfig,
) -> Vec<IndoorPoint> {
    let space = &building.space;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let floors = space.num_floors().max(1) as u16;
    let mut out = Vec::with_capacity(config.count);
    while out.len() < config.count {
        let floor = rng.random_range(0..floors);
        let p = Point2::new(
            rng.random_range(0.0..building.config.width),
            rng.random_range(0.0..building.config.depth),
        );
        let q = IndoorPoint::new(p, floor);
        if space.partition_at(q).is_some() {
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::{generate_building, BuildingConfig};

    #[test]
    fn points_are_valid_and_deterministic() {
        let g = generate_building(&BuildingConfig {
            bands: 2,
            rooms_per_side: 3,
            ..BuildingConfig::with_floors(2)
        })
        .unwrap();
        let cfg = QueryPointConfig { count: 30, seed: 5 };
        let a = generate_query_points(&g, &cfg);
        assert_eq!(a.len(), 30);
        for q in &a {
            assert!(g.space.partition_at(*q).is_some());
        }
        let b = generate_query_points(&g, &cfg);
        assert_eq!(a, b);
    }
}
