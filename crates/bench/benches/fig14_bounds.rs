//! Criterion micro-bench counterpart of Figure 14: the pruning-phase
//! ablation for both query types (the bound family's payoff).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idq_bench::build_world;
use idq_query::Query;

fn bench_pruning_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_bounds");
    g.sample_size(10);
    let world = build_world(4, 2_000, 10.0, 5, 7);

    for (name, pruning) in [("withPruning", true), ("withoutPruning", false)] {
        let opts = if pruning {
            world.options
        } else {
            world.options.without_pruning()
        };
        g.bench_with_input(BenchmarkId::new("irq", name), &opts, |b, o| {
            let snapshot = world.snapshot(o);
            b.iter(|| {
                for &q in &world.queries {
                    std::hint::black_box(snapshot.execute(&Query::Range { q, r: 100.0 }).unwrap());
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("iknn", name), &opts, |b, o| {
            let snapshot = world.snapshot(o);
            b.iter(|| {
                for &q in &world.queries {
                    std::hint::black_box(snapshot.execute(&Query::Knn { q, k: 25 }).unwrap());
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pruning_ablation);
criterion_main!(benches);
