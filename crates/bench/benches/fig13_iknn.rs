//! Criterion micro-bench counterpart of Figure 13: ikNNQ latency across
//! object count, k, and partition axes on a reduced world.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idq_bench::build_world;
use idq_query::Query;

fn bench_iknn(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_iknn");
    g.sample_size(10);

    for objects in [1_000usize, 2_000, 3_000] {
        let world = build_world(4, objects, 10.0, 5, 7);
        g.bench_with_input(BenchmarkId::new("objects", objects), &world, |b, w| {
            let snapshot = w.snapshot(&w.options);
            b.iter(|| {
                for &q in &w.queries {
                    std::hint::black_box(snapshot.execute(&Query::Knn { q, k: 25 }).unwrap());
                }
            })
        });
    }

    for k in [10usize, 25, 50] {
        let world = build_world(4, 2_000, 10.0, 5, 7);
        g.bench_with_input(BenchmarkId::new("k", k), &world, |b, w| {
            let snapshot = w.snapshot(&w.options);
            b.iter(|| {
                for &q in &w.queries {
                    std::hint::black_box(snapshot.execute(&Query::Knn { q, k }).unwrap());
                }
            })
        });
    }

    for floors in [2u16, 4, 6] {
        let world = build_world(floors, 2_000, 10.0, 5, 7);
        g.bench_with_input(BenchmarkId::new("floors", floors), &world, |b, w| {
            let snapshot = w.snapshot(&w.options);
            b.iter(|| {
                for &q in &w.queries {
                    std::hint::black_box(snapshot.execute(&Query::Knn { q, k: 25 }).unwrap());
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_iknn);
criterion_main!(benches);
