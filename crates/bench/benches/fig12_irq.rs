//! Criterion micro-bench counterpart of Figure 12: iRQ latency across the
//! paper's parameter axes on a reduced world (full-scale sweeps live in
//! the `fig12` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idq_bench::build_world;
use idq_query::Query;

fn bench_irq(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_irq");
    g.sample_size(10);

    // (a) object-count axis.
    for objects in [1_000usize, 2_000, 3_000] {
        let world = build_world(4, objects, 10.0, 5, 7);
        g.bench_with_input(BenchmarkId::new("objects", objects), &world, |b, w| {
            let snapshot = w.snapshot(&w.options);
            b.iter(|| {
                for &q in &w.queries {
                    std::hint::black_box(snapshot.execute(&Query::Range { q, r: 100.0 }).unwrap());
                }
            })
        });
    }

    // (c) uncertainty axis.
    for radius in [5.0f64, 10.0, 15.0] {
        let world = build_world(4, 2_000, radius, 5, 7);
        g.bench_with_input(BenchmarkId::new("radius", radius as u64), &world, |b, w| {
            let snapshot = w.snapshot(&w.options);
            b.iter(|| {
                for &q in &w.queries {
                    std::hint::black_box(snapshot.execute(&Query::Range { q, r: 100.0 }).unwrap());
                }
            })
        });
    }

    // (d) partition axis.
    for floors in [2u16, 4, 6] {
        let world = build_world(floors, 2_000, 10.0, 5, 7);
        g.bench_with_input(BenchmarkId::new("floors", floors), &world, |b, w| {
            let snapshot = w.snapshot(&w.options);
            b.iter(|| {
                for &q in &w.queries {
                    std::hint::black_box(snapshot.execute(&Query::Range { q, r: 100.0 }).unwrap());
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_irq);
criterion_main!(benches);
