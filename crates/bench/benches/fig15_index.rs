//! Criterion micro-bench counterpart of Figure 15: index construction,
//! skeleton ablation in RangeSearch, dynamic operations, and the
//! pre-computation baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idq_bench::build_world;
use idq_index::{CompositeIndex, IndexConfig};
use idq_objects::ObjectId;
use idq_query::PrecomputedD2D;
use idq_workloads::sample_one;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_index");
    g.sample_size(10);

    // (a) RangeSearch with and without the skeleton tier.
    let world = build_world(4, 2_000, 10.0, 5, 7);
    for (name, skeleton) in [("withSkeleton", true), ("withoutSkeleton", false)] {
        g.bench_with_input(
            BenchmarkId::new("range_search", name),
            &skeleton,
            |b, &s| {
                b.iter(|| {
                    for &q in &world.queries {
                        std::hint::black_box(world.index.range_search(
                            &world.building.space,
                            q,
                            100.0,
                            s,
                        ));
                    }
                })
            },
        );
    }

    // (b) full index construction.
    for floors in [2u16, 4] {
        let w = build_world(floors, 1_000, 10.0, 2, 7);
        g.bench_with_input(BenchmarkId::new("build", floors), &w, |b, w| {
            b.iter(|| {
                std::hint::black_box(
                    CompositeIndex::build(&w.building.space, &w.store, IndexConfig::default())
                        .unwrap(),
                )
            })
        });
    }

    // (c) object insert+delete round trip.
    {
        let mut w = build_world(3, 1_000, 10.0, 2, 7);
        let mut rng = StdRng::seed_from_u64(3);
        let obj = sample_one(&w.building, ObjectId(999_999), 10.0, 100, &mut rng).unwrap();
        g.bench_function("object_update_roundtrip", |b| {
            b.iter(|| {
                let index = std::sync::Arc::make_mut(&mut w.index);
                index.insert_object(&w.building.space, &obj).unwrap();
                index.remove_object(obj.id).unwrap();
            })
        });
    }

    // (d) the pre-computation baseline (small world; the full-scale number
    // comes from the fig15 binary).
    {
        let w = build_world(2, 100, 10.0, 2, 7);
        g.bench_function("precompute_d2d", |b| {
            b.iter(|| {
                std::hint::black_box(PrecomputedD2D::build(
                    &w.building.space,
                    w.index.doors_graph(),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
