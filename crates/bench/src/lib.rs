//! Shared harness for the figure binaries and Criterion benches: world
//! construction at paper scale (§V-A) and workload-averaged query timing.
//!
//! Scale control: the environment variable `IDQ_SCALE` (a float, default
//! `1.0`) multiplies the object counts and floor counts of every
//! experiment, so `IDQ_SCALE=0.1 cargo run --release -p idq-bench --bin
//! fig12` gives a fast smoke run while the default regenerates the paper's
//! exact parameter grid.

use idq_core::Snapshot;
use idq_index::{CompositeIndex, IndexConfig};
use idq_model::{IndoorPoint, IndoorSpace};
use idq_objects::ObjectStore;
use idq_query::{Outcome, Query, QueryOptions, QueryStats};
use idq_workloads::{
    generate_building, generate_objects, generate_query_points, BuildingConfig, GeneratedBuilding,
    ObjectConfig, PaperDefaults, QueryPointConfig,
};
use std::sync::Arc;

/// A fully built experimental world.
///
/// The three layers are `Arc`-shared so [`World::snapshot`] assembles an
/// owned [`Snapshot`] for free (bench bins that mutate a layer in place go
/// through `Arc::make_mut`). `space` is the snapshot-facing copy of
/// `building.space`, taken at construction: harnesses that mutate the
/// building afterwards work on `building.space` and never snapshot.
pub struct World {
    /// The generated building.
    pub building: GeneratedBuilding,
    /// The building's space, `Arc`-shared for snapshots.
    pub space: Arc<IndoorSpace>,
    /// The object population.
    pub store: Arc<ObjectStore>,
    /// The composite index over both.
    pub index: Arc<CompositeIndex>,
    /// The query workload (50 random points at paper scale).
    pub queries: Vec<IndoorPoint>,
    /// Query options sized for the population's uncertainty radii.
    pub options: QueryOptions,
}

/// Experiment scale multiplier from `IDQ_SCALE` (default 1.0, clamped to
/// `[0.01, 10]`).
pub fn scale_from_env() -> f64 {
    std::env::var("IDQ_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.01, 10.0)
}

/// Applies the scale to an object count (at least 100).
pub fn scaled_objects(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(100)
}

/// Applies the scale to a floor count (at least 2).
pub fn scaled_floors(f: u16, scale: f64) -> u16 {
    ((f as f64 * scale).round() as u16).max(2)
}

/// Builds a world with the paper's defaults except where overridden.
pub fn build_world(
    floors: u16,
    objects: usize,
    radius: f64,
    query_count: usize,
    seed: u64,
) -> World {
    let defaults = PaperDefaults::default();
    let building =
        generate_building(&BuildingConfig::with_floors(floors)).expect("generator invariants hold");
    let store = generate_objects(
        &building,
        &ObjectConfig {
            count: objects,
            radius,
            instances: defaults.instances,
            seed,
        },
    )
    .expect("population fits the building");
    let index = CompositeIndex::build(
        &building.space,
        &store,
        IndexConfig {
            fanout: defaults.fanout,
            t_shape: defaults.t_shape,
            bulk_load: true,
        },
    )
    .expect("index builds");
    let queries = generate_query_points(
        &building,
        &QueryPointConfig {
            count: query_count,
            seed: seed ^ 0xBEEF,
        },
    );
    let options = QueryOptions::for_max_radius(radius);
    let space = Arc::new(building.space.clone());
    World {
        building,
        space,
        store: Arc::new(store),
        index: Arc::new(index),
        queries,
        options,
    }
}

impl World {
    /// An owned, consistent read view over the world with the given
    /// options (the snapshot API benchmark harnesses execute queries
    /// through) — three `Arc` clones, shareable across reader threads.
    pub fn snapshot(&self, options: &QueryOptions) -> Snapshot {
        Snapshot::from_parts(
            Arc::clone(&self.space),
            Arc::clone(&self.store),
            Arc::clone(&self.index),
            *options,
        )
    }
}

/// Average wall time (ms) and averaged stats of single-issue execution
/// over one query per workload point.
fn mean_single(
    world: &World,
    make: impl Fn(IndoorPoint) -> Query,
    options: &QueryOptions,
) -> (f64, QueryStats) {
    let snapshot = world.snapshot(options);
    let mut acc = QueryStats::default();
    let t = std::time::Instant::now();
    for &q in &world.queries {
        let out = snapshot.execute(&make(q)).expect("query succeeds");
        acc.accumulate(out.stats());
    }
    let n = world.queries.len().max(1);
    let total_ms = t.elapsed().as_secs_f64() * 1e3 / n as f64;
    (total_ms, acc.scale_down(n))
}

/// Average iRQ wall time (ms) and averaged stats over the query workload.
pub fn mean_irq(world: &World, r: f64, options: &QueryOptions) -> (f64, QueryStats) {
    mean_single(world, |q| Query::Range { q, r }, options)
}

/// Average ikNNQ wall time (ms) and averaged stats.
pub fn mean_knn(world: &World, k: usize, options: &QueryOptions) -> (f64, QueryStats) {
    mean_single(world, |q| Query::Knn { q, k }, options)
}

/// Executes a query batch through one snapshot, returning total wall time
/// (ms) and the outcomes.
pub fn run_batch(world: &World, queries: &[Query], options: &QueryOptions) -> (f64, Vec<Outcome>) {
    let snapshot = world.snapshot(options);
    let t = std::time::Instant::now();
    let outcomes = snapshot.execute_batch(queries).expect("batch succeeds");
    (t.elapsed().as_secs_f64() * 1e3, outcomes)
}

/// Pretty count label: `20000` → `"20K"`.
pub fn klabel(n: usize) -> String {
    if n.is_multiple_of(1000) && n >= 1000 {
        format!("{}K", n / 1000)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_helpers() {
        assert_eq!(scaled_objects(10_000, 0.01), 100);
        assert_eq!(scaled_floors(20, 0.1), 2);
        assert_eq!(klabel(20_000), "20K");
        assert_eq!(klabel(123), "123");
    }

    #[test]
    fn tiny_world_round_trips() {
        let w = build_world(2, 150, 5.0, 3, 1);
        assert_eq!(w.store.len(), 150);
        let (ms, stats) = mean_irq(&w, 50.0, &w.options);
        assert!(ms >= 0.0);
        assert_eq!(stats.total_objects, 150);
        let (ms, stats) = mean_knn(&w, 10, &w.options);
        assert!(ms >= 0.0);
        assert!(stats.refined > 0);
    }
}
