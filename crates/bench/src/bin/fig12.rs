//! Figure 12 — iRQ query execution time.
//!
//! * (a) `T_q` vs `|O|` ∈ {10K, 20K, 30K} for r ∈ {50, 100, 150};
//! * (b) phase breakdown at the defaults;
//! * (c) `T_q` vs uncertainty-region diameter ∈ {10, 20, 30};
//! * (d) `T_q` vs partitions ∈ {1K, 2K, 3K} (floors 10/20/30).
//!
//! `IDQ_SCALE=0.1` for a smoke run; default is paper scale.

use idq_bench::{build_world, klabel, mean_irq, scale_from_env, scaled_floors, scaled_objects};
use idq_workloads::{PaperDefaults, SeriesTable};

fn main() {
    let scale = scale_from_env();
    let d = PaperDefaults::default();
    let queries = d.queries;
    eprintln!("fig12: IDQ_SCALE={scale}");

    // ---- (a) Tq vs |O| for r ∈ {50,100,150}; (b) breakdown -----------------
    let mut a = SeriesTable::new(
        "Fig 12(a) iRQ Tq (ms) vs |O|",
        "|O|",
        &["r=50", "r=100", "r=150"],
    );
    let mut b = SeriesTable::new(
        "Fig 12(b) iRQ phase breakdown (ms) at r=100",
        "|O|",
        &["Filtering", "Subgraph", "Pruning", "Refinement"],
    );
    for &objs in &PaperDefaults::OBJECT_SWEEP {
        let objs = scaled_objects(objs, scale);
        let world = build_world(scaled_floors(d.floors, scale), objs, d.radius, queries, 42);
        let mut row = Vec::new();
        for &r in &PaperDefaults::RANGE_SWEEP {
            let (ms, stats) = mean_irq(&world, r, &world.options);
            row.push(ms);
            if (r - d.range_r).abs() < 1e-9 {
                b.push_row(
                    klabel(objs),
                    vec![
                        stats.filtering_ms,
                        stats.subgraph_ms,
                        stats.pruning_ms,
                        stats.refinement_ms,
                    ],
                );
            }
        }
        a.push_row(klabel(objs), row);
    }
    println!("{}", a.render());
    println!("{}", b.render());

    // ---- (c) Tq vs uncertainty diameter ------------------------------------
    let mut c = SeriesTable::new(
        "Fig 12(c) iRQ Tq (ms) vs uncertainty region (diameter, m)",
        "diam",
        &["r=50", "r=100", "r=150"],
    );
    for &radius in &PaperDefaults::RADIUS_SWEEP {
        let world = build_world(
            scaled_floors(d.floors, scale),
            scaled_objects(d.objects, scale),
            radius,
            queries,
            42,
        );
        let mut row = Vec::new();
        for &r in &PaperDefaults::RANGE_SWEEP {
            let (ms, _) = mean_irq(&world, r, &world.options);
            row.push(ms);
        }
        c.push_row(format!("{}", (radius * 2.0) as i64), row);
    }
    println!("{}", c.render());

    // ---- (d) Tq vs number of partitions -------------------------------------
    let mut dtab = SeriesTable::new(
        "Fig 12(d) iRQ Tq (ms) vs partitions (floors 10/20/30)",
        "parts",
        &["r=50", "r=100", "r=150"],
    );
    for &floors in &PaperDefaults::FLOOR_SWEEP {
        let world = build_world(
            scaled_floors(floors, scale),
            scaled_objects(d.objects, scale),
            d.radius,
            queries,
            42,
        );
        let parts = world.building.partition_count();
        let mut row = Vec::new();
        for &r in &PaperDefaults::RANGE_SWEEP {
            let (ms, _) = mean_irq(&world, r, &world.options);
            row.push(ms);
        }
        dtab.push_row(format!("{parts}"), row);
    }
    println!("{}", dtab.render());
}
