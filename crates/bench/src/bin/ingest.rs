//! Ingest — single `apply` vs atomic `apply_batch` on a position-update
//! stream (the write-side mirror of `throughput.rs`).
//!
//! Measures updates/second on the default workload (§V-A parameters,
//! `IDQ_SCALE`-scaled) for the same pre-generated update stream applied
//! three-plus ways:
//!
//! * **single** — every update through `IndoorEngine::apply`, each paying
//!   for its own footprint traversal and skeleton bookkeeping;
//! * **batched(B)** — the stream in `apply_batch` chunks of `B`, where
//!   position updates grouped by touched partition share one footprint
//!   traversal per group.
//!
//! The stream is a pure position mix (90% moves, 5% arrivals, 5%
//! departures, instances kept small so index maintenance — not Gaussian
//! sampling — dominates), i.e. the paper's §III-C.2 flow at positioning-
//! feed rates. Emits a `BENCH_ingest.json` line (and prints it) so
//! successive runs form a trajectory.

use idq_bench::{scale_from_env, scaled_floors, scaled_objects};
use idq_core::{EngineConfig, IndoorEngine};
use idq_workloads::{
    generate_building, generate_objects, generate_update_stream, BuildingConfig, ObjectConfig,
    PaperDefaults, UpdateStreamConfig,
};
use std::time::Instant;

/// Batch sizes swept on the batched side.
const BATCH_SIZES: [usize; 4] = [64, 1024, 4096, 16384];

fn main() {
    let scale = scale_from_env();
    let d = PaperDefaults::default();
    eprintln!("ingest: IDQ_SCALE={scale}");

    let floors = scaled_floors(d.floors, scale);
    let objects = scaled_objects(d.objects, scale);
    let stream_len = scaled_objects(16_384, scale);

    let building =
        generate_building(&BuildingConfig::with_floors(floors)).expect("generator invariants hold");
    let store = generate_objects(
        &building,
        &ObjectConfig {
            count: objects,
            radius: d.radius,
            instances: 8,
            seed: 42,
        },
    )
    .expect("population fits the building");
    let stream = generate_update_stream(
        &building,
        &store,
        &UpdateStreamConfig {
            count: stream_len,
            moves: 0.90,
            inserts: 0.05,
            removes: 0.05,
            door_events: 0.0,
            radius: d.radius,
            instances: 8,
            seed: 7,
        },
    );

    let fresh_engine = || {
        IndoorEngine::with_objects(
            building.space.clone(),
            store.clone(),
            EngineConfig::default(),
        )
        .expect("engine builds")
    };
    let checksum = |e: &IndoorEngine| {
        let mut sum = 0.0f64;
        for id in e.store().ids_sorted() {
            let o = e.store().get(id).expect("listed id");
            sum += o.region.center.x + o.region.center.y + id.0 as f64;
        }
        (e.store().len(), sum)
    };

    // Warm-up: one engine through a slice of the stream touches every path.
    {
        let mut e = fresh_engine();
        let take = stream.len().min(256);
        e.apply_batch(&stream[..take]).expect("warm-up applies");
    }

    // Repetitions per mode (wall-clock minimum is reported): the whole
    // stream finishes in milliseconds at small scales, where a single
    // timing is mostly scheduler noise.
    let reps: usize = std::env::var("IDQ_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(1);

    // Single-issue: every update through apply().
    let mut reference = None;
    let mut single_ms = f64::INFINITY;
    for _ in 0..reps {
        let mut engine = fresh_engine();
        let t = Instant::now();
        for update in &stream {
            engine.apply(update.clone()).expect("update applies");
        }
        single_ms = single_ms.min(t.elapsed().as_secs_f64() * 1e3);
        reference = Some(checksum(&engine));
    }
    let single_ups = stream.len() as f64 / (single_ms / 1e3);
    let reference = reference.expect("at least one repetition");

    // Batched: apply_batch chunks at each size.
    let mut batched = Vec::new();
    for &size in &BATCH_SIZES {
        let mut traversals = 0usize;
        let mut position_updates = 0usize;
        let mut ms = f64::INFINITY;
        for _ in 0..reps {
            let mut engine = fresh_engine();
            traversals = 0;
            position_updates = 0;
            let t = Instant::now();
            for chunk in stream.chunks(size) {
                let report = engine.apply_batch(chunk).expect("batch applies");
                traversals += report.stats.footprint_searches;
                position_updates += report.stats.position_updates;
            }
            ms = ms.min(t.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                checksum(&engine),
                reference,
                "batched(size={size}) ends in the single-issue state"
            );
        }
        let ups = stream.len() as f64 / (ms / 1e3);
        eprintln!(
            "ingest: batch={size:5} {ups:10.0} updates/s \
             ({traversals} traversals for {position_updates} position updates)"
        );
        batched.push((size, ms, ups, traversals));
    }

    let (best_size, _, best_ups, _) = batched
        .iter()
        .copied()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("at least one batch size");
    let speedup = best_ups / single_ups;

    let batched_json: Vec<String> = batched
        .iter()
        .map(|(size, ms, ups, traversals)| {
            format!(
                "{{\"batch\":{size},\"ms\":{ms:.3},\"ups\":{ups:.1},\"traversals\":{traversals}}}"
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"ingest\",\"scale\":{},\"floors\":{},\"objects\":{},",
            "\"updates\":{},\"single_ms\":{:.3},\"single_ups\":{:.1},",
            "\"batched\":[{}],",
            "\"best_batch\":{},\"best_ups\":{:.1},\"speedup\":{:.3}}}"
        ),
        scale,
        floors,
        objects,
        stream.len(),
        single_ms,
        single_ups,
        batched_json.join(","),
        best_size,
        best_ups,
        speedup,
    );
    println!("{json}");
    let appended = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open("BENCH_ingest.json")
        .and_then(|mut f| std::io::Write::write_all(&mut f, format!("{json}\n").as_bytes()));
    if let Err(e) = appended {
        eprintln!("ingest: could not append to BENCH_ingest.json: {e}");
    }
    eprintln!(
        "ingest: apply_batch({best_size}) is {speedup:.2}x single apply \
         ({best_ups:.0} vs {single_ups:.0} updates/s over {} updates)",
        stream.len()
    );
}
