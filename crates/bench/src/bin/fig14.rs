//! Figure 14 — effectiveness of the indoor distance bounds.
//!
//! * (a) iRQ filtering & pruning ratios vs `|O|`;
//! * (b) iRQ `T_q` with vs without the pruning phase;
//! * (c) ikNNQ filtering & pruning ratios vs `|O|`;
//! * (d) ikNNQ `T_q` with vs without the pruning phase.

use idq_bench::{
    build_world, klabel, mean_irq, mean_knn, scale_from_env, scaled_floors, scaled_objects,
};
use idq_workloads::{PaperDefaults, SeriesTable};

fn main() {
    let scale = scale_from_env();
    let d = PaperDefaults::default();
    eprintln!("fig14: IDQ_SCALE={scale}");
    let k_default = ((d.k as f64 * scale) as usize).max(5);

    let mut a = SeriesTable::new(
        "Fig 14(a) iRQ pruning ratio (%) vs |O| (r=100)",
        "|O|",
        &["Filtering", "Pruning"],
    );
    let mut b = SeriesTable::new(
        "Fig 14(b) iRQ Tq (ms): pruning phase on/off (r=100)",
        "|O|",
        &["withPruning", "withoutPruning"],
    );
    let mut c = SeriesTable::new(
        "Fig 14(c) ikNNQ pruning ratio (%) vs |O|",
        "|O|",
        &["Filtering", "Pruning"],
    );
    let mut dt = SeriesTable::new(
        "Fig 14(d) ikNNQ Tq (ms): pruning phase on/off",
        "|O|",
        &["withPruning", "withoutPruning"],
    );

    for &objs in &PaperDefaults::OBJECT_SWEEP {
        let objs = scaled_objects(objs, scale);
        let world = build_world(
            scaled_floors(d.floors, scale),
            objs,
            d.radius,
            d.queries,
            42,
        );

        let (with_ms, stats) = mean_irq(&world, d.range_r, &world.options);
        let (without_ms, _) = mean_irq(&world, d.range_r, &world.options.without_pruning());
        a.push_row(
            klabel(objs),
            vec![
                stats.filtering_ratio() * 100.0,
                stats.pruning_ratio() * 100.0,
            ],
        );
        b.push_row(klabel(objs), vec![with_ms, without_ms]);

        let (with_ms, stats) = mean_knn(&world, k_default, &world.options);
        let (without_ms, _) = mean_knn(&world, k_default, &world.options.without_pruning());
        c.push_row(
            klabel(objs),
            vec![
                stats.filtering_ratio() * 100.0,
                stats.pruning_ratio() * 100.0,
            ],
        );
        dt.push_row(klabel(objs), vec![with_ms, without_ms]);
    }
    println!("{}", a.render());
    println!("{}", b.render());
    println!("{}", c.render());
    println!("{}", dt.render());
}
