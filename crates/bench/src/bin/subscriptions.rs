//! Subscriptions — standing-query scaling of the query-indexed dispatcher.
//!
//! Registers 1K / 10K / 100K standing queries (mixed range/kNN, skewed
//! floors — the `generate_subscription_set` workload) against a live
//! service, then drives a pure position-update stream through the write
//! path and measures what serving the fleet costs:
//!
//! * **registration** — building each query's candidate-partition
//!   footprint and inserting it into the routing index;
//! * **routing** — per-commit dispatch wall time over an apply-only
//!   reference run of the same stream with no subscriptions attached
//!   (single-CPU containers serialize the dispatch thread behind the
//!   writer, so the difference is the dispatch cost);
//! * **hit rate** — delivered vs skipped subscriptions per commit, from
//!   the dispatcher's own counters: the fraction of the fleet each
//!   commit actually touches;
//! * **threads** — the process's OS thread count while the whole fleet
//!   is live (the dispatcher serves every subscription from one thread);
//! * **broadcast baseline** — the pre-dispatch semantics: every commit's
//!   full report absorbed into every subscription's monitor. Measured on
//!   a bounded sample of monitors × commits and extrapolated linearly
//!   (absorption cost is per-monitor), because running it exactly at
//!   100K subscriptions is precisely the quadratic blow-up the
//!   dispatcher exists to avoid. `speedup` is broadcast-vs-routed
//!   per-commit cost.
//!
//! Emits a `BENCH_subscriptions.json` line per run.

use idq_bench::{scale_from_env, scaled_floors, scaled_objects};
use idq_core::{EngineConfig, IndoorEngine, Update};
use idq_model::Floor;
use idq_query::{KnnMonitor, Query, RangeMonitor};
use idq_workloads::{
    generate_building, generate_objects, generate_subscription_set, BuildingConfig, ObjectConfig,
    PaperDefaults, SubscriptionSetConfig,
};
use std::time::Instant;

/// Standing-query counts swept (scaled by `IDQ_SCALE`).
const SUB_COUNTS: [usize; 3] = [1_000, 10_000, 100_000];
/// Committed batches per run.
const COMMITS: usize = 32;
/// Updates per committed batch.
const BATCH: usize = 64;
/// Rooms per batch locality window.
const WINDOW: usize = 4;
/// Monitor sample bound for the broadcast baseline.
const BASELINE_SAMPLE: usize = 2_000;
/// Commits the broadcast baseline replays.
const BASELINE_COMMITS: usize = 4;
/// Registration sample bound for the cache-off (cold) baseline.
const REGISTER_COLD_SAMPLE: usize = 2_000;

fn scaled_subs(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(10)
}

/// OS threads of this process (Linux; 0 when unreadable).
fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn main() {
    let scale = scale_from_env();
    let d = PaperDefaults::default();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("subscriptions: IDQ_SCALE={scale} cpus={cpus}");

    // Routing is a building-scale feature — a two-floor smoke building
    // leaves nothing to skip — so the floor count bottoms out at 4. The
    // population preserves the paper's object *density* (~20 per room)
    // rather than scaling the count directly: a sparse smoke building
    // would push every kNN threshold — and so every kNN footprint — to
    // building scale, which no real deployment of a 100k-subscription
    // fleet exhibits.
    let floors = scaled_floors(d.floors, scale).max(4);
    let objects = scaled_objects(d.objects, floors as f64 / d.floors as f64);
    let building =
        generate_building(&BuildingConfig::with_floors(floors)).expect("generator invariants hold");
    let store = generate_objects(
        &building,
        &ObjectConfig {
            count: objects,
            radius: d.radius,
            instances: 8,
            seed: 42,
        },
    )
    .expect("population fits the building");

    // A pure move stream (no inserts: the effective query options stay
    // fixed, so routing — not option churn — is what's measured) with
    // **spatial locality**: every object lives in a home *neighborhood*
    // — `WINDOW` consecutive rooms of its floor — and each batch moves
    // the objects of one rotating neighborhood between its rooms, the
    // way position reports arrive from people milling around one shop
    // cluster. Both the "before" and "after" partitions of a commit
    // stay inside one neighborhood, while the population keeps paper
    // density across the whole building (a commit footprint scattered
    // building-wide would touch every subscription and degrade to
    // broadcast by construction — and a population squeezed into one
    // corner would blow every kNN threshold up to building scale).
    let ids = store.ids_sorted();
    let mut by_floor: Vec<Vec<_>> = vec![Vec::new(); floors as usize];
    for &id in &ids {
        by_floor[(id.0 % floors as u64) as usize].push(id);
    }
    let neighborhoods: Vec<usize> = (0..floors as usize)
        .map(|f| (building.rooms_by_floor[f].len() / WINDOW).max(1))
        .collect();
    // by_nbhd[f][n]: the objects homed in neighborhood n of floor f.
    let by_nbhd: Vec<Vec<Vec<_>>> = by_floor
        .iter()
        .enumerate()
        .map(|(f, pool)| {
            let mut groups = vec![Vec::new(); neighborhoods[f]];
            for (j, &id) in pool.iter().enumerate() {
                groups[j % neighborhoods[f]].push(id);
            }
            groups
        })
        .collect();
    let room_center = |f: usize, nbhd: usize, slot: usize| {
        let rooms = &building.rooms_by_floor[f];
        let room = rooms[(nbhd * WINDOW + slot % WINDOW) % rooms.len()];
        building
            .space
            .partition(room)
            .expect("generated room")
            .bbox
            .center()
    };
    let mut batches: Vec<Vec<Update>> = Vec::with_capacity(COMMITS);
    for k in 0..COMMITS {
        let f = k % floors as usize;
        let nbhd = (k / floors as usize * 7 + k) % neighborhoods[f];
        let group = &by_nbhd[f][nbhd];
        let mut batch = Vec::with_capacity(BATCH);
        for (j, &id) in group.iter().take(BATCH).enumerate() {
            batch.push(Update::MoveObject {
                id,
                center: room_center(f, nbhd, id.0 as usize + j + k),
                floor: f as Floor,
                seed: id.0 ^ (k as u64) << 32,
            });
        }
        batches.push(batch);
    }

    // Settle every object into its home neighborhood (the generated
    // population is scattered building-wide; without this, each
    // object's first move drags a random faraway "before" partition
    // into the commit footprint and the early commits route widely).
    let store = {
        let mut e =
            IndoorEngine::with_objects(building.space.clone(), store, EngineConfig::default())
                .expect("engine builds");
        for (f, groups) in by_nbhd.iter().enumerate() {
            let prelude: Vec<Update> = groups
                .iter()
                .enumerate()
                .flat_map(|(nbhd, group)| {
                    group.iter().map(move |&id| Update::MoveObject {
                        id,
                        center: room_center(f, nbhd, id.0 as usize),
                        floor: f as Floor,
                        seed: id.0,
                    })
                })
                .collect();
            e.apply_batch(&prelude).expect("pre-positioning applies");
        }
        e.store().clone()
    };

    let fresh_engine = || {
        IndoorEngine::with_objects(
            building.space.clone(),
            store.clone(),
            EngineConfig::default(),
        )
        .expect("engine builds")
    };

    // Apply-only reference: the same stream with no subscriptions (the
    // dispatch thread is never spawned) — pure sequencer cost.
    let apply_ref_ms = {
        let mut e = fresh_engine();
        let t = Instant::now();
        for batch in &batches {
            e.apply_batch(batch).expect("moves apply");
        }
        t.elapsed().as_secs_f64() * 1e3
    };
    eprintln!("subscriptions: apply-only reference {apply_ref_ms:9.1} ms for {COMMITS} commits");

    let mut results = Vec::new();
    for &base_count in &SUB_COUNTS {
        let count = scaled_subs(base_count, scale);
        let queries = generate_subscription_set(
            &building,
            &SubscriptionSetConfig {
                count,
                knn_fraction: 0.2,
                radii: vec![15.0, 30.0],
                ks: vec![5, 10],
                floor_skew: 1.5,
                seed: 0x5B5 ^ base_count as u64,
            },
        );

        let mut e = fresh_engine();
        let service = e.service();
        let t = Instant::now();
        let subs: Vec<_> = queries
            .iter()
            .map(|&q| service.subscribe(q).expect("range/knn subscribe"))
            .collect();
        let register_ms = t.elapsed().as_secs_f64() * 1e3;
        let threads = os_threads();
        let (indexed_partitions, links, everything) = service.dispatch_index_load();
        let mean_footprint = links as f64 / count.max(1) as f64;

        let t = Instant::now();
        for batch in &batches {
            e.apply_batch(batch).expect("moves apply");
        }
        service.quiesce();
        let total_ms = t.elapsed().as_secs_f64() * 1e3;
        let stats = service.dispatch_stats();
        assert_eq!(stats.commits, COMMITS as u64, "every commit dispatched");
        let pairs = stats.deliveries + stats.skipped;
        let hit_rate = stats.deliveries as f64 / pairs.max(1) as f64;
        let dispatch_ms_per_commit = (total_ms - apply_ref_ms).max(0.0) / COMMITS as f64;
        let notifications_per_s = stats.deliveries as f64 / (total_ms / 1e3);
        drop(subs);
        drop(service);
        drop(e);

        // Cold registration baseline: the same subscriptions against an
        // engine with the shared distance cache disabled, so every
        // monitor refresh re-runs its own door expansions. Measured on a
        // registration sample and extrapolated linearly (registration
        // cost is per-subscription), because registering the full 100k
        // fleet without row reuse is exactly the repeated-Dijkstra cost
        // the cache removes. `register_ms` above is the warm (cache-on)
        // number: the fleet warms the cache for itself as it registers.
        let cold_sample = count.min(REGISTER_COLD_SAMPLE);
        let register_cold_ms = {
            let e = IndoorEngine::with_objects(
                building.space.clone(),
                store.clone(),
                EngineConfig {
                    query: idq_query::QueryOptions::default().without_distance_cache(),
                    ..EngineConfig::default()
                },
            )
            .expect("engine builds");
            let service = e.service();
            let t = Instant::now();
            let cold_subs: Vec<_> = queries[..cold_sample]
                .iter()
                .map(|&q| service.subscribe(q).expect("range/knn subscribe"))
                .collect();
            let sampled_ms = t.elapsed().as_secs_f64() * 1e3;
            drop(cold_subs);
            sampled_ms * (count as f64 / cold_sample as f64)
        };

        // Broadcast baseline: replay the first commits on a fresh engine
        // and absorb each full report into a sample of the same
        // monitors; extrapolate the per-commit cost to the whole fleet.
        let sample = count.min(BASELINE_SAMPLE);
        let mut replay = fresh_engine();
        let snap = replay.snapshot();
        let mut monitors: Vec<_> = queries[..sample]
            .iter()
            .map(|q| match *q {
                Query::Range { q, r } => {
                    let mut m = RangeMonitor::new(q, r, *snap.options()).expect("positive radius");
                    m.refresh(snap.space(), snap.index(), snap.store())
                        .expect("refresh succeeds");
                    Either::Range(m)
                }
                Query::Knn { q, k } => {
                    let mut m = KnnMonitor::new(q, k, *snap.options()).expect("positive k");
                    m.refresh(snap.space(), snap.index(), snap.store())
                        .expect("refresh succeeds");
                    Either::Knn(m)
                }
                _ => unreachable!("subscription workloads are range and kNN"),
            })
            .collect();
        let baseline_commits = COMMITS.min(BASELINE_COMMITS);
        let mut absorb_s = 0.0f64;
        for batch in batches.iter().take(baseline_commits) {
            let report = replay.apply_batch(batch).expect("moves apply");
            let snap = replay.snapshot();
            let updated = report.delta.updated();
            let t = Instant::now();
            for m in &mut monitors {
                m.absorb(
                    &updated,
                    &report.delta.removed,
                    report.delta.topology_changed,
                    &snap,
                );
            }
            absorb_s += t.elapsed().as_secs_f64();
        }
        let broadcast_ms_per_commit =
            absorb_s * 1e3 / baseline_commits as f64 * (count as f64 / sample as f64);
        let speedup = broadcast_ms_per_commit / dispatch_ms_per_commit.max(1e-6);

        eprintln!(
            "subscriptions: subs={count:7} register {register_ms:9.1} ms warm / \
             {register_cold_ms:9.1} ms cold (cache off, {cold_sample}-sample) \
             (mean footprint {mean_footprint:.1}/{indexed_partitions} partitions, \
             {everything} route-all) | dispatch {dispatch_ms_per_commit:8.3} ms/commit \
             (hit rate {hit_rate:.3}, {:.0} notifications/s) | broadcast \
             {broadcast_ms_per_commit:8.3} ms/commit => {speedup:6.1}x | {threads} threads",
            notifications_per_s
        );
        results.push(format!(
            concat!(
                "{{\"subs\":{},\"register_ms\":{:.3},",
                "\"register_cold_ms\":{:.3},\"register_cold_sample\":{},",
                "\"threads\":{},",
                "\"mean_footprint\":{:.1},\"route_all\":{},\"total_ms\":{:.3},",
                "\"dispatch_ms_per_commit\":{:.4},\"deliveries\":{},\"skipped\":{},",
                "\"coalesced\":{},\"hit_rate\":{:.4},\"notifications_per_s\":{:.1},",
                "\"broadcast_ms_per_commit\":{:.4},\"speedup\":{:.2}}}"
            ),
            count,
            register_ms,
            register_cold_ms,
            cold_sample,
            threads,
            mean_footprint,
            everything,
            total_ms,
            dispatch_ms_per_commit,
            stats.deliveries,
            stats.skipped,
            stats.coalesced,
            hit_rate,
            notifications_per_s,
            broadcast_ms_per_commit,
            speedup,
        ));
    }

    let json = format!(
        concat!(
            "{{\"bench\":\"subscriptions\",\"scale\":{},\"cpus\":{},\"floors\":{},",
            "\"objects\":{},\"commits\":{},\"batch\":{},\"apply_ref_ms\":{:.3},",
            "\"counts\":[{}]}}"
        ),
        scale,
        cpus,
        floors,
        objects,
        COMMITS,
        BATCH,
        apply_ref_ms,
        results.join(","),
    );
    println!("{json}");
    let appended = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open("BENCH_subscriptions.json")
        .and_then(|mut f| std::io::Write::write_all(&mut f, format!("{json}\n").as_bytes()));
    if let Err(e) = appended {
        eprintln!("subscriptions: could not append to BENCH_subscriptions.json: {e}");
    }
}

/// A baseline monitor of either kind, absorbing full reports the way the
/// pre-dispatch broadcast path did.
enum Either {
    Range(RangeMonitor),
    Knn(KnnMonitor),
}

impl Either {
    fn absorb(
        &mut self,
        updated: &[idq_objects::ObjectId],
        removed: &[idq_objects::ObjectId],
        topology_changed: bool,
        snap: &idq_core::Snapshot,
    ) {
        match self {
            Either::Range(m) => {
                m.absorb_delta(
                    updated,
                    removed,
                    topology_changed,
                    snap.space(),
                    snap.index(),
                    snap.store(),
                )
                .expect("absorb succeeds");
            }
            Either::Knn(m) => {
                m.absorb_delta(
                    updated,
                    removed,
                    topology_changed,
                    snap.space(),
                    snap.index(),
                    snap.store(),
                )
                .expect("absorb succeeds");
            }
        }
    }
}
