//! Figure 15 — the composite indoor index.
//!
//! * (a) partitions retrieved with vs without the skeleton tier, vs query
//!   range (the skeleton's pruning power);
//! * (b) per-layer construction time vs partitions;
//! * (c) dynamic operation cost vs number of operations
//!   (insert/deletePartition, insert/deleteObj);
//! * (d) door-to-door distance pre-computation time vs partitions (the
//!   maintenance-cost baseline the paper argues against).

use idq_bench::{build_world, scale_from_env, scaled_floors, scaled_objects};
use idq_model::{Direction, PartitionKind, PartitionSpec};
use idq_objects::ObjectId;
use idq_query::PrecomputedD2D;
use idq_workloads::{sample_one, PaperDefaults, SeriesTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = scale_from_env();
    let d = PaperDefaults::default();
    eprintln!("fig15: IDQ_SCALE={scale}");

    // ---- (a) skeleton effectiveness ------------------------------------------
    let world = build_world(
        scaled_floors(d.floors, scale),
        scaled_objects(d.objects, scale),
        d.radius,
        d.queries,
        42,
    );
    let mut a = SeriesTable::new(
        "Fig 15(a) partitions retrieved vs query range",
        "range",
        &["withSkeleton", "withoutSkeleton"],
    );
    for &r in &PaperDefaults::RANGE_SWEEP {
        let (mut with, mut without) = (0usize, 0usize);
        for &q in &world.queries {
            with += world
                .index
                .range_search(&world.building.space, q, r, true)
                .partitions
                .len();
            without += world
                .index
                .range_search(&world.building.space, q, r, false)
                .partitions
                .len();
        }
        let n = world.queries.len().max(1);
        a.push_row(
            format!("{r:.0}"),
            vec![(with / n) as f64, (without / n) as f64],
        );
    }
    println!("{}", a.render());

    // ---- (b) construction time per layer ---------------------------------------
    let mut b = SeriesTable::new(
        "Fig 15(b) construction time (ms) per layer vs partitions",
        "parts",
        &[
            "tree-tier",
            "Object-Layer",
            "Topological-Layer",
            "skeleton-tier",
        ],
    );
    let mut worlds_by_floors = Vec::new();
    for &floors in &PaperDefaults::FLOOR_SWEEP {
        let w = build_world(
            scaled_floors(floors, scale),
            scaled_objects(d.objects, scale),
            d.radius,
            d.queries,
            42,
        );
        let s = w.index.build_stats;
        b.push_row(
            format!("{}", w.building.partition_count()),
            vec![s.tree_ms, s.object_ms, s.topo_ms, s.skeleton_ms],
        );
        worlds_by_floors.push(w);
    }
    println!("{}", b.render());

    // ---- (c) dynamic operation cost -----------------------------------------------
    let mut c = SeriesTable::new(
        "Fig 15(c) mean cost per operation (ms) vs batch size",
        "#ops",
        &[
            "insertPartition",
            "deletePartition",
            "insertObj",
            "deleteObj",
        ],
    );
    for &ops in &PaperDefaults::OPS_SWEEP {
        let mut w = build_world(
            scaled_floors(d.floors, scale),
            scaled_objects(d.objects, scale),
            d.radius,
            4,
            42,
        );
        let mut rng = StdRng::seed_from_u64(9);
        let hall = w.building.corridors_by_floor[0][0];
        let hall_box = w.building.space.partition(hall).unwrap().bbox;

        // insertPartition: pop-up booths along the south ring corridor.
        let t = Instant::now();
        let mut inserted = Vec::new();
        for i in 0..ops {
            let x0 = 30.0 + (i as f64) * 4.0 % 500.0;
            let spec = PartitionSpec {
                kind: PartitionKind::Room,
                name: None,
                floor: 0,
                footprint: idq_geom::Polygon::from_rect(idq_geom::Rect2::from_bounds(
                    x0,
                    -6.0,
                    x0 + 3.0,
                    0.0,
                )),
                doors: vec![idq_model::DoorSpec {
                    position: idq_geom::Point2::new(x0 + 1.5, 0.0),
                    other: hall,
                    direction: Direction::Bidirectional,
                }],
            };
            let (pid, _, events) = w.building.space.insert_partition(spec).unwrap();
            for ev in &events {
                std::sync::Arc::make_mut(&mut w.index)
                    .apply_topology(&w.building.space, &w.store, ev)
                    .unwrap();
            }
            inserted.push(pid);
        }
        let insert_part_ms = t.elapsed().as_secs_f64() * 1e3 / ops as f64;

        // deletePartition: remove them again.
        let t = Instant::now();
        for pid in inserted {
            let events = w.building.space.delete_partition(pid).unwrap();
            for ev in &events {
                std::sync::Arc::make_mut(&mut w.index)
                    .apply_topology(&w.building.space, &w.store, ev)
                    .unwrap();
            }
        }
        let delete_part_ms = t.elapsed().as_secs_f64() * 1e3 / ops as f64;

        // insertObj / deleteObj.
        let mut fresh = Vec::new();
        for i in 0..ops {
            fresh.push(
                sample_one(
                    &w.building,
                    ObjectId(1_000_000 + i as u64),
                    d.radius,
                    d.instances,
                    &mut rng,
                )
                .unwrap(),
            );
        }
        let t = Instant::now();
        for obj in &fresh {
            std::sync::Arc::make_mut(&mut w.index)
                .insert_object(&w.building.space, obj)
                .unwrap();
        }
        let insert_obj_ms = t.elapsed().as_secs_f64() * 1e3 / ops as f64;
        let t = Instant::now();
        for obj in &fresh {
            std::sync::Arc::make_mut(&mut w.index)
                .remove_object(obj.id)
                .unwrap();
        }
        let delete_obj_ms = t.elapsed().as_secs_f64() * 1e3 / ops as f64;

        let _ = hall_box;
        c.push_row(
            format!("{ops}"),
            vec![insert_part_ms, delete_part_ms, insert_obj_ms, delete_obj_ms],
        );
    }
    println!("{}", c.render());

    // ---- (d) pre-computation time ---------------------------------------------------
    let mut dt = SeriesTable::new(
        "Fig 15(d) door-to-door distance pre-computation vs partitions",
        "parts",
        &["precompute (ms)", "doors", "matrix MB"],
    );
    for w in &worlds_by_floors {
        let pre = PrecomputedD2D::build(&w.building.space, w.index.doors_graph());
        dt.push_row(
            format!("{}", w.building.partition_count()),
            vec![
                pre.build_ms,
                pre.door_slots() as f64,
                pre.matrix_bytes() as f64 / (1024.0 * 1024.0),
            ],
        );
    }
    println!("{}", dt.render());

    // Context line mirroring §V-B.4's argument.
    println!(
        "note: compare Fig 15(c)'s per-operation costs (sub-millisecond object ops)\n\
         against Fig 15(d)'s full re-pre-computation — the composite index design\n\
         avoids the latter entirely on every topology change."
    );
}
