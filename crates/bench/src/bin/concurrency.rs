//! Concurrency — multi-reader query throughput against an active writer.
//!
//! Measures aggregate queries/second of the MVCC service API on a grid of
//! reader-thread counts × writer modes. Readers run batched range
//! sessions on fresh service snapshots in a closed loop; in the
//! `writer=on` cells a writer thread continuously commits update batches
//! (position churn) through `apply_batch` on the *same* engine,
//! publishing a new version per commit that subsequent snapshots pick
//! up. Since sessions evaluate on pinned `Arc`s with no locks held,
//! multi-reader throughput should scale with threads and survive an
//! active writer — which the single-threaded borrowed-snapshot API could
//! not even express.
//!
//! Emits one `BENCH_concurrency.json` line per grid cell (and prints
//! them) so successive runs form a trajectory.

use idq_bench::{build_world, scale_from_env, scaled_floors, scaled_objects, World};
use idq_core::{EngineConfig, IndoorEngine, IndoorService};
use idq_query::Query;
use idq_workloads::{
    generate_range_batches, generate_update_stream, PaperDefaults, UpdateStreamConfig,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Range queries per query point (one batch group).
const BATCH: usize = 8;
/// Wall time per grid cell.
const CELL_MS: u64 = 400;

fn engine_of(world: &World) -> IndoorEngine {
    IndoorEngine::with_objects(
        (*world.space).clone(),
        (*world.store).clone(),
        EngineConfig {
            query: world.options,
            ..EngineConfig::default()
        },
    )
    .expect("engine builds")
}

fn main() {
    let scale = scale_from_env();
    let d = PaperDefaults::default();
    eprintln!("concurrency: IDQ_SCALE={scale}");

    let floors = scaled_floors(d.floors, scale);
    let objects = scaled_objects(d.objects, scale);
    let world = build_world(floors, objects, d.radius, d.queries, 42);
    let groups: Vec<Vec<Query>> =
        generate_range_batches(&world.queries, &PaperDefaults::RANGE_SWEEP, BATCH);

    // Warm-up: touch every code path once.
    engine_of(&world)
        .service()
        .snapshot()
        .execute_batch(&groups[0])
        .expect("warm-up succeeds");

    let mut single_reader_qps = 0.0f64;
    let mut four_reader_qps = 0.0f64;
    for readers in [1usize, 2, 4] {
        for writer in [false, true] {
            // A fresh engine per cell, so every cell starts from the same
            // committed version and writer churn never carries over.
            let mut engine = engine_of(&world);
            let service = engine.service();
            let (queries_done, commits_done, elapsed) = run_cell(
                &service,
                &groups,
                readers,
                writer.then_some(&mut engine),
                &world,
            );
            let qps = queries_done as f64 / elapsed.as_secs_f64();
            if readers == 1 && !writer {
                single_reader_qps = qps;
            }
            if readers == 4 && !writer {
                four_reader_qps = qps;
            }
            let json = format!(
                concat!(
                    "{{\"bench\":\"concurrency\",\"scale\":{},\"floors\":{},\"objects\":{},",
                    "\"readers\":{},\"writer\":{},\"cell_ms\":{},",
                    "\"queries\":{},\"commits\":{},\"qps\":{:.1}}}"
                ),
                scale, floors, objects, readers, writer, CELL_MS, queries_done, commits_done, qps,
            );
            println!("{json}");
            let appended = std::fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open("BENCH_concurrency.json")
                .and_then(|mut f| {
                    std::io::Write::write_all(&mut f, format!("{json}\n").as_bytes())
                });
            if let Err(e) = appended {
                eprintln!("concurrency: could not append to BENCH_concurrency.json: {e}");
            }
        }
    }
    eprintln!(
        "concurrency: 4 readers are {:.2}x one reader (idle writer)",
        four_reader_qps / single_reader_qps.max(1e-9),
    );
}

/// Runs one grid cell: `readers` threads looping query batches over fresh
/// `service` snapshots for `CELL_MS`, while `writer` (when present)
/// commits 64-update position batches on the served engine as fast as it
/// can. Returns (queries executed, batches committed, measured wall time)
/// — the wall time covers thread join, so in-flight work that overruns
/// the nominal window is divided by the time it actually took.
fn run_cell(
    service: &IndoorService,
    groups: &[Vec<Query>],
    readers: usize,
    writer: Option<&mut IndoorEngine>,
    world: &World,
) -> (u64, u64, Duration) {
    let stop = AtomicBool::new(false);
    let queries_done = AtomicU64::new(0);
    let commits_done = AtomicU64::new(0);
    let t = Instant::now();
    std::thread::scope(|scope| {
        for r in 0..readers {
            let service = service.clone();
            let stop = &stop;
            let queries_done = &queries_done;
            scope.spawn(move || {
                let mut i = r; // stagger the starting group per reader
                while !stop.load(Ordering::Relaxed) {
                    let group = &groups[i % groups.len()];
                    let snapshot = service.snapshot();
                    snapshot.execute_batch(group).expect("batch succeeds");
                    queries_done.fetch_add(group.len() as u64, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        if let Some(engine) = writer {
            let stop = &stop;
            let commits_done = &commits_done;
            let building = &world.building;
            scope.spawn(move || {
                let mut seed = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    let stream = generate_update_stream(
                        building,
                        engine.store(),
                        &UpdateStreamConfig {
                            count: 64,
                            door_events: 0.0,
                            seed,
                            ..Default::default()
                        },
                    );
                    engine.apply_batch(&stream).expect("writer batch commits");
                    commits_done.fetch_add(1, Ordering::Relaxed);
                    seed += 1;
                }
            });
        }
        std::thread::sleep(Duration::from_millis(CELL_MS));
        stop.store(true, Ordering::Relaxed);
    });
    (
        queries_done.load(Ordering::Relaxed),
        commits_done.load(Ordering::Relaxed),
        t.elapsed(),
    )
}
