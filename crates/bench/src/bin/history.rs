//! History — what bounded epoch retention costs on the ingest path, and
//! how fast the historical query family answers over a deep ring.
//!
//! Two measurements:
//!
//! * **ingest** — updates/second for the default batched position-update
//!   workload with retention **off** (plain engine) versus **on**
//!   (a `HistoryRecorder` attached). The timed region for the retention
//!   row includes the recorder drain (`sync()`), so the ratio is the
//!   honest end-to-end price of keeping history, not just the enqueue
//!   cost the write path sees.
//! * **queries** — a second engine at paper scale (10 floors, 20k
//!   objects, `IDQ_SCALE`d) ingests a 600-wave trajectory stream so the
//!   ring retains 512+ epochs, then the query family is timed against
//!   one session: per-object `Trajectory`, `RangeDuring` over 64- and
//!   512-epoch windows, `KnnAt` and raw epoch reconstruction.
//!
//! Emits a `BENCH_history.json` line (and prints it) so successive runs
//! form a trajectory.

use idq_bench::{scale_from_env, scaled_floors, scaled_objects};
use idq_core::{EngineConfig, IndoorEngine};
use idq_history::{HistoryOptions, HistoryRecorder};
use idq_objects::ObjectId;
use idq_workloads::{
    generate_building, generate_objects, generate_query_points, generate_trajectory_stream,
    generate_update_stream, BuildingConfig, ObjectConfig, PaperDefaults, QueryPointConfig,
    TrajectoryStreamConfig, UpdateStreamConfig,
};
use std::time::Instant;

const BATCH: usize = 1024;
const WAVES: usize = 600;

fn main() {
    let scale = scale_from_env();
    let d = PaperDefaults::default();
    eprintln!("history: IDQ_SCALE={scale}");

    let floors = scaled_floors(10, scale);
    let objects = scaled_objects(d.objects, scale);
    let stream_len = scaled_objects(16_384, scale);
    let reps: usize = std::env::var("IDQ_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    let building =
        generate_building(&BuildingConfig::with_floors(floors)).expect("generator invariants hold");
    let store = generate_objects(
        &building,
        &ObjectConfig {
            count: objects,
            radius: d.radius,
            instances: 8,
            seed: 42,
        },
    )
    .expect("population fits the building");

    // ---- ingest: retention off vs on ----------------------------------
    let stream = generate_update_stream(
        &building,
        &store,
        &UpdateStreamConfig {
            count: stream_len,
            moves: 0.90,
            inserts: 0.05,
            removes: 0.05,
            door_events: 0.0,
            radius: d.radius,
            instances: 8,
            seed: 7,
        },
    );

    let mut off_ms = f64::INFINITY;
    for _ in 0..reps {
        let mut engine = IndoorEngine::with_objects(
            building.space.clone(),
            store.clone(),
            EngineConfig::default(),
        )
        .expect("engine builds");
        let t = Instant::now();
        for chunk in stream.chunks(BATCH) {
            engine.apply_batch(chunk).expect("batch applies");
        }
        off_ms = off_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let off_ups = stream.len() as f64 / (off_ms / 1e3);
    eprintln!("history: retention=off {off_ups:10.0} updates/s");

    let mut on_ms = f64::INFINITY;
    for _ in 0..reps {
        let mut engine = IndoorEngine::with_objects(
            building.space.clone(),
            store.clone(),
            EngineConfig::default(),
        )
        .expect("engine builds");
        let recorder =
            HistoryRecorder::attach(&engine, HistoryOptions::default()).expect("fresh engine");
        let t = Instant::now();
        for chunk in stream.chunks(BATCH) {
            engine.apply_batch(chunk).expect("batch applies");
        }
        recorder.sync(); // pay the drain inside the timed region
        on_ms = on_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let on_ups = stream.len() as f64 / (on_ms / 1e3);
    let on_vs_off = on_ups / off_ups;
    eprintln!(
        "history: retention=on  {on_ups:10.0} updates/s ({:.1}% of retention-off)",
        100.0 * on_vs_off
    );

    // ---- queries over a deep ring --------------------------------------
    let waves = generate_trajectory_stream(
        &building,
        &store,
        &TrajectoryStreamConfig {
            steps: WAVES,
            move_fraction: 0.05,
            max_step: 6.0,
            floor_change: 0.01,
            seed: 11,
        },
    );
    let mut engine = IndoorEngine::with_objects(
        building.space.clone(),
        store.clone(),
        EngineConfig::default(),
    )
    .expect("engine builds");
    let recorder =
        HistoryRecorder::attach(&engine, HistoryOptions::default()).expect("fresh engine");
    let t = Instant::now();
    let mut wave_updates = 0usize;
    for wave in &waves {
        if wave.is_empty() {
            continue;
        }
        wave_updates += wave.len();
        engine.apply_batch(wave).expect("wave applies");
    }
    recorder.sync();
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    let stats = recorder.stats();
    eprintln!(
        "history: ring built in {build_ms:.0} ms — {} epochs retained ({} keyframes, \
         {} segments, ~{:.1} MiB)",
        stats.retained_epochs,
        stats.keyframes,
        stats.segments,
        stats.approx_bytes as f64 / (1 << 20) as f64
    );
    let session = recorder.session();
    let (oldest, newest) = (session.oldest(), session.newest());

    // Trajectory: 50 objects over the deepest 512-epoch window.
    let deep_from = newest.saturating_sub(511).max(oldest);
    let t = Instant::now();
    let mut spans = 0usize;
    let traced = 50.min(objects) as u64;
    for o in 0..traced {
        spans += session
            .trajectory(ObjectId(o), deep_from, newest)
            .expect("window retained")
            .len();
    }
    let trajectory_us = t.elapsed().as_secs_f64() * 1e6 / traced as f64;
    eprintln!(
        "history: Trajectory over {} epochs: {trajectory_us:9.1} µs/query ({spans} spans total)",
        newest - deep_from + 1
    );

    // RangeDuring: 64- and 512-epoch windows at paper radius. Two full
    // sweeps: the first runs against whatever the replays left in the
    // shared distance cache ("cold" in practice: replay epochs within a
    // keyframe span share geometry, so even the first sweep reuses rows
    // across epochs), the second repeats the identical queries against
    // the now-warm cache — the steady-state number for a monitoring
    // dashboard polling the same windows.
    let points = generate_query_points(&building, &QueryPointConfig { count: 4, seed: 3 });
    let mut range_ms = [0f64; 2];
    let mut range_warm_ms = [0f64; 2];
    for pass in 0..2 {
        for (i, window) in [64u64, 512].iter().enumerate() {
            let from = newest.saturating_sub(window - 1).max(oldest);
            let t = Instant::now();
            for &q in &points {
                session
                    .range_during(q, d.range_r, from, newest)
                    .expect("window retained");
            }
            let ms = t.elapsed().as_secs_f64() * 1e3 / points.len() as f64;
            if pass == 0 {
                range_ms[i] = ms;
            } else {
                range_warm_ms[i] = ms;
            }
            eprintln!(
                "history: RangeDuring over {:3} epochs ({}): {:9.2} ms/query",
                newest - from + 1,
                if pass == 0 { "first" } else { "warm" },
                ms
            );
        }
    }

    // KnnAt + reconstruction at 8 epochs spread across the window.
    let samples: Vec<u64> = (0..8).map(|i| oldest + (newest - oldest) * i / 7).collect();
    let t = Instant::now();
    for &e in &samples {
        session.reconstruct(e).expect("window retained");
    }
    let reconstruct_ms = t.elapsed().as_secs_f64() * 1e3 / samples.len() as f64;
    let t = Instant::now();
    for &e in &samples {
        session
            .knn_at(points[0], d.k.min(objects), e)
            .expect("window retained");
    }
    let knn_at_ms = t.elapsed().as_secs_f64() * 1e3 / samples.len() as f64;
    eprintln!("history: reconstruct {reconstruct_ms:9.2} ms/epoch, KnnAt {knn_at_ms:9.2} ms/query");

    let json = format!(
        concat!(
            "{{\"bench\":\"history\",\"scale\":{},\"floors\":{},\"objects\":{},",
            "\"updates\":{},\"batch\":{},\"off_ms\":{:.3},\"off_ups\":{:.1},",
            "\"on_ms\":{:.3},\"on_ups\":{:.1},\"on_vs_off\":{:.4},",
            "\"waves\":{},\"wave_updates\":{},\"retained_epochs\":{},\"keyframes\":{},",
            "\"segments\":{},\"approx_mb\":{:.2},",
            "\"trajectory_us\":{:.2},\"range_during64_ms\":{:.3},\"range_during512_ms\":{:.3},",
            "\"range_during64_warm_ms\":{:.3},\"range_during512_warm_ms\":{:.3},",
            "\"reconstruct_ms\":{:.3},\"knn_at_ms\":{:.3}}}"
        ),
        scale,
        floors,
        objects,
        stream.len(),
        BATCH,
        off_ms,
        off_ups,
        on_ms,
        on_ups,
        on_vs_off,
        WAVES,
        wave_updates,
        stats.retained_epochs,
        stats.keyframes,
        stats.segments,
        stats.approx_bytes as f64 / (1 << 20) as f64,
        trajectory_us,
        range_ms[0],
        range_ms[1],
        range_warm_ms[0],
        range_warm_ms[1],
        reconstruct_ms,
        knn_at_ms,
    );
    println!("{json}");
    let appended = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open("BENCH_history.json")
        .and_then(|mut f| std::io::Write::write_all(&mut f, format!("{json}\n").as_bytes()));
    if let Err(e) = appended {
        eprintln!("history: could not append to BENCH_history.json: {e}");
    }
    eprintln!(
        "history: retention-on ingests at {:.1}% of retention-off; {} retained epochs",
        100.0 * on_vs_off,
        stats.retained_epochs
    );
}
