//! Runs every figure harness in sequence (Fig. 12–15). Respects
//! `IDQ_SCALE` like the individual binaries.

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for fig in ["fig12", "fig13", "fig14", "fig15"] {
        let path = dir.join(fig);
        println!("==== {fig} ====");
        let status = std::process::Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("running {path:?}: {e}"));
        assert!(status.success(), "{fig} failed");
    }
}
