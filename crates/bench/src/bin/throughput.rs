//! Throughput — single-issue vs batched query execution.
//!
//! Measures queries/second on the default workload (§V-A parameters,
//! `IDQ_SCALE`-scaled) for the same query set issued two ways:
//!
//! * **single** — every query through `Snapshot::execute`, each
//!   paying for its own subgraph Dijkstra and subregion decompositions;
//! * **batched** — per query point, one `Snapshot::execute_batch`
//!   call, sharing one restricted Dijkstra and one subregion cache across
//!   the group (the §VII computation-reuse path).
//!
//! The workload is `BATCH` range queries per query point with the paper's
//! radius sweep cycled through, i.e. the "related queries arrive in a
//! short period" scenario the batch path is designed for. Emits a
//! `BENCH_throughput.json` line (and prints it) so successive runs form a
//! trajectory.

use idq_bench::{build_world, run_batch, scale_from_env, scaled_floors, scaled_objects};
use idq_query::QueryStats;
use idq_workloads::{generate_range_batches, PaperDefaults};
use std::time::Instant;

/// Range queries per query point (one batch group).
const BATCH: usize = 8;

fn main() {
    let scale = scale_from_env();
    let d = PaperDefaults::default();
    eprintln!("throughput: IDQ_SCALE={scale}");

    let floors = scaled_floors(d.floors, scale);
    let objects = scaled_objects(d.objects, scale);
    let world = build_world(floors, objects, d.radius, d.queries, 42);
    let options = world.options;

    // BATCH radius-swept range queries per workload point, all sharing it.
    let groups = generate_range_batches(&world.queries, &PaperDefaults::RANGE_SWEEP, BATCH);
    let total_queries: usize = groups.iter().map(Vec::len).sum();

    // Warm-up: touch every code path once so lazy costs don't skew side A.
    let (_, _) = run_batch(&world, &groups[0], &options);

    // Single-issue: every query through execute().
    let snapshot = world.snapshot(&options);
    let mut single_stats = QueryStats::default();
    let t = Instant::now();
    for group in &groups {
        for query in group {
            let out = snapshot.execute(query).expect("query succeeds");
            single_stats.accumulate(out.stats());
        }
    }
    let single_ms = t.elapsed().as_secs_f64() * 1e3;

    // Batched: one execute_batch() per query point.
    let mut batched_stats = QueryStats::default();
    let t = Instant::now();
    for group in &groups {
        let (_, outcomes) = run_batch(&world, group, &options);
        for out in &outcomes {
            batched_stats.accumulate(out.stats());
        }
    }
    let batched_ms = t.elapsed().as_secs_f64() * 1e3;

    let single_qps = total_queries as f64 / (single_ms / 1e3);
    let batched_qps = total_queries as f64 / (batched_ms / 1e3);
    let speedup = batched_qps / single_qps;

    let json = format!(
        concat!(
            "{{\"bench\":\"throughput\",\"scale\":{},\"floors\":{},\"objects\":{},",
            "\"query_points\":{},\"batch_size\":{},\"queries\":{},",
            "\"single_ms\":{:.3},\"batched_ms\":{:.3},",
            "\"single_qps\":{:.1},\"batched_qps\":{:.1},\"speedup\":{:.3},",
            "\"dijkstras_single\":{},\"dijkstras_batched\":{},",
            "\"subregion_hits_batched\":{}}}"
        ),
        scale,
        floors,
        objects,
        world.queries.len(),
        BATCH,
        total_queries,
        single_ms,
        batched_ms,
        single_qps,
        batched_qps,
        speedup,
        single_stats.dijkstras_run,
        batched_stats.dijkstras_run,
        batched_stats.subregion_cache_hits,
    );
    println!("{json}");
    let appended = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open("BENCH_throughput.json")
        .and_then(|mut f| std::io::Write::write_all(&mut f, format!("{json}\n").as_bytes()));
    if let Err(e) = appended {
        eprintln!("throughput: could not append to BENCH_throughput.json: {e}");
    }
    eprintln!(
        "throughput: batched is {speedup:.2}x single-issue \
         ({} vs {} Dijkstras for {} queries)",
        batched_stats.dijkstras_run, single_stats.dijkstras_run, total_queries
    );
}
