//! Durability — what write-ahead logging costs on the ingest path, and
//! how fast recovery replays it back.
//!
//! Two measurements over the default position-update workload
//! (`IDQ_SCALE`-scaled, batched `apply_batch` chunks):
//!
//! * **ingest** — updates/second for a memory-only engine (the
//!   `ingest.rs` baseline) against durable engines on a real filesystem
//!   directory under each fsync policy (`os`, `group`, `always`). The
//!   `group` row is the durability contract of the service (one fsync
//!   per commit group, no acknowledged commit ever lost) and the number
//!   to watch: its ratio to the memory-only baseline is the price of
//!   crash safety.
//! * **recovery** — wall-clock to reopen the `group` directory and
//!   replay the whole log back into a queryable engine, normalized to
//!   milliseconds per 10k replayed updates.
//!
//! Emits a `BENCH_durability.json` line (and prints it) so successive
//! runs form a trajectory.

use idq_bench::{scale_from_env, scaled_floors, scaled_objects};
use idq_core::{DurabilityOptions, EngineConfig, IndoorEngine};
use idq_storage::SyncPolicy;
use idq_workloads::{
    generate_building, generate_objects, generate_update_stream, BuildingConfig, ObjectConfig,
    PaperDefaults, UpdateStreamConfig,
};
use std::time::Instant;

const BATCH: usize = 1024;

fn main() {
    let scale = scale_from_env();
    let d = PaperDefaults::default();
    eprintln!("durability: IDQ_SCALE={scale}");

    let floors = scaled_floors(d.floors, scale);
    let objects = scaled_objects(d.objects, scale);
    let stream_len = scaled_objects(16_384, scale);

    let building =
        generate_building(&BuildingConfig::with_floors(floors)).expect("generator invariants hold");
    let store = generate_objects(
        &building,
        &ObjectConfig {
            count: objects,
            radius: d.radius,
            instances: 8,
            seed: 42,
        },
    )
    .expect("population fits the building");
    let stream = generate_update_stream(
        &building,
        &store,
        &UpdateStreamConfig {
            count: stream_len,
            moves: 0.90,
            inserts: 0.05,
            removes: 0.05,
            door_events: 0.0,
            radius: d.radius,
            instances: 8,
            seed: 7,
        },
    );

    let reps: usize = std::env::var("IDQ_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let data_root =
        std::env::temp_dir().join(format!("idq-durability-bench-{}", std::process::id()));

    // Memory-only baseline: same batched ingest, no log.
    let mut memory_ms = f64::INFINITY;
    for _ in 0..reps {
        let mut engine = IndoorEngine::with_objects(
            building.space.clone(),
            store.clone(),
            EngineConfig::default(),
        )
        .expect("engine builds");
        let t = Instant::now();
        for chunk in stream.chunks(BATCH) {
            engine.apply_batch(chunk).expect("batch applies");
        }
        memory_ms = memory_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let memory_ups = stream.len() as f64 / (memory_ms / 1e3);
    eprintln!("durability: memory-only {memory_ups:10.0} updates/s");

    // Durable ingest per fsync policy, on a real directory so `always`
    // and `group` pay real fsyncs. Checkpoints off: this measures the
    // log alone.
    let mut rows = Vec::new();
    let mut group_dir = None;
    for policy in [SyncPolicy::Os, SyncPolicy::Group, SyncPolicy::Always] {
        let mut ms = f64::INFINITY;
        let mut final_epoch = 0;
        let dir = data_root.join(policy.as_str());
        for _ in 0..reps {
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("bench scratch dir");
            let mut engine = IndoorEngine::create_with(
                std::sync::Arc::new(idq_storage::FileBackend::open(&dir).expect("backend opens")),
                building.space.clone(),
                store.clone(),
                EngineConfig::default(),
                DurabilityOptions {
                    sync: policy,
                    checkpoint_every: 0,
                    ..DurabilityOptions::default()
                },
            )
            .expect("durable engine builds");
            let t = Instant::now();
            for chunk in stream.chunks(BATCH) {
                engine.apply_batch(chunk).expect("batch applies");
            }
            ms = ms.min(t.elapsed().as_secs_f64() * 1e3);
            final_epoch = engine.epoch();
        }
        let ups = stream.len() as f64 / (ms / 1e3);
        eprintln!(
            "durability: wal={:6} {ups:10.0} updates/s ({:.1}% of memory-only)",
            policy.as_str(),
            100.0 * ups / memory_ups
        );
        rows.push((policy, ms, ups));
        if policy == SyncPolicy::Group {
            group_dir = Some((dir, final_epoch));
        }
    }

    // Recovery: reopen the `group` directory (base checkpoint + the full
    // log) and replay everything back.
    let (dir, logged_epochs) = group_dir.expect("group policy ran");
    let mut recovery_ms = f64::INFINITY;
    let mut recovered_epoch = 0;
    for _ in 0..reps {
        let t = Instant::now();
        let engine = IndoorEngine::recover_with(
            std::sync::Arc::new(idq_storage::FileBackend::open(&dir).expect("backend opens")),
            EngineConfig::default(),
            DurabilityOptions::default(),
        )
        .expect("recovery succeeds");
        recovery_ms = recovery_ms.min(t.elapsed().as_secs_f64() * 1e3);
        recovered_epoch = engine.epoch();
    }
    assert_eq!(
        recovered_epoch, logged_epochs,
        "recovery reaches the last epoch"
    );
    let recovery_per_10k = recovery_ms * 10_000.0 / stream.len() as f64;
    eprintln!(
        "durability: recovery replayed {} updates ({recovered_epoch} epochs) in {recovery_ms:.1} ms \
         ({recovery_per_10k:.1} ms per 10k)",
        stream.len()
    );
    let _ = std::fs::remove_dir_all(&data_root);

    let group_ups = rows
        .iter()
        .find(|(p, ..)| *p == SyncPolicy::Group)
        .map(|(_, _, ups)| *ups)
        .expect("group row");
    let policy_json: Vec<String> = rows
        .iter()
        .map(|(policy, ms, ups)| {
            format!(
                "{{\"policy\":\"{}\",\"ms\":{ms:.3},\"ups\":{ups:.1},\"vs_memory\":{:.4}}}",
                policy.as_str(),
                ups / memory_ups
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"durability\",\"scale\":{},\"floors\":{},\"objects\":{},",
            "\"updates\":{},\"batch\":{},\"memory_ms\":{:.3},\"memory_ups\":{:.1},",
            "\"policies\":[{}],",
            "\"group_vs_memory\":{:.4},\"recovery_ms\":{:.3},\"recovery_ms_per_10k\":{:.3}}}"
        ),
        scale,
        floors,
        objects,
        stream.len(),
        BATCH,
        memory_ms,
        memory_ups,
        policy_json.join(","),
        group_ups / memory_ups,
        recovery_ms,
        recovery_per_10k,
    );
    println!("{json}");
    let appended = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open("BENCH_durability.json")
        .and_then(|mut f| std::io::Write::write_all(&mut f, format!("{json}\n").as_bytes()));
    if let Err(e) = appended {
        eprintln!("durability: could not append to BENCH_durability.json: {e}");
    }
    eprintln!(
        "durability: wal=group ingests at {:.1}% of memory-only; recovery replays 10k updates \
         in {recovery_per_10k:.1} ms",
        100.0 * group_ups / memory_ups
    );
}
