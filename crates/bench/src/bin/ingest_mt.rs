//! Ingest-MT — writer-thread scaling of the parallel sharded write path.
//!
//! The multi-writer mirror of `ingest.rs`: a pure position-update stream
//! (`MoveObject` only, ids partitioned across writers so per-object order
//! is preserved no matter how the sequencer interleaves batches) is
//! applied by 1, 2 and 4 concurrent writer threads through cloned
//! `WriteHandle`s. Staging — validation, footprint search, Gaussian
//! sampling, shard copy-on-write — runs in parallel on the submitting
//! threads; only the short conflict-check-and-publish step serializes in
//! the epoch sequencer, and concurrent batches group-commit into shared
//! epochs.
//!
//! Every writer count must end in the **bit-identical** final state (the
//! checksum is asserted against the 1-writer reference), so the sweep
//! doubles as a cheap linearizability smoke test at bench scale. Reports
//! per writer count: wall-clock, updates/second, committed epochs, and
//! mean commit-group size (batches / epochs — > 1 means group commit
//! actually coalesced). Emits a `BENCH_ingest_mt.json` line; `cpus`
//! records `available_parallelism`, since on a single-CPU container the
//! curve measures sequencer overhead, not parallel speedup.

use idq_bench::{scale_from_env, scaled_floors, scaled_objects};
use idq_core::{EngineConfig, IndoorEngine, Update};
use idq_model::Floor;
use idq_workloads::{
    generate_building, generate_objects, BuildingConfig, ObjectConfig, PaperDefaults,
};
use std::time::Instant;

/// Writer-thread counts swept.
const WRITER_COUNTS: [usize; 3] = [1, 2, 4];
/// Updates per committed batch.
const BATCH: usize = 256;

fn main() {
    let scale = scale_from_env();
    let d = PaperDefaults::default();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("ingest_mt: IDQ_SCALE={scale} cpus={cpus}");

    let floors = scaled_floors(d.floors, scale);
    let objects = scaled_objects(d.objects, scale);
    let stream_len = scaled_objects(16_384, scale);

    let building =
        generate_building(&BuildingConfig::with_floors(floors)).expect("generator invariants hold");
    let store = generate_objects(
        &building,
        &ObjectConfig {
            count: objects,
            radius: d.radius,
            instances: 8,
            seed: 42,
        },
    )
    .expect("population fits the building");

    // The move stream: deterministic room-to-room hops, one writer per id
    // (id % writer-count), so per-object ordering survives any interleave
    // and every writer count converges to the same final state.
    let ids = store.ids_sorted();
    let rounds = (stream_len / ids.len().max(1)).max(1);
    let mut stream = Vec::with_capacity(rounds * ids.len());
    for k in 0..rounds {
        for &id in &ids {
            let floor = ((id.0 as usize + k) % floors as usize) as Floor;
            let rooms = &building.rooms_by_floor[floor as usize];
            let room = rooms[(id.0 as usize + k) % rooms.len()];
            stream.push(Update::MoveObject {
                id,
                center: building
                    .space
                    .partition(room)
                    .expect("generated room")
                    .bbox
                    .center(),
                floor,
                seed: id.0 ^ (k as u64) << 32,
            });
        }
    }

    let fresh_engine = || {
        IndoorEngine::with_objects(
            building.space.clone(),
            store.clone(),
            EngineConfig::default(),
        )
        .expect("engine builds")
    };
    let checksum = |e: &IndoorEngine| {
        let mut sum = 0.0f64;
        for id in e.store().ids_sorted() {
            let o = e.store().get(id).expect("listed id");
            sum += o.region.center.x + o.region.center.y + id.0 as f64;
        }
        (e.store().len(), sum)
    };

    // Warm-up touches every path once.
    {
        let mut e = fresh_engine();
        let take = stream.len().min(256);
        e.apply_batch(&stream[..take]).expect("warm-up applies");
    }

    let reps: usize = std::env::var("IDQ_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    let mut reference: Option<(usize, f64)> = None;
    let mut results = Vec::new();
    for &writers in &WRITER_COUNTS {
        // Partition by id so each object's updates stay on one writer.
        let mut streams: Vec<Vec<Update>> = vec![Vec::new(); writers];
        for u in &stream {
            let id = u.object_id().expect("pure move stream").0 as usize;
            streams[id % writers].push(u.clone());
        }
        let batches: usize = streams.iter().map(|s| s.chunks(BATCH).count()).sum();

        let mut ms = f64::INFINITY;
        let mut epochs = 0u64;
        for _ in 0..reps {
            let mut engine = fresh_engine();
            let t = Instant::now();
            std::thread::scope(|scope| {
                for s in &streams {
                    let writer = engine.writer();
                    scope.spawn(move || {
                        for chunk in s.chunks(BATCH) {
                            writer.apply_batch(chunk).expect("moves apply");
                        }
                    });
                }
            });
            ms = ms.min(t.elapsed().as_secs_f64() * 1e3);
            engine.refresh();
            epochs = engine.epoch();
            let sum = checksum(&engine);
            match &reference {
                None => reference = Some(sum),
                Some(r) => assert_eq!(&sum, r, "{writers}-writer run ends in the 1-writer state"),
            }
        }
        let ups = stream.len() as f64 / (ms / 1e3);
        let mean_group = batches as f64 / epochs.max(1) as f64;
        eprintln!(
            "ingest_mt: writers={writers} {ups:10.0} updates/s \
             ({batches} batches in {epochs} epochs, mean group {mean_group:.2})"
        );
        results.push((writers, ms, ups, epochs, batches, mean_group));
    }

    let single_ups = results[0].2;
    let best_ups = results
        .iter()
        .map(|r| r.2)
        .fold(f64::NEG_INFINITY, f64::max);
    let scaling = results.last().expect("sweep ran").2 / single_ups;

    let per_writer_json: Vec<String> = results
        .iter()
        .map(|(writers, ms, ups, epochs, batches, mean_group)| {
            format!(
                concat!(
                    "{{\"writers\":{},\"ms\":{:.3},\"ups\":{:.1},",
                    "\"epochs\":{},\"batches\":{},\"mean_group\":{:.3}}}"
                ),
                writers, ms, ups, epochs, batches, mean_group
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\"bench\":\"ingest_mt\",\"scale\":{},\"cpus\":{},\"floors\":{},",
            "\"objects\":{},\"updates\":{},\"batch\":{},",
            "\"writers\":[{}],\"best_ups\":{:.1},\"scaling_max_writers\":{:.3}}}"
        ),
        scale,
        cpus,
        floors,
        objects,
        stream.len(),
        BATCH,
        per_writer_json.join(","),
        best_ups,
        scaling,
    );
    println!("{json}");
    let appended = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open("BENCH_ingest_mt.json")
        .and_then(|mut f| std::io::Write::write_all(&mut f, format!("{json}\n").as_bytes()));
    if let Err(e) = appended {
        eprintln!("ingest_mt: could not append to BENCH_ingest_mt.json: {e}");
    }
    eprintln!(
        "ingest_mt: {} writers reach {scaling:.2}x the 1-writer rate on {cpus} cpu(s) \
         ({:.0} vs {single_ups:.0} updates/s over {} updates)",
        WRITER_COUNTS[WRITER_COUNTS.len() - 1],
        results.last().expect("sweep ran").2,
        stream.len()
    );
}
