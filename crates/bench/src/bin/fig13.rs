//! Figure 13 — ikNNQ query execution time.
//!
//! * (a) `T_q` vs `|O|` ∈ {10K, 20K, 30K} for k ∈ {50, 100, 150};
//! * (b) phase breakdown at the defaults;
//! * (c) `T_q` vs uncertainty-region diameter ∈ {10, 20, 30};
//! * (d) `T_q` vs partitions ∈ {1K, 2K, 3K}.

use idq_bench::{build_world, klabel, mean_knn, scale_from_env, scaled_floors, scaled_objects};
use idq_workloads::{PaperDefaults, SeriesTable};

fn main() {
    let scale = scale_from_env();
    let d = PaperDefaults::default();
    let queries = d.queries;
    eprintln!("fig13: IDQ_SCALE={scale}");

    let k_sweep: Vec<usize> = PaperDefaults::K_SWEEP
        .iter()
        .map(|&k| ((k as f64 * scale) as usize).max(5))
        .collect();
    let k_default = k_sweep[1];

    // ---- (a) Tq vs |O|; (b) breakdown ---------------------------------------
    let series: Vec<String> = k_sweep.iter().map(|k| format!("k={k}")).collect();
    let series_ref: Vec<&str> = series.iter().map(String::as_str).collect();
    let mut a = SeriesTable::new("Fig 13(a) ikNNQ Tq (ms) vs |O|", "|O|", &series_ref);
    let mut b = SeriesTable::new(
        "Fig 13(b) ikNNQ phase breakdown (ms) at default k",
        "|O|",
        &["Filtering", "Subgraph", "Pruning", "Refinement"],
    );
    for &objs in &PaperDefaults::OBJECT_SWEEP {
        let objs = scaled_objects(objs, scale);
        let world = build_world(scaled_floors(d.floors, scale), objs, d.radius, queries, 42);
        let mut row = Vec::new();
        for &k in &k_sweep {
            let (ms, stats) = mean_knn(&world, k, &world.options);
            row.push(ms);
            if k == k_default {
                b.push_row(
                    klabel(objs),
                    vec![
                        stats.filtering_ms,
                        stats.subgraph_ms,
                        stats.pruning_ms,
                        stats.refinement_ms,
                    ],
                );
            }
        }
        a.push_row(klabel(objs), row);
    }
    println!("{}", a.render());
    println!("{}", b.render());

    // ---- (c) Tq vs uncertainty diameter --------------------------------------
    let mut c = SeriesTable::new(
        "Fig 13(c) ikNNQ Tq (ms) vs uncertainty region (diameter, m)",
        "diam",
        &series_ref,
    );
    for &radius in &PaperDefaults::RADIUS_SWEEP {
        let world = build_world(
            scaled_floors(d.floors, scale),
            scaled_objects(d.objects, scale),
            radius,
            queries,
            42,
        );
        let mut row = Vec::new();
        for &k in &k_sweep {
            let (ms, _) = mean_knn(&world, k, &world.options);
            row.push(ms);
        }
        c.push_row(format!("{}", (radius * 2.0) as i64), row);
    }
    println!("{}", c.render());

    // ---- (d) Tq vs number of partitions ---------------------------------------
    let mut dtab = SeriesTable::new(
        "Fig 13(d) ikNNQ Tq (ms) vs partitions (floors 10/20/30)",
        "parts",
        &series_ref,
    );
    for &floors in &PaperDefaults::FLOOR_SWEEP {
        let world = build_world(
            scaled_floors(floors, scale),
            scaled_objects(d.objects, scale),
            d.radius,
            queries,
            42,
        );
        let parts = world.building.partition_count();
        let mut row = Vec::new();
        for &k in &k_sweep {
            let (ms, _) = mean_knn(&world, k, &world.options);
            row.push(ms);
        }
        dtab.push_row(format!("{parts}"), row);
    }
    println!("{}", dtab.render());
}
