//! Distance-layer errors.

use idq_model::IndoorPoint;

/// Errors from indoor distance evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum DistanceError {
    /// The query point lies in no partition (outside the building).
    QueryOutsideSpace(IndoorPoint),
    /// The doors graph does not cover the space's doors (stale graph).
    StaleGraph {
        /// Door slots in the graph.
        graph_slots: usize,
        /// Door slots in the space.
        space_slots: usize,
    },
}

impl std::fmt::Display for DistanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistanceError::QueryOutsideSpace(p) => {
                write!(f, "query point {p} lies outside every partition")
            }
            DistanceError::StaleGraph { graph_slots, space_slots } => write!(
                f,
                "doors graph covers {graph_slots} door slots but space has {space_slots}; rebuild or apply events"
            ),
        }
    }
}

impl std::error::Error for DistanceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Point2;

    #[test]
    fn errors_render() {
        let e = DistanceError::QueryOutsideSpace(IndoorPoint::new(Point2::new(1.0, 2.0), 0));
        assert!(e.to_string().contains("outside"));
    }
}
