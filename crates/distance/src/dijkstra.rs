//! Multi-source Dijkstra over the doors graph — the *subgraph phase* engine.
//!
//! The query pipeline computes single-source shortest indoor paths from the
//! query point `q` to doors: every exit door of `P(q)` is seeded with its
//! intra-partition distance `|q, d_q|_E`, then edges of the doors graph are
//! relaxed. The search can be restricted to a candidate partition set (the
//! `Rp` produced by the filtering phase): only edges routed through allowed
//! partitions are expanded, exactly as the paper's Phase 2 prescribes
//! ("the distance calculation only involves the partitions in Rp").

use crate::cache::DoorRow;
use crate::error::DistanceError;
use idq_geom::OrdF64;
use idq_model::{DoorId, DoorsGraph, IndoorPoint, IndoorSpace, PartitionId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

/// Sentinel for "no predecessor" in the shortest-path tree.
const NO_PREV: u32 = u32::MAX;

/// Shortest indoor distances from a query point to every reachable door,
/// with predecessor links for path reconstruction.
#[derive(Clone, Debug)]
pub struct DoorDistances {
    /// The query point the distances originate from.
    pub query: IndoorPoint,
    /// The partition containing the query point — `P(q)`.
    pub source_partition: PartitionId,
    dist: Vec<f64>,
    prev: Vec<u32>,
    restricted: bool,
    exit_horizon: f64,
}

impl DoorDistances {
    /// Runs Dijkstra from `q` over the full doors graph.
    pub fn compute(
        space: &IndoorSpace,
        graph: &DoorsGraph,
        q: IndoorPoint,
    ) -> Result<Self, DistanceError> {
        Self::compute_inner(space, graph, q, None)
    }

    /// Runs Dijkstra from `q`, expanding only edges routed through
    /// partitions in `allowed` (the candidate set `Rp`). The source
    /// partition is implicitly allowed.
    pub fn compute_restricted(
        space: &IndoorSpace,
        graph: &DoorsGraph,
        q: IndoorPoint,
        allowed: &HashSet<PartitionId>,
    ) -> Result<Self, DistanceError> {
        Self::compute_inner(space, graph, q, Some(allowed))
    }

    fn compute_inner(
        space: &IndoorSpace,
        graph: &DoorsGraph,
        q: IndoorPoint,
        allowed: Option<&HashSet<PartitionId>>,
    ) -> Result<Self, DistanceError> {
        if graph.door_slots() < space.door_slots() {
            return Err(DistanceError::StaleGraph {
                graph_slots: graph.door_slots(),
                space_slots: space.door_slots(),
            });
        }
        let source_partition = space
            .partition_at(q)
            .ok_or(DistanceError::QueryOutsideSpace(q))?;

        let n = space.door_slots();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![NO_PREV; n];
        let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();

        // Seeds: doors one can leave P(q) through.
        for &d in space.doors_of(source_partition).unwrap_or(&[]) {
            if !space.can_leave(d, source_partition) {
                continue;
            }
            let w = space
                .point_to_door(q, d)
                .expect("door of the source partition");
            if w < dist[d.index()] {
                dist[d.index()] = w;
                heap.push(Reverse((OrdF64(w), d.0)));
            }
        }

        let mut exit_horizon = f64::INFINITY;
        while let Some(Reverse((OrdF64(du), u))) = heap.pop() {
            if du > dist[u as usize] {
                continue; // stale heap entry
            }
            for e in graph.edges_from(DoorId(u)) {
                if let Some(allowed) = allowed {
                    if e.via != source_partition && !allowed.contains(&e.via) {
                        // The cheapest door an escaping path leaves the
                        // candidate set through: any path using partitions
                        // outside `allowed` costs at least this much, so
                        // every restricted distance at or below it is
                        // provably exact.
                        exit_horizon = exit_horizon.min(du);
                        continue;
                    }
                }
                let nd = du + e.weight;
                let v = e.to.index();
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = u;
                    heap.push(Reverse((OrdF64(nd), e.to.0)));
                }
            }
        }

        Ok(DoorDistances {
            query: q,
            source_partition,
            dist,
            prev,
            restricted: allowed.is_some(),
            exit_horizon,
        })
    }

    /// Builds door distances from `q` by **composing per-door expansion
    /// rows** instead of running a fresh from-`q` Dijkstra: for every
    /// seed door `d` of `P(q)` (weight `w_d = |q,d|_E`), the row
    /// supplied by `row_source` (typically [`crate::DistanceCache::row`]
    /// or a locally expanded [`DoorRow`]) is read *truncated at the
    /// requested horizon* and folded as
    /// `dist(v) = min_d (w_d + row_d(v))`.
    ///
    /// Rows hold exact full-graph distances, so every composed value is
    /// an over-estimate of the true distance only through truncation:
    /// any door whose true distance is at most
    /// `exit_horizon = min_d w_d + horizon` gets its exact value —
    /// the winning seed's term survives truncation because its row-local
    /// part is at most `horizon`. That is the same exactness contract as
    /// a restricted search, surfaced through [`Self::exit_horizon`].
    /// Crucially, the result is a pure function of
    /// `(q, horizon, geometry)` — independent of how wide the supplied
    /// rows actually are — which is what makes cache reuse bit-exact.
    ///
    /// The composed context carries no predecessor tree; [`Self::path_to`]
    /// returns `None`.
    pub fn compute_banded(
        space: &IndoorSpace,
        graph: &DoorsGraph,
        q: IndoorPoint,
        horizon: f64,
        mut row_source: impl FnMut(&DoorsGraph, DoorId, f64) -> Arc<DoorRow>,
    ) -> Result<Self, DistanceError> {
        if graph.door_slots() < space.door_slots() {
            return Err(DistanceError::StaleGraph {
                graph_slots: graph.door_slots(),
                space_slots: space.door_slots(),
            });
        }
        let source_partition = space
            .partition_at(q)
            .ok_or(DistanceError::QueryOutsideSpace(q))?;

        let n = graph.door_slots().max(space.door_slots());
        let mut dist = vec![f64::INFINITY; n];
        let mut min_w = f64::INFINITY;
        for &d in space.doors_of(source_partition).unwrap_or(&[]) {
            if !space.can_leave(d, source_partition) {
                continue;
            }
            let w = space
                .point_to_door(q, d)
                .expect("door of the source partition");
            min_w = min_w.min(w);
            let row = row_source(graph, d, horizon);
            for (v, rv) in row.entries_within(horizon) {
                let nd = w + rv;
                let v = v as usize;
                if v < n && nd < dist[v] {
                    dist[v] = nd;
                }
            }
        }

        let restricted = horizon.is_finite();
        Ok(DoorDistances {
            query: q,
            source_partition,
            dist,
            prev: Vec::new(),
            restricted,
            exit_horizon: if restricted {
                min_w + horizon
            } else {
                f64::INFINITY
            },
        })
    }

    /// The shortest indoor distance from the query point to door `d`
    /// (`∞` if unreachable).
    #[inline]
    pub fn door_distance(&self, d: DoorId) -> f64 {
        self.dist.get(d.index()).copied().unwrap_or(f64::INFINITY)
    }

    /// Whether door `d` was reached.
    #[inline]
    pub fn reachable(&self, d: DoorId) -> bool {
        self.door_distance(d).is_finite()
    }

    /// Whether the search was restricted to a candidate partition set
    /// (restricted distances over-estimate true distances for doors whose
    /// shortest path leaves the candidate set).
    #[inline]
    pub fn is_restricted(&self) -> bool {
        self.restricted
    }

    /// The exactness horizon of a restricted search: every walking cost
    /// at or below this value is provably equal to its full-graph value.
    /// For a candidate-set-restricted search it is the cheapest cost at
    /// which any path can leave the candidate set — a hypothetical
    /// shorter path through a non-candidate partition would have to
    /// spend at least the horizon just to get out. For a
    /// [`Self::compute_banded`] context it is `min_d w_d + horizon`: a
    /// door with true distance at or below it is reached through some
    /// seed whose row-local part fits under the truncation horizon, so
    /// the composed value is exact. `∞` for unrestricted searches and
    /// for sources with no exit.
    #[inline]
    pub fn exit_horizon(&self) -> f64 {
        self.exit_horizon
    }

    /// The door sequence of the shortest path from the query point through
    /// door `d` (inclusive), or `None` if `d` is unreachable. This is the
    /// `δ` of the paper's `q ⇝δ p` notation. Contexts assembled by
    /// [`Self::compute_banded`] carry no predecessor tree and always
    /// return `None`.
    pub fn path_to(&self, d: DoorId) -> Option<Vec<DoorId>> {
        if !self.reachable(d) || self.prev.len() < self.dist.len() {
            return None;
        }
        let mut seq = vec![d];
        let mut cur = d.index();
        while self.prev[cur] != NO_PREV {
            let p = self.prev[cur];
            seq.push(DoorId(p));
            cur = p as usize;
        }
        seq.reverse();
        Some(seq)
    }

    /// Number of doors with a finite distance.
    pub fn reached_count(&self) -> usize {
        self.dist.iter().filter(|d| d.is_finite()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Point2, Rect2};
    use idq_model::FloorPlanBuilder;

    /// A 1×4 corridor of rooms: R0 - R1 - R2 - R3, 10 m each, doors at the
    /// shared walls' midpoints.
    fn corridor() -> (IndoorSpace, DoorsGraph, Vec<PartitionId>, Vec<DoorId>) {
        let mut b = FloorPlanBuilder::new(4.0);
        let rooms: Vec<PartitionId> = (0..4)
            .map(|i| {
                b.add_room(
                    0,
                    Rect2::from_bounds(10.0 * i as f64, 0.0, 10.0 * (i + 1) as f64, 10.0),
                )
                .unwrap()
            })
            .collect();
        let doors: Vec<DoorId> = (0..3)
            .map(|i| {
                b.add_door_between(
                    rooms[i],
                    rooms[i + 1],
                    Point2::new(10.0 * (i + 1) as f64, 5.0),
                )
                .unwrap()
            })
            .collect();
        let s = b.finish().unwrap();
        let g = DoorsGraph::build(&s);
        (s, g, rooms, doors)
    }

    #[test]
    fn distances_accumulate_along_the_corridor() {
        let (s, g, _, doors) = corridor();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let dd = DoorDistances::compute(&s, &g, q).unwrap();
        assert!((dd.door_distance(doors[0]) - 8.0).abs() < 1e-9);
        assert!((dd.door_distance(doors[1]) - 18.0).abs() < 1e-9);
        assert!((dd.door_distance(doors[2]) - 28.0).abs() < 1e-9);
        assert_eq!(dd.reached_count(), 3);
    }

    #[test]
    fn path_reconstruction_matches_topology() {
        let (s, g, _, doors) = corridor();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let dd = DoorDistances::compute(&s, &g, q).unwrap();
        assert_eq!(dd.path_to(doors[2]).unwrap(), doors);
        assert_eq!(dd.path_to(doors[0]).unwrap(), vec![doors[0]]);
    }

    #[test]
    fn restriction_prunes_far_partitions() {
        let (s, g, rooms, doors) = corridor();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        // Allow only R0 (source, implicit) and R1: door d1 is reachable
        // (it borders R1), d2 is not (its only incoming edge runs via R2).
        let allowed: HashSet<PartitionId> = [rooms[1]].into_iter().collect();
        let dd = DoorDistances::compute_restricted(&s, &g, q, &allowed).unwrap();
        assert!(dd.is_restricted());
        assert!(dd.reachable(doors[0]));
        assert!(dd.reachable(doors[1]));
        assert!(!dd.reachable(doors[2]));
    }

    #[test]
    fn banded_composition_matches_full_dijkstra_under_the_horizon() {
        let (s, g, _, doors) = corridor();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let full = DoorDistances::compute(&s, &g, q).unwrap();
        let banded = DoorDistances::compute_banded(&s, &g, q, 15.0, |g, d, h| {
            std::sync::Arc::new(crate::cache::DoorRow::expand(g, d, h))
        })
        .unwrap();
        // exit_horizon = min seed weight (8) + horizon (15) = 23: doors at
        // 8 and 18 are exact, the door at 28 is beyond the trust bound.
        assert!(banded.is_restricted());
        assert!((banded.exit_horizon() - 23.0).abs() < 1e-9);
        for &d in &doors[..2] {
            assert_eq!(
                banded.door_distance(d).to_bits(),
                full.door_distance(d).to_bits()
            );
        }
        assert!(!banded.reachable(doors[2]));
        // No predecessor tree on assembled contexts.
        assert_eq!(banded.path_to(doors[0]), None);
    }

    #[test]
    fn banded_composition_with_infinite_horizon_is_complete() {
        let (s, g, _, doors) = corridor();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let banded = DoorDistances::compute_banded(&s, &g, q, f64::INFINITY, |g, d, h| {
            std::sync::Arc::new(crate::cache::DoorRow::expand(g, d, h))
        })
        .unwrap();
        assert!(!banded.is_restricted());
        assert!(banded.exit_horizon().is_infinite());
        assert!((banded.door_distance(doors[2]) - 28.0).abs() < 1e-9);
        assert_eq!(banded.reached_count(), 3);
    }

    #[test]
    fn banded_composition_is_independent_of_row_width() {
        // The requested horizon, not the supplied row width, decides what
        // is read: handing the composition over-wide (complete) rows must
        // produce bitwise the same context as exact-width rows.
        let (s, g, _, doors) = corridor();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let exact = DoorDistances::compute_banded(&s, &g, q, 12.0, |g, d, h| {
            std::sync::Arc::new(crate::cache::DoorRow::expand(g, d, h))
        })
        .unwrap();
        let wide = DoorDistances::compute_banded(&s, &g, q, 12.0, |g, d, _| {
            std::sync::Arc::new(crate::cache::DoorRow::expand(g, d, f64::INFINITY))
        })
        .unwrap();
        for &d in &doors {
            assert_eq!(
                exact.door_distance(d).to_bits(),
                wide.door_distance(d).to_bits()
            );
        }
        assert_eq!(
            exact.exit_horizon().to_bits(),
            wide.exit_horizon().to_bits()
        );
    }

    #[test]
    fn query_outside_space_errors() {
        let (s, g, _, _) = corridor();
        let q = IndoorPoint::new(Point2::new(-50.0, 5.0), 0);
        assert!(matches!(
            DoorDistances::compute(&s, &g, q),
            Err(DistanceError::QueryOutsideSpace(_))
        ));
    }

    #[test]
    fn one_way_door_blocks_reverse_reachability() {
        let mut b = FloorPlanBuilder::new(4.0);
        let a = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let c = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let d = b.add_one_way_door(a, c, Point2::new(10.0, 5.0)).unwrap();
        let s = b.finish().unwrap();
        let g = DoorsGraph::build(&s);
        // From A: can leave through the one-way door.
        let dd =
            DoorDistances::compute(&s, &g, IndoorPoint::new(Point2::new(5.0, 5.0), 0)).unwrap();
        assert!(dd.reachable(d));
        // From C: cannot.
        let dd =
            DoorDistances::compute(&s, &g, IndoorPoint::new(Point2::new(15.0, 5.0), 0)).unwrap();
        assert!(!dd.reachable(d));
        assert_eq!(dd.reached_count(), 0);
    }

    #[test]
    fn closed_door_stops_search_after_rebuild() {
        let (mut s, _, _, doors) = corridor();
        let ev = s.close_door(doors[1]).unwrap();
        let mut g = DoorsGraph::build(&s);
        g.apply(&s, &ev); // no-op consistency; built after close anyway
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let dd = DoorDistances::compute(&s, &g, q).unwrap();
        assert!(dd.reachable(doors[0]));
        assert!(!dd.reachable(doors[1]));
        assert!(!dd.reachable(doors[2]));
    }

    #[test]
    fn stale_graph_is_rejected() {
        let (mut s, g, rooms, _) = corridor();
        // Mutate the space so it has more door slots than the graph knows.
        let (_, _ev) = s
            .insert_door(
                rooms[0],
                rooms[1],
                Point2::new(10.0, 2.0),
                0,
                idq_model::Direction::Bidirectional,
            )
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        assert!(matches!(
            DoorDistances::compute(&s, &g, q),
            Err(DistanceError::StaleGraph { .. })
        ));
    }
}
