//! Indoor distances for uncertain objects (§II of the paper) and the
//! shortest-path machinery that evaluates them **without pre-computed
//! door-to-door distances**.
//!
//! * [`DoorDistances`] — single/multi-source Dijkstra over the doors graph
//!   from a query point, optionally restricted to a candidate partition set
//!   (the query pipeline's *subgraph phase*);
//! * [`point_distance`] / [`indoor_distance`] / [`shortest_path`] — the
//!   point-to-point indoor distance `|q,p|_I` of Eq. 1 and its witness
//!   door sequence `q ⇝ p`;
//! * [`expected`] — the expected indoor distance `|q,O|_I` (Def. 1) with
//!   the paper's three cases: single-partition single-path (Eq. 3, via
//!   additive-weighted bisectors), single-partition multi-path (Eq. 4) and
//!   multi-partition (Eq. 6);
//! * [`bounds`] — the pruning-bound family: topological upper/lower bounds
//!   (Lemmas 1–2 / Eq. 7), the topological looser upper bound (Lemma 3),
//!   the Markov lower bound (Lemma 4), probabilistic bounds (Lemma 5 /
//!   Eq. 8) and the Table III dispatch;
//! * [`cache`] — the shared geometry-keyed [`DistanceCache`]: memoized
//!   per-door expansion rows composed into query contexts by
//!   [`DoorDistances::compute_banded`], reused bit-exactly across
//!   queries, subscriptions, dispatch, and history replay.

pub mod bounds;
pub mod cache;
pub mod dijkstra;
pub mod error;
pub mod expected;
pub mod point_dist;

pub use bounds::{
    lemma5_bounds, markov_lower, object_bounds, some_path_upper, subregion_bounds, BoundKind,
    ObjectBounds, SharedPathUpper, SubregionBounds,
};
pub use cache::{band_for, CacheCounters, DistanceCache, DoorRow, RowFetch};
pub use dijkstra::DoorDistances;
pub use error::DistanceError;
pub use expected::{expected_indoor_distance, DistanceCase, ExpectedDistance};
pub use point_dist::{indoor_distance, point_distance, point_distance_via, shortest_path};

// `IndoorPoint` is deliberately NOT re-exported here: `idq_model` is its
// canonical crate and the single import path (`idq_model::IndoorPoint` /
// `indoor_dq::model::IndoorPoint`) keeps call sites coherent.
