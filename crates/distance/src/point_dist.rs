//! Point-to-point indoor distance `|q,p|_I` (Eq. 1) and its witness path.

use crate::dijkstra::DoorDistances;
use crate::error::DistanceError;
use idq_model::{DoorId, DoorsGraph, IndoorPoint, IndoorSpace};

/// The indoor distance from the origin of `dd` to point `p`, together with
/// the arrival door (`None` when the straight-line intra-partition route
/// inside `P(q)` wins).
///
/// Returns `f64::INFINITY` distance when `p` is unreachable (or lies in no
/// partition).
pub fn point_distance_via(
    space: &IndoorSpace,
    dd: &DoorDistances,
    p: IndoorPoint,
) -> (f64, Option<DoorId>) {
    let Some(target) = space.partition_at(p) else {
        return (f64::INFINITY, None);
    };
    let mut best = f64::INFINITY;
    let mut via = None;
    if target == dd.source_partition {
        best = space.intra_distance(dd.query, p);
    }
    for &d in space.doors_of(target).unwrap_or(&[]) {
        if !space.can_enter(d, target) {
            continue;
        }
        let base = dd.door_distance(d);
        if !base.is_finite() {
            continue;
        }
        let door_pt = space.door_point(d).expect("active door");
        let total = base + space.intra_distance(door_pt, p);
        if total < best {
            best = total;
            via = Some(d);
        }
    }
    (best, via)
}

/// The indoor distance from the origin of `dd` to `p` (Eq. 1).
#[inline]
pub fn point_distance(space: &IndoorSpace, dd: &DoorDistances, p: IndoorPoint) -> f64 {
    point_distance_via(space, dd, p).0
}

/// One-shot indoor distance `|q,p|_I`: runs Dijkstra from `q` and evaluates
/// `p`. Prefer [`DoorDistances`] + [`point_distance`] when evaluating many
/// targets from the same `q`.
pub fn indoor_distance(
    space: &IndoorSpace,
    graph: &DoorsGraph,
    q: IndoorPoint,
    p: IndoorPoint,
) -> Result<f64, DistanceError> {
    let dd = DoorDistances::compute(space, graph, q)?;
    Ok(point_distance(space, &dd, p))
}

/// The shortest path `q →δ p`: total length plus the door sequence `δ`
/// (empty when the route stays inside one partition). `None` when `p` is
/// unreachable.
pub fn shortest_path(
    space: &IndoorSpace,
    graph: &DoorsGraph,
    q: IndoorPoint,
    p: IndoorPoint,
) -> Result<Option<(f64, Vec<DoorId>)>, DistanceError> {
    let dd = DoorDistances::compute(space, graph, q)?;
    let (total, via) = point_distance_via(space, &dd, p);
    if !total.is_finite() {
        return Ok(None);
    }
    let doors = match via {
        None => Vec::new(),
        Some(d) => dd.path_to(d).expect("arrival door is reachable"),
    };
    Ok(Some((total, doors)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Point2, Rect2};
    use idq_model::{DoorsGraph, FloorPlanBuilder, PartitionId};

    fn two_rooms() -> (IndoorSpace, DoorsGraph, PartitionId, PartitionId, DoorId) {
        let mut b = FloorPlanBuilder::new(4.0);
        let a = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let c = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let d = b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
        let s = b.finish().unwrap();
        let g = DoorsGraph::build(&s);
        (s, g, a, c, d)
    }

    #[test]
    fn same_partition_is_euclidean() {
        let (s, g, ..) = two_rooms();
        let q = IndoorPoint::new(Point2::new(1.0, 1.0), 0);
        let p = IndoorPoint::new(Point2::new(4.0, 5.0), 0);
        let d = indoor_distance(&s, &g, q, p).unwrap();
        assert!((d - 5.0).abs() < 1e-9);
        let (_, doors) = shortest_path(&s, &g, q, p).unwrap().unwrap();
        assert!(doors.is_empty());
    }

    #[test]
    fn cross_partition_goes_through_the_door() {
        let (s, g, _, _, d) = two_rooms();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(18.0, 5.0), 0);
        let dist = indoor_distance(&s, &g, q, p).unwrap();
        assert!((dist - 16.0).abs() < 1e-9); // 8 to the door + 8 beyond
        let (total, doors) = shortest_path(&s, &g, q, p).unwrap().unwrap();
        assert!((total - 16.0).abs() < 1e-9);
        assert_eq!(doors, vec![d]);
    }

    #[test]
    fn detour_beats_blocked_straight_line() {
        // The paper's core motivation (Fig. 1): Euclidean distance is
        // meaningless through walls. Distance must route around.
        let (s, g, ..) = two_rooms();
        let q = IndoorPoint::new(Point2::new(9.0, 9.5), 0);
        let p = IndoorPoint::new(Point2::new(11.0, 9.5), 0);
        let dist = indoor_distance(&s, &g, q, p).unwrap();
        let euclid = q.point.dist(p.point);
        assert!(
            dist > euclid,
            "indoor {dist} must exceed euclidean {euclid}"
        );
        // Route: down to the door at (10,5) and back up.
        let expect = q.point.dist(Point2::new(10.0, 5.0)) + Point2::new(10.0, 5.0).dist(p.point);
        assert!((dist - expect).abs() < 1e-9);
    }

    #[test]
    fn unreachable_returns_none_path_and_infinite_distance() {
        let (mut s, _, _, _, d) = two_rooms();
        s.close_door(d).unwrap();
        let g = DoorsGraph::build(&s);
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(18.0, 5.0), 0);
        assert!(indoor_distance(&s, &g, q, p).unwrap().is_infinite());
        assert!(shortest_path(&s, &g, q, p).unwrap().is_none());
    }

    #[test]
    fn point_in_no_partition_is_unreachable() {
        let (s, g, ..) = two_rooms();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let dd = DoorDistances::compute(&s, &g, q).unwrap();
        let nowhere = IndoorPoint::new(Point2::new(99.0, 99.0), 0);
        assert!(point_distance(&s, &dd, nowhere).is_infinite());
    }
}
