//! Shared, geometry-keyed distance cache — memoized per-door Dijkstra
//! rows reused across queries, subscriptions, dispatch, and history.
//!
//! The paper's §V-B.4 baseline shows that *full* door-to-door
//! pre-computation is too expensive to maintain; the opposite extreme —
//! one restricted Dijkstra per query — leaves all cross-query reuse on
//! the table. This module is the middle ground: a concurrent,
//! service-lifetime memo of **per-source-door expansion rows**
//! ([`DoorRow`]), each the exact prefix of a full Dijkstra from that
//! door truncated at a horizon band. A query-point context is then
//! *assembled* by composing seed rows (see
//! `DoorDistances::compute_banded` in this crate): the per-door rows are
//! query-independent, so every query, subscription registration,
//! footprint repair, and history replay against the same geometry shares
//! them.
//!
//! **Validity is pointer identity.** The cache holds no epoch or version
//! field: it is owned by an `Arc` that lives alongside the geometry tier
//! (`CompositeIndex` retires the whole cache `Arc` whenever topology
//! changes, the same structural trick as `shares_geometry_with`).
//! Readers that reach a cache through an index therefore can never
//! observe a row computed against different geometry — no epoch check on
//! the read path.
//!
//! **Reuse is bit-exact.** Rows are stored in settle order, so a row
//! expanded at horizon `H` serves any request at horizon `h ≤ H` by
//! truncated iteration ([`DoorRow::entries_within`]): Dijkstra's
//! monotone settle order makes the truncated read identical, entry for
//! entry, to a fresh expansion at `h`. Horizons are quantized to
//! power-of-two bands ([`band_for`]) so nearby thresholds coalesce onto
//! one row.
//!
//! **Memory is bounded.** Each striped shard evicts least-recently-used
//! rows (at source-door granularity) once its share of the configured
//! byte budget is exceeded; eviction only costs recompute, never
//! correctness.

use idq_geom::OrdF64;
use idq_model::{DoorId, DoorsGraph};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of striped shards. Sixteen keeps lock contention negligible on
/// small machines without bloating the fixed footprint.
const SHARD_COUNT: usize = 16;

/// Smallest horizon band: requests below 32 m all share one row width.
const MIN_BAND: f64 = 32.0;

/// One memoized Dijkstra expansion from a single source door.
///
/// `entries` holds `(door, distance)` pairs **in settle order** (the
/// order Dijkstra popped them), each the exact full-graph shortest
/// distance from the source door. The row is complete for every door
/// whose distance is `≤ horizon`; doors beyond the horizon are absent.
#[derive(Clone, Debug)]
pub struct DoorRow {
    horizon: f64,
    entries: Vec<(u32, f64)>,
}

impl DoorRow {
    /// Expands a row from `src` over the full doors graph, truncated at
    /// `horizon` (inclusive: a door settled exactly at the horizon is
    /// kept). With `horizon = ∞` this is a complete single-source
    /// Dijkstra. The expansion is bitwise-deterministic: ties in the
    /// heap break by `(distance, door id)`, matching
    /// `PrecomputedD2D`-style full expansions, so a truncated row is a
    /// strict prefix of the complete one.
    pub fn expand(graph: &DoorsGraph, src: DoorId, horizon: f64) -> Self {
        let n = graph.door_slots();
        let mut entries = Vec::new();
        if src.index() >= n {
            return DoorRow { horizon, entries };
        }
        let mut dist = vec![f64::INFINITY; n];
        let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        dist[src.index()] = 0.0;
        heap.push(Reverse((OrdF64(0.0), src.0)));
        while let Some(Reverse((OrdF64(du), u))) = heap.pop() {
            if du > dist[u as usize] {
                continue; // stale heap entry
            }
            if du > horizon {
                break; // everything left in the heap is farther still
            }
            entries.push((u, du));
            for e in graph.edges_from(DoorId(u)) {
                let nd = du + e.weight;
                let v = e.to.index();
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(Reverse((OrdF64(nd), e.to.0)));
                }
            }
        }
        DoorRow { horizon, entries }
    }

    /// The horizon this row was expanded to.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Iterates `(door, distance)` pairs with distance `≤ h`, in settle
    /// order. Because entries are stored in settle order, this truncated
    /// read of a wider row is identical to a fresh expansion at `h`.
    #[inline]
    pub fn entries_within(&self, h: f64) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries
            .iter()
            .copied()
            .take_while(move |&(_, d)| d <= h)
    }

    /// Number of settled doors in the row.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the row settled no doors at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint, for the eviction budget.
    #[inline]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.len() * std::mem::size_of::<(u32, f64)>()
    }
}

/// Quantizes a requested horizon up to its cache band: the smallest
/// power-of-two multiple of the 32 m base band at or above it (`∞`
/// stays `∞`).
/// Banding makes nearby thresholds share one row and makes a cached row
/// reusable by every request underneath its band.
pub fn band_for(horizon: f64) -> f64 {
    if !horizon.is_finite() {
        return f64::INFINITY;
    }
    let mut band = MIN_BAND;
    while band < horizon {
        band *= 2.0;
    }
    band
}

/// What a [`DistanceCache::row`] call observed.
#[derive(Clone, Copy, Debug)]
pub struct RowFetch {
    /// `true` when an already-resident row covered the request.
    pub hit: bool,
    /// Rows evicted (from the same shard) to fit the new row in budget.
    pub evicted: usize,
}

/// A point-in-time copy of the cache counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheCounters {
    /// Row requests served (hits + misses).
    pub lookups: u64,
    /// Requests covered by a resident row.
    pub hits: u64,
    /// Requests that had to expand a row.
    pub misses: u64,
    /// Rows evicted by the byte budget.
    pub evictions: u64,
    /// Approximate resident bytes across all shards.
    pub bytes: u64,
    /// Resident rows across all shards.
    pub rows: usize,
}

struct CacheEntry {
    row: Arc<DoorRow>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    rows: HashMap<u32, CacheEntry>,
    bytes: usize,
}

/// Concurrent, service-lifetime memo of per-door expansion rows.
///
/// Shared via `Arc` from `CompositeIndex`; see the module docs for the
/// validity-by-pointer-identity invariant and the bit-exactness
/// argument. All methods take `&self` and are safe to call from any
/// number of query threads concurrently.
pub struct DistanceCache {
    shards: Vec<Mutex<Shard>>,
    tick: AtomicU64,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

impl DistanceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DistanceCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            tick: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Returns the expansion row for `src`, covering at least `horizon`,
    /// expanding (at the quantized band) and caching it on a miss.
    /// `max_bytes` bounds the whole cache; the shard evicts its
    /// least-recently-used rows past its share of the budget.
    ///
    /// The returned row may be wider than requested — callers must read
    /// it through [`DoorRow::entries_within`] at their *requested*
    /// horizon so results stay independent of cache state.
    pub fn row(
        &self,
        graph: &DoorsGraph,
        src: DoorId,
        horizon: f64,
        max_bytes: usize,
    ) -> (Arc<DoorRow>, RowFetch) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[src.index() % SHARD_COUNT];

        if let Some(e) = shard
            .lock()
            .expect("cache shard poisoned")
            .rows
            .get_mut(&src.0)
        {
            if e.row.horizon() >= horizon {
                e.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (
                    Arc::clone(&e.row),
                    RowFetch {
                        hit: true,
                        evicted: 0,
                    },
                );
            }
        }

        // Miss: expand outside the lock at the quantized band, so other
        // doors in the shard stay available while we run Dijkstra.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let band = band_for(horizon);
        let fresh = Arc::new(DoorRow::expand(graph, src, band));
        let fresh_bytes = fresh.approx_bytes();

        let mut s = shard.lock().expect("cache shard poisoned");
        // Re-check after the race window: keep the widest row.
        if let Some(e) = s.rows.get_mut(&src.0) {
            if e.row.horizon() >= band {
                e.last_used = now;
                return (
                    Arc::clone(&e.row),
                    RowFetch {
                        hit: false,
                        evicted: 0,
                    },
                );
            }
            let old = e.row.approx_bytes();
            s.bytes = s.bytes - old + fresh_bytes;
            self.bytes.fetch_add(fresh_bytes as u64, Ordering::Relaxed);
            self.bytes.fetch_sub(old as u64, Ordering::Relaxed);
            let e = s.rows.get_mut(&src.0).expect("just observed");
            e.row = Arc::clone(&fresh);
            e.last_used = now;
        } else {
            s.bytes += fresh_bytes;
            self.bytes.fetch_add(fresh_bytes as u64, Ordering::Relaxed);
            s.rows.insert(
                src.0,
                CacheEntry {
                    row: Arc::clone(&fresh),
                    last_used: now,
                },
            );
        }

        // Evict LRU rows past this shard's share of the budget — but
        // never the row we just inserted, and never the last row.
        let shard_budget = (max_bytes / SHARD_COUNT).max(1);
        let mut evicted = 0usize;
        while s.bytes > shard_budget && s.rows.len() > 1 {
            let victim = s
                .rows
                .iter()
                .filter(|(&k, _)| k != src.0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            let Some(victim) = victim else { break };
            if let Some(e) = s.rows.remove(&victim) {
                let freed = e.row.approx_bytes();
                s.bytes -= freed;
                self.bytes.fetch_sub(freed as u64, Ordering::Relaxed);
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        (
            fresh,
            RowFetch {
                hit: false,
                evicted,
            },
        )
    }

    /// Approximate resident bytes (cheap atomic read; no shard locks).
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of the counters (takes each shard lock once for the row
    /// count).
    pub fn counters(&self) -> CacheCounters {
        let rows = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").rows.len())
            .sum();
        CacheCounters {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            rows,
        }
    }
}

impl Default for DistanceCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for DistanceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        f.debug_struct("DistanceCache")
            .field("rows", &c.rows)
            .field("bytes", &c.bytes)
            .field("lookups", &c.lookups)
            .field("hits", &c.hits)
            .field("misses", &c.misses)
            .field("evictions", &c.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Point2, Rect2};
    use idq_model::{FloorPlanBuilder, IndoorSpace, PartitionId};

    /// A 1×6 corridor of 10 m rooms with doors at shared-wall midpoints.
    fn corridor() -> (IndoorSpace, DoorsGraph, Vec<DoorId>) {
        let mut b = FloorPlanBuilder::new(4.0);
        let rooms: Vec<PartitionId> = (0..6)
            .map(|i| {
                b.add_room(
                    0,
                    Rect2::from_bounds(10.0 * i as f64, 0.0, 10.0 * (i + 1) as f64, 10.0),
                )
                .unwrap()
            })
            .collect();
        let doors: Vec<DoorId> = (0..5)
            .map(|i| {
                b.add_door_between(
                    rooms[i],
                    rooms[i + 1],
                    Point2::new(10.0 * (i + 1) as f64, 5.0),
                )
                .unwrap()
            })
            .collect();
        let s = b.finish().unwrap();
        let g = DoorsGraph::build(&s);
        (s, g, doors)
    }

    #[test]
    fn band_grid_quantizes_up() {
        assert_eq!(band_for(0.0), 32.0);
        assert_eq!(band_for(31.9), 32.0);
        assert_eq!(band_for(32.0), 32.0);
        assert_eq!(band_for(33.0), 64.0);
        assert_eq!(band_for(500.0), 512.0);
        assert!(band_for(f64::INFINITY).is_infinite());
    }

    #[test]
    fn truncated_expansion_is_a_prefix_of_the_complete_row() {
        let (_, g, doors) = corridor();
        let full = DoorRow::expand(&g, doors[0], f64::INFINITY);
        let short = DoorRow::expand(&g, doors[0], 25.0);
        // Doors along the corridor from doors[0]: itself at 0, then 10, 20, ...
        assert_eq!(full.len(), 5);
        assert_eq!(short.len(), 3);
        let full_prefix: Vec<_> = full.entries_within(25.0).collect();
        let short_all: Vec<_> = short.entries_within(f64::INFINITY).collect();
        assert_eq!(full_prefix.len(), short_all.len());
        for ((fd, fv), (sd, sv)) in full_prefix.iter().zip(short_all.iter()) {
            assert_eq!(fd, sd);
            assert_eq!(fv.to_bits(), sv.to_bits());
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (_, g, doors) = corridor();
        let cache = DistanceCache::new();
        let budget = usize::MAX;
        let (_, f) = cache.row(&g, doors[0], 20.0, budget);
        assert!(!f.hit);
        let (_, f) = cache.row(&g, doors[0], 20.0, budget);
        assert!(f.hit);
        // A request under the resident band is still a hit.
        let (_, f) = cache.row(&g, doors[0], 5.0, budget);
        assert!(f.hit);
        let c = cache.counters();
        assert_eq!(c.lookups, 3);
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
        assert_eq!(c.rows, 1);
        assert!(c.bytes > 0);
        assert_eq!(c.bytes, cache.bytes());
    }

    #[test]
    fn wider_request_promotes_the_row() {
        let (_, g, doors) = corridor();
        let cache = DistanceCache::new();
        let budget = usize::MAX;
        let (row, _) = cache.row(&g, doors[0], 20.0, budget);
        assert_eq!(row.horizon(), 32.0); // banded up
        let (row, f) = cache.row(&g, doors[0], 40.0, budget);
        assert!(!f.hit);
        assert_eq!(row.horizon(), 64.0);
        // The promoted row replaced the narrow one; a narrow request now hits.
        let (row, f) = cache.row(&g, doors[0], 20.0, budget);
        assert!(f.hit);
        assert_eq!(row.horizon(), 64.0);
        assert_eq!(cache.counters().rows, 1);
    }

    #[test]
    fn tiny_budget_evicts_lru_rows() {
        let (_, g, doors) = corridor();
        let cache = DistanceCache::new();
        // Budget so small every shard holds at most ~one row.
        for &d in &doors {
            cache.row(&g, d, f64::INFINITY, 1);
        }
        let c = cache.counters();
        // Doors sharing a shard evicted each other; nothing exceeds one
        // row per touched shard.
        assert!(c.evictions > 0 || c.rows == doors.len());
        for s in &cache.shards {
            assert!(s.lock().unwrap().rows.len() <= 1);
        }
        // Eviction never breaks correctness: re-request recomputes.
        let (row, _) = cache.row(&g, doors[0], f64::INFINITY, 1);
        assert_eq!(row.len(), 5);
    }

    #[test]
    fn rows_match_a_full_dijkstra_bitwise() {
        let (_, g, doors) = corridor();
        let cache = DistanceCache::new();
        let (row, _) = cache.row(&g, doors[2], f64::INFINITY, usize::MAX);
        // Reference: an independent complete expansion.
        let reference = DoorRow::expand(&g, doors[2], f64::INFINITY);
        assert_eq!(row.len(), reference.len());
        for ((rd, rv), (fd, fv)) in row
            .entries_within(f64::INFINITY)
            .zip(reference.entries_within(f64::INFINITY))
        {
            assert_eq!(rd, fd);
            assert_eq!(rv.to_bits(), fv.to_bits());
        }
        // doors[2] reaches doors[1] and doors[3] at 10, doors[0]/[4] at 20.
        let by_door: HashMap<u32, f64> = row.entries_within(f64::INFINITY).collect();
        assert_eq!(by_door[&doors[2].0], 0.0);
        assert!((by_door[&doors[1].0] - 10.0).abs() < 1e-9);
        assert!((by_door[&doors[4].0] - 20.0).abs() < 1e-9);
    }
}
