//! Expected indoor distance `|q,O|_I` (Def. 1) with the paper's three
//! distance cases (§II-C).
//!
//! * **Single-partition single-path** (Eq. 3): every instance is reached
//!   through the same last door `d`, so
//!   `|q,O|_I = |q,d|_I + Σ p_i · |d, s_i|_E`. The case is detected with
//!   additive-weighted bisectors (Table II): if one entry door dominates
//!   the subregion's bounding circle in the Additive Weighted Voronoi
//!   Diagram of the partition's doors, no per-instance minimisation is
//!   needed.
//! * **Single-partition multi-path** (Eq. 4): instances route through
//!   different doors; each instance takes its own minimum.
//! * **Multi-partition** (Eq. 6): subregion values combine weighted by
//!   their probability mass.

use crate::dijkstra::DoorDistances;
use idq_geom::{Circle, Side, WeightedBisector};
use idq_model::{DoorId, IndoorSpace};
use idq_objects::{Subregion, Subregions, UncertainObject};

/// Which of the paper's §II-C cases applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistanceCase {
    /// §II-C.1 — one partition, one shared last door (Eq. 3).
    SinglePartitionSinglePath,
    /// §II-C.2 — one partition, instance-specific doors (Eq. 4).
    SinglePartitionMultiPath,
    /// §II-C.3 — the object overlaps several partitions (Eq. 6).
    MultiPartition,
}

/// The expected indoor distance and how it was computed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpectedDistance {
    /// `E(|q, O|_I)`; `∞` when some probability mass is unreachable.
    pub value: f64,
    /// Case per Table III.
    pub case: DistanceCase,
    /// Whether the bisector fast path (Eq. 3) decided at least one
    /// subregion without per-instance minimisation.
    pub used_bisector_fast_path: bool,
    /// The largest per-instance walking cost entering the expectation.
    /// Against a *restricted* [`DoorDistances`], comparing this to
    /// [`DoorDistances::exit_horizon`] certifies exactness: when no
    /// instance cost exceeds the horizon, no path escaping the candidate
    /// set can undercut any instance's minimum, so `value` equals the
    /// full-graph expectation bit for bit.
    pub max_instance_cost: f64,
}

/// Computes `|q,O|_I` from precomputed door distances.
///
/// With a *restricted* [`DoorDistances`] (subgraph phase) the result may
/// over-estimate when a shortest path leaves the candidate set; the query
/// pipeline falls back to full-graph distances when it matters (see
/// `idq-query`).
pub fn expected_indoor_distance(
    space: &IndoorSpace,
    dd: &DoorDistances,
    object: &UncertainObject,
    subregions: &Subregions,
) -> ExpectedDistance {
    let mut total = 0.0;
    let mut any_single = false;
    let mut any_multi = false;
    let mut fast_path = false;
    let mut max_cost = 0.0f64;

    for sub in subregions.iter() {
        let (cond, single, fast, sub_max) = subregion_expected(space, dd, object, sub);
        if !cond.is_finite() {
            return ExpectedDistance {
                value: f64::INFINITY,
                case: overall_case(subregions, any_single, any_multi),
                used_bisector_fast_path: fast_path,
                max_instance_cost: f64::INFINITY,
            };
        }
        total += cond * sub.prob;
        any_single |= single;
        any_multi |= !single;
        fast_path |= fast;
        max_cost = max_cost.max(sub_max);
    }

    ExpectedDistance {
        value: total,
        case: overall_case(subregions, any_single, any_multi),
        used_bisector_fast_path: fast_path,
        max_instance_cost: max_cost,
    }
}

fn overall_case(subregions: &Subregions, any_single: bool, any_multi: bool) -> DistanceCase {
    if !subregions.single_partition() {
        DistanceCase::MultiPartition
    } else if any_single && !any_multi {
        DistanceCase::SinglePartitionSinglePath
    } else {
        DistanceCase::SinglePartitionMultiPath
    }
}

/// Conditional expected distance of one subregion (mass-normalised), plus
/// whether it resolved as single-path, whether the bisector fast path
/// fired, and the largest per-instance walking cost. Returns `∞` when
/// unreachable.
fn subregion_expected(
    space: &IndoorSpace,
    dd: &DoorDistances,
    object: &UncertainObject,
    sub: &Subregion,
) -> (f64, bool, bool, f64) {
    let pid = sub.partition;
    let Ok(partition) = space.partition(pid) else {
        return (f64::INFINITY, false, false, f64::INFINITY);
    };
    let direct = pid == dd.source_partition;
    let planar = partition.floor_lo == partition.floor_hi;

    // Reachable entry doors with their accumulated weights w_i = |q,d_i|_I.
    let entries: Vec<(DoorId, f64)> = partition
        .doors
        .iter()
        .copied()
        .filter(|&d| space.can_enter(d, pid))
        .map(|d| (d, dd.door_distance(d)))
        .filter(|(_, w)| w.is_finite())
        .collect();

    if entries.is_empty() && !direct {
        return (f64::INFINITY, false, false, f64::INFINITY);
    }

    // Bisector fast path (Eq. 3): only without the direct route and on
    // planar partitions (the AWVD lives in the plane).
    if !direct && planar {
        if let Some(d_star) = dominant_door(space, &entries, sub) {
            let (door, w) = d_star;
            let door_pt = space.door_point(door).expect("entry door is active");
            let mut acc = 0.0;
            let mut max_cost = 0.0f64;
            // Accumulate `w + inner` per instance — the same arithmetic,
            // in the same order, as the Eq. 4 general path below. The
            // fast path then agrees *bitwise* with Eq. 4 whenever the
            // dominant door is every instance's minimiser, so whether the
            // bisector test fires can never change the value — which is
            // what keeps banded (cache-composed) and complete evaluations
            // bit-identical even when truncation changes the entry set.
            for &i in &sub.instance_indices {
                let inst = &object.instances()[i as usize];
                let inner = space.intra_distance(door_pt, inst.indoor_point());
                acc += inst.weight * (w + inner);
                max_cost = max_cost.max(w + inner);
            }
            return (acc / sub.prob, true, entries.len() > 1, max_cost);
        }
    }

    // General path: per-instance minimisation (Eq. 4), optionally with the
    // direct intra-partition route when q shares the partition.
    let mut acc = 0.0;
    let mut max_cost = 0.0f64;
    let mut first_choice: Option<Option<DoorId>> = None;
    let mut uniform_choice = true;
    for &i in &sub.instance_indices {
        let inst = &object.instances()[i as usize];
        let ip = inst.indoor_point();
        let mut best = if direct {
            space.intra_distance(dd.query, ip)
        } else {
            f64::INFINITY
        };
        let mut choice: Option<DoorId> = None;
        for &(d, w) in &entries {
            let door_pt = space.door_point(d).expect("entry door is active");
            let cand = w + space.intra_distance(door_pt, ip);
            if cand < best {
                best = cand;
                choice = Some(d);
            }
        }
        if !best.is_finite() {
            return (f64::INFINITY, false, false, f64::INFINITY);
        }
        match &first_choice {
            None => first_choice = Some(choice),
            Some(c) => uniform_choice &= *c == choice,
        }
        acc += inst.weight * best;
        max_cost = max_cost.max(best);
    }
    (acc / sub.prob, uniform_choice, false, max_cost)
}

/// If one entry door dominates every other over the subregion's bounding
/// circle in the weighted Voronoi sense, return it.
fn dominant_door(
    space: &IndoorSpace,
    entries: &[(DoorId, f64)],
    sub: &Subregion,
) -> Option<(DoorId, f64)> {
    if entries.len() == 1 {
        return Some(entries[0]);
    }
    let center = sub.bbox.center();
    let radius = sub.bbox.lo.dist(sub.bbox.hi) / 2.0;
    let circle = Circle::new(center, radius);
    // Candidate: cheapest door for the circle centre.
    let (mut best, mut best_cost) = (entries[0], f64::INFINITY);
    for &(d, w) in entries {
        let p = space.door_point(d).expect("active door").point;
        let cost = w + p.dist(center);
        if cost < best_cost {
            best_cost = cost;
            best = (d, w);
        }
    }
    let best_pt = space.door_point(best.0).expect("active door").point;
    for &(d, w) in entries {
        if d == best.0 {
            continue;
        }
        let other_pt = space.door_point(d).expect("active door").point;
        let bi = WeightedBisector::new(best_pt, best.1, other_pt, w);
        if bi.circle_side(&circle) != Some(Side::I) {
            return None; // undecided or dominated: fall back to Eq. 4
        }
    }
    Some(best)
}

/// Brute-force expected distance used as an oracle in tests and by the
/// naive query baseline: per-instance shortest paths, no bounds, no cases.
pub fn expected_indoor_distance_naive(
    space: &IndoorSpace,
    dd: &DoorDistances,
    object: &UncertainObject,
) -> f64 {
    let mut total = 0.0;
    for inst in object.instances() {
        let d = crate::point_dist::point_distance(space, dd, inst.indoor_point());
        if !d.is_finite() {
            return f64::INFINITY;
        }
        total += inst.weight * d;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::DoorDistances;
    use idq_geom::{Point2, Rect2};
    use idq_model::{DoorsGraph, FloorPlanBuilder, IndoorPoint};
    use idq_objects::{ObjectId, Subregions, UncertainObject};

    /// Figure 4 of the paper, schematically: partition P is entered through
    /// two doors on its west wall (north-west at (20,25), south-west at
    /// (20,15)), so instances near the top of P route through one door and
    /// instances near the bottom through the other — the multi-path case.
    /// A corridor wraps around to a right-hand room for the
    /// multi-partition case.
    fn fig4_space() -> (IndoorSpace, DoorsGraph) {
        let mut b = FloorPlanBuilder::new(4.0);
        let hall = b
            .add_room(0, Rect2::from_bounds(0.0, 10.0, 20.0, 30.0))
            .unwrap();
        let p = b
            .add_room(0, Rect2::from_bounds(20.0, 10.0, 40.0, 30.0))
            .unwrap();
        let right = b
            .add_room(0, Rect2::from_bounds(40.0, 10.0, 60.0, 30.0))
            .unwrap();
        let below = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 60.0, 10.0))
            .unwrap();
        b.add_door_between(hall, p, Point2::new(20.0, 25.0))
            .unwrap(); // NW door of P
        b.add_door_between(hall, p, Point2::new(20.0, 15.0))
            .unwrap(); // SW door of P
        b.add_door_between(p, right, Point2::new(40.0, 20.0))
            .unwrap(); // east door of P
        b.add_door_between(hall, below, Point2::new(10.0, 10.0))
            .unwrap();
        b.add_door_between(below, right, Point2::new(50.0, 10.0))
            .unwrap();
        let s = b.finish().unwrap();
        let g = DoorsGraph::build(&s);
        (s, g)
    }

    fn obj(positions: Vec<Point2>) -> UncertainObject {
        let c = positions[0];
        UncertainObject::with_uniform_weights(
            ObjectId(1),
            idq_geom::Circle::new(c, 5.0),
            0,
            positions,
        )
        .unwrap()
    }

    fn eval(
        s: &IndoorSpace,
        g: &DoorsGraph,
        q: Point2,
        o: &UncertainObject,
    ) -> (ExpectedDistance, f64) {
        let dd = DoorDistances::compute(s, g, IndoorPoint::new(q, 0)).unwrap();
        let subs = Subregions::compute(o, s).unwrap();
        let e = expected_indoor_distance(s, &dd, o, &subs);
        let naive = expected_indoor_distance_naive(s, &dd, o);
        (e, naive)
    }

    #[test]
    fn single_path_case_detected_and_matches_naive() {
        let (s, g) = fig4_space();
        // Object huddled next to the NW door of P: that door dominates the
        // whole uncertainty region in the weighted Voronoi sense.
        let o = obj(vec![
            Point2::new(21.0, 27.0),
            Point2::new(22.0, 26.0),
            Point2::new(21.5, 28.0),
        ]);
        let q = Point2::new(5.0, 20.0);
        let (e, naive) = eval(&s, &g, q, &o);
        assert_eq!(e.case, DistanceCase::SinglePartitionSinglePath);
        assert!((e.value - naive).abs() < 1e-9, "{} vs {naive}", e.value);
    }

    #[test]
    fn multi_path_case_detected_and_matches_naive() {
        let (s, g) = fig4_space();
        // s1 near the top of P (NW door wins), s2 near the bottom (SW door
        // wins) — the paper's Fig. 4 situation.
        let o = obj(vec![Point2::new(21.0, 28.0), Point2::new(21.0, 12.0)]);
        let q = Point2::new(5.0, 20.0);
        let (e, naive) = eval(&s, &g, q, &o);
        assert!((e.value - naive).abs() < 1e-9);
        assert_eq!(e.case, DistanceCase::SinglePartitionMultiPath);
    }

    #[test]
    fn multi_partition_case_weights_by_mass() {
        let (s, g) = fig4_space();
        // Instances straddle P and the right hall.
        let o = obj(vec![
            Point2::new(39.0, 20.0),
            Point2::new(41.0, 20.0),
            Point2::new(42.0, 21.0),
        ]);
        let q = Point2::new(5.0, 20.0);
        let (e, naive) = eval(&s, &g, q, &o);
        assert_eq!(e.case, DistanceCase::MultiPartition);
        assert!((e.value - naive).abs() < 1e-9);
    }

    #[test]
    fn query_in_same_partition_uses_direct_route() {
        let (s, g) = fig4_space();
        let o = obj(vec![Point2::new(25.0, 25.0), Point2::new(30.0, 15.0)]);
        let q = Point2::new(25.0, 15.0); // inside P
        let (e, naive) = eval(&s, &g, q, &o);
        assert!((e.value - naive).abs() < 1e-9);
        // Direct Euclidean expectation.
        let manual = 0.5 * Point2::new(25.0, 15.0).dist(Point2::new(25.0, 25.0))
            + 0.5 * Point2::new(25.0, 15.0).dist(Point2::new(30.0, 15.0));
        assert!((e.value - manual).abs() < 1e-9);
    }

    #[test]
    fn unreachable_mass_gives_infinite_expectation() {
        let (mut s, _) = fig4_space();
        // Seal off the right hall entirely.
        let right_doors: Vec<_> = s
            .doors()
            .filter(|d| d.position.x >= 40.0)
            .map(|d| d.id)
            .collect();
        for d in right_doors {
            s.close_door(d).unwrap();
        }
        let g = DoorsGraph::build(&s);
        let o = obj(vec![Point2::new(45.0, 20.0), Point2::new(25.0, 20.0)]);
        let dd =
            DoorDistances::compute(&s, &g, IndoorPoint::new(Point2::new(5.0, 20.0), 0)).unwrap();
        let subs = Subregions::compute(&o, &s).unwrap();
        let e = expected_indoor_distance(&s, &dd, &o, &subs);
        assert!(e.value.is_infinite());
    }

    #[test]
    fn fast_path_flag_reflects_bisector_use() {
        let (s, g) = fig4_space();
        let near_nw = obj(vec![Point2::new(21.0, 26.0), Point2::new(21.5, 26.5)]);
        let q = Point2::new(5.0, 20.0);
        let dd = DoorDistances::compute(&s, &g, IndoorPoint::new(q, 0)).unwrap();
        let subs = Subregions::compute(&near_nw, &s).unwrap();
        let e = expected_indoor_distance(&s, &dd, &near_nw, &subs);
        assert!(e.used_bisector_fast_path, "several doors, one dominant");
    }
}
