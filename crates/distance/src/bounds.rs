//! Upper and lower bounds for indoor distances (§II-D).
//!
//! The query pipeline prunes objects with cheap bounds before computing any
//! exact expected distance:
//!
//! * [`subregion_bounds`] — per-subregion topological bounds (the
//!   ingredients of Lemmas 1–2 / Eq. 7), built from door distances plus the
//!   subregion's bounding box;
//! * [`object_bounds`] — the Table III dispatch: topological bounds for
//!   single-partition objects, probabilistic (mass-weighted) bounds for
//!   multi-partition objects;
//! * [`lemma5_bounds`] — the two-group probabilistic bounds exactly in the
//!   shape of Lemma 5 / Eq. 8 (with the paper's heuristic split choice and
//!   its applicability condition);
//! * [`markov_lower`] — the Markov lower bound of Lemma 4;
//! * [`some_path_upper`] — the Topological Looser Upper Bound of Lemma 3
//!   (TLU): uses *some* path (breadth-first by door hops) instead of the
//!   shortest one, so no Dijkstra is needed — this seeds `ikNNQ`'s
//!   `kbound`.
//!
//! ### Soundness note (restricted door distances)
//!
//! All bounds are sound when computed from **full-graph** door distances.
//! Under a *restricted* search (subgraph phase) door distances may
//! over-estimate, which preserves upper bounds but can inflate lower
//! bounds; the query processors compensate by re-checking borderline
//! objects against full-graph distances before discarding results (see
//! `idq-query`), and the oracle-equivalence tests verify the end-to-end
//! guarantee.

use crate::dijkstra::DoorDistances;
use idq_model::{DoorId, DoorsGraph, IndoorPoint, IndoorSpace, PartitionId};
use idq_objects::{Subregion, Subregions, UncertainObject};

/// Which bound family produced an [`ObjectBounds`] (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundKind {
    /// Single-partition object: topological bounds (Eq. 7).
    Topological,
    /// Multi-partition object: probabilistic bounds (Eq. 8).
    Probabilistic,
}

/// Lower/upper bounds on the expected indoor distance of one object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectBounds {
    /// Lower bound (`O.l` in Algorithm 1/2).
    pub lower: f64,
    /// Upper bound (`O.u`).
    pub upper: f64,
    /// Which family applied.
    pub kind: BoundKind,
}

/// Topological bounds for one subregion: `t_min(S[i])` and `t_max(S[i])`
/// of Lemmas 1–2, carrying the subregion's probability mass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubregionBounds {
    /// Lower bound on the indoor distance of *every* instance in the
    /// subregion.
    pub lower: f64,
    /// Upper bound on the indoor distance of every instance.
    pub upper: f64,
    /// Probability mass of the subregion.
    pub prob: f64,
}

/// Computes `t_min` / `t_max` for one subregion from door distances:
/// `min over entry doors d of (|q ⇝ d| + |d, S|_{min/max E})`, including
/// the direct intra-partition route when the subregion shares the query's
/// partition.
///
/// For multi-floor partitions (staircases) a vertical walking slack is
/// added to the upper side, since planar bounding-box distances
/// under-estimate the cross-floor intra-partition metric.
pub fn subregion_bounds(
    space: &IndoorSpace,
    dd: &DoorDistances,
    sub: &Subregion,
) -> SubregionBounds {
    let pid = sub.partition;
    let Ok(partition) = space.partition(pid) else {
        return SubregionBounds {
            lower: f64::INFINITY,
            upper: f64::INFINITY,
            prob: sub.prob,
        };
    };
    let z_slack = vertical_slack(space, partition.floor_lo, partition.floor_hi);

    let mut lower = f64::INFINITY;
    let mut upper = f64::INFINITY;
    if pid == dd.source_partition {
        lower = lower.min(sub.bbox.min_dist(dd.query.point));
        upper = upper.min(sub.bbox.max_dist(dd.query.point) + z_slack);
    }
    for &d in &partition.doors {
        if !space.can_enter(d, pid) {
            continue;
        }
        let w = dd.door_distance(d);
        if !w.is_finite() {
            continue;
        }
        let p = space.door_point(d).expect("active entry door").point;
        lower = lower.min(w + sub.bbox.min_dist(p));
        upper = upper.min(w + sub.bbox.max_dist(p) + z_slack);
    }
    // Truncation safety: a banded (horizon-restricted) context reports
    // doors past its horizon as unreachable, and the loop above skips
    // them — which can push this minimum past what a truncated-away
    // route actually achieves. Any route leaving the banded region costs
    // at least the context's exit horizon, so the horizon itself is
    // always a valid floor for `t_min`: clamp rather than trust an
    // inflated minimum. (`upper` needs no clamp — dropping routes or
    // inflating their cost only loosens an upper bound, never
    // invalidates it. Complete contexts have exit horizon ∞: no-op.)
    lower = lower.min(dd.exit_horizon());
    SubregionBounds {
        lower,
        upper,
        prob: sub.prob,
    }
}

/// The Table III dispatch: bounds on the expected indoor distance.
///
/// * one subregion → **topological** bounds (Eq. 7): `[t_min, t_max]`;
/// * several subregions → **probabilistic** bounds: the mass-weighted
///   combination `[Σ p_j·t_min(S_j), Σ p_j·t_max(S_j)]`, the sound
///   realisation of Lemma 5 (it uses exactly the per-subregion probability
///   information §II-D.3 calls for, and is never looser than the printed
///   two-group form — see `lemma5_bounds`).
pub fn object_bounds(
    space: &IndoorSpace,
    dd: &DoorDistances,
    _object: &UncertainObject,
    subregions: &Subregions,
) -> ObjectBounds {
    let per: Vec<SubregionBounds> = subregions
        .iter()
        .map(|s| subregion_bounds(space, dd, s))
        .collect();
    if per.len() == 1 {
        return ObjectBounds {
            lower: per[0].lower,
            upper: per[0].upper,
            kind: BoundKind::Topological,
        };
    }
    let mut lower = 0.0;
    let mut upper = 0.0;
    for b in &per {
        lower += b.prob * b.lower;
        upper += b.prob * b.upper;
    }
    ObjectBounds {
        lower,
        upper,
        kind: BoundKind::Probabilistic,
    }
}

/// Lemma 4 (Markov lower bound), in its sound interval form: with
/// subregions sorted by ascending lower bound and `p̂_i` the prefix mass,
/// `E ≥ (1 − p̂_i) · min_{k>i} t_min(S_k)`; the best split is returned.
pub fn markov_lower(bounds: &[SubregionBounds]) -> f64 {
    let mut sorted: Vec<&SubregionBounds> = bounds.iter().collect();
    sorted.sort_by(|a, b| a.lower.total_cmp(&b.lower));
    let mut best: f64 = 0.0;
    let mut prefix = 0.0;
    for i in 0..sorted.len().saturating_sub(1) {
        prefix += sorted[i].prob;
        let far_min = sorted[i + 1..]
            .iter()
            .map(|b| b.lower)
            .fold(f64::INFINITY, f64::min);
        if far_min.is_finite() {
            best = best.max((1.0 - prefix) * far_min);
        }
    }
    best
}

/// Lemma 5 / Eq. 8 in its printed two-group shape, with the paper's
/// applicability condition (a split index where the near group's upper
/// bounds separate from the far group's lower bounds) and split heuristic
/// (prefer large `i` for the lower bound, small `i` for the upper bound).
///
/// Returns `None` when no separating split exists (all subregion ranges
/// overlap) — callers fall back to the topological bounds, exactly as
/// §II-D.3 prescribes.
pub fn lemma5_bounds(bounds: &[SubregionBounds]) -> Option<(f64, f64)> {
    if bounds.len() < 2 {
        return None;
    }
    let mut sorted: Vec<&SubregionBounds> = bounds.iter().collect();
    sorted.sort_by(|a, b| a.lower.total_cmp(&b.lower));
    let n = sorted.len();
    let mut lower_best: Option<f64> = None;
    let mut upper_best: Option<f64> = None;
    let mut prefix_mass = 0.0;
    let mut prefix_hi_max: f64 = 0.0;
    let mut prefix_lo_min = f64::INFINITY;
    for i in 0..n - 1 {
        prefix_mass += sorted[i].prob;
        prefix_hi_max = prefix_hi_max.max(sorted[i].upper);
        prefix_lo_min = prefix_lo_min.min(sorted[i].lower);
        let far = &sorted[i + 1..];
        let far_lo_min = far.iter().map(|b| b.lower).fold(f64::INFINITY, f64::min);
        let far_hi_max = far.iter().map(|b| b.upper).fold(0.0, f64::max);
        if prefix_hi_max <= far_lo_min {
            let p_hat = prefix_mass;
            let lb = p_hat * prefix_lo_min + (1.0 - p_hat) * far_lo_min;
            let ub = p_hat * prefix_hi_max + (1.0 - p_hat) * far_hi_max;
            // Heuristic: the last feasible split wins for the lower bound,
            // the first feasible split for the upper bound.
            lower_best = Some(lb);
            if upper_best.is_none() {
                upper_best = Some(ub);
            }
        }
    }
    match (lower_best, upper_best) {
        (Some(l), Some(u)) => Some((l, u)),
        _ => None,
    }
}

/// Lemma 3 — the **Topological Looser Upper Bound** (TLU).
///
/// Uses a best-first search from the query that *terminates as soon as
/// every subregion's partition has been reached* — no all-pairs work, no
/// full single-source tree, just "some path" to each target as Lemma 3
/// requires. (An early-exit Dijkstra dominates hop-count BFS here: indoor
/// edge weights vary by two orders of magnitude — a corridor end-to-end
/// edge is ~60× a doorway hop — so hop-wise-first paths can be arbitrarily
/// long and would destroy the `kbound` this feeds.) Returns `∞` when a
/// subregion is unreachable.
pub fn some_path_upper(
    space: &IndoorSpace,
    graph: &DoorsGraph,
    q: IndoorPoint,
    subregions: &Subregions,
) -> f64 {
    use idq_geom::OrdF64;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let Some(source) = space.partition_at(q) else {
        return f64::INFINITY;
    };
    // Which partitions do we still need an arrival (distance, door
    // position) for?
    let mut needed: Vec<PartitionId> = subregions.iter().map(|s| s.partition).collect();
    needed.sort_unstable();
    needed.dedup();
    let mut arrival: std::collections::HashMap<PartitionId, (f64, idq_geom::Point2)> =
        std::collections::HashMap::new();

    // Direct route for the source partition.
    if needed.contains(&source) {
        arrival.insert(source, (0.0, q.point));
    }

    let mut dist = vec![f64::INFINITY; space.door_slots()];
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    for &d in space.doors_of(source).unwrap_or(&[]) {
        if space.can_leave(d, source) {
            let w = space.point_to_door(q, d).expect("door of source");
            if w < dist[d.index()] {
                dist[d.index()] = w;
                heap.push(Reverse((OrdF64(w), d.0)));
            }
        }
    }
    let mut missing = needed.iter().filter(|p| !arrival.contains_key(p)).count();
    while let Some(Reverse((OrdF64(du), u))) = heap.pop() {
        if missing == 0 {
            break; // every target partition has some arrival
        }
        let u = DoorId(u);
        if du > dist[u.index()] {
            continue;
        }
        // Door u borders partitions we may need.
        if let Ok(door) = space.door(u) {
            for pid in door.partitions {
                if needed.binary_search(&pid).is_ok() && space.can_enter(u, pid) {
                    match arrival.entry(pid) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert((du, door.position));
                            missing -= 1;
                        }
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            if du < e.get().0 {
                                e.insert((du, door.position));
                            }
                        }
                    }
                }
            }
        }
        for e in graph.edges_from(u) {
            let v = e.to.index();
            let nd = du + e.weight;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((OrdF64(nd), e.to.0)));
            }
        }
    }

    // Combine: Lemma 3 takes max over subregions of the per-subregion
    // looser upper bound — we report the (tighter, still valid)
    // mass-weighted version. From the arrival door, any instance of the
    // subregion is at most `bbox.max_dist(door position)` away through
    // the partition (plus the vertical slack for staircases).
    let mut weighted = 0.0;
    for sub in subregions.iter() {
        let Ok(partition) = space.partition(sub.partition) else {
            return f64::INFINITY;
        };
        let Some(&(base, entry_point)) = arrival.get(&sub.partition) else {
            return f64::INFINITY;
        };
        let z_slack = vertical_slack(space, partition.floor_lo, partition.floor_hi);
        let t = base + sub.bbox.max_dist(entry_point) + z_slack;
        weighted += sub.prob * t;
    }
    weighted
}

/// Vertical walking slack for a multi-floor partition: the worst-case cost
/// of floor changes that planar bounding-box distances miss.
fn vertical_slack(space: &IndoorSpace, floor_lo: u16, floor_hi: u16) -> f64 {
    if floor_hi > floor_lo {
        (floor_hi - floor_lo) as f64 * space.floor_height() * space.stair_walk_factor()
    } else {
        0.0
    }
}

/// Amortised Lemma-3 evaluator: one incrementally growing best-first
/// search from `q`, shared across many objects.
///
/// `ikNNQ`'s seed phase evaluates the TLU of dozens to hundreds of nearby
/// objects from the same query point; running [`some_path_upper`]'s search
/// per object would re-explore the same ball each time. This structure
/// settles doors once, on demand, recording the first (hence cheapest)
/// arrival per partition, and prices each object from the recorded
/// arrivals — same bound semantics, one search.
pub struct SharedPathUpper<'a> {
    space: &'a IndoorSpace,
    graph: &'a DoorsGraph,
    source: Option<PartitionId>,
    q: IndoorPoint,
    dist: Vec<f64>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(idq_geom::OrdF64, u32)>>,
    arrivals: std::collections::HashMap<PartitionId, (f64, idq_geom::Point2)>,
}

impl<'a> SharedPathUpper<'a> {
    /// Prepares the shared search from `q` (no exploration happens yet).
    pub fn new(space: &'a IndoorSpace, graph: &'a DoorsGraph, q: IndoorPoint) -> Self {
        let source = space.partition_at(q);
        let mut dist = vec![f64::INFINITY; space.door_slots()];
        let mut heap = std::collections::BinaryHeap::new();
        let mut arrivals = std::collections::HashMap::new();
        if let Some(src) = source {
            arrivals.insert(src, (0.0, q.point));
            for &d in space.doors_of(src).unwrap_or(&[]) {
                if space.can_leave(d, src) {
                    let w = space.point_to_door(q, d).expect("door of source");
                    if w < dist[d.index()] {
                        dist[d.index()] = w;
                        heap.push(std::cmp::Reverse((idq_geom::OrdF64(w), d.0)));
                    }
                }
            }
        }
        SharedPathUpper {
            space,
            graph,
            source,
            q,
            dist,
            heap,
            arrivals,
        }
    }

    /// First-arrival (distance, entry position) for a partition, growing
    /// the search only as far as needed. `None` when unreachable.
    fn arrival(&mut self, pid: PartitionId) -> Option<(f64, idq_geom::Point2)> {
        if let Some(&a) = self.arrivals.get(&pid) {
            return Some(a);
        }
        while let Some(std::cmp::Reverse((idq_geom::OrdF64(du), u))) = self.heap.pop() {
            let u = DoorId(u);
            if du > self.dist[u.index()] {
                continue;
            }
            if let Ok(door) = self.space.door(u) {
                for p in door.partitions {
                    if self.space.can_enter(u, p) {
                        self.arrivals.entry(p).or_insert((du, door.position));
                    }
                }
            }
            for e in self.graph.edges_from(u) {
                let v = e.to.index();
                let nd = du + e.weight;
                if nd < self.dist[v] {
                    self.dist[v] = nd;
                    self.heap
                        .push(std::cmp::Reverse((idq_geom::OrdF64(nd), e.to.0)));
                }
            }
            if let Some(&a) = self.arrivals.get(&pid) {
                return Some(a);
            }
        }
        self.arrivals.get(&pid).copied()
    }

    /// The Lemma-3 looser upper bound of one object (mass-weighted over
    /// its subregions), `∞` when a subregion is unreachable.
    pub fn upper(&mut self, subregions: &Subregions) -> f64 {
        if self.source.is_none() {
            return f64::INFINITY;
        }
        let mut weighted = 0.0;
        for sub in subregions.iter() {
            let Ok(partition) = self.space.partition(sub.partition) else {
                return f64::INFINITY;
            };
            let Some((base, entry)) = self.arrival(sub.partition) else {
                return f64::INFINITY;
            };
            let z_slack = vertical_slack(self.space, partition.floor_lo, partition.floor_hi);
            weighted += sub.prob * (base + sub.bbox.max_dist(entry) + z_slack);
        }
        let _ = self.q;
        weighted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::DoorDistances;
    use crate::expected::expected_indoor_distance_naive;
    use idq_geom::{Circle, Point2, Rect2};
    use idq_model::{DoorsGraph, FloorPlanBuilder};
    use idq_objects::{ObjectId, Subregions, UncertainObject};

    /// Three rooms in a row plus a far room, giving multi-partition
    /// objects and non-trivial masses.
    fn space() -> (IndoorSpace, DoorsGraph) {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        let r3 = b
            .add_room(0, Rect2::from_bounds(30.0, 0.0, 40.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        b.add_door_between(r2, r3, Point2::new(30.0, 5.0)).unwrap();
        let s = b.finish().unwrap();
        let g = DoorsGraph::build(&s);
        (s, g)
    }

    fn multi_part_object() -> UncertainObject {
        UncertainObject::with_uniform_weights(
            ObjectId(1),
            Circle::new(Point2::new(20.0, 5.0), 10.0),
            0,
            vec![
                Point2::new(12.0, 5.0), // r1
                Point2::new(15.0, 3.0), // r1
                Point2::new(25.0, 5.0), // r2
                Point2::new(35.0, 5.0), // r3
            ],
        )
        .unwrap()
    }

    fn q() -> IndoorPoint {
        IndoorPoint::new(Point2::new(2.0, 5.0), 0)
    }

    #[test]
    fn bounds_sandwich_the_exact_distance() {
        let (s, g) = space();
        let o = multi_part_object();
        let dd = DoorDistances::compute(&s, &g, q()).unwrap();
        let subs = Subregions::compute(&o, &s).unwrap();
        let b = object_bounds(&s, &dd, &o, &subs);
        let exact = expected_indoor_distance_naive(&s, &dd, &o);
        assert!(b.lower <= exact + 1e-9, "lower {} exact {exact}", b.lower);
        assert!(b.upper >= exact - 1e-9, "upper {} exact {exact}", b.upper);
        assert_eq!(b.kind, BoundKind::Probabilistic);
    }

    #[test]
    fn single_partition_uses_topological_bounds() {
        let (s, g) = space();
        let o = UncertainObject::with_uniform_weights(
            ObjectId(2),
            Circle::new(Point2::new(15.0, 5.0), 2.0),
            0,
            vec![Point2::new(14.0, 5.0), Point2::new(16.0, 6.0)],
        )
        .unwrap();
        let dd = DoorDistances::compute(&s, &g, q()).unwrap();
        let subs = Subregions::compute(&o, &s).unwrap();
        let b = object_bounds(&s, &dd, &o, &subs);
        assert_eq!(b.kind, BoundKind::Topological);
        let exact = expected_indoor_distance_naive(&s, &dd, &o);
        assert!(b.lower <= exact && exact <= b.upper);
    }

    #[test]
    fn lemma5_is_sound_but_no_tighter_than_weighted() {
        let (s, g) = space();
        let o = multi_part_object();
        let dd = DoorDistances::compute(&s, &g, q()).unwrap();
        let subs = Subregions::compute(&o, &s).unwrap();
        let per: Vec<SubregionBounds> = subs.iter().map(|x| subregion_bounds(&s, &dd, x)).collect();
        let exact = expected_indoor_distance_naive(&s, &dd, &o);
        if let Some((l5, u5)) = lemma5_bounds(&per) {
            assert!(l5 <= exact + 1e-9);
            assert!(u5 >= exact - 1e-9);
            let weighted = object_bounds(&s, &dd, &o, &subs);
            assert!(weighted.lower >= l5 - 1e-9, "weighted LB at least as tight");
            assert!(weighted.upper <= u5 + 1e-9, "weighted UB at least as tight");
        }
    }

    #[test]
    fn markov_lower_is_sound() {
        let (s, g) = space();
        let o = multi_part_object();
        let dd = DoorDistances::compute(&s, &g, q()).unwrap();
        let subs = Subregions::compute(&o, &s).unwrap();
        let per: Vec<SubregionBounds> = subs.iter().map(|x| subregion_bounds(&s, &dd, x)).collect();
        let exact = expected_indoor_distance_naive(&s, &dd, &o);
        let m = markov_lower(&per);
        assert!(m <= exact + 1e-9, "markov {m} exact {exact}");
    }

    #[test]
    fn tlu_upper_bounds_exact_and_exceeds_tight_upper() {
        let (s, g) = space();
        let o = multi_part_object();
        let dd = DoorDistances::compute(&s, &g, q()).unwrap();
        let subs = Subregions::compute(&o, &s).unwrap();
        let exact = expected_indoor_distance_naive(&s, &dd, &o);
        let tlu = some_path_upper(&s, &g, q(), &subs);
        assert!(tlu >= exact - 1e-9, "TLU {tlu} exact {exact}");
    }

    #[test]
    fn unreachable_subregion_pushes_bounds_to_infinity() {
        let (mut s, _) = space();
        // Close the r2–r3 door: instances in r3 become unreachable.
        let d = s.doors().find(|d| d.position.x == 30.0).unwrap().id;
        s.close_door(d).unwrap();
        let g = DoorsGraph::build(&s);
        let o = multi_part_object();
        let dd = DoorDistances::compute(&s, &g, q()).unwrap();
        let subs = Subregions::compute(&o, &s).unwrap();
        let b = object_bounds(&s, &dd, &o, &subs);
        assert!(b.upper.is_infinite());
        assert!(b.lower.is_infinite());
        let tlu = some_path_upper(&s, &g, q(), &subs);
        assert!(tlu.is_infinite());
    }

    #[test]
    fn euclidean_lower_bounds_hold_transitively() {
        // |q,O|minE ≤ topological lower? Not in general (topological is
        // tighter). But both must lower-bound the exact distance.
        let (s, g) = space();
        let o = multi_part_object();
        let dd = DoorDistances::compute(&s, &g, q()).unwrap();
        let exact = expected_indoor_distance_naive(&s, &dd, &o);
        let emin = o.min_euclidean(q().point);
        assert!(emin <= exact + 1e-9);
    }
}
