//! Query-indexed standing-query dispatch — serving 100k+ subscriptions
//! by routing each commit only to the queries it can affect.
//!
//! The engine's original subscription path broadcast every commit's full
//! report to every standing query: O(subscriptions × commits) absorption
//! work and one consumer thread per query. This crate inverts that, the
//! way continuous-query systems index the **queries** rather than the
//! objects: every subscription's monitor carries a *footprint* — the
//! candidate partitions its standing query could ever draw members from,
//! the same restriction the range pipeline computes during filtering —
//! and a [`Dispatcher`] keeps an inverted partition → subscriptions index
//! over those footprints. A committed batch arrives as one
//! [`CommitDelta`] whose routing footprint (the partitions its object
//! updates touched, before and after) is intersected against the index;
//! only the overlapping subscriptions absorb the delta, everyone else is
//! skipped with **zero** per-subscription work.
//!
//! Soundness of the skip: a commit can change a standing query's result
//! only by moving some object's expected distance across the query's
//! threshold, which requires an instance within that threshold; the
//! instance's partition then has a geometric lower bound below the
//! threshold and is — by the same retrieval the pipeline's filtering
//! phase uses (`range_search_dual`, no false negatives) — in the query's
//! candidate set. The commit's routing footprint contains every partition
//! a changed object's instances occupied before *or* after the batch, so
//! a commit whose footprint is disjoint from the query's provably leaves
//! the result untouched. Topology commits route to every subscription
//! (cached distances and footprints are both invalid), and footprints are
//! repaired afterwards.
//!
//! Delivery is decoupled from absorption: each subscription owns a
//! **bounded [`Mailbox`]** of precomputed [`DeltaMsg`]s. The dispatcher —
//! a single thread in the serving engine — absorbs deltas into the
//! monitors and pushes the resulting membership changes; a full mailbox
//! **coalesces** the new message into the newest queued one (membership
//! changes compose; opposite changes cancel) and marks it
//! [`DeltaMsg::lagged`], so a slow or absent consumer costs bounded
//! memory and never blocks the commit path.
//!
//! The crate is deliberately engine-agnostic: generic over the payload
//! `R` attached to each delivery (the serving engine attaches its
//! `Arc<UpdateReport>`), and depending only on the model/index/query
//! layers beneath it.

pub mod dispatcher;
pub mod mailbox;

pub use dispatcher::{
    CommitDelta, DispatchStats, Dispatcher, QueryFootprint, StandingMonitor, SubId,
};
pub use mailbox::{DeltaMsg, Mailbox, MailboxReceiver, PushOutcome};
