//! The query index and routing core: footprints, the inverted
//! partition → subscription map, and per-commit delta dispatch.

use crate::mailbox::{DeltaMsg, Mailbox, MailboxReceiver, PushOutcome};
use idq_index::CompositeIndex;
use idq_model::{IndoorSpace, PartitionId};
use idq_objects::{ObjectId, ObjectStore};
use idq_query::{KnnMonitor, MonitorChange, QueryError, QueryOptions, RangeMonitor};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Handle identifying one registered subscription.
pub type SubId = u64;

/// The candidate partitions a standing query could ever draw members
/// from — the subscription side of the routing intersection.
///
/// Soundness: an object can change the query's result only if its
/// expected distance crosses the query threshold, which requires its
/// distance **lower bound** — the minimum over its instances' partition
/// bounds — to be at or below the threshold. Every partition whose
/// geometric bound is within the threshold is retrieved by
/// [`CompositeIndex::range_search`] (no false negatives, with or
/// without the skeleton), so a commit whose routing footprint is
/// disjoint from this set provably cannot change the result.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryFootprint {
    /// Candidate partitions, ascending and deduplicated.
    partitions: Vec<PartitionId>,
    /// The query can currently be affected by a change anywhere — a kNN
    /// subscription holding fewer than `k` reachable objects (threshold
    /// `+∞`: any object becoming reachable enters the result).
    everything: bool,
}

impl QueryFootprint {
    /// A footprint over an explicit candidate-partition set.
    pub fn over(mut partitions: Vec<PartitionId>) -> Self {
        partitions.sort_unstable();
        partitions.dedup();
        QueryFootprint {
            partitions,
            everything: false,
        }
    }

    /// The footprint that intersects every commit.
    pub fn everything() -> Self {
        QueryFootprint {
            partitions: Vec::new(),
            everything: true,
        }
    }

    /// Whether this footprint matches every commit.
    pub fn covers_everything(&self) -> bool {
        self.everything
    }

    /// The candidate partitions (ascending; empty when
    /// [`QueryFootprint::covers_everything`]).
    pub fn partitions(&self) -> &[PartitionId] {
        &self.partitions
    }

    /// Whether a commit with the given routing footprint (ascending)
    /// can affect this query. A merge walk over two sorted lists.
    pub fn intersects(&self, commit_partitions: &[PartitionId]) -> bool {
        if self.everything {
            return true;
        }
        let (mut i, mut j) = (0, 0);
        while i < self.partitions.len() && j < commit_partitions.len() {
            match self.partitions[i].cmp(&commit_partitions[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

/// A standing query's monitor, range or kNN — the two subscription
/// kinds the dispatcher serves.
#[derive(Debug)]
pub enum StandingMonitor {
    /// A standing `iRQ(q, r)`.
    Range(RangeMonitor),
    /// A standing `ikNNQ(q, k)`.
    Knn(KnnMonitor),
}

impl StandingMonitor {
    /// Full re-evaluation; returns the objects currently in the result,
    /// ascending by id.
    pub fn refresh(
        &mut self,
        space: &IndoorSpace,
        index: &CompositeIndex,
        store: &ObjectStore,
    ) -> Result<Vec<ObjectId>, QueryError> {
        match self {
            StandingMonitor::Range(m) => m.refresh(space, index, store),
            StandingMonitor::Knn(m) => {
                m.refresh(space, index, store)?;
                Ok(m.current())
            }
        }
    }

    /// Absorbs one committed delta; returns the membership changes,
    /// ascending by object id.
    pub fn absorb_delta(
        &mut self,
        updated: &[ObjectId],
        removed: &[ObjectId],
        topology_changed: bool,
        space: &IndoorSpace,
        index: &CompositeIndex,
        store: &ObjectStore,
    ) -> Result<Vec<(ObjectId, MonitorChange)>, QueryError> {
        match self {
            StandingMonitor::Range(m) => {
                m.absorb_delta(updated, removed, topology_changed, space, index, store)
            }
            StandingMonitor::Knn(m) => {
                m.absorb_delta(updated, removed, topology_changed, space, index, store)
            }
        }
    }

    /// Objects currently in the result, ascending by id.
    pub fn current(&self) -> Vec<ObjectId> {
        match self {
            StandingMonitor::Range(m) => m.current(),
            StandingMonitor::Knn(m) => m.current(),
        }
    }

    /// The ranked top-k for a kNN monitor, `None` for range.
    pub fn ranked(&self) -> Option<Vec<(ObjectId, f64)>> {
        match self {
            StandingMonitor::Range(_) => None,
            StandingMonitor::Knn(m) => Some(m.ranked()),
        }
    }

    /// Whether an object is currently in the result.
    pub fn contains(&self, id: ObjectId) -> bool {
        match self {
            StandingMonitor::Range(m) => m.contains(id),
            StandingMonitor::Knn(m) => m.contains(id),
        }
    }

    /// The query options evaluations use.
    pub fn options(&self) -> &QueryOptions {
        match self {
            StandingMonitor::Range(m) => m.options(),
            StandingMonitor::Knn(m) => m.options(),
        }
    }

    /// Replaces the query options.
    pub fn set_options(&mut self, options: QueryOptions) {
        match self {
            StandingMonitor::Range(m) => m.set_options(options),
            StandingMonitor::Knn(m) => m.set_options(options),
        }
    }

    /// The threshold the footprint was derived from: `Some(kth
    /// distance)` for kNN (whose footprint must be recomputed when it
    /// changes), `None` for range (fixed radius, fixed footprint).
    fn footprint_threshold(&self) -> Option<f64> {
        match self {
            StandingMonitor::Range(_) => None,
            StandingMonitor::Knn(m) => Some(m.threshold()),
        }
    }

    /// Computes the current candidate-partition footprint through the
    /// same retrieval the query pipeline's filtering phase uses, at the
    /// query threshold itself — **without** the subgraph slack. The
    /// slack widens Phase 2's restricted distance computation, but
    /// distances depend on the topology alone (and topology commits
    /// route to every subscription regardless of footprints), while an
    /// object in a slack-only partition has a geometric lower bound
    /// above the threshold and can never be a member — so object churn
    /// there is provably irrelevant and the tighter set routes exactly.
    pub fn footprint(&self, space: &IndoorSpace, index: &CompositeIndex) -> QueryFootprint {
        let (q, threshold, options) = match self {
            StandingMonitor::Range(m) => (m.query_point(), m.radius(), m.options()),
            StandingMonitor::Knn(m) => (m.query_point(), m.threshold(), m.options()),
        };
        if !threshold.is_finite() {
            return QueryFootprint::everything();
        }
        let out = index.range_search(space, q, threshold, options.use_skeleton);
        QueryFootprint::over(out.partitions)
    }
}

/// The routing footprint of one committed group: what changed, and
/// which partitions the object changes touched (before and after).
#[derive(Clone, Copy, Debug)]
pub struct CommitDelta<'a> {
    /// Epoch the commit published.
    pub epoch: u64,
    /// Objects inserted, moved or re-sampled, ascending.
    pub updated: &'a [ObjectId],
    /// Objects removed, ascending.
    pub removed: &'a [ObjectId],
    /// The commit changed the space topology: cached distances and all
    /// footprints are invalid, so it routes to **every** subscription.
    pub topology_changed: bool,
    /// Partitions the object changes touched before or after the batch,
    /// ascending and deduplicated.
    pub partitions: &'a [PartitionId],
}

/// Counters describing the dispatcher's routing behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Commits dispatched.
    pub commits: u64,
    /// Per-subscription deliveries (messages accepted by a mailbox,
    /// whether queued or coalesced).
    pub deliveries: u64,
    /// Per-subscription skips — commit × subscription pairs proved
    /// unaffected with zero absorption work, either by the partition
    /// index (footprint disjoint) or by the per-object filter (no
    /// updated object relevant to this subscription).
    pub skipped: u64,
    /// Deliveries folded into an already-queued message because the
    /// consumer's mailbox was full.
    pub coalesced: u64,
    /// Subscriptions ever registered.
    pub registered: u64,
    /// Subscriptions deregistered (consumer drop or absorb failure).
    pub dropped: u64,
    /// Absorptions that failed; the subscription's stream is closed and
    /// the entry removed.
    pub absorb_errors: u64,
}

#[derive(Debug)]
struct SubEntry<R> {
    monitor: StandingMonitor,
    footprint: QueryFootprint,
    /// kNN threshold the footprint was computed at (`None` for range).
    /// Growth past it forces a repair (the footprint could miss
    /// partitions); shrinks keep a sound superset and only rebuild for
    /// precision once the threshold has halved.
    footprint_threshold: Option<f64>,
    mailbox: Arc<Mailbox<R>>,
    /// Baseline guard: commits at or below this epoch are already
    /// reflected in the monitor's initial state and must not be
    /// re-absorbed.
    epoch: u64,
    track_options: bool,
}

/// The query-indexed routing core. Single-threaded by design — the
/// serving engine drives it from one dispatch thread; interior
/// synchronisation lives in the engine, not here.
#[derive(Debug)]
pub struct Dispatcher<R> {
    subs: HashMap<SubId, SubEntry<R>>,
    /// Inverted index: partition → subscriptions whose footprint holds it.
    by_partition: HashMap<PartitionId, BTreeSet<SubId>>,
    /// Subscriptions whose footprint covers everything.
    everything: BTreeSet<SubId>,
    next_id: SubId,
    closed: bool,
    stats: DispatchStats,
}

impl<R> Default for Dispatcher<R> {
    fn default() -> Self {
        Self::new()
    }
}

fn link(
    by_partition: &mut HashMap<PartitionId, BTreeSet<SubId>>,
    everything: &mut BTreeSet<SubId>,
    id: SubId,
    fp: &QueryFootprint,
) {
    if fp.covers_everything() {
        everything.insert(id);
    } else {
        for &p in fp.partitions() {
            by_partition.entry(p).or_default().insert(id);
        }
    }
}

fn unlink(
    by_partition: &mut HashMap<PartitionId, BTreeSet<SubId>>,
    everything: &mut BTreeSet<SubId>,
    id: SubId,
    fp: &QueryFootprint,
) {
    if fp.covers_everything() {
        everything.remove(&id);
    } else {
        for p in fp.partitions() {
            if let Some(ids) = by_partition.get_mut(p) {
                ids.remove(&id);
                if ids.is_empty() {
                    by_partition.remove(p);
                }
            }
        }
    }
}

impl<R> Dispatcher<R> {
    /// An empty dispatcher.
    pub fn new() -> Self {
        Dispatcher {
            subs: HashMap::new(),
            by_partition: HashMap::new(),
            everything: BTreeSet::new(),
            next_id: 0,
            closed: false,
            stats: DispatchStats::default(),
        }
    }

    /// Registered subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Whether [`Dispatcher::close_all`] has run.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Routing counters so far.
    pub fn stats(&self) -> DispatchStats {
        self.stats
    }

    /// Load of the routing index: `(distinct partitions indexed, total
    /// partition → subscription links, subscriptions routing on
    /// everything)`. Links divided by subscriptions is the mean
    /// footprint size — the precision the partition index routes at.
    pub fn index_load(&self) -> (usize, usize, usize) {
        (
            self.by_partition.len(),
            self.by_partition.values().map(BTreeSet::len).sum(),
            self.everything.len(),
        )
    }

    /// Registers a subscription whose monitor is already refreshed
    /// against the caller's baseline snapshot. Commits with epoch at or
    /// below `baseline_epoch` are dropped by the per-subscription guard
    /// (they are already reflected in the monitor's state). Returns the
    /// consumer end of the subscription's bounded mailbox; after
    /// [`Dispatcher::close_all`] the stream comes back already ended.
    ///
    /// Registration cost is dominated by the monitor's initial query,
    /// which since the shared distance cache composes per-door rows
    /// memoized in the index: bulk registration over a warm cache pays
    /// each door's expansion once, not once per subscription. The
    /// monitor's complete door-distance context is built lazily at the
    /// first incremental update instead of here.
    pub fn register(
        &mut self,
        monitor: StandingMonitor,
        baseline_epoch: u64,
        track_options: bool,
        capacity: usize,
        space: &IndoorSpace,
        index: &CompositeIndex,
    ) -> (SubId, MailboxReceiver<R>) {
        let id = self.next_id;
        self.next_id += 1;
        let (mailbox, receiver) = Mailbox::channel(capacity, self.closed);
        if self.closed {
            return (id, receiver);
        }
        let footprint = monitor.footprint(space, index);
        link(&mut self.by_partition, &mut self.everything, id, &footprint);
        let footprint_threshold = monitor.footprint_threshold();
        self.subs.insert(
            id,
            SubEntry {
                monitor,
                footprint,
                footprint_threshold,
                mailbox,
                epoch: baseline_epoch,
                track_options,
            },
        );
        self.stats.registered += 1;
        (id, receiver)
    }

    /// Removes a subscription and closes its stream. A no-op for ids
    /// already gone — consumer-side drops and absorb-failure removals
    /// may race benignly.
    pub fn deregister(&mut self, id: SubId) -> bool {
        let Some(entry) = self.subs.remove(&id) else {
            return false;
        };
        unlink(
            &mut self.by_partition,
            &mut self.everything,
            id,
            &entry.footprint,
        );
        entry.mailbox.close();
        self.stats.dropped += 1;
        true
    }

    /// Ends every stream (the writer retired). Queued messages stay
    /// drainable; later registrations come back pre-closed.
    pub fn close_all(&mut self) {
        self.closed = true;
        for entry in self.subs.values() {
            entry.mailbox.close();
        }
    }

    /// Routes one committed delta: intersects its footprint against the
    /// query index, absorbs it into exactly the affected subscriptions'
    /// monitors and pushes the resulting changes into their mailboxes.
    /// Everything else is skipped with zero per-subscription work.
    ///
    /// `options` are the commit's effective query options; subscriptions
    /// registered with `track_options` adopt them before absorbing.
    pub fn dispatch(
        &mut self,
        delta: &CommitDelta<'_>,
        space: &IndoorSpace,
        index: &CompositeIndex,
        store: &ObjectStore,
        options: &QueryOptions,
        payload: &R,
    ) where
        R: Clone,
    {
        debug_assert!(delta.partitions.windows(2).all(|w| w[0] < w[1]));
        self.stats.commits += 1;
        let has_object_changes = !delta.updated.is_empty() || !delta.removed.is_empty();
        // Conservative guard: object changes that report no footprint
        // (nothing resolvable to a partition) route everywhere rather
        // than risk an unsound skip.
        let route_all =
            delta.topology_changed || (has_object_changes && delta.partitions.is_empty());
        let targets: Vec<SubId> = if route_all {
            let mut ids: Vec<SubId> = self.subs.keys().copied().collect();
            ids.sort_unstable();
            ids
        } else if !has_object_changes {
            Vec::new()
        } else {
            let mut ids: BTreeSet<SubId> = self.everything.iter().copied().collect();
            for p in delta.partitions {
                if let Some(set) = self.by_partition.get(p) {
                    ids.extend(set.iter().copied());
                }
            }
            ids.into_iter().collect()
        };
        self.stats.skipped += (self.subs.len() - targets.len()) as u64;

        // Per-object after-partitions, resolved once per commit. The
        // commit-level intersection routes on the *union* of the delta's
        // partitions, so a routed subscription still sees many updates
        // that cannot concern it; re-deriving each updated object's
        // current partitions lets every target absorb only its relevant
        // subset. `None` marks an object the index cannot place (not
        // indexed, or spanning no partition) — conservatively relevant
        // to everyone, mirroring the commit-level empty-footprint guard.
        let object_partitions: Vec<(ObjectId, Option<Vec<PartitionId>>)> =
            if route_all || targets.is_empty() {
                Vec::new()
            } else {
                delta
                    .updated
                    .iter()
                    .map(|&oid| {
                        let parts = index.object_layer().units_of(oid).ok().and_then(|units| {
                            let mut ps: Vec<PartitionId> = units
                                .iter()
                                .filter_map(|&u| index.units().partition_of(u))
                                .collect();
                            ps.sort_unstable();
                            ps.dedup();
                            if ps.is_empty() {
                                None
                            } else {
                                Some(ps)
                            }
                        });
                        (oid, parts)
                    })
                    .collect()
            };
        let mut relevant: Vec<ObjectId> = Vec::with_capacity(delta.updated.len());

        let mut dead: Vec<SubId> = Vec::new();
        for id in targets {
            let Some(entry) = self.subs.get_mut(&id) else {
                continue;
            };
            if delta.epoch <= entry.epoch {
                // Registered at a baseline at or past this commit: the
                // monitor's initial refresh already reflects it.
                continue;
            }
            // Per-object filter. An updated object outside the footprint
            // after the commit has a distance lower bound above the
            // query threshold (the footprint soundness argument, per
            // object), so it cannot *enter* the result; if it is not a
            // current member it cannot *leave* either, and absorbing it
            // would be a no-op. A member is always evaluated — it may
            // leave, or (kNN) grow the threshold, which the monitor
            // answers with a full re-query against the index, so the
            // trimmed update list never hides an admissible object.
            let updated: &[ObjectId] = if route_all || entry.footprint.covers_everything() {
                delta.updated
            } else {
                relevant.clear();
                for (oid, parts) in &object_partitions {
                    match parts {
                        Some(ps)
                            if !entry.footprint.intersects(ps) && !entry.monitor.contains(*oid) => {
                        }
                        _ => relevant.push(*oid),
                    }
                }
                if relevant.is_empty()
                    && !delta.removed.iter().any(|&oid| entry.monitor.contains(oid))
                {
                    // Nothing this subscription could observe: the
                    // commit-level route was a false positive of the
                    // union footprint.
                    self.stats.skipped += 1;
                    continue;
                }
                &relevant
            };
            let opts_changed = entry.track_options && entry.monitor.options() != options;
            if opts_changed {
                entry.monitor.set_options(*options);
            }
            let changes = match entry.monitor.absorb_delta(
                updated,
                delta.removed,
                delta.topology_changed,
                space,
                index,
                store,
            ) {
                Ok(changes) => changes,
                Err(_) => {
                    // The monitor is no longer trustworthy; end the
                    // stream rather than deliver wrong results.
                    entry.mailbox.close();
                    self.stats.absorb_errors += 1;
                    dead.push(id);
                    continue;
                }
            };
            entry.epoch = delta.epoch;

            // Footprint repair: topology invalidates every footprint; a
            // kNN threshold that *grew* past the one the footprint was
            // built at can reach partitions the footprint misses. A
            // shrunken threshold keeps the footprint a sound superset
            // (candidate retrieval is monotone in the threshold), so
            // shrinks only trigger a precision rebuild once the
            // threshold has halved — the hysteresis keeps ordinary
            // top-k jitter from re-running candidate retrieval on every
            // routed commit.
            let threshold_now = entry.monitor.footprint_threshold();
            let drifted = match (entry.footprint_threshold, threshold_now) {
                (Some(built), Some(now)) => now > built || now < built * 0.5,
                _ => false,
            };
            if delta.topology_changed || opts_changed || drifted {
                let fresh = entry.monitor.footprint(space, index);
                if fresh != entry.footprint {
                    unlink(
                        &mut self.by_partition,
                        &mut self.everything,
                        id,
                        &entry.footprint,
                    );
                    link(&mut self.by_partition, &mut self.everything, id, &fresh);
                    entry.footprint = fresh;
                }
                entry.footprint_threshold = threshold_now;
            }

            let msg = DeltaMsg {
                epoch: delta.epoch,
                changes,
                ranked: entry.monitor.ranked(),
                lagged: false,
                payload: payload.clone(),
            };
            match entry.mailbox.push(msg) {
                PushOutcome::Delivered => self.stats.deliveries += 1,
                PushOutcome::Coalesced => {
                    self.stats.deliveries += 1;
                    self.stats.coalesced += 1;
                }
                PushOutcome::Closed => {}
            }
        }
        for id in dead {
            self.deregister(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Point2, Rect2};
    use idq_index::IndexConfig;
    use idq_model::{FloorPlanBuilder, IndoorPoint};
    use idq_objects::UncertainObject;

    fn setup() -> (IndoorSpace, ObjectStore, CompositeIndex) {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        let space = b.finish().unwrap();
        let store = ObjectStore::new();
        let index = CompositeIndex::build(&space, &store, IndexConfig::default()).unwrap();
        (space, store, index)
    }

    fn q() -> IndoorPoint {
        IndoorPoint::new(Point2::new(2.0, 5.0), 0)
    }

    /// Tight options so footprints stay local inside the small test
    /// floorplan (the default 60 m slack would cover every room).
    fn tight() -> QueryOptions {
        QueryOptions::builder().subgraph_slack(0.0).build()
    }

    fn place(
        store: &mut ObjectStore,
        index: &mut CompositeIndex,
        space: &IndoorSpace,
        id: u64,
        x: f64,
    ) -> Vec<PartitionId> {
        let obj =
            UncertainObject::point_object(ObjectId(id), IndoorPoint::new(Point2::new(x, 5.0), 0));
        let mut touched = BTreeSet::new();
        if store.contains(ObjectId(id)) {
            for &u in index.object_layer().units_of(ObjectId(id)).unwrap() {
                touched.extend(index.units().partition_of(u));
            }
            store.remove(ObjectId(id)).unwrap();
            store.insert(obj).unwrap();
            index
                .update_object(space, store.get(ObjectId(id)).unwrap())
                .unwrap();
        } else {
            index.insert_object(space, &obj).unwrap();
            store.insert(obj).unwrap();
        }
        for &u in index.object_layer().units_of(ObjectId(id)).unwrap() {
            touched.extend(index.units().partition_of(u));
        }
        touched.into_iter().collect()
    }

    fn range_monitor(
        space: &IndoorSpace,
        index: &CompositeIndex,
        store: &ObjectStore,
        r: f64,
    ) -> StandingMonitor {
        let mut m = RangeMonitor::new(q(), r, tight()).unwrap();
        m.refresh(space, index, store).unwrap();
        StandingMonitor::Range(m)
    }

    #[test]
    fn disjoint_commits_are_skipped_without_absorption() {
        let (space, mut store, mut index) = setup();
        let mut d: Dispatcher<u64> = Dispatcher::new();
        let (_, rx) = d.register(
            range_monitor(&space, &index, &store, 5.0),
            0,
            false,
            16,
            &space,
            &index,
        );

        // An object appears at the far end of the floor: its partitions
        // are outside the query's footprint, so nothing is delivered.
        let far = place(&mut store, &mut index, &space, 1, 25.0);
        d.dispatch(
            &CommitDelta {
                epoch: 1,
                updated: &[ObjectId(1)],
                removed: &[],
                topology_changed: false,
                partitions: &far,
            },
            &space,
            &index,
            &store,
            &tight(),
            &1,
        );
        assert_eq!(d.stats().skipped, 1);
        assert_eq!(d.stats().deliveries, 0);
        assert!(rx.try_recv().is_none());

        // An object appears next to the query point: routed, absorbed,
        // delivered.
        let near = place(&mut store, &mut index, &space, 2, 4.0);
        d.dispatch(
            &CommitDelta {
                epoch: 2,
                updated: &[ObjectId(2)],
                removed: &[],
                topology_changed: false,
                partitions: &near,
            },
            &space,
            &index,
            &store,
            &tight(),
            &2,
        );
        let msg = rx.try_recv().expect("routed commit delivers");
        assert_eq!(msg.epoch, 2);
        assert_eq!(msg.payload, 2);
        assert_eq!(msg.changes, vec![(ObjectId(2), MonitorChange::Entered)]);
        assert_eq!(d.stats().deliveries, 1);
    }

    #[test]
    fn topology_routes_to_every_subscription() {
        let (mut space, mut store, mut index) = setup();
        let mut d: Dispatcher<u64> = Dispatcher::new();
        place(&mut store, &mut index, &space, 1, 12.0);
        let (_, rx) = d.register(
            range_monitor(&space, &index, &store, 15.0),
            0,
            false,
            16,
            &space,
            &index,
        );

        // Close the door between r0 and r1: object 1 becomes
        // unreachable. Topology commits carry no partition footprint
        // yet must reach everyone.
        let door = space.doors().next().unwrap().id;
        let ev = space.close_door(door).unwrap();
        index.apply_topology(&space, &store, &ev).unwrap();
        d.dispatch(
            &CommitDelta {
                epoch: 1,
                updated: &[],
                removed: &[],
                topology_changed: true,
                partitions: &[],
            },
            &space,
            &index,
            &store,
            &tight(),
            &1,
        );
        let msg = rx.try_recv().expect("topology commit always routes");
        assert_eq!(msg.changes, vec![(ObjectId(1), MonitorChange::Left)]);
    }

    #[test]
    fn baseline_epoch_guard_drops_already_seen_commits() {
        let (space, mut store, mut index) = setup();
        let near = place(&mut store, &mut index, &space, 1, 4.0);
        let mut d: Dispatcher<u64> = Dispatcher::new();
        // Monitor refreshed at epoch 5 already sees object 1.
        let (_, rx) = d.register(
            range_monitor(&space, &index, &store, 5.0),
            5,
            false,
            16,
            &space,
            &index,
        );
        let stale = CommitDelta {
            epoch: 5,
            updated: &[ObjectId(1)],
            removed: &[],
            topology_changed: false,
            partitions: &near,
        };
        d.dispatch(&stale, &space, &index, &store, &tight(), &5);
        assert!(rx.try_recv().is_none(), "epoch 5 predates the baseline");

        let fresh = CommitDelta { epoch: 6, ..stale };
        d.dispatch(&fresh, &space, &index, &store, &tight(), &6);
        let msg = rx.try_recv().expect("epoch 6 is news");
        assert_eq!(msg.epoch, 6);
        assert_eq!(
            msg.changes,
            vec![],
            "object 1 was already in the baseline result"
        );
    }

    #[test]
    fn knn_threshold_growth_moves_the_footprint() {
        let (space, mut store, mut index) = setup();
        let mut d: Dispatcher<u64> = Dispatcher::new();
        let mut m = KnnMonitor::new(q(), 1, tight()).unwrap();
        m.refresh(&space, &index, &store).unwrap();
        let mon = StandingMonitor::Knn(m);
        assert!(
            mon.footprint(&space, &index).covers_everything(),
            "empty top-k: infinite threshold routes everything"
        );
        let (_, rx) = d.register(mon, 0, false, 16, &space, &index);

        // While the top-k is underfull, even a far-away appearance must
        // route (it enters the result).
        let far = place(&mut store, &mut index, &space, 1, 25.0);
        d.dispatch(
            &CommitDelta {
                epoch: 1,
                updated: &[ObjectId(1)],
                removed: &[],
                topology_changed: false,
                partitions: &far,
            },
            &space,
            &index,
            &store,
            &tight(),
            &1,
        );
        let msg = rx.try_recv().expect("underfull kNN routes everywhere");
        assert_eq!(msg.changes, vec![(ObjectId(1), MonitorChange::Entered)]);
        let ranked = msg.ranked.expect("kNN deliveries carry the ranking");
        assert_eq!(ranked.len(), 1);

        // The top-k is now full: the footprint shrank to the partitions
        // within the kth distance, so the same far partitions still
        // route (the sole member lives there) but a second, even
        // farther object cannot evict it... and updates in the member's
        // own partitions keep routing.
        let same_far = place(&mut store, &mut index, &space, 2, 28.0);
        d.dispatch(
            &CommitDelta {
                epoch: 2,
                updated: &[ObjectId(2)],
                removed: &[],
                topology_changed: false,
                partitions: &same_far,
            },
            &space,
            &index,
            &store,
            &tight(),
            &2,
        );
        let msg = rx.try_recv().expect("member partition still routed");
        assert_eq!(msg.changes, vec![], "object 2 is farther, no change");

        // The member moves next to the query point: threshold shrinks
        // again, and the footprint follows — a commit back in the far
        // room is now provably irrelevant and gets skipped.
        let moved = place(&mut store, &mut index, &space, 1, 4.0);
        d.dispatch(
            &CommitDelta {
                epoch: 3,
                updated: &[ObjectId(1)],
                removed: &[],
                topology_changed: false,
                partitions: &moved,
            },
            &space,
            &index,
            &store,
            &tight(),
            &3,
        );
        assert_eq!(rx.try_recv().expect("member move routes").changes, vec![]);
        let skipped_before = d.stats().skipped;
        let far2 = place(&mut store, &mut index, &space, 3, 25.0);
        d.dispatch(
            &CommitDelta {
                epoch: 4,
                updated: &[ObjectId(3)],
                removed: &[],
                topology_changed: false,
                partitions: &far2,
            },
            &space,
            &index,
            &store,
            &tight(),
            &4,
        );
        assert_eq!(d.stats().skipped, skipped_before + 1);
        assert!(
            rx.try_recv().is_none(),
            "shrunk footprint skips the far room"
        );
    }

    #[test]
    fn deregister_unlinks_and_closes_the_stream() {
        let (space, mut store, mut index) = setup();
        let mut d: Dispatcher<u64> = Dispatcher::new();
        let (id, rx) = d.register(
            range_monitor(&space, &index, &store, 5.0),
            0,
            false,
            16,
            &space,
            &index,
        );
        assert_eq!(d.len(), 1);
        assert!(d.deregister(id));
        assert!(!d.deregister(id), "second deregister is a no-op");
        assert_eq!(d.len(), 0);
        assert!(rx.recv().is_none(), "stream ended");

        let near = place(&mut store, &mut index, &space, 1, 4.0);
        d.dispatch(
            &CommitDelta {
                epoch: 1,
                updated: &[ObjectId(1)],
                removed: &[],
                topology_changed: false,
                partitions: &near,
            },
            &space,
            &index,
            &store,
            &tight(),
            &1,
        );
        assert_eq!(d.stats().deliveries, 0);
    }

    #[test]
    fn close_all_preorders_future_registrations_closed() {
        let (space, store, index) = setup();
        let mut d: Dispatcher<u64> = Dispatcher::new();
        let (_, rx_live) = d.register(
            range_monitor(&space, &index, &store, 5.0),
            0,
            false,
            16,
            &space,
            &index,
        );
        d.close_all();
        assert!(rx_live.recv().is_none());
        let (_, rx_late) = d.register(
            range_monitor(&space, &index, &store, 5.0),
            0,
            false,
            16,
            &space,
            &index,
        );
        assert!(rx_late.recv().is_none(), "late registration is pre-closed");
        assert_eq!(d.len(), 1, "closed registrations are not indexed");
    }
}
