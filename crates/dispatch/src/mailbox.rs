//! Bounded per-subscription mailboxes with coalesce-on-full
//! backpressure.
//!
//! The dispatcher pushes one [`DeltaMsg`] per routed commit; consumers
//! drain from the other end. The queue is **bounded**: when a consumer
//! falls behind by more than the mailbox capacity, the incoming message
//! is *coalesced* into the newest queued one — membership changes
//! compose (an `Entered` followed by a `Left` cancels, and vice versa),
//! the epoch, ranking and payload advance to the newest commit, and the
//! merged message is marked [`DeltaMsg::lagged`]. The consumer's view
//! stays exact (applying the merged changes yields the same result set
//! as applying both originals) but it observably skipped intermediate
//! epochs — the explicit lag marker standing-query consumers can act on.
//! The dispatcher therefore never blocks and never buffers more than
//! `capacity` messages per subscription.

use idq_objects::ObjectId;
use idq_query::MonitorChange;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// One routed delivery: the membership changes a commit caused for one
/// subscription, with the payload the serving engine attached (the
/// commit's receipt).
#[derive(Clone, Debug)]
pub struct DeltaMsg<R> {
    /// Epoch of the commit this message reflects (the newest coalesced
    /// commit when `lagged`).
    pub epoch: u64,
    /// Membership changes relative to the subscription's previous state,
    /// ascending by object id; only `Entered` / `Left` appear.
    pub changes: Vec<(ObjectId, MonitorChange)>,
    /// For kNN subscriptions: the full ranked top-k after this commit,
    /// ascending `(distance, id)`. `None` for range subscriptions.
    pub ranked: Option<Vec<(ObjectId, f64)>>,
    /// The consumer fell behind and this message coalesces two or more
    /// commits: intermediate epochs were skipped (their net membership
    /// effect is folded into `changes`).
    pub lagged: bool,
    /// Engine-attached payload of the (newest) commit.
    pub payload: R,
}

impl<R> DeltaMsg<R> {
    /// Folds a newer message into this one (coalescing): changes compose
    /// per object — opposite changes cancel, a change on a fresh object
    /// survives — and everything else advances to the newer commit.
    fn absorb(&mut self, newer: DeltaMsg<R>) {
        let mut map: BTreeMap<ObjectId, MonitorChange> = self.changes.drain(..).collect();
        for (id, change) in newer.changes {
            match map.entry(id) {
                Entry::Occupied(slot) => {
                    // Within one subscription's stream the only legal
                    // successor of `Entered` is `Left` and vice versa:
                    // the pair nets out to no change at all.
                    debug_assert_ne!(*slot.get(), change, "changes must alternate per object");
                    slot.remove();
                }
                Entry::Vacant(slot) => {
                    slot.insert(change);
                }
            }
        }
        self.changes = map.into_iter().collect();
        self.epoch = newer.epoch;
        self.ranked = newer.ranked;
        self.payload = newer.payload;
        self.lagged = true;
    }
}

/// What happened to a pushed message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Queued as its own message.
    Delivered,
    /// The mailbox was full: folded into the newest queued message,
    /// which is now marked lagged.
    Coalesced,
    /// The mailbox is closed; the message was dropped.
    Closed,
}

#[derive(Debug)]
struct MailboxState<R> {
    queue: VecDeque<DeltaMsg<R>>,
    closed: bool,
}

/// The sender side: a bounded queue the dispatcher pushes routed
/// deliveries into. Create with [`Mailbox::channel`]; the paired
/// [`MailboxReceiver`] drains it.
#[derive(Debug)]
pub struct Mailbox<R> {
    state: Mutex<MailboxState<R>>,
    ready: Condvar,
    capacity: usize,
}

impl<R> Mailbox<R> {
    /// Creates a mailbox bounded to `capacity` queued messages (min 1)
    /// and its receiver. `closed` starts the stream already ended (a
    /// subscription registered after writer retirement).
    pub fn channel(capacity: usize, closed: bool) -> (Arc<Mailbox<R>>, MailboxReceiver<R>) {
        let mailbox = Arc::new(Mailbox {
            state: Mutex::new(MailboxState {
                queue: VecDeque::new(),
                closed,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        });
        let receiver = MailboxReceiver {
            mailbox: Arc::clone(&mailbox),
        };
        (mailbox, receiver)
    }

    /// The bound this mailbox coalesces past.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes one delivery, coalescing into the newest queued message
    /// when full. Never blocks.
    pub fn push(&self, msg: DeltaMsg<R>) -> PushOutcome {
        let mut state = self.state.lock().expect("mailbox lock");
        if state.closed {
            return PushOutcome::Closed;
        }
        if state.queue.len() >= self.capacity {
            state
                .queue
                .back_mut()
                .expect("capacity >= 1, full queue is non-empty")
                .absorb(msg);
            PushOutcome::Coalesced
        } else {
            state.queue.push_back(msg);
            self.ready.notify_all();
            PushOutcome::Delivered
        }
    }

    /// Ends the stream: queued messages stay drainable, blocked `recv`s
    /// wake, further pushes drop.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("mailbox lock");
        state.closed = true;
        self.ready.notify_all();
    }
}

/// The consumer side of a [`Mailbox`].
#[derive(Debug)]
pub struct MailboxReceiver<R> {
    mailbox: Arc<Mailbox<R>>,
}

impl<R> MailboxReceiver<R> {
    /// Takes the next queued delivery without blocking.
    pub fn try_recv(&self) -> Option<DeltaMsg<R>> {
        self.mailbox
            .state
            .lock()
            .expect("mailbox lock")
            .queue
            .pop_front()
    }

    /// Blocks until a delivery arrives or the stream ends; `None` means
    /// closed **and** drained — nothing will ever arrive again.
    pub fn recv(&self) -> Option<DeltaMsg<R>> {
        let mut state = self.mailbox.state.lock().expect("mailbox lock");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                return Some(msg);
            }
            if state.closed {
                return None;
            }
            state = self.mailbox.ready.wait(state).expect("mailbox lock");
        }
    }

    /// Whether the stream has ended (closed and drained).
    pub fn is_finished(&self) -> bool {
        let state = self.mailbox.state.lock().expect("mailbox lock");
        state.closed && state.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(epoch: u64, changes: &[(u64, MonitorChange)]) -> DeltaMsg<u64> {
        DeltaMsg {
            epoch,
            changes: changes.iter().map(|&(id, c)| (ObjectId(id), c)).collect(),
            ranked: None,
            lagged: false,
            payload: epoch,
        }
    }

    #[test]
    fn bounded_push_coalesces_and_marks_lag() {
        let (tx, rx) = Mailbox::channel(2, false);
        use MonitorChange::{Entered, Left};
        assert_eq!(tx.push(msg(1, &[(1, Entered)])), PushOutcome::Delivered);
        assert_eq!(tx.push(msg(2, &[(2, Entered)])), PushOutcome::Delivered);
        // Full: epochs 3 and 4 fold into the epoch-2 message. Object 2
        // enters at 2 and leaves at 3 — both inside the merged message,
        // so the pair cancels; object 3's enter (3) and leave (4)
        // cancel too; only object 4's enter survives.
        assert_eq!(
            tx.push(msg(3, &[(2, Left), (3, Entered)])),
            PushOutcome::Coalesced
        );
        assert_eq!(
            tx.push(msg(4, &[(3, Left), (4, Entered)])),
            PushOutcome::Coalesced
        );

        let first = rx.try_recv().expect("first message intact");
        assert_eq!(first.epoch, 1);
        assert!(!first.lagged);
        let merged = rx.try_recv().expect("merged message");
        assert_eq!(
            merged.epoch, 4,
            "coalesced message reports the newest epoch"
        );
        assert!(merged.lagged);
        assert_eq!(merged.payload, 4, "payload advances with the epoch");
        assert_eq!(
            merged.changes,
            vec![(ObjectId(4), Entered)],
            "cancelled pairs vanish, net changes survive"
        );
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn close_wakes_and_finishes_after_drain() {
        let (tx, rx) = Mailbox::channel(4, false);
        tx.push(msg(1, &[]));
        tx.close();
        assert!(!rx.is_finished(), "still one queued message");
        assert_eq!(rx.recv().expect("drains the backlog").epoch, 1);
        assert!(rx.recv().is_none(), "closed and drained");
        assert!(rx.is_finished());
        assert_eq!(tx.push(msg(2, &[])), PushOutcome::Closed);
    }

    #[test]
    fn pre_closed_channel_ends_immediately() {
        let (tx, rx) = Mailbox::<u64>::channel(4, true);
        assert_eq!(tx.push(msg(1, &[])), PushOutcome::Closed);
        assert!(rx.recv().is_none());
    }
}
