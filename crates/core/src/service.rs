//! The concurrent service surface: [`IndoorService`] read/subscribe
//! handles and [`Subscription`] standing queries.
//!
//! Writes arrive through the [`crate::IndoorEngine`] and its cloned
//! [`crate::WriteHandle`]s (all sequenced into one total commit order —
//! see [`crate::write`]); any number of [`IndoorService`] clones (cheap,
//! `Send + Sync`) hand out version-pinned [`crate::Snapshot`]s to reader
//! threads and register standing-query subscriptions. A committing write
//! publishes its new [`EngineState`] with one brief write-lock on the
//! current-version cell (readers hold it only long enough to clone an
//! `Arc`), then broadcasts the commit's [`UpdateReport`] to every live
//! subscription — so query evaluation and delta absorption run entirely
//! outside locks, on pinned versions. The write side is reference-counted:
//! subscriptions see their stream end when the engine and every write
//! handle have dropped.

use crate::error::EngineError;
use crate::monitor::MonitorExt;
use crate::snapshot::Snapshot;
use crate::state::EngineState;
use crate::update::UpdateReport;
use idq_objects::ObjectId;
use idq_query::{MonitorChange, Outcome, Query, QueryOptions, RangeMonitor};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, RwLock};

// ---- commit-notice channel ------------------------------------------------
//
// A minimal unbounded MPSC channel (std-only, `Send + Sync` on both ends)
// carrying commit notices from the writer to one subscription. Unbounded
// and lossless: a subscription absorbs *every* commit, in order, which is
// what makes delta application equal a from-scratch refresh at any epoch.

/// What the writer broadcasts per commit: the receipt and a snapshot
/// pinned to the committed version (both cheap to clone).
#[derive(Clone, Debug)]
struct CommitNotice {
    report: Arc<UpdateReport>,
    snapshot: Snapshot,
}

#[derive(Debug, Default)]
struct ChannelQueue {
    notices: VecDeque<CommitNotice>,
    /// Writer retired: no further notices will ever arrive.
    closed: bool,
    /// Receiver dropped: sending is pointless, prune the sender.
    receiver_gone: bool,
}

#[derive(Debug, Default)]
struct Channel {
    queue: Mutex<ChannelQueue>,
    ready: Condvar,
}

#[derive(Debug)]
pub(crate) struct NoticeSender {
    channel: Arc<Channel>,
}

impl NoticeSender {
    /// Queues a notice; `false` means the receiver is gone and the sender
    /// should be pruned from the registry.
    fn send(&self, notice: CommitNotice) -> bool {
        let mut q = self.channel.queue.lock().expect("channel lock");
        if q.receiver_gone {
            return false;
        }
        q.notices.push_back(notice);
        self.channel.ready.notify_all();
        true
    }

    /// Marks the channel closed (writer retired); wakes blocked receivers.
    pub(crate) fn close(&self) {
        let mut q = self.channel.queue.lock().expect("channel lock");
        q.closed = true;
        self.channel.ready.notify_all();
    }
}

#[derive(Debug)]
struct NoticeReceiver {
    channel: Arc<Channel>,
}

impl NoticeReceiver {
    /// Takes the next queued notice without blocking.
    fn try_recv(&self) -> Option<CommitNotice> {
        self.channel
            .queue
            .lock()
            .expect("channel lock")
            .notices
            .pop_front()
    }

    /// Blocks until a notice arrives or the writer retires; `None` means
    /// closed-and-drained (no commit will ever arrive again).
    fn recv(&self) -> Option<CommitNotice> {
        let mut q = self.channel.queue.lock().expect("channel lock");
        loop {
            if let Some(n) = q.notices.pop_front() {
                return Some(n);
            }
            if q.closed {
                return None;
            }
            q = self.channel.ready.wait(q).expect("channel lock");
        }
    }
}

impl Drop for NoticeReceiver {
    fn drop(&mut self) {
        let mut q = self.channel.queue.lock().expect("channel lock");
        q.receiver_gone = true;
        // Release the backlog now: every queued notice pins a committed
        // version, and the writer may never broadcast (and prune) again.
        q.notices.clear();
    }
}

fn notice_channel() -> (NoticeSender, NoticeReceiver) {
    let channel = Arc::new(Channel::default());
    (
        NoticeSender {
            channel: Arc::clone(&channel),
        },
        NoticeReceiver { channel },
    )
}

// ---- shared service state -------------------------------------------------

/// The subscriber registry plus the writer refcount, under **one** mutex:
/// registration checks liveness and registers atomically, so a
/// concurrently retiring writer either sees the new sender (and closes
/// it) or the subscriber sees the retirement (and starts closed) — a
/// sender can never be stranded open with no writer left to close it.
#[derive(Debug)]
struct Registry {
    senders: Vec<NoticeSender>,
    /// Live write handles (the engine's bootstrap handle plus every
    /// clone). The stream of commits provably ends when this hits zero.
    writers: usize,
    writer_alive: bool,
}

/// The state shared between the writing [`crate::IndoorEngine`] and every
/// [`IndoorService`] / [`Subscription`] handle.
#[derive(Debug)]
pub(crate) struct Shared {
    /// The current committed version. Writers hold the write lock only for
    /// the pointer swap; readers only for an `Arc` clone — never across
    /// query evaluation.
    current: RwLock<Arc<EngineState>>,
    /// Live standing-query subscriptions (writer broadcasts per commit).
    registry: Mutex<Registry>,
}

impl Shared {
    pub(crate) fn new(state: Arc<EngineState>) -> Self {
        Shared {
            current: RwLock::new(state),
            registry: Mutex::new(Registry {
                senders: Vec::new(),
                // The engine's bootstrap write handle.
                writers: 1,
                writer_alive: true,
            }),
        }
    }

    /// The current committed version (an `Arc` clone under a brief read
    /// lock).
    pub(crate) fn current(&self) -> Arc<EngineState> {
        Arc::clone(&self.current.read().expect("current-version lock"))
    }

    /// Publishes a committed version: the epoch-stamped atomic swap.
    pub(crate) fn publish(&self, state: Arc<EngineState>) {
        *self.current.write().expect("current-version lock") = state;
    }

    /// Registers a subscription channel, returning its receiver. When the
    /// writer has already retired the channel starts out closed (the
    /// subscriber's `wait()` reports the end of the stream immediately).
    fn register(&self) -> NoticeReceiver {
        let (tx, rx) = notice_channel();
        let mut registry = self.registry.lock().expect("subscriber registry lock");
        if registry.writer_alive {
            registry.senders.push(tx);
        } else {
            tx.close();
        }
        rx
    }

    /// Broadcasts a committed report to every live subscription, pruning
    /// the dead ones. Called by the writer *after* [`Shared::publish`],
    /// outside the current-version lock.
    pub(crate) fn broadcast(&self, report: &UpdateReport, snapshot: &Snapshot) {
        // First lock: cheap emptiness check, so commits without
        // subscribers never copy the report. The O(batch) report clone
        // then happens *outside* the lock; a subscriber registering in
        // between simply misses this notice, which is sound — its
        // baseline is pinned after registration, hence at or past this
        // commit, and its epoch guard drops duplicates.
        {
            let registry = self.registry.lock().expect("subscriber registry lock");
            if registry.senders.is_empty() {
                return;
            }
        }
        let notice = CommitNotice {
            report: Arc::new(report.clone()),
            snapshot: snapshot.clone(),
        };
        let mut registry = self.registry.lock().expect("subscriber registry lock");
        registry.senders.retain(|tx| tx.send(notice.clone()));
    }

    /// Accounts for a cloned [`crate::WriteHandle`].
    pub(crate) fn add_writer(&self) {
        let mut registry = self.registry.lock().expect("subscriber registry lock");
        debug_assert!(
            registry.writer_alive,
            "write handles only clone from live write handles"
        );
        registry.writers += 1;
    }

    /// Releases one write handle; the last release retires the write side:
    /// every subscription channel closes (blocked `wait()`s return `None`)
    /// and the service becomes read-only on the final version.
    pub(crate) fn release_writer(&self) {
        let mut registry = self.registry.lock().expect("subscriber registry lock");
        registry.writers = registry.writers.saturating_sub(1);
        if registry.writers == 0 {
            registry.writer_alive = false;
            for tx in registry.senders.drain(..) {
                tx.close();
            }
        }
    }
}

// ---- service handle -------------------------------------------------------

/// A cloneable, thread-safe handle to a served engine: version-pinned
/// snapshots, query sessions and standing-query subscriptions.
///
/// Obtain one from [`crate::IndoorEngine::service`] and clone it freely
/// across threads; the handle stays valid after the engine is dropped
/// (snapshots keep working on the last committed version; subscriptions
/// drain and report the end of the stream).
///
/// ```
/// use idq_core::{EngineConfig, IndoorEngine};
/// use idq_geom::{Point2, Rect2};
/// use idq_model::{FloorPlanBuilder, IndoorPoint};
/// use idq_query::Query;
///
/// let mut b = FloorPlanBuilder::new(4.0);
/// let a = b.add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0)).unwrap();
/// let c = b.add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0)).unwrap();
/// b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
/// let mut engine = IndoorEngine::new(b.finish().unwrap(), EngineConfig::default()).unwrap();
/// let service = engine.service();
///
/// // Reader threads execute sessions on pinned versions while the writer
/// // keeps committing.
/// let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
/// let reader = std::thread::spawn({
///     let service = service.clone();
///     move || service.execute(&Query::Range { q, r: 30.0 }).unwrap()
/// });
/// engine.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 7).unwrap();
/// reader.join().unwrap();
/// assert_eq!(service.snapshot().version(), engine.epoch());
/// ```
#[derive(Clone, Debug)]
pub struct IndoorService {
    shared: Arc<Shared>,
}

impl IndoorService {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        IndoorService { shared }
    }

    /// The epoch of the latest committed version.
    pub fn epoch(&self) -> u64 {
        self.shared.current().epoch
    }

    /// A snapshot pinned to the latest committed version, with that
    /// version's effective default options.
    pub fn snapshot(&self) -> Snapshot {
        let state = self.shared.current();
        let options = state.effective_options();
        Snapshot::from_state(state, options)
    }

    /// A snapshot pinned to the latest committed version, with explicit
    /// query options (ablations, exact refinement…).
    pub fn snapshot_with(&self, options: QueryOptions) -> Snapshot {
        Snapshot::from_state(self.shared.current(), options)
    }

    /// Evaluates one typed [`Query`] on a fresh snapshot of the latest
    /// version.
    pub fn execute(&self, query: &Query) -> Result<Outcome, EngineError> {
        self.snapshot().execute(query)
    }

    /// Evaluates a batch of typed [`Query`]s on one fresh snapshot,
    /// reusing one evaluation context per (query point, floor) group.
    pub fn execute_batch(&self, queries: &[Query]) -> Result<Vec<Outcome>, EngineError> {
        self.snapshot().execute_batch(queries)
    }

    /// Registers a standing query with the serving engine's effective
    /// default options, which the subscription keeps *tracking*: when a
    /// later commit widens the effective options (a larger uncertainty
    /// region arrived), the subscription adopts them before absorbing that
    /// commit, so its refreshes always match what a fresh default query
    /// would return. See [`IndoorService::subscribe_with`].
    pub fn subscribe(&self, query: Query) -> Result<Subscription, EngineError> {
        self.subscribe_inner(query, None)
    }

    /// Registers a standing query with explicit, **frozen** query options
    /// (ablations, exact refinement…): evaluates it once on the latest
    /// committed version (the [`Subscription::initial`] result) and
    /// arranges for every subsequent commit's [`UpdateReport`] to be
    /// delivered, so the subscription keeps itself current by absorbing
    /// deltas instead of re-running the query.
    ///
    /// Only [`Query::Range`] is supported today — the incremental
    /// maintenance path (the paper's standing `iRQ` of §I) exists for
    /// range semantics; other kinds return
    /// [`EngineError::UnsupportedSubscription`].
    pub fn subscribe_with(
        &self,
        query: Query,
        options: QueryOptions,
    ) -> Result<Subscription, EngineError> {
        self.subscribe_inner(query, Some(options))
    }

    /// `explicit_options: None` means "track the effective defaults". The
    /// options used for the initial refresh are derived from the **same**
    /// state read as the baseline snapshot — deriving them from an earlier
    /// read would let a commit slip in between, refreshing a newer-epoch
    /// baseline with a staler (narrower) slack.
    fn subscribe_inner(
        &self,
        query: Query,
        explicit_options: Option<QueryOptions>,
    ) -> Result<Subscription, EngineError> {
        let Query::Range { q, r } = query else {
            return Err(EngineError::UnsupportedSubscription(query));
        };
        // Register the channel *before* pinning the baseline: a commit
        // that lands in between is then either visible in the baseline
        // (and skipped by its epoch guard) or queued on the channel —
        // never lost.
        let rx = self.shared.register();
        let state = self.shared.current();
        let options = explicit_options.unwrap_or_else(|| state.effective_options());
        let baseline = Snapshot::from_state(state, options);
        let mut monitor = RangeMonitor::new(q, r, options)?;
        let initial = monitor.refresh(baseline.space(), baseline.index(), baseline.store())?;
        Ok(Subscription {
            query,
            monitor,
            rx,
            epoch: baseline.version(),
            initial,
            track_options: explicit_options.is_none(),
        })
    }
}

// ---- subscription ---------------------------------------------------------

/// One delta notification of a [`Subscription`]: the membership changes a
/// committed batch caused, together with the commit's receipt.
#[derive(Clone, Debug)]
pub struct Notification {
    /// The epoch of the commit this notification reflects; after handling
    /// it the subscription's result set is current as of this epoch.
    pub epoch: u64,
    /// Every membership change the commit caused, ascending by object id.
    /// May be empty — a commit that did not move the standing result still
    /// advances the subscription's epoch.
    pub changes: Vec<(ObjectId, MonitorChange)>,
    /// The commit's full receipt (shared with other subscriptions).
    pub report: Arc<UpdateReport>,
}

/// A standing query kept current by commit deltas.
///
/// Created by [`IndoorService::subscribe`]: the subscription starts from
/// the [`Subscription::initial`] result evaluated at its baseline epoch,
/// then absorbs every commit's [`UpdateReport`] — removals leave the
/// result set, inserted and moved objects are re-evaluated against the
/// monitor's cached distance tree, and a topology change triggers one
/// full refresh (see [`RangeMonitor`]). Absorption happens on the
/// *subscriber's* thread, against the snapshot pinned to the commit, so
/// a slow consumer never blocks the writer or other readers.
///
/// Consume with [`Subscription::poll`] (non-blocking drain) or
/// [`Subscription::wait`] (block until the next commit; `None` once the
/// writer is gone and the queue is drained).
///
/// **Consumption keeps memory bounded.** The notice queue is lossless
/// and unbounded, and every queued notice pins its commit's version
/// (space + store + index) until absorbed — that pinning is what lets
/// absorption run lock-free on the consumer's thread. A subscription
/// that is held but never polled under a steady writer therefore retains
/// one version per commit; drain it promptly (or drop it: a dropped
/// subscription is pruned at the writer's next broadcast).
#[derive(Debug)]
pub struct Subscription {
    query: Query,
    monitor: RangeMonitor,
    rx: NoticeReceiver,
    epoch: u64,
    initial: Vec<ObjectId>,
    /// Adopt each commit's effective options before absorbing it (true
    /// for [`IndoorService::subscribe`]; explicit-options subscriptions
    /// keep theirs frozen).
    track_options: bool,
}

impl Subscription {
    /// The standing query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The result of the initial evaluation at the baseline epoch,
    /// ascending by object id.
    pub fn initial(&self) -> &[ObjectId] {
        &self.initial
    }

    /// The current standing result set (initial + every absorbed delta),
    /// ascending by object id.
    pub fn current(&self) -> Vec<ObjectId> {
        self.monitor.current()
    }

    /// Whether an object is currently in the standing result set.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.monitor.contains(id)
    }

    /// The epoch the standing result set is current as of.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Absorbs every queued commit without blocking, returning one
    /// [`Notification`] per commit in epoch order.
    pub fn poll(&mut self) -> Result<Vec<Notification>, EngineError> {
        let mut out = Vec::new();
        while let Some(notice) = self.rx.try_recv() {
            if let Some(n) = self.absorb(notice)? {
                out.push(n);
            }
        }
        Ok(out)
    }

    /// Blocks until the next commit arrives and absorbs it. Returns
    /// `Ok(None)` once the writer is gone and every queued commit has been
    /// absorbed — the stream has ended and the result set is final.
    pub fn wait(&mut self) -> Result<Option<Notification>, EngineError> {
        loop {
            match self.rx.recv() {
                None => return Ok(None),
                Some(notice) => {
                    if let Some(n) = self.absorb(notice)? {
                        return Ok(Some(n));
                    }
                    // A pre-baseline notice carries nothing new; keep
                    // waiting for a real commit.
                }
            }
        }
    }

    /// Absorbs one notice; `None` when the commit is already reflected in
    /// the baseline (a registration race, see `subscribe_with`).
    fn absorb(&mut self, notice: CommitNotice) -> Result<Option<Notification>, EngineError> {
        let report = notice.report;
        if report.epoch <= self.epoch {
            return Ok(None);
        }
        let snapshot = notice.snapshot;
        if self.track_options {
            // Default-options subscriptions follow the engine's effective
            // options as they widen (e.g. a larger uncertainty radius
            // arrived), so a topology-triggered refresh inside the absorb
            // matches a fresh default query at the same epoch.
            self.monitor.set_options(*snapshot.options());
        }
        let changes = MonitorExt::absorb(&mut self.monitor, &report, &snapshot)?;
        self.epoch = report.epoch;
        Ok(Some(Notification {
            epoch: report.epoch,
            changes,
            report,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::Update;
    use crate::{EngineConfig, IndoorEngine};
    use idq_geom::{Point2, Rect2};
    use idq_model::{FloorPlanBuilder, IndoorPoint, IndoorSpace};

    fn three_rooms() -> IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn service_snapshots_track_commits() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        assert_eq!(service.epoch(), 0);
        let pinned = service.snapshot();
        e.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        assert_eq!(service.epoch(), 1);
        assert_eq!(pinned.version(), 0, "pinned snapshots do not move");
        assert_eq!(pinned.store().len(), 0);
        assert_eq!(service.snapshot().store().len(), 1);
    }

    #[test]
    fn subscription_tracks_commits_and_ends_with_the_writer() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut sub = service.subscribe(Query::Range { q, r: 15.0 }).unwrap();
        assert!(sub.initial().is_empty());
        assert_eq!(sub.epoch(), 0);

        // One commit inside the range, one outside.
        e.apply_batch(&[
            Update::InsertObjectAt {
                center: Point2::new(12.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 1,
            },
            Update::InsertObjectAt {
                center: Point2::new(28.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 2,
            },
        ])
        .unwrap();
        let n = sub.wait().unwrap().expect("one commit queued");
        assert_eq!(n.epoch, 1);
        assert_eq!(n.changes.len(), 1, "only the near object entered");
        assert_eq!(n.changes[0].1, MonitorChange::Entered);
        assert_eq!(sub.current().len(), 1);
        assert_eq!(sub.epoch(), 1);

        // A topology commit falls back to a refresh inside absorb.
        let door = e.space().doors().next().unwrap().id;
        e.apply_batch(&[Update::CloseDoor(door)]).unwrap();
        let n = sub.wait().unwrap().expect("topology commit queued");
        assert!(n.report.delta.topology_changed);
        assert_eq!(n.changes.len(), 1, "the near object left");
        assert!(sub.current().is_empty());

        // Dropping the engine ends the stream.
        drop(e);
        assert!(sub.wait().unwrap().is_none());
        assert!(sub.poll().unwrap().is_empty());
    }

    #[test]
    fn poll_drains_multiple_commits_in_order() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut sub = service.subscribe(Query::Range { q, r: 40.0 }).unwrap();
        for seed in 1..=3u64 {
            e.insert_object_at(Point2::new(5.0 + seed as f64, 5.0), 0, 1.0, 4, seed)
                .unwrap();
        }
        let notifications = sub.poll().unwrap();
        assert_eq!(notifications.len(), 3);
        assert_eq!(
            notifications.iter().map(|n| n.epoch).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(sub.current().len(), 3);
        // Fresh evaluation agrees.
        let fresh = service.execute(&Query::Range { q, r: 40.0 }).unwrap();
        assert_eq!(fresh.as_range().unwrap().results.len(), 3);
    }

    #[test]
    fn default_subscriptions_track_widening_options() {
        // Subscribe while only small objects exist, then insert a
        // larger-radius object and reconfigure topology: the default
        // subscription must adopt the widened effective options, so its
        // internal refresh matches a fresh default query at that epoch.
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        e.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut sub = service.subscribe(Query::Range { q, r: 30.0 }).unwrap();
        let narrow_slack = sub.monitor.options().subgraph_slack;

        // Radius 15 pushes the effective slack past the 60 m floor
        // (`QueryOptions::for_max_radius`: max(4r + 20, 60)).
        e.insert_object_at(Point2::new(25.0, 5.0), 0, 15.0, 8, 2)
            .unwrap();
        let door = e.space().doors().next().unwrap().id;
        e.apply_batch(&[Update::CloseDoor(door), Update::OpenDoor(door)])
            .unwrap();
        while sub.wait().unwrap().is_some() {
            if sub.epoch() == e.epoch() {
                break;
            }
        }
        assert!(
            sub.monitor.options().subgraph_slack > narrow_slack,
            "subscription adopted the widened slack"
        );
        assert_eq!(
            sub.monitor.options().subgraph_slack,
            e.query_options().subgraph_slack
        );
        let fresh: Vec<ObjectId> = e
            .range_query(q, 30.0)
            .unwrap()
            .results
            .iter()
            .map(|h| h.object)
            .collect();
        assert_eq!(sub.current(), fresh);
    }

    #[test]
    fn only_range_queries_subscribe() {
        let e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let err = service.subscribe(Query::Knn { q, k: 1 }).unwrap_err();
        assert!(matches!(err, EngineError::UnsupportedSubscription(_)));
        assert!(err.to_string().contains("subscription"));
    }

    #[test]
    fn subscribing_after_writer_retirement_yields_a_closed_stream() {
        let e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        drop(e);
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut sub = service.subscribe(Query::Range { q, r: 15.0 }).unwrap();
        assert!(sub.wait().unwrap().is_none(), "no writer, stream is over");
        // The service still answers queries on the final version.
        assert!(service
            .execute(&Query::Range { q, r: 15.0 })
            .unwrap()
            .as_range()
            .unwrap()
            .results
            .is_empty());
    }
}
