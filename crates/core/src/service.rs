//! The concurrent service surface: [`IndoorService`] read/subscribe
//! handles and [`Subscription`] standing queries, served by a
//! query-indexed dispatcher.
//!
//! Writes arrive through the [`crate::IndoorEngine`] and its cloned
//! [`crate::WriteHandle`]s (all sequenced into one total commit order —
//! see [`crate::write`]); any number of [`IndoorService`] clones (cheap,
//! `Send + Sync`) hand out version-pinned [`crate::Snapshot`]s to reader
//! threads and register standing-query subscriptions.
//!
//! Standing queries scale through *routing*, not broadcast. A committing
//! write publishes its new [`EngineState`] with one brief write-lock on
//! the current-version cell, then hands the commit's merged
//! [`UpdateReport`] (plus a snapshot pinned to the committed version) to
//! a single **dispatch thread** via an unbounded inbox — the sequencer
//! never waits on subscription work. The dispatch thread intersects the
//! commit's routing footprint (the partitions its object updates touched,
//! carried by [`crate::update::UpdateDelta`]) against an
//! [`idq_dispatch::Dispatcher`] query index over every subscription's
//! candidate partitions, absorbs the delta into exactly the affected
//! monitors, and pushes precomputed per-subscription [`Notification`]s
//! into bounded mailboxes. Subscriptions whose footprint is disjoint are
//! skipped with zero per-subscription work, which is what lets one
//! engine serve 100k+ standing queries without a thread or a full report
//! scan per subscription. A consumer that falls behind its mailbox
//! capacity gets consecutive commits coalesced into one notification
//! marked [`Notification::lagged`] — bounded memory per subscription,
//! and the writer is never blocked by a slow consumer.
//!
//! The write side is reference-counted: subscriptions see their stream
//! end when the engine and every write handle have dropped.

use crate::durability::Durability;
use crate::error::EngineError;
use crate::snapshot::Snapshot;
use crate::state::EngineState;
use crate::update::UpdateReport;
use idq_dispatch::{
    CommitDelta, DeltaMsg, DispatchStats, Dispatcher, MailboxReceiver, StandingMonitor, SubId,
};
use idq_objects::ObjectId;
use idq_query::{KnnMonitor, MonitorChange, Outcome, Query, QueryOptions, RangeMonitor};
use std::collections::{BTreeSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Default bound of a subscription's notification mailbox; consumers
/// further behind than this see coalesced, [`Notification::lagged`]
/// deliveries. See [`IndoorService::subscribe_bounded`] to choose.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 256;

// ---- commit inbox ---------------------------------------------------------
//
// The writer → dispatch-thread hand-off: an unbounded FIFO of committed
// reports. Unbounded so the sequencer never blocks on subscription work;
// each queued entry pins its commit's version until routed, so the
// dispatch thread drains it promptly (its per-commit work is bounded by
// the routing intersection, not the subscription count).

#[derive(Debug)]
struct CommitMsg {
    report: Arc<UpdateReport>,
    snapshot: Snapshot,
}

#[derive(Debug, Default)]
struct InboxQueue {
    queue: VecDeque<CommitMsg>,
    /// Writer retired: nothing will ever be pushed again.
    closed: bool,
}

#[derive(Debug, Default)]
struct Inbox {
    queue: Mutex<InboxQueue>,
    ready: Condvar,
}

impl Inbox {
    fn push(&self, msg: CommitMsg) {
        let mut q = self.queue.lock().expect("inbox lock");
        if q.closed {
            return;
        }
        q.queue.push_back(msg);
        self.ready.notify_all();
    }

    fn close(&self) {
        let mut q = self.queue.lock().expect("inbox lock");
        q.closed = true;
        self.ready.notify_all();
    }

    /// Blocks until a commit arrives; `None` once closed **and** drained.
    fn pop(&self) -> Option<CommitMsg> {
        let mut q = self.queue.lock().expect("inbox lock");
        loop {
            if let Some(msg) = q.queue.pop_front() {
                return Some(msg);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).expect("inbox lock");
        }
    }
}

// ---- dispatch progress ----------------------------------------------------

#[derive(Debug, Default)]
struct ProgressState {
    /// Highest epoch the dispatch thread has fully routed.
    epoch: u64,
    /// The dispatch thread has exited (every stream is closed).
    done: bool,
}

/// Watermark tests, benches and shutdown wait on: which epoch the
/// dispatch thread has caught up to.
#[derive(Debug, Default)]
struct Progress {
    state: Mutex<ProgressState>,
    moved: Condvar,
}

impl Progress {
    fn advance(&self, epoch: u64) {
        let mut s = self.state.lock().expect("progress lock");
        if epoch > s.epoch {
            s.epoch = epoch;
            self.moved.notify_all();
        }
    }

    fn finish(&self) {
        let mut s = self.state.lock().expect("progress lock");
        s.done = true;
        self.moved.notify_all();
    }

    fn wait_for(&self, target: u64) {
        let mut s = self.state.lock().expect("progress lock");
        while s.epoch < target && !s.done {
            s = self.moved.wait(s).expect("progress lock");
        }
    }
}

// ---- shared service state -------------------------------------------------

/// Writer refcount and dispatch-thread bookkeeping.
#[derive(Debug)]
struct Registry {
    /// Live write handles (the engine's bootstrap handle plus every
    /// clone). The stream of commits provably ends when this hits zero.
    writers: usize,
    writer_alive: bool,
    /// The dispatch thread exists (spawned lazily by the first
    /// subscription; never despawned while the writer lives).
    thread_spawned: bool,
}

/// The state shared between the writing [`crate::IndoorEngine`] and every
/// [`IndoorService`] / [`Subscription`] handle.
///
/// Lock order: `registry` → `dispatcher`. The inbox and progress locks
/// are leaves (never held while taking another lock).
#[derive(Debug)]
pub(crate) struct Shared {
    /// The current committed version. Writers hold the write lock only for
    /// the pointer swap; readers only for an `Arc` clone — never across
    /// query evaluation.
    current: RwLock<Arc<EngineState>>,
    registry: Mutex<Registry>,
    /// The query index over every live subscription. Locked by the
    /// dispatch thread per commit and briefly by subscribe/drop; never by
    /// the committing writer.
    dispatcher: Mutex<Dispatcher<Arc<UpdateReport>>>,
    inbox: Inbox,
    progress: Progress,
    /// The engine's durability attachment (WAL + checkpoint worker), set
    /// once — *after* recovery replay, so replayed commits are not
    /// re-logged — and read lock-free by every committing leader.
    durability: std::sync::OnceLock<Durability>,
    /// The engine's commit-retention attachment (the history recorder's
    /// enqueue-only sink), set once and read lock-free by every
    /// committing leader after each publish.
    retention: std::sync::OnceLock<std::sync::Arc<dyn crate::retention::RetentionSink>>,
}

impl Shared {
    pub(crate) fn new(state: Arc<EngineState>) -> Self {
        Shared {
            current: RwLock::new(state),
            registry: Mutex::new(Registry {
                // The engine's bootstrap write handle.
                writers: 1,
                writer_alive: true,
                thread_spawned: false,
            }),
            dispatcher: Mutex::new(Dispatcher::new()),
            inbox: Inbox::default(),
            progress: Progress::default(),
            durability: std::sync::OnceLock::new(),
            retention: std::sync::OnceLock::new(),
        }
    }

    /// Attaches the durability layer (once, at engine construction —
    /// after any recovery replay, so replayed commits are never
    /// re-logged). Commits from this point on log through it before
    /// publishing.
    pub(crate) fn attach_durability(&self, durability: Durability) {
        if self.durability.set(durability).is_err() {
            unreachable!("durability is attached exactly once, at construction");
        }
    }

    /// The durability attachment, if this engine is durable.
    pub(crate) fn durability(&self) -> Option<&Durability> {
        self.durability.get()
    }

    /// Attaches the commit-retention sink (at most once). Returns `false`
    /// when a sink is already attached — unlike durability, retention is
    /// attached by user code, so the race is reportable, not a bug.
    pub(crate) fn attach_retention(
        &self,
        sink: std::sync::Arc<dyn crate::retention::RetentionSink>,
    ) -> bool {
        self.retention.set(sink).is_ok()
    }

    /// The commit-retention sink, if one is attached.
    pub(crate) fn retention(&self) -> Option<&std::sync::Arc<dyn crate::retention::RetentionSink>> {
        self.retention.get()
    }

    /// The current committed version (an `Arc` clone under a brief read
    /// lock).
    pub(crate) fn current(&self) -> Arc<EngineState> {
        Arc::clone(&self.current.read().expect("current-version lock"))
    }

    /// Publishes a committed version: the epoch-stamped atomic swap.
    pub(crate) fn publish(&self, state: Arc<EngineState>) {
        *self.current.write().expect("current-version lock") = state;
    }

    /// Hands a committed report to the dispatch thread. Called by the
    /// writer *after* [`Shared::publish`]; enqueue-only, so the sequencer
    /// never waits on routing or absorption. A no-op until the first
    /// subscription spawns the dispatch thread.
    pub(crate) fn broadcast(&self, report: &UpdateReport, snapshot: &Snapshot) {
        {
            let registry = self.registry.lock().expect("registry lock");
            if !registry.thread_spawned {
                return;
            }
        }
        self.inbox.push(CommitMsg {
            report: Arc::new(report.clone()),
            snapshot: snapshot.clone(),
        });
    }

    /// Spawns the dispatch thread on first use. After writer retirement
    /// (with no thread ever spawned) it instead closes the dispatcher so
    /// late registrations start pre-closed.
    fn ensure_dispatch_thread(self: &Arc<Self>) {
        let mut registry = self.registry.lock().expect("registry lock");
        if registry.thread_spawned {
            // The thread owns stream lifecycle from here on — including
            // close_all once the retired writer's backlog is drained.
            return;
        }
        if !registry.writer_alive {
            drop(registry);
            let mut dispatcher = self.dispatcher.lock().expect("dispatcher lock");
            if !dispatcher.is_closed() {
                dispatcher.close_all();
            }
            return;
        }
        registry.thread_spawned = true;
        // Commits published before this point were never enqueued; fold
        // them into the progress watermark so quiesce() has nothing
        // phantom to wait for. Linearized by the registry lock against
        // broadcast's thread_spawned check.
        self.progress.advance(self.current().epoch);
        let shared = Arc::clone(self);
        std::thread::Builder::new()
            .name("idq-dispatch".into())
            .spawn(move || dispatch_loop(shared))
            .expect("spawn dispatch thread");
    }

    /// Blocks until the dispatch thread has routed every commit published
    /// before the call (immediately when no subscription ever existed).
    pub(crate) fn quiesce(&self) {
        {
            let registry = self.registry.lock().expect("registry lock");
            if !registry.thread_spawned {
                return;
            }
        }
        let target = self.current().epoch;
        self.progress.wait_for(target);
    }

    /// Accounts for a cloned [`crate::WriteHandle`].
    pub(crate) fn add_writer(&self) {
        let mut registry = self.registry.lock().expect("registry lock");
        debug_assert!(
            registry.writer_alive,
            "write handles only clone from live write handles"
        );
        registry.writers += 1;
    }

    /// Releases one write handle; the last release retires the write side:
    /// the inbox closes, the dispatch thread routes the remaining backlog,
    /// ends every subscription stream (blocked `wait()`s return `None`)
    /// and exits, and the service becomes read-only on the final version.
    /// Never takes the dispatcher lock (registry → dispatcher is the lock
    /// order and the dispatch thread holds the latter for long stretches).
    pub(crate) fn release_writer(&self) {
        let mut registry = self.registry.lock().expect("registry lock");
        registry.writers = registry.writers.saturating_sub(1);
        if registry.writers == 0 {
            registry.writer_alive = false;
            drop(registry);
            // Durable shutdown: with the last writer gone the sequencer is
            // provably drained (every committing thread holds a handle),
            // so one final WAL sync makes the whole committed history
            // durable — this is what upgrades `SyncPolicy::Os` to
            // lose-nothing on clean shutdown. Failure is unreportable
            // here (no caller); recovery still sees every synced prefix.
            if let Some(durability) = self.durability() {
                let _ = durability.flush();
            }
            // Retention mirrors dispatch: the write side is provably done,
            // so the sink's worker can drain its queue and park. Enqueue-
            // only, like every retention call from the write path.
            if let Some(sink) = self.retention() {
                sink.close();
            }
            self.inbox.close();
        }
    }
}

/// The dispatch thread: pops committed reports in publish order, routes
/// each through the query index, and on shutdown (writer retired, inbox
/// drained) ends every subscription stream.
fn dispatch_loop(shared: Arc<Shared>) {
    while let Some(CommitMsg { report, snapshot }) = shared.inbox.pop() {
        {
            let mut dispatcher = shared.dispatcher.lock().expect("dispatcher lock");
            let updated = report.delta.updated();
            let delta = CommitDelta {
                epoch: report.epoch,
                updated: &updated,
                removed: &report.delta.removed,
                topology_changed: report.delta.topology_changed,
                partitions: &report.delta.partitions,
            };
            dispatcher.dispatch(
                &delta,
                snapshot.space(),
                snapshot.index(),
                snapshot.store(),
                snapshot.options(),
                &report,
            );
        }
        shared.progress.advance(report.epoch);
    }
    shared
        .dispatcher
        .lock()
        .expect("dispatcher lock")
        .close_all();
    shared.progress.finish();
}

// ---- service handle -------------------------------------------------------

/// A cloneable, thread-safe handle to a served engine: version-pinned
/// snapshots, query sessions and standing-query subscriptions.
///
/// Obtain one from [`crate::IndoorEngine::service`] and clone it freely
/// across threads; the handle stays valid after the engine is dropped
/// (snapshots keep working on the last committed version; subscriptions
/// drain and report the end of the stream).
///
/// ```
/// use idq_core::{EngineConfig, IndoorEngine};
/// use idq_geom::{Point2, Rect2};
/// use idq_model::{FloorPlanBuilder, IndoorPoint};
/// use idq_query::Query;
///
/// let mut b = FloorPlanBuilder::new(4.0);
/// let a = b.add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0)).unwrap();
/// let c = b.add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0)).unwrap();
/// b.add_door_between(a, c, Point2::new(10.0, 5.0)).unwrap();
/// let mut engine = IndoorEngine::new(b.finish().unwrap(), EngineConfig::default()).unwrap();
/// let service = engine.service();
///
/// // Reader threads execute sessions on pinned versions while the writer
/// // keeps committing.
/// let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
/// let reader = std::thread::spawn({
///     let service = service.clone();
///     move || service.execute(&Query::Range { q, r: 30.0 }).unwrap()
/// });
/// engine.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 7).unwrap();
/// reader.join().unwrap();
/// assert_eq!(service.snapshot().version(), engine.epoch());
/// ```
#[derive(Clone)]
pub struct IndoorService {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for IndoorService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndoorService")
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl IndoorService {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        IndoorService { shared }
    }

    /// The epoch of the latest committed version.
    pub fn epoch(&self) -> u64 {
        self.shared.current().epoch
    }

    /// A snapshot pinned to the latest committed version, with that
    /// version's effective default options.
    pub fn snapshot(&self) -> Snapshot {
        let state = self.shared.current();
        let options = state.effective_options();
        Snapshot::from_state(state, options)
    }

    /// A snapshot pinned to the latest committed version, with explicit
    /// query options (ablations, exact refinement…).
    pub fn snapshot_with(&self, options: QueryOptions) -> Snapshot {
        Snapshot::from_state(self.shared.current(), options)
    }

    /// Evaluates one typed [`Query`] on a fresh snapshot of the latest
    /// version.
    pub fn execute(&self, query: &Query) -> Result<Outcome, EngineError> {
        self.snapshot().execute(query)
    }

    /// Evaluates a batch of typed [`Query`]s on one fresh snapshot,
    /// reusing one evaluation context per (query point, floor) group.
    pub fn execute_batch(&self, queries: &[Query]) -> Result<Vec<Outcome>, EngineError> {
        self.snapshot().execute_batch(queries)
    }

    /// Registers a standing query with the serving engine's effective
    /// default options, which the subscription keeps *tracking*: when a
    /// later commit widens the effective options (a larger uncertainty
    /// region arrived), the dispatcher has the monitor adopt them before
    /// absorbing that commit, so its results always match what a fresh
    /// default query would return.
    ///
    /// Supported query kinds:
    ///
    /// | Kind | Standing form | Maintenance |
    /// |---|---|---|
    /// | [`Query::Range`] | continuous `iRQ(q, r)` | incremental per updated object ([`RangeMonitor`]) |
    /// | [`Query::Knn`] | continuous `ikNNQ(q, k)` | incremental top-k, re-verified on shrink ([`KnnMonitor`]) |
    /// | [`Query::Distance`] | — | [`EngineError::UnsupportedSubscription`] |
    /// | [`Query::Path`] | — | [`EngineError::UnsupportedSubscription`] |
    ///
    /// Point-to-point distance and path queries have no object-dependent
    /// result to maintain incrementally — re-run them on a
    /// [`IndoorService::snapshot`] when the topology changes.
    pub fn subscribe(&self, query: Query) -> Result<Subscription, EngineError> {
        self.subscribe_inner(query, None, DEFAULT_MAILBOX_CAPACITY)
    }

    /// Registers a standing query with explicit, **frozen** query options
    /// (ablations, exact refinement…): evaluates it once on the latest
    /// committed version (the [`Subscription::initial`] result) and has
    /// every subsequent commit that can affect it routed to it, so the
    /// subscription stays current without re-running the query. See
    /// [`IndoorService::subscribe`] for the supported query kinds.
    pub fn subscribe_with(
        &self,
        query: Query,
        options: QueryOptions,
    ) -> Result<Subscription, EngineError> {
        self.subscribe_inner(query, Some(options), DEFAULT_MAILBOX_CAPACITY)
    }

    /// [`IndoorService::subscribe`] with an explicit mailbox bound. A
    /// consumer more than `capacity` notifications behind gets newer
    /// commits coalesced into one [`Notification::lagged`] delivery —
    /// memory stays bounded and the dispatcher never blocks on it.
    pub fn subscribe_bounded(
        &self,
        query: Query,
        capacity: usize,
    ) -> Result<Subscription, EngineError> {
        self.subscribe_inner(query, None, capacity)
    }

    /// Routing counters of the dispatch layer (deliveries, proven skips,
    /// coalesced lag deliveries…). Zeros until the first subscription.
    pub fn dispatch_stats(&self) -> DispatchStats {
        self.shared
            .dispatcher
            .lock()
            .expect("dispatcher lock")
            .stats()
    }

    /// Load of the routing index: `(distinct partitions indexed, total
    /// partition → subscription links, subscriptions routing on
    /// everything)`. Links divided by live subscriptions is the mean
    /// candidate-footprint size — a routing-precision diagnostic.
    pub fn dispatch_index_load(&self) -> (usize, usize, usize) {
        self.shared
            .dispatcher
            .lock()
            .expect("dispatcher lock")
            .index_load()
    }

    /// Blocks until every commit published before this call has been
    /// routed to subscriptions (immediately if none exist). Useful for
    /// tests and benches that want deterministic delivery points; regular
    /// consumers just [`Subscription::wait`].
    pub fn quiesce(&self) {
        self.shared.quiesce()
    }

    /// `explicit_options: None` means "track the effective defaults". The
    /// options used for the initial refresh are derived from the **same**
    /// state read as the baseline snapshot — deriving them from an earlier
    /// read would let a commit slip in between, refreshing a newer-epoch
    /// baseline with a staler (narrower) slack.
    fn subscribe_inner(
        &self,
        query: Query,
        explicit_options: Option<QueryOptions>,
        capacity: usize,
    ) -> Result<Subscription, EngineError> {
        if !matches!(query, Query::Range { .. } | Query::Knn { .. }) {
            return Err(EngineError::UnsupportedSubscription(query));
        }
        self.shared.ensure_dispatch_thread();
        // Hold the dispatcher for the pin + refresh + register sequence:
        // the dispatch thread cannot route anything in between, so every
        // commit is either visible in the baseline (epoch ≤ baseline,
        // dropped by the dispatcher's per-subscription guard) or routed
        // to the registered entry afterwards — never lost. Only the
        // dispatch thread waits on this; the committing writer does not.
        let mut dispatcher = self.shared.dispatcher.lock().expect("dispatcher lock");
        let state = self.shared.current();
        let options = explicit_options.unwrap_or_else(|| state.effective_options());
        let baseline = Snapshot::from_state(state, options);
        let mut monitor = match query {
            Query::Range { q, r } => StandingMonitor::Range(RangeMonitor::new(q, r, options)?),
            Query::Knn { q, k } => StandingMonitor::Knn(KnnMonitor::new(q, k, options)?),
            _ => unreachable!("validated above"),
        };
        let initial = monitor.refresh(baseline.space(), baseline.index(), baseline.store())?;
        let ranked = monitor.ranked();
        let inside: BTreeSet<ObjectId> = initial.iter().copied().collect();
        let (id, rx) = dispatcher.register(
            monitor,
            baseline.version(),
            explicit_options.is_none(),
            capacity,
            baseline.space(),
            baseline.index(),
        );
        drop(dispatcher);
        Ok(Subscription {
            query,
            shared: Arc::clone(&self.shared),
            id,
            rx,
            epoch: baseline.version(),
            initial,
            inside,
            ranked,
        })
    }
}

// ---- subscription ---------------------------------------------------------

/// One delta notification of a [`Subscription`]: the membership changes a
/// committed batch caused, together with the commit's receipt.
#[derive(Clone, Debug)]
pub struct Notification {
    /// The epoch of the commit this notification reflects; after handling
    /// it the subscription's result set is current as of this epoch.
    pub epoch: u64,
    /// Every membership change the commit caused, ascending by object id.
    /// May be empty — a routed commit that did not move the standing
    /// result still advances the subscription's epoch.
    pub changes: Vec<(ObjectId, MonitorChange)>,
    /// For kNN subscriptions: the full ranked top-k after this commit,
    /// ascending `(distance, id)`. `None` for range subscriptions.
    pub ranked: Option<Vec<(ObjectId, f64)>>,
    /// This notification coalesces two or more commits because the
    /// consumer fell behind its mailbox capacity: intermediate epochs
    /// were skipped, with their net membership effect folded into
    /// `changes` (the result set is still exact).
    pub lagged: bool,
    /// The (newest coalesced) commit's full receipt (shared with other
    /// subscriptions).
    pub report: Arc<UpdateReport>,
}

/// A standing query kept current by routed commit deltas.
///
/// Created by [`IndoorService::subscribe`]: the subscription starts from
/// the [`Subscription::initial`] result evaluated at its baseline epoch;
/// afterwards the service's dispatch thread absorbs every commit that
/// can affect the query into the subscription's monitor and queues the
/// membership changes here. Commits whose routing footprint is disjoint
/// from the query's candidate partitions are **skipped entirely** — they
/// produce no notification and do not advance
/// [`Subscription::epoch`]; the skip is sound because such a commit
/// provably cannot change the result (see [`idq_dispatch`]).
///
/// Consume with [`Subscription::poll`] (non-blocking drain) or
/// [`Subscription::wait`] (block until the next routed commit; `None`
/// once the writer is gone and the queue is drained). The mailbox is
/// **bounded**: a consumer that falls behind gets newer commits
/// coalesced into one [`Notification::lagged`] delivery instead of
/// unbounded queue growth, and never slows the writer or the dispatch
/// thread.
///
/// Dropping a subscription deregisters it from the dispatcher
/// immediately — an unpolled, forgotten handle stops costing routing
/// work at the next commit.
#[derive(Debug)]
pub struct Subscription {
    query: Query,
    shared: Arc<Shared>,
    id: SubId,
    rx: MailboxReceiver<Arc<UpdateReport>>,
    epoch: u64,
    initial: Vec<ObjectId>,
    /// The standing result set, maintained by applying routed changes.
    inside: BTreeSet<ObjectId>,
    /// The ranked top-k (kNN subscriptions only).
    ranked: Option<Vec<(ObjectId, f64)>>,
}

impl Subscription {
    /// The standing query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The result of the initial evaluation at the baseline epoch,
    /// ascending by object id.
    pub fn initial(&self) -> &[ObjectId] {
        &self.initial
    }

    /// The current standing result set (initial + every applied delta),
    /// ascending by object id.
    pub fn current(&self) -> Vec<ObjectId> {
        self.inside.iter().copied().collect()
    }

    /// Whether an object is currently in the standing result set.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.inside.contains(&id)
    }

    /// The epoch the standing result set is current as of. Advances only
    /// on routed commits; commits proven irrelevant leave it unchanged.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// For kNN subscriptions, the current ranked top-k, ascending
    /// `(distance, id)`; `None` for range subscriptions.
    pub fn ranked(&self) -> Option<&[(ObjectId, f64)]> {
        self.ranked.as_deref()
    }

    /// Applies every queued notification without blocking, returning them
    /// in epoch order.
    pub fn poll(&mut self) -> Result<Vec<Notification>, EngineError> {
        let mut out = Vec::new();
        while let Some(msg) = self.rx.try_recv() {
            out.push(self.apply(msg));
        }
        Ok(out)
    }

    /// Blocks until the next routed commit's notification arrives and
    /// applies it. Returns `Ok(None)` once the writer is gone and every
    /// queued notification has been applied — the stream has ended and
    /// the result set is final.
    pub fn wait(&mut self) -> Result<Option<Notification>, EngineError> {
        match self.rx.recv() {
            None => Ok(None),
            Some(msg) => Ok(Some(self.apply(msg))),
        }
    }

    /// Folds one precomputed delta message into the local result set.
    fn apply(&mut self, msg: DeltaMsg<Arc<UpdateReport>>) -> Notification {
        for &(id, change) in &msg.changes {
            match change {
                MonitorChange::Entered => {
                    self.inside.insert(id);
                }
                MonitorChange::Left => {
                    self.inside.remove(&id);
                }
                MonitorChange::Unchanged => {}
            }
        }
        self.epoch = msg.epoch;
        if msg.ranked.is_some() {
            self.ranked = msg.ranked.clone();
        }
        Notification {
            epoch: msg.epoch,
            changes: msg.changes,
            ranked: msg.ranked,
            lagged: msg.lagged,
            report: msg.payload,
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        // Eager deregistration: the dispatcher stops routing to this
        // subscription at the next commit instead of discovering the
        // dead mailbox lazily.
        if let Ok(mut dispatcher) = self.shared.dispatcher.lock() {
            dispatcher.deregister(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::Update;
    use crate::{EngineConfig, IndoorEngine};
    use idq_geom::{Point2, Rect2};
    use idq_model::{FloorPlanBuilder, IndoorPoint, IndoorSpace};

    fn three_rooms() -> IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn service_snapshots_track_commits() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        assert_eq!(service.epoch(), 0);
        let pinned = service.snapshot();
        e.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        assert_eq!(service.epoch(), 1);
        assert_eq!(pinned.version(), 0, "pinned snapshots do not move");
        assert_eq!(pinned.store().len(), 0);
        assert_eq!(service.snapshot().store().len(), 1);
    }

    #[test]
    fn subscription_tracks_commits_and_ends_with_the_writer() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut sub = service.subscribe(Query::Range { q, r: 15.0 }).unwrap();
        assert!(sub.initial().is_empty());
        assert_eq!(sub.epoch(), 0);

        // One commit inside the range, one outside.
        e.apply_batch(&[
            Update::InsertObjectAt {
                center: Point2::new(12.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 1,
            },
            Update::InsertObjectAt {
                center: Point2::new(28.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 2,
            },
        ])
        .unwrap();
        let n = sub.wait().unwrap().expect("one commit routed");
        assert_eq!(n.epoch, 1);
        assert_eq!(n.changes.len(), 1, "only the near object entered");
        assert_eq!(n.changes[0].1, MonitorChange::Entered);
        assert!(!n.lagged);
        assert!(n.ranked.is_none(), "range subscriptions carry no ranking");
        assert_eq!(sub.current().len(), 1);
        assert_eq!(sub.epoch(), 1);

        // A topology commit routes to everyone and refreshes internally.
        let door = e.space().doors().next().unwrap().id;
        e.apply_batch(&[Update::CloseDoor(door)]).unwrap();
        let n = sub.wait().unwrap().expect("topology commit routed");
        assert!(n.report.delta.topology_changed);
        assert_eq!(n.changes.len(), 1, "the near object left");
        assert!(sub.current().is_empty());

        // Dropping the engine ends the stream.
        drop(e);
        assert!(sub.wait().unwrap().is_none());
        assert!(sub.poll().unwrap().is_empty());
    }

    #[test]
    fn poll_drains_routed_commits_in_order() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut sub = service.subscribe(Query::Range { q, r: 40.0 }).unwrap();
        for seed in 1..=3u64 {
            e.insert_object_at(Point2::new(5.0 + seed as f64, 5.0), 0, 1.0, 4, seed)
                .unwrap();
        }
        // Routing is asynchronous; wait for the dispatch thread to catch
        // up before draining.
        service.quiesce();
        let notifications = sub.poll().unwrap();
        assert_eq!(notifications.len(), 3);
        assert_eq!(
            notifications.iter().map(|n| n.epoch).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(sub.current().len(), 3);
        // Fresh evaluation agrees.
        let fresh = service.execute(&Query::Range { q, r: 40.0 }).unwrap();
        assert_eq!(fresh.as_range().unwrap().results.len(), 3);
    }

    #[test]
    fn irrelevant_commits_are_never_delivered() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        // Frozen zero-slack options keep the candidate footprint to the
        // query's own room inside this small floorplan.
        let tight = QueryOptions::builder().subgraph_slack(0.0).build();
        let mut sub = service
            .subscribe_with(Query::Range { q, r: 5.0 }, tight)
            .unwrap();

        // Far-room churn: provably outside the footprint.
        for seed in 1..=4u64 {
            e.insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 4, seed)
                .unwrap();
        }
        service.quiesce();
        assert!(
            sub.poll().unwrap().is_empty(),
            "disjoint commits produce no notifications"
        );
        assert_eq!(sub.epoch(), 0, "epoch advances only on routed commits");
        let stats = service.dispatch_stats();
        assert_eq!(stats.skipped, 4);
        assert_eq!(stats.deliveries, 0);

        // A commit inside the footprint still gets through.
        e.insert_object_at(Point2::new(3.0, 5.0), 0, 1.0, 4, 9)
            .unwrap();
        let n = sub.wait().unwrap().expect("near commit routed");
        assert_eq!(n.changes.len(), 1);
        assert_eq!(sub.epoch(), e.epoch());
    }

    #[test]
    fn knn_subscription_tracks_fresh_queries() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut sub = service.subscribe(Query::Knn { q, k: 2 }).unwrap();
        assert!(sub.initial().is_empty());
        assert_eq!(sub.ranked().map(|r| r.len()), Some(0));

        e.insert_object_at(Point2::new(12.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        e.insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 4, 2)
            .unwrap();
        e.insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 3)
            .unwrap();
        let mut last_ranked = None;
        while sub.epoch() < e.epoch() {
            let n = sub.wait().unwrap().expect("stream is live");
            last_ranked = n.ranked;
        }
        // The maintained ranking equals a fresh ikNNQ at the final epoch.
        let fresh = e.knn(q, 2).unwrap();
        let fresh_ranked: Vec<(ObjectId, f64)> = fresh
            .results
            .iter()
            .map(|h| (h.object, h.distance))
            .collect();
        assert_eq!(last_ranked.as_deref(), Some(&fresh_ranked[..]));
        assert_eq!(sub.ranked(), Some(&fresh_ranked[..]));
        let fresh_ids: Vec<ObjectId> = {
            let mut ids: Vec<ObjectId> = fresh.results.iter().map(|h| h.object).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(sub.current(), fresh_ids);

        // A door close re-verifies through a full refresh.
        let door = e.space().doors().next().unwrap().id;
        e.apply_batch(&[Update::CloseDoor(door)]).unwrap();
        let n = sub.wait().unwrap().expect("topology routed");
        assert!(n.report.delta.topology_changed);
        let fresh = e.knn(q, 2).unwrap();
        assert_eq!(
            sub.ranked().map(|r| r.len()),
            Some(fresh.results.len()),
            "ranking matches the post-topology fresh query"
        );
    }

    #[test]
    fn bounded_subscription_coalesces_with_a_lag_marker() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut sub = service
            .subscribe_bounded(Query::Range { q, r: 40.0 }, 2)
            .unwrap();
        // Never polled while 5 commits land: capacity 2 forces the tail
        // to coalesce.
        for seed in 1..=5u64 {
            e.insert_object_at(Point2::new(5.0 + seed as f64, 5.0), 0, 1.0, 4, seed)
                .unwrap();
        }
        service.quiesce();
        let notifications = sub.poll().unwrap();
        assert!(notifications.len() < 5, "tail commits were coalesced");
        let last = notifications.last().unwrap();
        assert!(last.lagged, "the merged delivery is marked");
        assert_eq!(last.epoch, 5, "coalesced delivery reports the newest epoch");
        assert_eq!(
            sub.current().len(),
            5,
            "coalesced changes still reconstruct the exact result set"
        );
        assert!(service.dispatch_stats().coalesced > 0);
    }

    #[test]
    fn default_subscriptions_track_widening_options() {
        // Subscribe while only small objects exist, then insert a
        // larger-radius object and reconfigure topology: the default
        // subscription must adopt the widened effective options, so its
        // internal refresh matches a fresh default query at that epoch.
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        e.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut sub = service.subscribe(Query::Range { q, r: 30.0 }).unwrap();

        // Radius 15 pushes the effective slack past the 60 m floor
        // (`QueryOptions::for_max_radius`: max(4r + 20, 60)).
        e.insert_object_at(Point2::new(25.0, 5.0), 0, 15.0, 8, 2)
            .unwrap();
        let door = e.space().doors().next().unwrap().id;
        e.apply_batch(&[Update::CloseDoor(door), Update::OpenDoor(door)])
            .unwrap();
        while sub.epoch() < e.epoch() {
            assert!(sub.wait().unwrap().is_some(), "writer is still alive");
        }
        let fresh: Vec<ObjectId> = e
            .range_query(q, 30.0)
            .unwrap()
            .results
            .iter()
            .map(|h| h.object)
            .collect();
        assert_eq!(
            sub.current(),
            fresh,
            "the tracked options match a fresh default query"
        );
    }

    #[test]
    fn distance_and_path_queries_do_not_subscribe() {
        let e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(15.0, 5.0), 0);
        let err = service.subscribe(Query::Distance { q, p }).unwrap_err();
        assert!(matches!(err, EngineError::UnsupportedSubscription(_)));
        assert!(err.to_string().contains("subscription"));
        assert!(
            err.to_string().contains("range") && err.to_string().contains("kNN"),
            "the error names the supported kinds: {err}"
        );
        let err = service.subscribe(Query::Path { q, p }).unwrap_err();
        assert!(matches!(err, EngineError::UnsupportedSubscription(_)));
        // kNN now subscribes fine.
        let sub = service.subscribe(Query::Knn { q, k: 1 }).unwrap();
        assert!(sub.initial().is_empty());
    }

    #[test]
    fn dropped_subscriptions_deregister_eagerly() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let sub = service.subscribe(Query::Range { q, r: 40.0 }).unwrap();
        let keeper = service.subscribe(Query::Range { q, r: 40.0 }).unwrap();
        drop(sub);
        e.insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        service.quiesce();
        let stats = service.dispatch_stats();
        assert_eq!(stats.registered, 2);
        assert_eq!(stats.dropped, 1, "drop deregistered immediately");
        assert_eq!(
            stats.deliveries, 1,
            "only the surviving subscription was routed"
        );
        drop(keeper);
    }

    #[test]
    fn subscribing_after_writer_retirement_yields_a_closed_stream() {
        let e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let service = e.service();
        drop(e);
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut sub = service.subscribe(Query::Range { q, r: 15.0 }).unwrap();
        assert!(sub.wait().unwrap().is_none(), "no writer, stream is over");
        // The service still answers queries on the final version.
        assert!(service
            .execute(&Query::Range { q, r: 15.0 })
            .unwrap()
            .as_range()
            .unwrap()
            .results
            .is_empty());
    }
}
