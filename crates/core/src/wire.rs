//! Durable wire codec for the engine's log and checkpoint payloads.
//!
//! Three formats live here, all built from the same primitives as the
//! model/object codecs:
//!
//! * [`put_update`] / [`take_update`] — one typed [`Update`], tagged by
//!   variant in declaration order;
//! * [`put_batch`] / [`take_batch`] — one WAL record payload: a batch's
//!   updates plus the object ids its inserts produced
//!   ([`WalBatch::inserted`]), so replay can *prove* the recovered
//!   execution allocated the same ids the original did;
//! * [`put_engine_checkpoint`] / [`take_engine_checkpoint`] — a full
//!   materialized version: space, store, and the history-dependent
//!   `max_radius` high-water mark (the index is derived state and is
//!   rebuilt from the decoded layers).
//!
//! Determinism is the contract: identical engine state encodes to
//! identical bytes, and decoding reproduces bit-identical floats. The
//! crash-matrix tests lean on both directions.

use crate::update::Update;
use idq_model::wire::{
    put_direction, put_floor, put_partition_spec, put_point, put_space, put_split_line,
    take_direction, take_floor, take_partition_spec, take_point, take_space, take_split_line,
};
use idq_model::{DoorId, IndoorSpace, PartitionId};
use idq_objects::wire::{put_object, put_store, take_object, take_store};
use idq_objects::{ObjectId, ObjectStore};
use idq_storage::codec::{put_bool, put_f64, put_u32, put_u64, put_u8, put_usize, Cursor};
use idq_storage::StorageError;

/// Format version of the checkpoint payload (bumped on layout changes so
/// recovery fails loudly instead of misparsing).
const CHECKPOINT_FORMAT: u8 = 1;

pub fn put_update(buf: &mut Vec<u8>, update: &Update) {
    match update {
        Update::InsertObject(object) => {
            put_u8(buf, 0);
            put_object(buf, object);
        }
        Update::InsertObjectAt {
            center,
            floor,
            radius,
            instances,
            seed,
        } => {
            put_u8(buf, 1);
            put_point(buf, *center);
            put_floor(buf, *floor);
            put_f64(buf, *radius);
            put_usize(buf, *instances);
            put_u64(buf, *seed);
        }
        Update::MoveObject {
            id,
            center,
            floor,
            seed,
        } => {
            put_u8(buf, 2);
            put_u64(buf, id.0);
            put_point(buf, *center);
            put_floor(buf, *floor);
            put_u64(buf, *seed);
        }
        Update::RemoveObject(id) => {
            put_u8(buf, 3);
            put_u64(buf, id.0);
        }
        Update::OpenDoor(d) => {
            put_u8(buf, 4);
            put_u32(buf, d.0);
        }
        Update::CloseDoor(d) => {
            put_u8(buf, 5);
            put_u32(buf, d.0);
        }
        Update::InsertDoor {
            a,
            b,
            position,
            floor,
            direction,
        } => {
            put_u8(buf, 6);
            put_u32(buf, a.0);
            put_u32(buf, b.0);
            put_point(buf, *position);
            put_floor(buf, *floor);
            put_direction(buf, *direction);
        }
        Update::InsertPartition(spec) => {
            put_u8(buf, 7);
            put_partition_spec(buf, spec);
        }
        Update::DeletePartition(p) => {
            put_u8(buf, 8);
            put_u32(buf, p.0);
        }
        Update::SplitPartition {
            partition,
            line,
            connecting_door,
        } => {
            put_u8(buf, 9);
            put_u32(buf, partition.0);
            put_split_line(buf, *line);
            put_bool(buf, connecting_door.is_some());
            if let Some(p) = connecting_door {
                put_point(buf, *p);
            }
        }
        Update::MergePartitions(a, b) => {
            put_u8(buf, 10);
            put_u32(buf, a.0);
            put_u32(buf, b.0);
        }
    }
}

pub fn take_update(c: &mut Cursor<'_>) -> Result<Update, StorageError> {
    let tag_at = c.pos();
    match c.take_u8("update tag")? {
        0 => Ok(Update::InsertObject(Box::new(take_object(c)?))),
        1 => Ok(Update::InsertObjectAt {
            center: take_point(c)?,
            floor: take_floor(c)?,
            radius: c.take_f64("insert radius")?,
            instances: c.take_usize("insert instance count")?,
            seed: c.take_u64("insert seed")?,
        }),
        2 => Ok(Update::MoveObject {
            id: ObjectId(c.take_u64("move object id")?),
            center: take_point(c)?,
            floor: take_floor(c)?,
            seed: c.take_u64("move seed")?,
        }),
        3 => Ok(Update::RemoveObject(ObjectId(
            c.take_u64("remove object id")?,
        ))),
        4 => Ok(Update::OpenDoor(DoorId(c.take_u32("open door id")?))),
        5 => Ok(Update::CloseDoor(DoorId(c.take_u32("close door id")?))),
        6 => Ok(Update::InsertDoor {
            a: PartitionId(c.take_u32("door partition a")?),
            b: PartitionId(c.take_u32("door partition b")?),
            position: take_point(c)?,
            floor: take_floor(c)?,
            direction: take_direction(c)?,
        }),
        7 => Ok(Update::InsertPartition(take_partition_spec(c)?)),
        8 => Ok(Update::DeletePartition(PartitionId(
            c.take_u32("delete partition id")?,
        ))),
        9 => Ok(Update::SplitPartition {
            partition: PartitionId(c.take_u32("split partition id")?),
            line: take_split_line(c)?,
            connecting_door: if c.take_bool("split connecting door flag")? {
                Some(take_point(c)?)
            } else {
                None
            },
        }),
        10 => Ok(Update::MergePartitions(
            PartitionId(c.take_u32("merge partition a")?),
            PartitionId(c.take_u32("merge partition b")?),
        )),
        _ => Err(StorageError::Decode {
            what: "update tag",
            offset: tag_at,
        }),
    }
}

/// One WAL record payload: the batch exactly as the sequencer committed
/// it, plus the object ids its inserts allocated (in outcome order) so
/// replay verifies id-allocation determinism instead of assuming it.
#[derive(Clone, Debug)]
pub struct WalBatch {
    pub updates: Vec<Update>,
    /// Ids of the objects this batch inserted, in outcome order — both
    /// `InsertObject` (externally named) and `InsertObjectAt` (allocated).
    pub inserted: Vec<ObjectId>,
}

pub fn put_batch(buf: &mut Vec<u8>, batch: &WalBatch) {
    put_batch_parts(buf, &batch.updates, &batch.inserted);
}

/// [`put_batch`] from borrowed parts — the committing sequencer encodes
/// straight from the batch it is about to publish, no [`WalBatch`]
/// allocation needed.
pub fn put_batch_parts(buf: &mut Vec<u8>, updates: &[Update], inserted: &[ObjectId]) {
    put_usize(buf, updates.len());
    for u in updates {
        put_update(buf, u);
    }
    put_usize(buf, inserted.len());
    for id in inserted {
        put_u64(buf, id.0);
    }
}

pub fn take_batch(c: &mut Cursor<'_>) -> Result<WalBatch, StorageError> {
    let n = c.take_len("batch update count")?;
    let mut updates = Vec::with_capacity(n);
    for _ in 0..n {
        updates.push(take_update(c)?);
    }
    let n = c.take_len("batch inserted-id count")?;
    let mut inserted = Vec::with_capacity(n);
    for _ in 0..n {
        inserted.push(ObjectId(c.take_u64("batch inserted id")?));
    }
    Ok(WalBatch { updates, inserted })
}

/// Encode a full checkpoint payload: the space and store layers plus the
/// `max_radius` high-water mark (history-dependent — the largest region
/// radius *ever* inserted, not derivable from the live population).
pub fn put_engine_checkpoint(
    buf: &mut Vec<u8>,
    space: &IndoorSpace,
    store: &ObjectStore,
    max_radius: f64,
) {
    put_u8(buf, CHECKPOINT_FORMAT);
    put_space(buf, space);
    put_store(buf, store);
    put_f64(buf, max_radius);
}

/// Decode a checkpoint payload back into its layers.
pub fn take_engine_checkpoint(
    c: &mut Cursor<'_>,
) -> Result<(IndoorSpace, ObjectStore, f64), StorageError> {
    let at = c.pos();
    if c.take_u8("checkpoint format")? != CHECKPOINT_FORMAT {
        return Err(StorageError::Decode {
            what: "checkpoint format version",
            offset: at,
        });
    }
    let space = take_space(c)?;
    let store = take_store(c)?;
    let max_radius = c.take_f64("checkpoint max radius")?;
    Ok((space, store, max_radius))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::{Circle, Point2, Polygon, Rect2};
    use idq_model::{Direction, FloorPlanBuilder, PartitionKind, SplitLine};
    use idq_model::{DoorSpec, PartitionSpec};
    use idq_objects::UncertainObject;

    fn all_variants() -> Vec<Update> {
        vec![
            Update::InsertObject(Box::new(
                UncertainObject::with_uniform_weights(
                    ObjectId(5),
                    Circle::new(Point2::new(1.0, 2.0), 3.0),
                    0,
                    vec![Point2::new(0.5, 1.5), Point2::new(1.5, 2.5)],
                )
                .unwrap(),
            )),
            Update::InsertObjectAt {
                center: Point2::new(4.0, 5.0),
                floor: 1,
                radius: 2.0,
                instances: 16,
                seed: 0xDEAD_BEEF,
            },
            Update::MoveObject {
                id: ObjectId(5),
                center: Point2::new(6.0, 7.0),
                floor: 2,
                seed: 99,
            },
            Update::RemoveObject(ObjectId(5)),
            Update::OpenDoor(DoorId(3)),
            Update::CloseDoor(DoorId(4)),
            Update::InsertDoor {
                a: PartitionId(0),
                b: PartitionId(1),
                position: Point2::new(10.0, 5.0),
                floor: 0,
                direction: Direction::OneWay,
            },
            Update::InsertPartition(PartitionSpec {
                kind: PartitionKind::Room,
                name: Some("annex".into()),
                floor: 1,
                footprint: Polygon::from_rect(Rect2::from_bounds(0.0, 0.0, 5.0, 5.0)),
                doors: vec![DoorSpec {
                    position: Point2::new(0.0, 2.0),
                    other: PartitionId(2),
                    direction: Direction::Bidirectional,
                }],
            }),
            Update::DeletePartition(PartitionId(6)),
            Update::SplitPartition {
                partition: PartitionId(1),
                line: SplitLine::AtX(2.5),
                connecting_door: Some(Point2::new(2.5, 1.0)),
            },
            Update::SplitPartition {
                partition: PartitionId(1),
                line: SplitLine::AtY(1.5),
                connecting_door: None,
            },
            Update::MergePartitions(PartitionId(1), PartitionId(2)),
        ]
    }

    #[test]
    fn every_update_variant_round_trips() {
        // Decode-then-re-encode must reproduce the exact bytes: a stronger
        // check than structural equality (it covers every float bit and
        // every length prefix).
        for u in all_variants() {
            let mut buf = Vec::new();
            put_update(&mut buf, &u);
            let mut c = Cursor::new(&buf);
            let back = take_update(&mut c).unwrap();
            c.finish("update").unwrap();
            let mut again = Vec::new();
            put_update(&mut again, &back);
            assert_eq!(again, buf, "variant did not survive the round trip");
        }
    }

    #[test]
    fn batch_round_trips_with_inserted_ids() {
        let batch = WalBatch {
            updates: all_variants(),
            inserted: vec![ObjectId(5), ObjectId(60)],
        };
        let mut buf = Vec::new();
        put_batch(&mut buf, &batch);
        let mut c = Cursor::new(&buf);
        let back = take_batch(&mut c).unwrap();
        c.finish("batch").unwrap();
        assert_eq!(back.inserted, batch.inserted);
        let mut again = Vec::new();
        put_batch(&mut again, &back);
        assert_eq!(again, buf);
    }

    #[test]
    fn corrupt_update_tag_is_a_decode_error() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 42);
        assert!(matches!(
            take_update(&mut Cursor::new(&buf)),
            Err(StorageError::Decode {
                what: "update tag",
                ..
            })
        ));
    }

    #[test]
    fn engine_checkpoint_round_trips() {
        let mut b = FloorPlanBuilder::new(4.0);
        let a = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let c2 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        b.add_door_between(a, c2, Point2::new(10.0, 5.0)).unwrap();
        let space = b.finish().unwrap();
        let mut store = ObjectStore::new();
        store
            .insert(
                UncertainObject::with_uniform_weights(
                    ObjectId(1),
                    Circle::new(Point2::new(5.0, 5.0), 2.0),
                    0,
                    vec![Point2::new(4.0, 5.0), Point2::new(6.0, 5.0)],
                )
                .unwrap(),
            )
            .unwrap();

        let mut buf = Vec::new();
        put_engine_checkpoint(&mut buf, &space, &store, 7.5);
        let mut c = Cursor::new(&buf);
        let (rspace, rstore, radius) = take_engine_checkpoint(&mut c).unwrap();
        c.finish("checkpoint").unwrap();
        assert_eq!(rspace.num_floors(), space.num_floors());
        assert_eq!(rstore.len(), 1);
        assert_eq!(radius.to_bits(), 7.5f64.to_bits());

        // A format-version mismatch fails loudly.
        buf[0] = 0xFF;
        assert!(take_engine_checkpoint(&mut Cursor::new(&buf)).is_err());
    }
}
