//! Engine-level entry points for [`RangeMonitor`] — snapshot-based
//! conveniences plus the delta-driven [`MonitorExt::absorb`].
//!
//! `RangeMonitor` lives in `idq-query` beneath the engine, so its raw
//! methods take the `(space, index, store)` triple. The [`MonitorExt`]
//! extension trait closes that gap for engine users: every method reads
//! the layers out of an owned [`Snapshot`], and `absorb` consumes the
//! [`UpdateReport`] a committed [`crate::IndoorEngine::apply_batch`]
//! returns — the monitor re-evaluates exactly the objects the batch's net
//! delta names (falling back to one full refresh when the topology
//! changed), replacing the caller-orchestrated
//! `on_object_update`/`invalidate` dance.
//!
//! For a monitor that is *fed automatically* on every commit — without
//! the caller routing reports — see [`crate::IndoorService::subscribe`],
//! which wraps a `RangeMonitor` in a [`crate::Subscription`].

use crate::error::EngineError;
use crate::snapshot::Snapshot;
use crate::update::UpdateReport;
use idq_objects::ObjectId;
use idq_query::{MonitorChange, RangeMonitor};

/// Snapshot- and report-driven entry points for [`RangeMonitor`].
pub trait MonitorExt {
    /// Full re-evaluation through the indexed pipeline on a snapshot
    /// (see [`RangeMonitor::refresh`]). Returns the objects inside.
    fn refresh_on(&mut self, snapshot: &Snapshot) -> Result<Vec<ObjectId>, EngineError>;

    /// Re-evaluates one updated object against the cached distance tree
    /// (see [`RangeMonitor::on_object_update`]).
    fn on_object_update_on(
        &mut self,
        snapshot: &Snapshot,
        id: ObjectId,
    ) -> Result<MonitorChange, EngineError>;

    /// Absorbs a committed batch: removals leave the result set, inserted
    /// and moved objects are re-evaluated, and a topology change triggers
    /// one full refresh. Returns every membership change, ascending by id.
    fn absorb(
        &mut self,
        report: &UpdateReport,
        snapshot: &Snapshot,
    ) -> Result<Vec<(ObjectId, MonitorChange)>, EngineError>;
}

impl MonitorExt for RangeMonitor {
    fn refresh_on(&mut self, snapshot: &Snapshot) -> Result<Vec<ObjectId>, EngineError> {
        Ok(self.refresh(snapshot.space(), snapshot.index(), snapshot.store())?)
    }

    fn on_object_update_on(
        &mut self,
        snapshot: &Snapshot,
        id: ObjectId,
    ) -> Result<MonitorChange, EngineError> {
        Ok(self.on_object_update(snapshot.space(), snapshot.index(), snapshot.store(), id)?)
    }

    fn absorb(
        &mut self,
        report: &UpdateReport,
        snapshot: &Snapshot,
    ) -> Result<Vec<(ObjectId, MonitorChange)>, EngineError> {
        let updated = report.delta.updated();
        Ok(self.absorb_delta(
            &updated,
            &report.delta.removed,
            report.delta.topology_changed,
            snapshot.space(),
            snapshot.index(),
            snapshot.store(),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::Update;
    use crate::{EngineConfig, IndoorEngine};
    use idq_geom::{Point2, Rect2};
    use idq_model::{FloorPlanBuilder, IndoorPoint};
    use idq_query::QueryOptions;

    fn three_rooms() -> idq_model::IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn absorb_tracks_a_batch_without_destructuring() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut mon = RangeMonitor::new(q, 15.0, QueryOptions::default()).unwrap();
        mon.refresh_on(&e.snapshot()).unwrap();
        assert!(mon.current().is_empty());

        let report = e
            .apply_batch(&[
                Update::InsertObjectAt {
                    center: Point2::new(12.0, 5.0),
                    floor: 0,
                    radius: 1.0,
                    instances: 4,
                    seed: 1,
                },
                Update::InsertObjectAt {
                    center: Point2::new(28.0, 5.0),
                    floor: 0,
                    radius: 1.0,
                    instances: 4,
                    seed: 2,
                },
            ])
            .unwrap();
        let changes = mon.absorb(&report, &e.snapshot()).unwrap();
        assert_eq!(changes.len(), 1, "only the near object entered");
        let inside = mon.current();
        // The absorbed set matches a from-scratch evaluation.
        let fresh: Vec<_> = e
            .range_query(q, 15.0)
            .unwrap()
            .results
            .iter()
            .map(|h| h.object)
            .collect();
        assert_eq!(inside, fresh);

        // Per-object convenience path agrees as well.
        let id = inside[0];
        let change = mon.on_object_update_on(&e.snapshot(), id).unwrap();
        assert_eq!(change, MonitorChange::Unchanged);
    }

    #[test]
    fn absorb_falls_back_to_refresh_on_topology_change() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let id = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mut mon = RangeMonitor::new(q, 20.0, QueryOptions::default()).unwrap();
        mon.refresh_on(&e.snapshot()).unwrap();
        assert!(mon.contains(id));
        let door = e.space().doors().next().unwrap().id;
        let report = e.apply_batch(&[Update::CloseDoor(door)]).unwrap();
        assert!(report.delta.topology_changed);
        let changes = mon.absorb(&report, &e.snapshot()).unwrap();
        assert_eq!(changes, vec![(id, MonitorChange::Left)]);
        assert!(mon.current().is_empty());
    }
}
