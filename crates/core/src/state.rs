//! [`EngineState`] — one immutable, epoch-stamped version of the indoor
//! world, shared by reference counting.
//!
//! This is the MVCC substrate of the concurrent service API: every
//! committed write produces a *new* `EngineState` (copy-on-write of what
//! it touched; everything else is shared through [`Arc`]s) and swaps it
//! into the service's current-version cell. Old versions are never
//! mutated — they live for exactly as long as some [`crate::Snapshot`]
//! pins them, so any number of reader threads can evaluate queries
//! against consistent versions while a writer commits, with no locks held
//! during evaluation.
//!
//! # Sharding
//!
//! Structural sharing between versions is **per floor shard**, not per
//! layer. A state decomposes into:
//!
//! * **per-floor shards** — floor `f`'s slice of the object population
//!   ([`idq_objects::StoreShard`]) and of the index's o-table
//!   ([`idq_index::FloorShard`]), plus the `Arc`-per-bucket unit buckets —
//!   deep-copied by a commit **only for the floors its updates land in**;
//! * **a cross-floor core** — the space, the index's geometry tiers (unit
//!   store, R-tree, skeleton, doors graph) and the query options — shared
//!   untouched across every version a pure object commit produces, and
//!   copied only when a topology update rewires the building.
//!
//! The `space`/`store`/`index` fields below keep their façade types (the
//! read path — [`crate::Snapshot`], the query crate — is oblivious to
//! sharding); the shards live *inside* `ObjectStore` and
//! `CompositeIndex`, which is what keeps their public APIs and every
//! query answer observably identical to the unsharded engine.

use idq_index::CompositeIndex;
use idq_model::IndoorSpace;
use idq_objects::ObjectStore;
use idq_query::QueryOptions;
use std::sync::Arc;

/// One immutable version of the engine's world: the indoor space, the
/// object population and the composite index, stamped with the write
/// epoch that produced it.
///
/// States are built by [`crate::IndoorEngine`] commits and read through
/// [`crate::Snapshot`]s; they are exposed so harnesses can assemble
/// snapshots from bare layers (see [`crate::Snapshot::from_parts`]).
#[derive(Clone, Debug)]
pub struct EngineState {
    pub(crate) space: Arc<IndoorSpace>,
    pub(crate) store: Arc<ObjectStore>,
    pub(crate) index: Arc<CompositeIndex>,
    /// Base query options configured at engine construction.
    pub(crate) options: QueryOptions,
    /// Largest uncertainty radius ever inserted, used to widen the
    /// subgraph slack of the effective options.
    pub(crate) max_radius: f64,
    /// The write epoch this state is the result of (0 for the initial
    /// population).
    pub(crate) epoch: u64,
}

impl EngineState {
    /// Assembles a state from bare layers at epoch 0 (benchmark harnesses;
    /// engine-produced states carry their commit epoch). Costs three
    /// pointer moves: the store is *not* scanned, so
    /// [`EngineState::effective_options`] of a bare-parts state is just
    /// `options` — harnesses size their options explicitly (e.g. with
    /// [`QueryOptions::for_max_radius`]).
    pub fn from_parts(
        space: Arc<IndoorSpace>,
        store: Arc<ObjectStore>,
        index: Arc<CompositeIndex>,
        options: QueryOptions,
    ) -> Self {
        EngineState {
            space,
            store,
            index,
            options,
            max_radius: 0.0,
            epoch: 0,
        }
    }

    /// Assembles a state from bare layers **at a given epoch** with an
    /// explicit `max_radius` high-water mark — the reconstruction
    /// constructor: `idq-history` rebuilds retained epochs through this so
    /// a reconstructed version carries the same epoch stamp, checkpoint
    /// bytes ([`crate::Snapshot::encode_checkpoint`]) and effective query
    /// options as the live version the engine once published. Like
    /// [`EngineState::from_parts`], the store is not scanned: the caller
    /// supplies the high-water mark it recorded.
    pub fn from_parts_at(
        space: Arc<IndoorSpace>,
        store: Arc<ObjectStore>,
        index: Arc<CompositeIndex>,
        options: QueryOptions,
        max_radius: f64,
        epoch: u64,
    ) -> Self {
        EngineState {
            space,
            store,
            index,
            options,
            max_radius,
            epoch,
        }
    }

    /// The indoor space of this version.
    pub fn space(&self) -> &IndoorSpace {
        &self.space
    }

    /// The indoor space of this version, shared — a reference-counted
    /// handle for callers assembling derived states
    /// ([`EngineState::from_parts_at`]) without deep-copying the space.
    pub fn space_arc(&self) -> Arc<IndoorSpace> {
        Arc::clone(&self.space)
    }

    /// The object population of this version.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The composite index of this version.
    pub fn index(&self) -> &CompositeIndex {
        &self.index
    }

    /// The write epoch this version is the result of.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The base query options configured at engine construction — the
    /// input [`EngineState::effective_options`] widens. Reconstruction
    /// ([`EngineState::from_parts_at`]) takes the base, not the effective
    /// form, so the widening replays from the recorded `max_radius`.
    pub fn base_options(&self) -> QueryOptions {
        self.options
    }

    /// The largest uncertainty-region radius ever inserted up to this
    /// version (a high-water mark: monotone across epochs, not derivable
    /// from the live population).
    pub fn max_radius(&self) -> f64 {
        self.max_radius
    }

    /// The effective default query options of this version: the base
    /// options with the subgraph slack widened to the largest uncertainty
    /// region ever inserted.
    pub fn effective_options(&self) -> QueryOptions {
        Self::effective_options_for(self.options, self.max_radius)
    }

    /// The widening rule behind [`EngineState::effective_options`], usable
    /// without a state: base options with the subgraph slack widened to a
    /// given radius high-water mark. History replay re-derives per-epoch
    /// effective options through this so reconstructed answers use exactly
    /// the options the live engine used at that epoch.
    pub fn effective_options_for(options: QueryOptions, max_radius: f64) -> QueryOptions {
        let by_radius = QueryOptions::for_max_radius(max_radius);
        QueryOptions {
            subgraph_slack: options.subgraph_slack.max(by_radius.subgraph_slack),
            ..options
        }
    }

    /// Encodes this version's durable content as a checkpoint payload:
    /// space, store, and the `max_radius` high-water mark. The index is
    /// derived state (rebuilt on recovery); the epoch travels in the
    /// checkpoint header. Safe to call from any thread on any pinned
    /// version — versions are immutable, so checkpointing runs
    /// concurrently with committing writers.
    pub(crate) fn encode_checkpoint(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        crate::wire::put_engine_checkpoint(&mut buf, &self.space, &self.store, self.max_radius);
        buf
    }
}
