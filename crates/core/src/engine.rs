//! The engine: space + objects + index, kept consistent — and served
//! concurrently.
//!
//! [`IndoorEngine`] owns an MVCC service whose state lives in an
//! immutable, `Arc`-shared [`EngineState`]: every successful
//! [`IndoorEngine::apply`] / [`IndoorEngine::apply_batch`] commits by
//! building the *next* state — copy-on-write of the layers the batch
//! touched — and swapping it into the service cell under its new epoch.
//! The write path is **multi-writer**: the engine's own applies delegate
//! to a [`WriteHandle`] ([`IndoorEngine::writer`] clones more of them for
//! other threads), and all handles feed one epoch sequencer that stages
//! batches in parallel, orders them, and group-commits concurrent
//! submissions into single epochs (see [`crate::write`]). Reads go
//! through owned [`Snapshot`]s pinned to a version
//! ([`IndoorEngine::snapshot`], or any thread via
//! [`IndoorEngine::service`]); standing queries subscribe through
//! [`crate::IndoorService::subscribe`] and are fed each commit's
//! [`UpdateReport`]. Failure atomicity is structural: an error anywhere
//! in a batch drops the in-flight copy, leaving the committed version
//! untouched.

use crate::durability::{has_durable_state, load_checkpoint, Durability};
use crate::error::EngineError;
use crate::service::{IndoorService, Shared};
use crate::snapshot::Snapshot;
use crate::state::EngineState;
use crate::update::{Update, UpdateOutcome, UpdateReport};
use crate::wire;
use crate::write::WriteHandle;
use crate::DurabilityOptions;
use idq_geom::Point2;
use idq_index::{CompositeIndex, IndexConfig};
use idq_model::IndoorPoint;
use idq_model::{Direction, DoorId, Floor, IndoorSpace, PartitionId, PartitionSpec, SplitLine};
use idq_objects::{ObjectId, ObjectStore, UncertainObject};
use idq_query::{KnnResult, Outcome, Query, QueryOptions, RangeResult};
use idq_storage::codec::Cursor;
use idq_storage::{FileBackend, StorageBackend, StorageError, WalRecord};
use std::path::Path;
use std::sync::Arc;

/// Engine configuration: index layout plus default query options.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// Composite-index parameters (fanout, `T_shape`, bulk load).
    pub index: IndexConfig,
    /// Default query options (ablation switches, subgraph slack).
    pub query: QueryOptions,
}

/// The integrated engine: the root owner of one consistent, versioned
/// indoor world.
///
/// The engine holds the bootstrap writer handle; [`IndoorEngine::writer`]
/// clones more [`WriteHandle`]s for concurrent writer threads, and reads
/// and subscriptions go through the [`IndoorService`] handle
/// ([`IndoorEngine::service`]), which any number of threads share.
/// Writer retirement is reference-counted: when the engine *and* every
/// cloned write handle have dropped, services keep answering on the
/// final version and subscriptions see their stream end.
///
/// The engine pins the version its own last apply produced: the borrowing
/// accessors ([`IndoorEngine::space`], [`IndoorEngine::store`],
/// [`IndoorEngine::index`], [`IndoorEngine::validate`]) answer on that
/// pin, which trails the published version only while *other* write
/// handles commit — [`IndoorEngine::refresh`] re-pins to the latest.
/// Everything else ([`IndoorEngine::epoch`], [`IndoorEngine::snapshot`],
/// the query conveniences) reads the latest published version directly.
#[derive(Debug)]
pub struct IndoorEngine {
    shared: Arc<Shared>,
    /// The engine's own writer handle (accounted for by the registry's
    /// initial writer count).
    writer: WriteHandle,
    /// The engine's pin: the version its own last apply produced.
    state: Arc<EngineState>,
}

impl IndoorEngine {
    /// Builds an engine over a space with no objects yet.
    pub fn new(space: IndoorSpace, config: EngineConfig) -> Result<Self, EngineError> {
        Self::with_objects(space, ObjectStore::new(), config)
    }

    /// Builds an engine over a space and an existing object population.
    pub fn with_objects(
        space: IndoorSpace,
        store: ObjectStore,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::with_objects_at(space, store, config, 0, 0.0)
    }

    /// [`IndoorEngine::with_objects`] resuming at a given epoch and
    /// radius high-water mark — recovery builds the post-checkpoint
    /// engine through this (the index is derived state, rebuilt here).
    fn with_objects_at(
        space: IndoorSpace,
        store: ObjectStore,
        config: EngineConfig,
        epoch: u64,
        radius_floor: f64,
    ) -> Result<Self, EngineError> {
        let index = CompositeIndex::build(&space, &store, config.index)?;
        let max_radius = store
            .iter()
            .map(|o| o.region.radius)
            .fold(radius_floor, f64::max);
        let state = Arc::new(EngineState {
            space: Arc::new(space),
            store: Arc::new(store),
            index: Arc::new(index),
            options: config.query,
            max_radius,
            epoch,
        });
        let shared = Arc::new(Shared::new(Arc::clone(&state)));
        let writer = WriteHandle::bootstrap(Arc::clone(&shared));
        Ok(IndoorEngine {
            shared,
            writer,
            state,
        })
    }

    // ---- durability (WAL + checkpoints + recovery) -----------------------

    /// Opens a **durable** engine rooted at a filesystem directory:
    /// recovers from it when it already holds engine state (checkpoint +
    /// log — `space_if_new` is ignored then), otherwise creates a fresh
    /// durable engine over `space_if_new` with an epoch-0 base
    /// checkpoint. Every subsequent commit is written ahead to the log
    /// per [`DurabilityOptions::sync`] before it publishes.
    pub fn open(
        path: impl AsRef<Path>,
        space_if_new: IndoorSpace,
        config: EngineConfig,
        options: DurabilityOptions,
    ) -> Result<Self, EngineError> {
        let path = path.as_ref();
        let backend = FileBackend::open(path).map_err(|cause| EngineError::Storage {
            path: path.display().to_string(),
            epoch: 0,
            cause,
        })?;
        Self::open_with(Arc::new(backend), space_if_new, config, options)
    }

    /// [`IndoorEngine::open`] over any [`StorageBackend`] (the in-memory
    /// backend drives the crash-matrix tests).
    pub fn open_with(
        backend: Arc<dyn StorageBackend>,
        space_if_new: IndoorSpace,
        config: EngineConfig,
        options: DurabilityOptions,
    ) -> Result<Self, EngineError> {
        if has_durable_state(&backend) {
            Self::recover_with(backend, config, options)
        } else {
            Self::create_with(backend, space_if_new, ObjectStore::new(), config, options)
        }
    }

    /// Creates a **fresh** durable engine on `backend`: builds the
    /// initial version, writes its epoch-0 base checkpoint (so recovery
    /// always has a floor to replay from), and opens the log. Fails if
    /// the backend already holds log records without a checkpoint —
    /// that is somebody's data, not a fresh directory.
    pub fn create_with(
        backend: Arc<dyn StorageBackend>,
        space: IndoorSpace,
        store: ObjectStore,
        config: EngineConfig,
        options: DurabilityOptions,
    ) -> Result<Self, EngineError> {
        let engine = Self::with_objects(space, store, config)?;
        let (durability, records) = Durability::open(backend, options, 0)?;
        if let Some(stray) = records.first() {
            return Err(EngineError::Recovery {
                path: durability.backend().label(),
                epoch: stray.epoch,
                cause: StorageError::Corrupt {
                    path: durability.backend().label(),
                    offset: 0,
                    reason: "log records present but no checkpoint: refusing to create over \
                             existing data"
                        .to_string(),
                },
            });
        }
        durability.checkpoint_now(&engine.shared.current())?;
        engine.shared.attach_durability(durability);
        Ok(engine)
    }

    /// Recovers an engine from `backend`: loads the newest valid
    /// checkpoint, rebuilds the derived index, then replays the log
    /// suffix — each commit group as one atomic batch, in
    /// `(epoch, offset_in_epoch)` order — verifying epoch continuity and
    /// that every replayed insert produced exactly the object ids the
    /// original commit logged. A torn record at the very tail of the log
    /// (the in-flight append the crash interrupted) was already discarded
    /// by the log open; corruption anywhere else fails recovery.
    pub fn recover_with(
        backend: Arc<dyn StorageBackend>,
        config: EngineConfig,
        options: DurabilityOptions,
    ) -> Result<Self, EngineError> {
        let label = backend.label();
        let ckpt = load_checkpoint(&backend)?;
        let mut c = Cursor::new(&ckpt.payload);
        let decoded = wire::take_engine_checkpoint(&mut c).and_then(|parts| {
            c.finish("checkpoint payload")?;
            Ok(parts)
        });
        let (space, store, max_radius) = decoded.map_err(|cause| EngineError::Recovery {
            path: label.clone(),
            epoch: ckpt.epoch,
            cause,
        })?;
        let (durability, records) = Durability::open(backend, options, ckpt.epoch)?;
        let mut engine = Self::with_objects_at(space, store, config, ckpt.epoch, max_radius)?;
        engine.replay(&records, ckpt.epoch, &label)?;
        engine.shared.attach_durability(durability);
        engine.refresh();
        Ok(engine)
    }

    /// Replays the recovered log suffix through the ordinary write path.
    /// Runs *before* durability attaches, so replayed commits are not
    /// logged a second time; the epoch numbering reproduces the original
    /// because each logged group was exactly one epoch bump.
    fn replay(
        &mut self,
        records: &[WalRecord],
        checkpoint_epoch: u64,
        label: &str,
    ) -> Result<(), EngineError> {
        let corrupt = |epoch: u64, reason: String| EngineError::Recovery {
            path: label.to_string(),
            epoch,
            cause: StorageError::Corrupt {
                path: label.to_string(),
                offset: 0,
                reason,
            },
        };
        let mut current = checkpoint_epoch;
        let mut i = 0;
        while i < records.len() {
            let epoch = records[i].epoch;
            let mut j = i;
            while j < records.len() && records[j].epoch == epoch {
                j += 1;
            }
            let group = &records[i..j];
            i = j;
            if epoch <= current {
                // Covered by the checkpoint (log truncation is lazy).
                continue;
            }
            if epoch != current + 1 {
                return Err(corrupt(
                    epoch,
                    format!(
                        "epoch gap in the log: expected {}, found {epoch}",
                        current + 1
                    ),
                ));
            }
            // A commit group replays as ONE atomic batch: concatenating
            // its batches in offset order is equivalent to the serial
            // execution the group committed as, and produces the same
            // single epoch bump as the original group commit.
            let mut updates = Vec::new();
            let mut logged_inserted = Vec::new();
            for record in group {
                let mut c = Cursor::new(&record.payload);
                let batch = wire::take_batch(&mut c)
                    .and_then(|b| {
                        c.finish("wal batch")?;
                        Ok(b)
                    })
                    .map_err(|cause| EngineError::Recovery {
                        path: label.to_string(),
                        epoch,
                        cause,
                    })?;
                updates.extend(batch.updates);
                logged_inserted.extend(batch.inserted);
            }
            let report = self
                .apply_batch(&updates)
                .map_err(|e| corrupt(epoch, format!("replay of epoch {epoch} failed: {e}")))?;
            if report.epoch != epoch {
                return Err(corrupt(
                    epoch,
                    format!("replay committed epoch {}, log says {epoch}", report.epoch),
                ));
            }
            let replayed: Vec<ObjectId> = report
                .outcomes
                .iter()
                .filter_map(UpdateOutcome::inserted_object)
                .collect();
            if replayed != logged_inserted {
                return Err(corrupt(
                    epoch,
                    format!(
                        "replay of epoch {epoch} allocated object ids {replayed:?}, \
                         log recorded {logged_inserted:?}"
                    ),
                ));
            }
            current = epoch;
        }
        Ok(())
    }

    /// Whether this engine persists its commits (built by one of the
    /// durable constructors).
    pub fn is_durable(&self) -> bool {
        self.shared.durability().is_some()
    }

    /// Writes a checkpoint of the current version synchronously and
    /// truncates the log prefix it covers, returning the checkpointed
    /// epoch — `Ok(None)` on a non-durable engine. Blocks only the
    /// caller; concurrent writers keep committing (the checkpoint
    /// encodes a pinned immutable version).
    pub fn checkpoint(&self) -> Result<Option<u64>, EngineError> {
        match self.shared.durability() {
            Some(d) => d.checkpoint_now(&self.shared.current()).map(Some),
            None => Ok(None),
        }
    }

    /// Epoch of the newest durable checkpoint (`None` on a non-durable
    /// engine). Trails [`IndoorEngine::epoch`] by up to
    /// [`DurabilityOptions::checkpoint_every`] epochs plus the in-flight
    /// background checkpoint.
    pub fn last_checkpoint_epoch(&self) -> Option<u64> {
        self.shared.durability().map(|d| d.last_checkpoint_epoch())
    }

    /// Forces every logged commit durable now regardless of the sync
    /// policy (`Ok` and a no-op on a non-durable engine). The same flush
    /// runs automatically when the last write handle drops.
    pub fn flush_wal(&self) -> Result<(), EngineError> {
        match self.shared.durability() {
            Some(d) => d.flush(),
            None => Ok(()),
        }
    }

    // ---- accessors -------------------------------------------------------

    /// The indoor space (the engine's pinned version; see
    /// [`IndoorEngine::refresh`]).
    pub fn space(&self) -> &IndoorSpace {
        &self.state.space
    }

    /// The object population (the engine's pinned version; see
    /// [`IndoorEngine::refresh`]).
    pub fn store(&self) -> &ObjectStore {
        &self.state.store
    }

    /// The composite index (the engine's pinned version; see
    /// [`IndoorEngine::refresh`]).
    pub fn index(&self) -> &CompositeIndex {
        &self.state.index
    }

    /// The latest committed epoch: bumped once per successful commit (a
    /// batch is one transaction, hence one bump; concurrent batches may
    /// group-commit under a single bump). Two snapshots with equal
    /// [`Snapshot::version`] saw the identical world.
    pub fn epoch(&self) -> u64 {
        self.shared.current().epoch
    }

    /// The effective default query options (slack widened to the largest
    /// uncertainty region inserted so far).
    pub fn query_options(&self) -> QueryOptions {
        self.shared.current().effective_options()
    }

    /// Re-pins the engine's borrowing accessors to the latest committed
    /// version — only needed after *other* [`WriteHandle`]s commit (the
    /// engine's own applies re-pin automatically).
    pub fn refresh(&mut self) {
        self.state = self.shared.current();
    }

    // ---- the concurrent service surface ---------------------------------

    /// A cloneable, `Send + Sync` handle for reader threads: snapshots,
    /// query sessions and standing-query subscriptions, all pinned to
    /// committed versions while writers keep committing.
    pub fn service(&self) -> IndoorService {
        IndoorService::new(Arc::clone(&self.shared))
    }

    /// A cloneable, `Send + Sync` **writer** handle feeding the engine's
    /// epoch sequencer: clone it into any number of threads and apply
    /// batches concurrently — batches are staged in parallel, ordered,
    /// conflict-checked, and group-committed (see [`crate::write`]).
    pub fn writer(&self) -> WriteHandle {
        self.writer.clone()
    }

    /// Attaches a commit-retention sink (at most one per engine): from now
    /// on every committed epoch is handed to
    /// [`crate::retention::RetentionSink::record`] right after it
    /// publishes — the merged group report, a pinned [`Snapshot`] and a
    /// wall-clock stamp. Returns `false` (and does not attach) when a sink
    /// is already attached. Attach before spawning concurrent writers:
    /// commits that race the attachment itself may precede the first
    /// recorded epoch, and sinks baseline themselves with a snapshot taken
    /// after attaching (`idq-history`'s `HistoryRecorder::attach` does
    /// exactly that).
    pub fn attach_retention(&self, sink: Arc<dyn crate::retention::RetentionSink>) -> bool {
        self.shared.attach_retention(sink)
    }

    // ---- snapshots (sessions over a consistent read view) ----------------

    /// An owned snapshot pinned to the latest committed version, using the
    /// engine's effective default options. The snapshot is `Clone + Send +
    /// Sync`: hand it to any thread, it keeps reading this version no
    /// matter what commits afterwards.
    pub fn snapshot(&self) -> Snapshot {
        let current = self.shared.current();
        let options = current.effective_options();
        Snapshot::from_state(current, options)
    }

    /// A pinned snapshot with explicit query options (ablations, exact
    /// refinement…).
    pub fn snapshot_with(&self, options: QueryOptions) -> Snapshot {
        Snapshot::from_state(self.shared.current(), options)
    }

    /// Evaluates one typed [`Query`] on a fresh default snapshot.
    pub fn execute(&self, query: &Query) -> Result<Outcome, EngineError> {
        self.snapshot().execute(query)
    }

    /// Evaluates a batch of typed [`Query`]s on a fresh default snapshot,
    /// reusing one evaluation context per (query point, floor) group.
    pub fn execute_batch(&self, queries: &[Query]) -> Result<Vec<Outcome>, EngineError> {
        self.snapshot().execute_batch(queries)
    }

    // ---- typed updates (§III-C) ------------------------------------------

    /// Applies one typed [`Update`].
    ///
    /// Atomic: on error nothing was committed — the update ran on a
    /// copy-on-write transaction that is simply dropped. A success bumps
    /// the [`IndoorEngine::epoch`], publishes the new version to every
    /// service handle and notifies subscriptions.
    ///
    /// **Cost note:** under MVCC every commit copy-on-writes what it
    /// touches — which, with the state sharded by floor, is the store and
    /// o-table slice of the touched floor(s) plus the buckets whose
    /// membership changes, never the whole object population. A
    /// single-update commit therefore costs O(objects on its floor)
    /// rather than O(all objects). Batching still wins (shared footprint
    /// traversals, one shard copy amortized over the whole batch instead
    /// of one per update): on the `ingest` benchmark workload,
    /// [`IndoorEngine::apply_batch`] sustains hundreds of thousands of
    /// updates/s. Concurrent single-`apply` callers get the same
    /// amortization automatically through **group commit**: clone
    /// [`IndoorEngine::writer`] into the submitting threads and their
    /// commits coalesce into shared epochs (see [`crate::write`]).
    pub fn apply(&mut self, update: Update) -> Result<UpdateOutcome, EngineError> {
        let report = self.apply_batch(std::slice::from_ref(&update))?;
        Ok(report
            .outcomes
            .into_iter()
            .next()
            .expect("one update, one outcome"))
    }

    /// Applies a stream of typed [`Update`]s as **one atomic transaction**:
    /// either every update commits (one epoch bump, one [`UpdateReport`])
    /// or, on the first failure, nothing does — the batch runs on a
    /// copy-on-write transaction over the committed version's layers, so a
    /// failure drops the copy and the committed version was never touched
    /// (no undo log, no compensation).
    ///
    /// The batch is also **amortized**: position updates are grouped by
    /// touched partition so the composite index runs one footprint
    /// traversal per group instead of one per update, and a run of
    /// topology updates coalesces its skeleton repairs into a single
    /// rebuild at the end of the run. Results are equivalent to applying
    /// the updates one at a time in order (same objects, same ids, same
    /// query answers) — only the maintenance cost differs.
    ///
    /// A successful non-empty batch commits via the epoch-stamped atomic
    /// swap: snapshots pinned to older versions are unaffected, new
    /// snapshots see the new version, and every live subscription receives
    /// the report. This delegates to the engine's [`WriteHandle`], so it
    /// sequences correctly against any concurrently committing handles
    /// (and may share its epoch with them — see
    /// [`UpdateReport::offset_in_epoch`]).
    pub fn apply_batch(&mut self, updates: &[Update]) -> Result<UpdateReport, EngineError> {
        let result = self.writer.apply_batch(updates);
        self.refresh();
        result
    }

    // ---- object management (§III-C.2) ------------------------------------
    //
    // Stability contract (mirroring the read side): these convenience
    // methods are kept indefinitely as thin delegations onto
    // [`IndoorEngine::apply`] — existing callers never need to name
    // [`Update`]. New code, and anything issuing several updates that must
    // commit or fail together, should prefer typed updates and
    // [`IndoorEngine::apply_batch`] — under MVCC each of these calls is
    // one commit and pays the copy-on-write of the floor shards it
    // touches (see the cost note on [`IndoorEngine::apply`]), so update
    // streams belong in batches.

    /// Inserts a fully-formed uncertain object.
    pub fn insert_object(&mut self, object: UncertainObject) -> Result<(), EngineError> {
        self.apply(Update::InsertObject(Box::new(object)))
            .map(|_| ())
    }

    /// Samples and inserts an object: Gaussian instances in a circular
    /// region, per the paper's object model (§V-A).
    pub fn insert_object_at(
        &mut self,
        center: Point2,
        floor: Floor,
        radius: f64,
        instances: usize,
        seed: u64,
    ) -> Result<ObjectId, EngineError> {
        let outcome = self.apply(Update::InsertObjectAt {
            center,
            floor,
            radius,
            instances,
            seed,
        })?;
        Ok(outcome
            .inserted_object()
            .expect("insert yields an inserted-object outcome"))
    }

    /// Removes an object, returning it (a copy — the versions pinned by
    /// older snapshots keep the entry; the new version does not).
    pub fn remove_object(&mut self, id: ObjectId) -> Result<UncertainObject, EngineError> {
        let object = self.shared.current().store.get(id)?.clone();
        self.apply(Update::RemoveObject(id))?;
        Ok(object)
    }

    /// Moves an object: deletion followed by insertion with a re-sampled
    /// uncertainty region at the new position (§III-C.2's update flow).
    /// The new region is sampled (and can fail) *before* anything commits,
    /// so a failed move leaves the object exactly where it was.
    pub fn move_object(
        &mut self,
        id: ObjectId,
        center: Point2,
        floor: Floor,
        seed: u64,
    ) -> Result<(), EngineError> {
        self.apply(Update::MoveObject {
            id,
            center,
            floor,
            seed,
        })
        .map(|_| ())
    }

    // ---- queries (§IV) ---------------------------------------------------
    //
    // Stability contract: these convenience methods are kept indefinitely
    // as thin delegations onto a default snapshot — existing callers never
    // need to name `Query` or `Outcome`. All of them route through the
    // owned [`Snapshot`] (one code path with the concurrent sessions). New
    // code (and anything issuing several queries against one consistent
    // view) should prefer [`IndoorEngine::snapshot`] +
    // [`Snapshot::execute`] / [`Snapshot::execute_batch`].

    /// `iRQ(q, r)` with the engine's default options.
    pub fn range_query(&self, q: IndoorPoint, r: f64) -> Result<RangeResult, EngineError> {
        self.range_query_with(q, r, &self.query_options())
    }

    /// `iRQ(q, r)` with explicit options (ablations, exact refinement…).
    pub fn range_query_with(
        &self,
        q: IndoorPoint,
        r: f64,
        options: &QueryOptions,
    ) -> Result<RangeResult, EngineError> {
        Ok(self
            .snapshot_with(*options)
            .execute(&Query::Range { q, r })?
            .into_range()
            .expect("range query yields a range outcome"))
    }

    /// `ikNNQ(q, k)` with the engine's default options.
    pub fn knn(&self, q: IndoorPoint, k: usize) -> Result<KnnResult, EngineError> {
        self.knn_with(q, k, &self.query_options())
    }

    /// `ikNNQ(q, k)` with explicit options.
    pub fn knn_with(
        &self,
        q: IndoorPoint,
        k: usize,
        options: &QueryOptions,
    ) -> Result<KnnResult, EngineError> {
        Ok(self
            .snapshot_with(*options)
            .execute(&Query::Knn { q, k })?
            .into_knn()
            .expect("kNN query yields a kNN outcome"))
    }

    /// Point-to-point indoor distance `|q,p|_I`.
    pub fn indoor_distance(&self, q: IndoorPoint, p: IndoorPoint) -> Result<f64, EngineError> {
        Ok(self
            .snapshot()
            .execute(&Query::Distance { q, p })?
            .into_distance()
            .expect("distance query yields a distance outcome")
            .distance)
    }

    /// Shortest indoor path `q ⇝δ p`: length plus the door sequence.
    pub fn shortest_path(
        &self,
        q: IndoorPoint,
        p: IndoorPoint,
    ) -> Result<Option<(f64, Vec<DoorId>)>, EngineError> {
        Ok(self
            .snapshot()
            .execute(&Query::Path { q, p })?
            .into_path()
            .expect("path query yields a path outcome")
            .path)
    }

    // ---- topology updates (§III-C.1) -------------------------------------
    //
    // Same stability contract: thin delegations onto [`IndoorEngine::apply`].

    /// Closes a door and updates the index layers.
    pub fn close_door(&mut self, d: DoorId) -> Result<(), EngineError> {
        self.apply(Update::CloseDoor(d)).map(|_| ())
    }

    /// Re-opens a door.
    pub fn open_door(&mut self, d: DoorId) -> Result<(), EngineError> {
        self.apply(Update::OpenDoor(d)).map(|_| ())
    }

    /// Adds a temporary door between two partitions.
    pub fn insert_door(
        &mut self,
        a: PartitionId,
        b: PartitionId,
        position: Point2,
        floor: Floor,
        direction: Direction,
    ) -> Result<DoorId, EngineError> {
        Ok(self
            .apply(Update::InsertDoor {
                a,
                b,
                position,
                floor,
                direction,
            })?
            .inserted_door()
            .expect("door insert yields an inserted-door outcome"))
    }

    /// Inserts a partition with its doors.
    pub fn insert_partition(
        &mut self,
        spec: PartitionSpec,
    ) -> Result<(PartitionId, Vec<DoorId>), EngineError> {
        match self.apply(Update::InsertPartition(spec))? {
            UpdateOutcome::PartitionInserted { partition, doors } => Ok((partition, doors)),
            _ => unreachable!("partition insert yields a partition-inserted outcome"),
        }
    }

    /// Deletes a partition and its doors.
    pub fn delete_partition(&mut self, pid: PartitionId) -> Result<(), EngineError> {
        self.apply(Update::DeletePartition(pid)).map(|_| ())
    }

    /// Splits a rectangular partition with a sliding wall.
    pub fn split_partition(
        &mut self,
        pid: PartitionId,
        line: SplitLine,
        connecting_door: Option<Point2>,
    ) -> Result<[PartitionId; 2], EngineError> {
        Ok(self
            .apply(Update::SplitPartition {
                partition: pid,
                line,
                connecting_door,
            })?
            .split_halves()
            .expect("split yields a partition-split outcome"))
    }

    /// Merges two partitions (dismounts a sliding wall).
    pub fn merge_partitions(
        &mut self,
        a: PartitionId,
        b: PartitionId,
    ) -> Result<PartitionId, EngineError> {
        Ok(self
            .apply(Update::MergePartitions(a, b))?
            .merged_partition()
            .expect("merge yields a partitions-merged outcome"))
    }

    /// Validates cross-layer invariants of the engine's pinned version
    /// (test/diagnostic support): returns an error when the index has not
    /// absorbed every space mutation, and panics on broken index-internal
    /// invariants (those indicate a bug, never an operational state).
    pub fn validate(&self) -> Result<(), EngineError> {
        self.state.index.validate();
        self.state.index.check_fresh(&self.state.space)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Rect2;
    use idq_model::FloorPlanBuilder;

    fn three_rooms() -> IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn end_to_end_insert_query_remove() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let o2 = e
            .insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        e.validate().unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let knn = e.knn(q, 2).unwrap();
        assert_eq!(knn.results.len(), 2);
        assert_eq!(knn.results[0].object, o1);
        assert_eq!(knn.results[1].object, o2);
        let within = e.range_query(q, 16.0).unwrap();
        assert_eq!(within.results.len(), 1);
        e.remove_object(o1).unwrap();
        let knn = e.knn(q, 2).unwrap();
        assert_eq!(knn.results.len(), 1);
        assert_eq!(knn.results[0].object, o2);
        e.validate().unwrap();
    }

    #[test]
    fn move_object_changes_ranking() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let o2 = e
            .insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, o1);
        // Move o1 to the far room and o2 near the query.
        e.move_object(o1, Point2::new(28.0, 5.0), 0, 9).unwrap();
        e.move_object(o2, Point2::new(12.0, 5.0), 0, 9).unwrap();
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, o2);
        e.validate().unwrap();
    }

    #[test]
    fn door_closure_reroutes_distance() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(28.0, 5.0), 0);
        let before = e.indoor_distance(q, p).unwrap();
        assert!(before.is_finite());
        let (_, doors) = e.shortest_path(q, p).unwrap().unwrap();
        assert_eq!(doors.len(), 2);
        e.close_door(doors[1]).unwrap();
        assert!(e.indoor_distance(q, p).unwrap().is_infinite());
        e.open_door(doors[1]).unwrap();
        assert!((e.indoor_distance(q, p).unwrap() - before).abs() < 1e-9);
        e.validate().unwrap();
    }

    #[test]
    fn split_and_merge_keep_queries_working() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 3)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mid = e
            .space()
            .partition_at(IndoorPoint::new(Point2::new(15.0, 2.0), 0))
            .unwrap();
        let halves = e
            .split_partition(mid, SplitLine::AtX(15.5), Some(Point2::new(15.5, 5.0)))
            .unwrap();
        e.validate().unwrap();
        let hits = e.range_query(q, 30.0).unwrap();
        assert!(hits.results.iter().any(|h| h.object == o));
        let merged = e.merge_partitions(halves[0], halves[1]).unwrap();
        e.validate().unwrap();
        assert!(e.space().partition(merged).is_ok());
        let hits = e.range_query(q, 30.0).unwrap();
        assert!(hits.results.iter().any(|h| h.object == o));
    }

    #[test]
    fn duplicate_insert_is_rejected_consistently() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let id = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let dup = UncertainObject::point_object(id, IndoorPoint::new(Point2::new(5.0, 5.0), 0));
        assert!(e.insert_object(dup).is_err());
        // The failed insert left no trace: cross-layer invariants hold and
        // the original object still answers queries.
        e.validate().unwrap();
        let q = IndoorPoint::new(Point2::new(8.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, id);
    }

    #[test]
    fn insert_on_an_uncovered_floor_is_rejected() {
        // A fully-formed object names its floor directly (no sampling to
        // reject it); the engine must refuse floors the space does not
        // cover, or the shard vectors would grow to the bogus floor.
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let epoch = e.epoch();
        let stray =
            UncertainObject::point_object(ObjectId(7), IndoorPoint::new(Point2::new(5.0, 5.0), 9));
        let err = e.insert_object(stray).unwrap_err();
        assert!(matches!(err, EngineError::FloorOutOfSpace { floor: 9, .. }));
        assert!(err.to_string().contains("floor 9"));
        assert_eq!(e.epoch(), epoch);
        assert_eq!(e.store().shard_count(), 0, "no shard slot was created");
        e.validate().unwrap();
    }

    #[test]
    fn failed_move_restores_the_original_object() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let id = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        // Moving to a position outside every partition fails in sampling,
        // before anything commits.
        assert!(e.move_object(id, Point2::new(-50.0, -50.0), 0, 9).is_err());
        e.validate().unwrap();
        assert!(e.store().contains(id));
        let q = IndoorPoint::new(Point2::new(8.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, id);
    }

    #[test]
    fn epoch_bumps_once_per_apply_and_stamps_snapshots() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        assert_eq!(e.epoch(), 0);
        assert_eq!(e.snapshot().version(), 0);
        e.insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        assert_eq!(e.epoch(), 1);
        let report = e
            .apply_batch(&[
                Update::InsertObjectAt {
                    center: Point2::new(15.0, 5.0),
                    floor: 0,
                    radius: 1.0,
                    instances: 4,
                    seed: 2,
                },
                Update::InsertObjectAt {
                    center: Point2::new(25.0, 5.0),
                    floor: 0,
                    radius: 1.0,
                    instances: 4,
                    seed: 3,
                },
            ])
            .unwrap();
        // One batch, one epoch bump — and the report names it (an
        // uncontended batch forms a group of one).
        assert_eq!(e.epoch(), 2);
        assert_eq!(report.epoch, 2);
        assert_eq!(report.offset_in_epoch, 0);
        assert_eq!(report.stats.group_batches, 1);
        assert!(!report.stats.restaged);
        assert_eq!(e.snapshot().version(), 2);
        assert_eq!(report.delta.inserted.len(), 2);
        assert!(!report.delta.topology_changed);
        // A failed apply leaves the epoch alone.
        assert!(e
            .move_object(ObjectId(0), Point2::new(-9.0, -9.0), 0, 1)
            .is_err());
        assert_eq!(e.epoch(), 2);
        // An empty batch is a committed no-op.
        let report = e.apply_batch(&[]).unwrap();
        assert_eq!(report.epoch, 2);
        assert!(report.delta.is_empty());
    }

    #[test]
    fn failed_batch_rolls_everything_back() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let epoch = e.epoch();
        let watermark = e.store().id_watermark();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let before = e.range_query(q, 40.0).unwrap().results;
        // Two good updates followed by a failing one (move to nowhere).
        let err = e.apply_batch(&[
            Update::MoveObject {
                id: o1,
                center: Point2::new(25.0, 5.0),
                floor: 0,
                seed: 7,
            },
            Update::InsertObjectAt {
                center: Point2::new(15.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 8,
            },
            Update::MoveObject {
                id: o1,
                center: Point2::new(-50.0, -50.0),
                floor: 0,
                seed: 9,
            },
        ]);
        assert!(err.is_err());
        e.validate().unwrap();
        assert_eq!(e.epoch(), epoch);
        assert_eq!(e.store().id_watermark(), watermark);
        assert_eq!(e.store().len(), 1);
        assert_eq!(e.range_query(q, 40.0).unwrap().results, before);
        // The object is back at its original position.
        assert_eq!(
            e.store().get(o1).unwrap().region.center,
            Point2::new(5.0, 5.0)
        );
    }

    #[test]
    fn failed_topology_batch_leaves_the_committed_version() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(28.0, 5.0), 0);
        let d_before = e.indoor_distance(q, p).unwrap();
        let version = e.space().version();
        let (_, doors) = e.shortest_path(q, p).unwrap().unwrap();
        // A move, a door closure, then a failing update: the closure ran
        // on the dropped transaction copy, so the committed space is
        // untouched (structurally, not via undo).
        let err = e.apply_batch(&[
            Update::MoveObject {
                id: o1,
                center: Point2::new(25.0, 5.0),
                floor: 0,
                seed: 3,
            },
            Update::CloseDoor(doors[1]),
            Update::RemoveObject(ObjectId(4040)),
        ]);
        assert!(err.is_err());
        e.validate().unwrap();
        assert_eq!(e.space().version(), version, "space untouched");
        assert!((e.indoor_distance(q, p).unwrap() - d_before).abs() < 1e-9);
        assert_eq!(
            e.store().get(o1).unwrap().region.center,
            Point2::new(15.0, 5.0)
        );
    }

    #[test]
    fn external_insert_reserves_its_id_for_later_allocations() {
        // Regression: an `InsertObject` with an externally minted id,
        // followed in the same batch by an `InsertObjectAt`, must allocate
        // exactly as sequential application would (the insert only lands at
        // commit, so staging has to reserve the id up front).
        let updates = |id: u64| {
            vec![
                Update::InsertObject(Box::new(UncertainObject::point_object(
                    ObjectId(id),
                    IndoorPoint::new(Point2::new(5.0, 5.0), 0),
                ))),
                Update::InsertObjectAt {
                    center: Point2::new(15.0, 5.0),
                    floor: 0,
                    radius: 1.0,
                    instances: 4,
                    seed: 1,
                },
            ]
        };
        for id in [0u64, 5] {
            let mut seq = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
            let mut bat = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
            for u in updates(id) {
                seq.apply(u).unwrap();
            }
            let report = bat.apply_batch(&updates(id)).unwrap();
            assert_eq!(
                seq.store().ids_sorted(),
                bat.store().ids_sorted(),
                "id {id}"
            );
            assert_eq!(report.delta.inserted, seq.store().ids_sorted());
            bat.validate().unwrap();
        }
    }

    #[test]
    fn batch_equals_sequential_on_a_mixed_stream() {
        let mut seq = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let mut bat = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let updates = vec![
            Update::InsertObjectAt {
                center: Point2::new(5.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 1,
            },
            Update::InsertObjectAt {
                center: Point2::new(15.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 2,
            },
            Update::InsertObjectAt {
                center: Point2::new(25.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 3,
            },
            Update::MoveObject {
                id: ObjectId(0),
                center: Point2::new(28.0, 5.0),
                floor: 0,
                seed: 4,
            },
            // Same object again: forces a run split, still equivalent.
            Update::MoveObject {
                id: ObjectId(0),
                center: Point2::new(2.0, 5.0),
                floor: 0,
                seed: 5,
            },
            Update::RemoveObject(ObjectId(1)),
        ];
        for u in &updates {
            seq.apply(u.clone()).unwrap();
        }
        let report = bat.apply_batch(&updates).unwrap();
        assert_eq!(report.outcomes.len(), updates.len());
        assert_eq!(report.delta.inserted, vec![ObjectId(0), ObjectId(2)]);
        assert_eq!(report.delta.removed, Vec::<ObjectId>::new());
        seq.validate().unwrap();
        bat.validate().unwrap();
        assert_eq!(seq.store().ids_sorted(), bat.store().ids_sorted());
        for id in seq.store().ids_sorted() {
            let (a, b) = (seq.store().get(id).unwrap(), bat.store().get(id).unwrap());
            assert_eq!(a.region.center, b.region.center);
            assert_eq!(a.len(), b.len());
        }
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let (a, b) = (
            seq.range_query(q, 30.0).unwrap(),
            bat.range_query(q, 30.0).unwrap(),
        );
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn parallel_sessions_read_while_the_writer_commits() {
        // The tentpole demo in miniature (the full grid lives in
        // tests/concurrency_stress.rs): four reader threads execute
        // sessions on service snapshots while the writer commits, and
        // every answer is consistent with the version its snapshot pins.
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        e.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let service = e.service();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let service = service.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        let snap = service.snapshot();
                        let out = snap.execute(&Query::Range { q, r: 40.0 }).unwrap();
                        let hits = out.as_range().unwrap().results.len();
                        // Epoch e has exactly 1 + (e - 1) live objects
                        // (first insert above, then one per commit below).
                        assert_eq!(hits as u64, snap.version(), "pinned answers");
                    }
                });
            }
            for seed in 2..=8u64 {
                e.insert_object_at(Point2::new(14.0 + seed as f64, 5.0), 0, 1.0, 8, seed)
                    .unwrap();
            }
        });
        assert_eq!(e.epoch(), 8);
        assert_eq!(service.epoch(), 8);
    }

    fn world_digest(e: &IndoorEngine) -> Vec<u64> {
        let snap = e.snapshot();
        let mut digest = vec![e.epoch(), snap.store().len() as u64];
        let mut ids: Vec<_> = snap.store().iter().map(|o| o.id).collect();
        ids.sort();
        for id in ids {
            let o = snap.store().get(id).unwrap();
            digest.extend([
                id.0,
                o.region.center.x.to_bits(),
                o.region.center.y.to_bits(),
                o.region.radius.to_bits(),
                o.floor as u64,
            ]);
        }
        digest
    }

    #[test]
    fn durable_engine_recovers_from_log_replay() {
        use idq_storage::MemBackend;
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let opts = DurabilityOptions {
            checkpoint_every: 0, // force pure log replay
            ..DurabilityOptions::default()
        };
        let digest = {
            let mut e = IndoorEngine::open_with(
                Arc::clone(&backend),
                three_rooms(),
                EngineConfig::default(),
                opts,
            )
            .unwrap();
            assert!(e.is_durable());
            assert_eq!(e.last_checkpoint_epoch(), Some(0));
            let o1 = e
                .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
                .unwrap();
            e.insert_object_at(Point2::new(25.0, 5.0), 0, 2.0, 8, 2)
                .unwrap();
            e.move_object(o1, Point2::new(5.0, 5.0), 0, 7).unwrap();
            world_digest(&e)
        };
        // Reopen: same backend now holds a checkpoint, so `open_with`
        // dispatches to recovery (the fresh space is ignored).
        let r = IndoorEngine::open_with(
            Arc::clone(&backend),
            three_rooms(),
            EngineConfig::default(),
            opts,
        )
        .unwrap();
        assert_eq!(world_digest(&r), digest);
        assert_eq!(r.epoch(), 3);
        r.validate().unwrap();
    }

    #[test]
    fn durable_engine_recovers_from_checkpoint_plus_suffix() {
        use idq_storage::MemBackend;
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let opts = DurabilityOptions {
            checkpoint_every: 0,
            ..DurabilityOptions::default()
        };
        let digest = {
            let mut e = IndoorEngine::open_with(
                Arc::clone(&backend),
                three_rooms(),
                EngineConfig::default(),
                opts,
            )
            .unwrap();
            for seed in 1..=4u64 {
                e.insert_object_at(Point2::new(10.0 + seed as f64, 5.0), 0, 1.0, 8, seed)
                    .unwrap();
            }
            // Mid-stream checkpoint, then more commits: recovery loads the
            // checkpoint and replays only the suffix.
            assert_eq!(e.checkpoint().unwrap(), Some(4));
            assert_eq!(e.last_checkpoint_epoch(), Some(4));
            for seed in 5..=7u64 {
                e.insert_object_at(Point2::new(10.0 + seed as f64, 5.0), 0, 1.0, 8, seed)
                    .unwrap();
            }
            world_digest(&e)
        };
        let r = IndoorEngine::recover_with(Arc::clone(&backend), EngineConfig::default(), opts)
            .unwrap();
        assert_eq!(world_digest(&r), digest);
        assert_eq!(r.epoch(), 7);
    }

    #[test]
    fn create_refuses_a_log_without_a_checkpoint() {
        use idq_storage::{MemBackend, SyncPolicy, Wal};
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        {
            let (mut wal, _) =
                Wal::open(Arc::clone(&backend), SyncPolicy::Always, 1 << 20).unwrap();
            wal.append_commit(1, &[vec![0u8; 4]]).unwrap();
        }
        let err = IndoorEngine::create_with(
            Arc::clone(&backend),
            three_rooms(),
            idq_objects::ObjectStore::new(),
            EngineConfig::default(),
            DurabilityOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Recovery { .. }), "{err}");
    }

    #[test]
    fn recovery_rejects_an_epoch_gap() {
        use idq_storage::MemBackend;
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let opts = DurabilityOptions {
            checkpoint_every: 0,
            ..DurabilityOptions::default()
        };
        {
            let mut e = IndoorEngine::open_with(
                Arc::clone(&backend),
                three_rooms(),
                EngineConfig::default(),
                opts,
            )
            .unwrap();
            e.insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
                .unwrap();
        }
        // Forge a record that skips an epoch.
        {
            use idq_storage::{SyncPolicy, Wal};
            let (mut wal, _) =
                Wal::open(Arc::clone(&backend), SyncPolicy::Always, 1 << 20).unwrap();
            let mut payload = Vec::new();
            wire::put_batch_parts(&mut payload, &[], &[]);
            wal.append_commit(9, &[payload]).unwrap();
        }
        let err = IndoorEngine::recover_with(backend, EngineConfig::default(), opts).unwrap_err();
        match err {
            EngineError::Recovery { epoch, cause, .. } => {
                assert_eq!(epoch, 9);
                assert!(cause.to_string().contains("epoch gap"), "{cause}");
            }
            other => panic!("expected a recovery error, got {other}"),
        }
    }
}
