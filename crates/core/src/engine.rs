//! The engine: space + objects + index, kept consistent.
//!
//! Reads go through [`EngineSnapshot`]s (PR 2's session API); writes go
//! through typed [`Update`]s executed by [`IndoorEngine::apply`] (one
//! update) or [`IndoorEngine::apply_batch`] (an atomic, amortized
//! transaction over a whole update stream — see `update.rs` for the
//! vocabulary and the report types). Every successful apply bumps the
//! engine's monotone epoch, which snapshots carry as their version.

use crate::error::EngineError;
use crate::snapshot::EngineSnapshot;
use crate::update::{DeltaBuilder, Update, UpdateOutcome, UpdateReport, UpdateStats};
use idq_geom::{Circle, Mbr3, Point2};
use idq_index::{CompositeIndex, IndexConfig, UnitId};
use idq_model::IndoorPoint;
use idq_model::{
    Direction, DoorId, Floor, IndoorSpace, PartitionId, PartitionSpec, SplitLine, TopologyEvent,
};
use idq_objects::{GaussianSampler, ObjectError, ObjectId, ObjectStore, UncertainObject};
use idq_query::{KnnResult, Outcome, Query, QueryOptions, RangeResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Engine configuration: index layout plus default query options.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// Composite-index parameters (fanout, `T_shape`, bulk load).
    pub index: IndexConfig,
    /// Default query options (ablation switches, subgraph slack).
    pub query: QueryOptions,
}

/// Planar side length (metres) of the spatial cells `apply_batch` groups
/// position updates by: `(floor, ⌊x/cell⌋, ⌊y/cell⌋)` of the new region
/// centre is a constant-time proxy for the touched partition (cells are
/// sized to the §V-A mall generator's room scale), so updates landing in
/// the same partition share one footprint traversal without paying a
/// point-location query per update.
const GROUP_CELL_M: f64 = 60.0;

/// Sampling parameters of a deferred Gaussian draw (resolved during
/// validation, executed during staging with an index-derived partition
/// hint).
#[derive(Debug)]
struct SampleSpec {
    id: ObjectId,
    center: Point2,
    floor: Floor,
    radius: f64,
    instances: usize,
    seed: u64,
}

/// A validated position update: existence and duplicate checks done, ids
/// allocated, sampling parameters resolved — nothing mutated, nothing
/// sampled yet. Crucially the write MBR is already known (a sampled
/// object's instances are truncated to its region, so its footprint is the
/// region's bounding box), which is what lets a run compute all footprints
/// first — shared traversals, grouped by touched partition — and then feed
/// each footprint's partitions back to the sampler as a point-location
/// hint.
#[derive(Debug)]
enum Intent {
    /// Insert this fully-formed object.
    InsertReady(Box<UncertainObject>),
    /// Sample a fresh object, then insert it.
    SampleInsert(SampleSpec),
    /// Sample the moved object's new state, then replace the old one.
    SampleMove(SampleSpec),
    /// Remove this object.
    Remove(ObjectId),
}

impl Intent {
    /// The MBR this intent writes into the index, if it writes one.
    fn write_mbr(&self, space: &IndoorSpace) -> Option<Mbr3> {
        match self {
            Intent::InsertReady(o) => Some(Mbr3::planar(
                o.footprint_rect(),
                o.floor,
                space.elevation(o.floor),
            )),
            Intent::SampleInsert(s) | Intent::SampleMove(s) => {
                let rect = Circle::new(s.center, s.radius).bbox();
                Some(Mbr3::planar(rect, s.floor, space.elevation(s.floor)))
            }
            Intent::Remove(_) => None,
        }
    }

    /// Grouping key: (floor, partition-scale cell) of the write centre.
    fn group_key(&self) -> Option<(Floor, i64, i64)> {
        let (center, floor) = match self {
            Intent::InsertReady(o) => (o.region.center, o.floor),
            Intent::SampleInsert(s) | Intent::SampleMove(s) => (s.center, s.floor),
            Intent::Remove(_) => return None,
        };
        let cx = (center.x / GROUP_CELL_M).floor() as i64;
        let cy = (center.y / GROUP_CELL_M).floor() as i64;
        Some((floor, cx, cy))
    }
}

/// What an object carried over from earlier updates of the same run —
/// sequential semantics without splitting the run on repeated ids.
#[derive(Clone, Copy, Debug)]
enum PendingState {
    /// The object will be live with this region radius / instance count.
    Live { radius: f64, instances: usize },
    /// The object will be gone.
    Removed,
}

/// A staged position update: validated, footprinted and sampled — the
/// commit can no longer fail on user input.
#[derive(Debug)]
enum PreparedOp {
    /// Insert this object under the prepared footprint.
    Insert(Box<UncertainObject>, Vec<UnitId>, Mbr3),
    /// Replace the same-id object under the prepared footprint.
    Move(Box<UncertainObject>, Vec<UnitId>, Mbr3),
    /// Remove this object.
    Remove(ObjectId),
}

/// Inverse of one committed position update, for all-or-nothing batches.
#[derive(Debug)]
enum UndoOp {
    /// Undo an insert: drop the object again.
    RemoveInserted(ObjectId),
    /// Undo a move: swap the previous object state back in.
    ReplaceBack(Box<UncertainObject>),
    /// Undo a removal: re-register the object.
    ReinsertRemoved(Box<UncertainObject>),
}

/// Clone of the mutable layers, taken once per batch before its first
/// topology update (topology maintenance has no cheap inverse; object
/// updates roll back through [`UndoOp`]s instead).
#[derive(Debug)]
struct Checkpoint {
    space: IndoorSpace,
    store: ObjectStore,
    index: CompositeIndex,
    /// Undo entries recorded before the checkpoint (still needed after a
    /// restore; later entries are superseded by it).
    undo_len: usize,
}

/// In-flight state of one `apply_batch` transaction.
#[derive(Debug, Default)]
struct BatchState {
    undo: Vec<UndoOp>,
    checkpoint: Option<Box<Checkpoint>>,
    outcomes: Vec<UpdateOutcome>,
    delta: DeltaBuilder,
    stats: UpdateStats,
}

/// The integrated engine: one consistent view of the indoor world.
#[derive(Debug)]
pub struct IndoorEngine {
    space: IndoorSpace,
    store: ObjectStore,
    index: CompositeIndex,
    options: QueryOptions,
    /// Largest uncertainty radius seen, used to widen the subgraph slack.
    max_radius: f64,
    /// Monotone write counter: +1 per successful [`IndoorEngine::apply`] /
    /// [`IndoorEngine::apply_batch`]. Snapshots carry it as their version.
    epoch: u64,
}

impl IndoorEngine {
    /// Builds an engine over a space with no objects yet.
    pub fn new(space: IndoorSpace, config: EngineConfig) -> Result<Self, EngineError> {
        Self::with_objects(space, ObjectStore::new(), config)
    }

    /// Builds an engine over a space and an existing object population.
    pub fn with_objects(
        space: IndoorSpace,
        store: ObjectStore,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let index = CompositeIndex::build(&space, &store, config.index)?;
        let max_radius = store.iter().map(|o| o.region.radius).fold(0.0f64, f64::max);
        Ok(IndoorEngine {
            space,
            store,
            index,
            options: config.query,
            max_radius,
            epoch: 0,
        })
    }

    // ---- accessors -------------------------------------------------------

    /// The indoor space.
    pub fn space(&self) -> &IndoorSpace {
        &self.space
    }

    /// The object population.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The composite index.
    pub fn index(&self) -> &CompositeIndex {
        &self.index
    }

    /// The engine's write epoch: bumped once per successful
    /// [`IndoorEngine::apply`] or [`IndoorEngine::apply_batch`] (a batch is
    /// one transaction, hence one bump). Two snapshots with equal
    /// [`EngineSnapshot::version`] saw the identical world.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The effective default query options (slack widened to the largest
    /// uncertainty region inserted so far).
    pub fn query_options(&self) -> QueryOptions {
        let by_radius = QueryOptions::for_max_radius(self.max_radius);
        QueryOptions {
            subgraph_slack: self.options.subgraph_slack.max(by_radius.subgraph_slack),
            ..self.options
        }
    }

    // ---- snapshots (sessions over a consistent read view) -------------------

    /// A consistent read view over the current space, objects and index,
    /// using the engine's effective default options. Holding the snapshot
    /// borrows the engine immutably, so no update can slip in between the
    /// queries issued through it.
    pub fn snapshot(&self) -> EngineSnapshot<'_> {
        EngineSnapshot::new(&self.space, &self.store, &self.index, self.query_options())
            .with_version(self.epoch)
    }

    /// A read view with explicit query options (ablations, exact
    /// refinement…).
    pub fn snapshot_with(&self, options: QueryOptions) -> EngineSnapshot<'_> {
        EngineSnapshot::new(&self.space, &self.store, &self.index, options).with_version(self.epoch)
    }

    /// Evaluates one typed [`Query`] on a fresh default snapshot.
    pub fn execute(&self, query: &Query) -> Result<Outcome, EngineError> {
        self.snapshot().execute(query)
    }

    /// Evaluates a batch of typed [`Query`]s on a fresh default snapshot,
    /// reusing one evaluation context per (query point, floor) group.
    pub fn execute_batch(&self, queries: &[Query]) -> Result<Vec<Outcome>, EngineError> {
        self.snapshot().execute_batch(queries)
    }

    // ---- typed updates (§III-C) ---------------------------------------------

    /// Applies one typed [`Update`].
    ///
    /// Atomic: on error the engine state is exactly what it was before the
    /// call (object updates prepare all fallible work — sampling,
    /// existence checks — before mutating anything; topology updates
    /// validate in the space layer before emitting events). A success bumps
    /// the [`IndoorEngine::epoch`].
    pub fn apply(&mut self, update: Update) -> Result<UpdateOutcome, EngineError> {
        if update.is_topology() {
            let mut skeleton_dirty = false;
            let outcome = self.apply_topology_update(&update, &mut skeleton_dirty)?;
            if skeleton_dirty {
                self.index.rebuild_skeleton(&self.space);
            }
            self.epoch += 1;
            Ok(outcome)
        } else {
            let watermark = self.store.id_watermark();
            let max_radius = self.max_radius;
            let mut undo = Vec::new();
            let mut stats = UpdateStats::default();
            let mut pending = HashMap::new();
            let result = self
                .prepare_intent(&update, &mut pending)
                .and_then(|intent| self.stage_run(vec![intent], &mut stats))
                .and_then(|ops| {
                    let op = ops.into_iter().next().expect("one intent, one op");
                    self.commit_object_op(op, &mut undo)
                });
            match result {
                Ok(outcome) => {
                    self.epoch += 1;
                    Ok(outcome)
                }
                Err(e) => {
                    self.rollback_object_ops(undo);
                    self.store.restore_id_watermark(watermark);
                    self.max_radius = max_radius;
                    Err(e)
                }
            }
        }
    }

    /// Applies a stream of typed [`Update`]s as **one atomic transaction**:
    /// either every update commits (one epoch bump, one [`UpdateReport`])
    /// or, on the first failure, the engine rolls back to the state before
    /// the call and the error is returned.
    ///
    /// The batch is also **amortized**: position updates are grouped by
    /// touched partition so the composite index runs one footprint
    /// traversal per group instead of one per update, and a run of
    /// topology updates coalesces its skeleton repairs into a single
    /// rebuild at the end of the run. Results are equivalent to applying
    /// the updates one at a time in order (same objects, same ids, same
    /// query answers) — only the maintenance cost differs.
    ///
    /// Rollback uses inverse operations for object updates; a batch that
    /// contains topology updates additionally clones the three layers once
    /// (`stats.checkpointed`) because topology maintenance has no cheap
    /// inverse. Rollback restores *observable* state exactly (objects,
    /// topology, versions, epoch, allocator watermark); incidental bucket
    /// orderings inside the index may differ, which no query can see.
    pub fn apply_batch(&mut self, updates: &[Update]) -> Result<UpdateReport, EngineError> {
        let watermark = self.store.id_watermark();
        let max_radius = self.max_radius;
        let mut state = BatchState {
            outcomes: Vec::with_capacity(updates.len()),
            ..BatchState::default()
        };
        match self.run_batch(updates, &mut state) {
            Ok(()) => {
                if !updates.is_empty() {
                    self.epoch += 1;
                }
                Ok(UpdateReport {
                    outcomes: state.outcomes,
                    delta: state.delta.finish(),
                    epoch: self.epoch,
                    stats: state.stats,
                })
            }
            Err(e) => {
                if let Some(cp) = state.checkpoint.take() {
                    self.space = cp.space;
                    self.store = cp.store;
                    self.index = cp.index;
                    state.undo.truncate(cp.undo_len);
                }
                self.rollback_object_ops(state.undo);
                self.store.restore_id_watermark(watermark);
                self.max_radius = max_radius;
                Err(e)
            }
        }
    }

    /// The forward pass of one batch: alternating runs of position updates
    /// (prepared, then committed with grouped footprints) and topology
    /// updates (applied with one deferred skeleton repair per run).
    fn run_batch(&mut self, updates: &[Update], state: &mut BatchState) -> Result<(), EngineError> {
        state.stats.updates = updates.len();
        let mut i = 0;
        while i < updates.len() {
            if updates[i].is_topology() {
                if state.checkpoint.is_none() {
                    state.checkpoint = Some(Box::new(Checkpoint {
                        space: self.space.clone(),
                        store: self.store.clone(),
                        index: self.index.clone(),
                        undo_len: state.undo.len(),
                    }));
                    state.stats.checkpointed = true;
                }
                let mut skeleton_dirty = false;
                while i < updates.len() && updates[i].is_topology() {
                    let outcome = self.apply_topology_update(&updates[i], &mut skeleton_dirty)?;
                    state.delta.record(&outcome);
                    state.outcomes.push(outcome);
                    i += 1;
                }
                if skeleton_dirty {
                    self.index.rebuild_skeleton(&self.space);
                    state.stats.skeleton_rebuilds += 1;
                }
            } else {
                // One run of position updates: validate every update first
                // (duplicate/existence checks against the store plus the
                // run's own pending effects), stage the run (shared
                // footprint traversals, hint-assisted sampling — all
                // remaining fallible work, still nothing mutated), then
                // commit in input order.
                let mut intents: Vec<Intent> = Vec::new();
                let mut pending: HashMap<ObjectId, PendingState> = HashMap::new();
                while i < updates.len() && !updates[i].is_topology() {
                    intents.push(self.prepare_intent(&updates[i], &mut pending)?);
                    state.stats.position_updates += 1;
                    i += 1;
                }
                let ops = self.stage_run(intents, &mut state.stats)?;
                for op in ops {
                    let outcome = self.commit_object_op(op, &mut state.undo)?;
                    state.delta.record(&outcome);
                    state.outcomes.push(outcome);
                }
            }
        }
        Ok(())
    }

    /// Validates one position [`Update`] against the store *and* the run's
    /// pending effects (so a run may touch the same object repeatedly with
    /// sequential semantics), allocating ids and resolving sampling
    /// parameters. No mutation beyond the id allocator (restored on
    /// rollback).
    fn prepare_intent(
        &mut self,
        update: &Update,
        pending: &mut HashMap<ObjectId, PendingState>,
    ) -> Result<Intent, EngineError> {
        match update {
            Update::InsertObject(object) => {
                let id = object.id;
                let exists = match pending.get(&id) {
                    Some(PendingState::Live { .. }) => true,
                    Some(PendingState::Removed) => false,
                    None => self.store.contains(id),
                };
                if exists {
                    return Err(ObjectError::DuplicateObject(id).into());
                }
                // The insert itself is deferred to commit, so reserve the
                // external id now: a later `InsertObjectAt` in this run
                // must allocate past it, exactly as sequential application
                // would after the insert landed.
                self.store.reserve_id(id);
                pending.insert(
                    id,
                    PendingState::Live {
                        radius: object.region.radius,
                        instances: object.len(),
                    },
                );
                Ok(Intent::InsertReady(object.clone()))
            }
            Update::InsertObjectAt {
                center,
                floor,
                radius,
                instances,
                seed,
            } => {
                let id = self.store.allocate_id();
                let instances = (*instances).max(1);
                pending.insert(
                    id,
                    PendingState::Live {
                        radius: *radius,
                        instances,
                    },
                );
                Ok(Intent::SampleInsert(SampleSpec {
                    id,
                    center: *center,
                    floor: *floor,
                    radius: *radius,
                    instances,
                    seed: *seed,
                }))
            }
            Update::MoveObject {
                id,
                center,
                floor,
                seed,
            } => {
                let (radius, instances) = match pending.get(id) {
                    Some(PendingState::Removed) => {
                        return Err(ObjectError::UnknownObject(*id).into())
                    }
                    Some(PendingState::Live { radius, instances }) => (*radius, *instances),
                    None => {
                        let old = self.store.get(*id)?;
                        (old.region.radius, old.len())
                    }
                };
                pending.insert(*id, PendingState::Live { radius, instances });
                Ok(Intent::SampleMove(SampleSpec {
                    id: *id,
                    center: *center,
                    floor: *floor,
                    radius,
                    instances,
                    seed: *seed,
                }))
            }
            Update::RemoveObject(id) => {
                match pending.get(id) {
                    Some(PendingState::Removed) => {
                        return Err(ObjectError::UnknownObject(*id).into())
                    }
                    Some(PendingState::Live { .. }) => {}
                    None => {
                        self.store.get(*id)?;
                    }
                }
                pending.insert(*id, PendingState::Removed);
                Ok(Intent::Remove(*id))
            }
            _ => unreachable!("prepare_intent only sees position updates"),
        }
    }

    /// Stages a validated run: groups writes by touched partition, runs
    /// one footprint traversal per group, then executes the deferred
    /// Gaussian draws with each footprint's partitions as the
    /// point-location hint (identical results to full point location, a
    /// fraction of the cost). Sampling can fail — a centre outside every
    /// partition — but nothing is mutated until every op is staged.
    fn stage_run(
        &mut self,
        intents: Vec<Intent>,
        stats: &mut UpdateStats,
    ) -> Result<Vec<PreparedOp>, EngineError> {
        // Sort write indices by (floor, cell): each contiguous key run is
        // one group sharing a traversal.
        let mut keyed: Vec<((Floor, i64, i64), usize)> = intents
            .iter()
            .enumerate()
            .filter_map(|(k, intent)| intent.group_key().map(|key| (key, k)))
            .collect();
        keyed.sort_unstable();
        let mut footprints: Vec<Option<(Vec<UnitId>, Mbr3)>> = Vec::new();
        footprints.resize_with(intents.len(), || None);
        let mut start = 0;
        while start < keyed.len() {
            let key = keyed[start].0;
            let mut end = start + 1;
            while end < keyed.len() && keyed[end].0 == key {
                end += 1;
            }
            let members = &keyed[start..end];
            let mbrs: Vec<Mbr3> = members
                .iter()
                .map(|&(_, k)| {
                    intents[k]
                        .write_mbr(&self.space)
                        .expect("grouped intents write an MBR")
                })
                .collect();
            let grouped = self.index.unit_footprints_grouped(&mbrs);
            stats.footprint_searches += 1;
            for ((&(_, k), units), mbr) in members.iter().zip(grouped).zip(mbrs) {
                footprints[k] = Some((units, mbr));
            }
            start = end;
        }
        intents
            .into_iter()
            .zip(footprints)
            .map(|(intent, footprint)| match intent {
                Intent::InsertReady(object) => {
                    let (units, mbr) = footprint.expect("writes carry a footprint");
                    Ok(PreparedOp::Insert(object, units, mbr))
                }
                Intent::SampleInsert(spec) => {
                    let (units, mbr) = footprint.expect("writes carry a footprint");
                    let object = self.sample_spec(&spec, &units)?;
                    Ok(PreparedOp::Insert(Box::new(object), units, mbr))
                }
                Intent::SampleMove(spec) => {
                    let (units, mbr) = footprint.expect("writes carry a footprint");
                    let object = self.sample_spec(&spec, &units)?;
                    Ok(PreparedOp::Move(Box::new(object), units, mbr))
                }
                Intent::Remove(id) => Ok(PreparedOp::Remove(id)),
            })
            .collect()
    }

    /// Executes one deferred Gaussian draw, point-locating against the
    /// partitions owning the footprint's units (a superset of every
    /// partition overlapping the region, so the draw is exact).
    fn sample_spec(
        &self,
        spec: &SampleSpec,
        units: &[UnitId],
    ) -> Result<UncertainObject, EngineError> {
        let mut hint: Vec<PartitionId> = units
            .iter()
            .filter_map(|&u| self.index.units().partition_of(u))
            .collect();
        hint.sort_unstable();
        hint.dedup();
        let sampler = GaussianSampler {
            instances: spec.instances,
            ..GaussianSampler::default()
        };
        let mut rng = StdRng::seed_from_u64(spec.seed ^ spec.id.0);
        Ok(sampler.sample_with_hint(
            spec.id,
            spec.center,
            spec.floor,
            spec.radius,
            &self.space,
            &hint,
            &mut rng,
        )?)
    }

    /// Applies one staged op to store + index, recording its inverse. By
    /// construction (validation + staging) these layer operations cannot
    /// fail on user input; the defensive paths keep the layers consistent
    /// anyway.
    fn commit_object_op(
        &mut self,
        op: PreparedOp,
        undo: &mut Vec<UndoOp>,
    ) -> Result<UpdateOutcome, EngineError> {
        match op {
            PreparedOp::Insert(object, units, mbr) => {
                let id = object.id;
                let radius = object.region.radius;
                self.index.insert_object_prepared(id, units, mbr)?;
                if let Err(e) = self.store.insert(*object) {
                    // Keep the layers consistent: the index insert above
                    // succeeded, so removal undoes exactly it.
                    self.index.remove_object(id)?;
                    return Err(e.into());
                }
                undo.push(UndoOp::RemoveInserted(id));
                self.max_radius = self.max_radius.max(radius);
                Ok(UpdateOutcome::ObjectInserted(id))
            }
            PreparedOp::Move(object, units, mbr) => {
                let id = object.id;
                let old = self.store.replace(*object)?;
                if let Err(e) = self.index.update_object_prepared(id, units, mbr) {
                    self.store.replace(old)?;
                    return Err(e.into());
                }
                undo.push(UndoOp::ReplaceBack(Box::new(old)));
                Ok(UpdateOutcome::ObjectMoved(id))
            }
            PreparedOp::Remove(id) => {
                self.index.remove_object(id)?;
                let object = self.store.remove(id)?;
                undo.push(UndoOp::ReinsertRemoved(Box::new(object)));
                Ok(UpdateOutcome::ObjectRemoved(id))
            }
        }
    }

    /// Reverses committed position updates, newest first. The inverses
    /// mirror operations the forward pass just performed, so layer errors
    /// here are unreachable short of memory corruption — hence the
    /// `expect`s: a failed rollback has no sane continuation.
    fn rollback_object_ops(&mut self, mut undo: Vec<UndoOp>) {
        while let Some(op) = undo.pop() {
            match op {
                UndoOp::RemoveInserted(id) => {
                    self.index
                        .remove_object(id)
                        .expect("rollback: inserted object is indexed");
                    self.store
                        .remove(id)
                        .expect("rollback: inserted object is stored");
                }
                UndoOp::ReplaceBack(old) => {
                    self.index
                        .update_object(&self.space, &old)
                        .expect("rollback: moved object is indexed");
                    self.store
                        .replace(*old)
                        .expect("rollback: moved object is stored");
                }
                UndoOp::ReinsertRemoved(object) => {
                    self.index
                        .insert_object(&self.space, &object)
                        .expect("rollback: removed object re-indexes");
                    self.store
                        .insert(*object)
                        .expect("rollback: removed id is free");
                }
            }
        }
    }

    /// Applies one topology [`Update`]: the space-layer operation, then its
    /// events through the index with the skeleton repair deferred into
    /// `skeleton_dirty` (callers coalesce repairs across a run).
    fn apply_topology_update(
        &mut self,
        update: &Update,
        skeleton_dirty: &mut bool,
    ) -> Result<UpdateOutcome, EngineError> {
        match update {
            Update::OpenDoor(d) => {
                let ev = self.space.open_door(*d)?;
                self.absorb_events(&[ev], skeleton_dirty)?;
                Ok(UpdateOutcome::DoorOpened(*d))
            }
            Update::CloseDoor(d) => {
                let ev = self.space.close_door(*d)?;
                self.absorb_events(&[ev], skeleton_dirty)?;
                Ok(UpdateOutcome::DoorClosed(*d))
            }
            Update::InsertDoor {
                a,
                b,
                position,
                floor,
                direction,
            } => {
                let (id, ev) = self
                    .space
                    .insert_door(*a, *b, *position, *floor, *direction)?;
                self.absorb_events(&[ev], skeleton_dirty)?;
                Ok(UpdateOutcome::DoorInserted(id))
            }
            Update::InsertPartition(spec) => {
                let (partition, doors, events) = self.space.insert_partition(spec.clone())?;
                self.absorb_events(&events, skeleton_dirty)?;
                Ok(UpdateOutcome::PartitionInserted { partition, doors })
            }
            Update::DeletePartition(p) => {
                let events = self.space.delete_partition(*p)?;
                self.absorb_events(&events, skeleton_dirty)?;
                Ok(UpdateOutcome::PartitionDeleted(*p))
            }
            Update::SplitPartition {
                partition,
                line,
                connecting_door,
            } => {
                let (halves, events) =
                    self.space
                        .split_partition(*partition, *line, *connecting_door)?;
                self.absorb_events(&events, skeleton_dirty)?;
                Ok(UpdateOutcome::PartitionSplit {
                    old: *partition,
                    halves,
                })
            }
            Update::MergePartitions(a, b) => {
                let (merged, events) = self.space.merge_partitions(*a, *b)?;
                self.absorb_events(&events, skeleton_dirty)?;
                Ok(UpdateOutcome::PartitionsMerged { merged })
            }
            _ => unreachable!("apply_topology_update only sees topology updates"),
        }
    }

    fn absorb_events(
        &mut self,
        events: &[TopologyEvent],
        skeleton_dirty: &mut bool,
    ) -> Result<(), EngineError> {
        for ev in events {
            *skeleton_dirty |= self
                .index
                .apply_topology_deferred(&self.space, &self.store, ev)?;
        }
        Ok(())
    }

    // ---- object management (§III-C.2) --------------------------------------
    //
    // Stability contract (mirroring the read side): these convenience
    // methods are kept indefinitely as thin delegations onto
    // [`IndoorEngine::apply`] — existing callers never need to name
    // [`Update`]. New code, and anything issuing several updates that must
    // commit or fail together, should prefer typed updates and
    // [`IndoorEngine::apply_batch`].

    /// Inserts a fully-formed uncertain object.
    pub fn insert_object(&mut self, object: UncertainObject) -> Result<(), EngineError> {
        self.apply(Update::InsertObject(Box::new(object)))
            .map(|_| ())
    }

    /// Samples and inserts an object: Gaussian instances in a circular
    /// region, per the paper's object model (§V-A).
    pub fn insert_object_at(
        &mut self,
        center: Point2,
        floor: Floor,
        radius: f64,
        instances: usize,
        seed: u64,
    ) -> Result<ObjectId, EngineError> {
        let outcome = self.apply(Update::InsertObjectAt {
            center,
            floor,
            radius,
            instances,
            seed,
        })?;
        Ok(outcome
            .inserted_object()
            .expect("insert yields an inserted-object outcome"))
    }

    /// Removes an object, returning it.
    ///
    /// Unlike its sibling delegations this one is implemented directly
    /// (observationally identical to `apply(Update::RemoveObject(id))`,
    /// epoch bump included) so the removed object *moves* out to the
    /// caller instead of being deep-cloned for the return value.
    pub fn remove_object(&mut self, id: ObjectId) -> Result<UncertainObject, EngineError> {
        self.store.get(id)?;
        self.index.remove_object(id)?;
        let object = self.store.remove(id)?;
        self.epoch += 1;
        Ok(object)
    }

    /// Moves an object: deletion followed by insertion with a re-sampled
    /// uncertainty region at the new position (§III-C.2's update flow).
    /// The new region is sampled (and can fail) *before* the old object is
    /// touched, so a failed move leaves the object exactly where it was.
    pub fn move_object(
        &mut self,
        id: ObjectId,
        center: Point2,
        floor: Floor,
        seed: u64,
    ) -> Result<(), EngineError> {
        self.apply(Update::MoveObject {
            id,
            center,
            floor,
            seed,
        })
        .map(|_| ())
    }

    // ---- queries (§IV) -------------------------------------------------------
    //
    // Stability contract: these convenience methods are kept indefinitely
    // as thin delegations onto a default snapshot — existing callers never
    // need to name `Query` or `Outcome`. New code (and anything issuing
    // several queries against one consistent view) should prefer
    // [`IndoorEngine::snapshot`] + [`EngineSnapshot::execute`] /
    // [`EngineSnapshot::execute_batch`].

    /// `iRQ(q, r)` with the engine's default options.
    pub fn range_query(&self, q: IndoorPoint, r: f64) -> Result<RangeResult, EngineError> {
        self.range_query_with(q, r, &self.query_options())
    }

    /// `iRQ(q, r)` with explicit options (ablations, exact refinement…).
    pub fn range_query_with(
        &self,
        q: IndoorPoint,
        r: f64,
        options: &QueryOptions,
    ) -> Result<RangeResult, EngineError> {
        Ok(self
            .snapshot_with(*options)
            .execute(&Query::Range { q, r })?
            .into_range()
            .expect("range query yields a range outcome"))
    }

    /// `ikNNQ(q, k)` with the engine's default options.
    pub fn knn(&self, q: IndoorPoint, k: usize) -> Result<KnnResult, EngineError> {
        self.knn_with(q, k, &self.query_options())
    }

    /// `ikNNQ(q, k)` with explicit options.
    pub fn knn_with(
        &self,
        q: IndoorPoint,
        k: usize,
        options: &QueryOptions,
    ) -> Result<KnnResult, EngineError> {
        Ok(self
            .snapshot_with(*options)
            .execute(&Query::Knn { q, k })?
            .into_knn()
            .expect("kNN query yields a kNN outcome"))
    }

    /// Point-to-point indoor distance `|q,p|_I`.
    pub fn indoor_distance(&self, q: IndoorPoint, p: IndoorPoint) -> Result<f64, EngineError> {
        Ok(self
            .snapshot()
            .execute(&Query::Distance { q, p })?
            .into_distance()
            .expect("distance query yields a distance outcome")
            .distance)
    }

    /// Shortest indoor path `q ⇝δ p`: length plus the door sequence.
    pub fn shortest_path(
        &self,
        q: IndoorPoint,
        p: IndoorPoint,
    ) -> Result<Option<(f64, Vec<DoorId>)>, EngineError> {
        Ok(self
            .snapshot()
            .execute(&Query::Path { q, p })?
            .into_path()
            .expect("path query yields a path outcome")
            .path)
    }

    // ---- topology updates (§III-C.1) --------------------------------------------
    //
    // Same stability contract: thin delegations onto [`IndoorEngine::apply`].

    /// Closes a door and updates the index layers.
    pub fn close_door(&mut self, d: DoorId) -> Result<(), EngineError> {
        self.apply(Update::CloseDoor(d)).map(|_| ())
    }

    /// Re-opens a door.
    pub fn open_door(&mut self, d: DoorId) -> Result<(), EngineError> {
        self.apply(Update::OpenDoor(d)).map(|_| ())
    }

    /// Adds a temporary door between two partitions.
    pub fn insert_door(
        &mut self,
        a: PartitionId,
        b: PartitionId,
        position: Point2,
        floor: Floor,
        direction: Direction,
    ) -> Result<DoorId, EngineError> {
        Ok(self
            .apply(Update::InsertDoor {
                a,
                b,
                position,
                floor,
                direction,
            })?
            .inserted_door()
            .expect("door insert yields an inserted-door outcome"))
    }

    /// Inserts a partition with its doors.
    pub fn insert_partition(
        &mut self,
        spec: PartitionSpec,
    ) -> Result<(PartitionId, Vec<DoorId>), EngineError> {
        match self.apply(Update::InsertPartition(spec))? {
            UpdateOutcome::PartitionInserted { partition, doors } => Ok((partition, doors)),
            _ => unreachable!("partition insert yields a partition-inserted outcome"),
        }
    }

    /// Deletes a partition and its doors.
    pub fn delete_partition(&mut self, pid: PartitionId) -> Result<(), EngineError> {
        self.apply(Update::DeletePartition(pid)).map(|_| ())
    }

    /// Splits a rectangular partition with a sliding wall.
    pub fn split_partition(
        &mut self,
        pid: PartitionId,
        line: SplitLine,
        connecting_door: Option<Point2>,
    ) -> Result<[PartitionId; 2], EngineError> {
        Ok(self
            .apply(Update::SplitPartition {
                partition: pid,
                line,
                connecting_door,
            })?
            .split_halves()
            .expect("split yields a partition-split outcome"))
    }

    /// Merges two partitions (dismounts a sliding wall).
    pub fn merge_partitions(
        &mut self,
        a: PartitionId,
        b: PartitionId,
    ) -> Result<PartitionId, EngineError> {
        Ok(self
            .apply(Update::MergePartitions(a, b))?
            .merged_partition()
            .expect("merge yields a partitions-merged outcome"))
    }

    /// Validates cross-layer invariants (test/diagnostic support): returns
    /// an error when the index has not absorbed every space mutation, and
    /// panics on broken index-internal invariants (those indicate a bug,
    /// never an operational state).
    pub fn validate(&self) -> Result<(), EngineError> {
        self.index.validate();
        self.index.check_fresh(&self.space)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idq_geom::Rect2;
    use idq_model::FloorPlanBuilder;

    fn three_rooms() -> IndoorSpace {
        let mut b = FloorPlanBuilder::new(4.0);
        let r0 = b
            .add_room(0, Rect2::from_bounds(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        let r1 = b
            .add_room(0, Rect2::from_bounds(10.0, 0.0, 20.0, 10.0))
            .unwrap();
        let r2 = b
            .add_room(0, Rect2::from_bounds(20.0, 0.0, 30.0, 10.0))
            .unwrap();
        b.add_door_between(r0, r1, Point2::new(10.0, 5.0)).unwrap();
        b.add_door_between(r1, r2, Point2::new(20.0, 5.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn end_to_end_insert_query_remove() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let o2 = e
            .insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        e.validate().unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let knn = e.knn(q, 2).unwrap();
        assert_eq!(knn.results.len(), 2);
        assert_eq!(knn.results[0].object, o1);
        assert_eq!(knn.results[1].object, o2);
        let within = e.range_query(q, 16.0).unwrap();
        assert_eq!(within.results.len(), 1);
        e.remove_object(o1).unwrap();
        let knn = e.knn(q, 2).unwrap();
        assert_eq!(knn.results.len(), 1);
        assert_eq!(knn.results[0].object, o2);
        e.validate().unwrap();
    }

    #[test]
    fn move_object_changes_ranking() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 1)
            .unwrap();
        let o2 = e
            .insert_object_at(Point2::new(25.0, 5.0), 0, 1.0, 8, 2)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, o1);
        // Move o1 to the far room and o2 near the query.
        e.move_object(o1, Point2::new(28.0, 5.0), 0, 9).unwrap();
        e.move_object(o2, Point2::new(12.0, 5.0), 0, 9).unwrap();
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, o2);
        e.validate().unwrap();
    }

    #[test]
    fn door_closure_reroutes_distance() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(28.0, 5.0), 0);
        let before = e.indoor_distance(q, p).unwrap();
        assert!(before.is_finite());
        let (_, doors) = e.shortest_path(q, p).unwrap().unwrap();
        assert_eq!(doors.len(), 2);
        e.close_door(doors[1]).unwrap();
        assert!(e.indoor_distance(q, p).unwrap().is_infinite());
        e.open_door(doors[1]).unwrap();
        assert!((e.indoor_distance(q, p).unwrap() - before).abs() < 1e-9);
        e.validate().unwrap();
    }

    #[test]
    fn split_and_merge_keep_queries_working() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 8, 3)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let mid = e
            .space()
            .partition_at(IndoorPoint::new(Point2::new(15.0, 2.0), 0))
            .unwrap();
        let halves = e
            .split_partition(mid, SplitLine::AtX(15.5), Some(Point2::new(15.5, 5.0)))
            .unwrap();
        e.validate().unwrap();
        let hits = e.range_query(q, 30.0).unwrap();
        assert!(hits.results.iter().any(|h| h.object == o));
        let merged = e.merge_partitions(halves[0], halves[1]).unwrap();
        e.validate().unwrap();
        assert!(e.space().partition(merged).is_ok());
        let hits = e.range_query(q, 30.0).unwrap();
        assert!(hits.results.iter().any(|h| h.object == o));
    }

    #[test]
    fn duplicate_insert_is_rejected_consistently() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let id = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let dup = UncertainObject::point_object(id, IndoorPoint::new(Point2::new(5.0, 5.0), 0));
        assert!(e.insert_object(dup).is_err());
        // The failed insert left no trace: cross-layer invariants hold and
        // the original object still answers queries.
        e.validate().unwrap();
        let q = IndoorPoint::new(Point2::new(8.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, id);
    }

    #[test]
    fn failed_move_restores_the_original_object() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let id = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        // Moving to a position outside every partition fails in sampling,
        // before the old object is touched.
        assert!(e.move_object(id, Point2::new(-50.0, -50.0), 0, 9).is_err());
        e.validate().unwrap();
        assert!(e.store().contains(id));
        let q = IndoorPoint::new(Point2::new(8.0, 5.0), 0);
        assert_eq!(e.knn(q, 1).unwrap().results[0].object, id);
    }

    #[test]
    fn epoch_bumps_once_per_apply_and_stamps_snapshots() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        assert_eq!(e.epoch(), 0);
        assert_eq!(e.snapshot().version(), 0);
        e.insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        assert_eq!(e.epoch(), 1);
        let report = e
            .apply_batch(&[
                Update::InsertObjectAt {
                    center: Point2::new(15.0, 5.0),
                    floor: 0,
                    radius: 1.0,
                    instances: 4,
                    seed: 2,
                },
                Update::InsertObjectAt {
                    center: Point2::new(25.0, 5.0),
                    floor: 0,
                    radius: 1.0,
                    instances: 4,
                    seed: 3,
                },
            ])
            .unwrap();
        // One batch, one epoch bump — and the report names it.
        assert_eq!(e.epoch(), 2);
        assert_eq!(report.epoch, 2);
        assert_eq!(e.snapshot().version(), 2);
        assert_eq!(report.delta.inserted.len(), 2);
        assert!(!report.delta.topology_changed);
        // A failed apply leaves the epoch alone.
        assert!(e
            .move_object(ObjectId(0), Point2::new(-9.0, -9.0), 0, 1)
            .is_err());
        assert_eq!(e.epoch(), 2);
        // An empty batch is a committed no-op.
        let report = e.apply_batch(&[]).unwrap();
        assert_eq!(report.epoch, 2);
        assert!(report.delta.is_empty());
    }

    #[test]
    fn failed_batch_rolls_everything_back() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(5.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let epoch = e.epoch();
        let watermark = e.store().id_watermark();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let before = e.range_query(q, 40.0).unwrap().results;
        // Two good updates followed by a failing one (move to nowhere).
        let err = e.apply_batch(&[
            Update::MoveObject {
                id: o1,
                center: Point2::new(25.0, 5.0),
                floor: 0,
                seed: 7,
            },
            Update::InsertObjectAt {
                center: Point2::new(15.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 8,
            },
            Update::MoveObject {
                id: o1,
                center: Point2::new(-50.0, -50.0),
                floor: 0,
                seed: 9,
            },
        ]);
        assert!(err.is_err());
        e.validate().unwrap();
        assert_eq!(e.epoch(), epoch);
        assert_eq!(e.store().id_watermark(), watermark);
        assert_eq!(e.store().len(), 1);
        assert_eq!(e.range_query(q, 40.0).unwrap().results, before);
        // The object is back at its original position.
        assert_eq!(
            e.store().get(o1).unwrap().region.center,
            Point2::new(5.0, 5.0)
        );
    }

    #[test]
    fn failed_topology_batch_restores_via_checkpoint() {
        let mut e = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let o1 = e
            .insert_object_at(Point2::new(15.0, 5.0), 0, 1.0, 4, 1)
            .unwrap();
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let p = IndoorPoint::new(Point2::new(28.0, 5.0), 0);
        let d_before = e.indoor_distance(q, p).unwrap();
        let version = e.space().version();
        let (_, doors) = e.shortest_path(q, p).unwrap().unwrap();
        // A move, a door closure, then a failing update: the closure must
        // be undone too (checkpoint restore), not just the object ops.
        let err = e.apply_batch(&[
            Update::MoveObject {
                id: o1,
                center: Point2::new(25.0, 5.0),
                floor: 0,
                seed: 3,
            },
            Update::CloseDoor(doors[1]),
            Update::RemoveObject(ObjectId(4040)),
        ]);
        assert!(err.is_err());
        e.validate().unwrap();
        assert_eq!(e.space().version(), version, "space restored exactly");
        assert!((e.indoor_distance(q, p).unwrap() - d_before).abs() < 1e-9);
        assert_eq!(
            e.store().get(o1).unwrap().region.center,
            Point2::new(15.0, 5.0)
        );
    }

    #[test]
    fn external_insert_reserves_its_id_for_later_allocations() {
        // Regression: an `InsertObject` with an externally minted id,
        // followed in the same batch by an `InsertObjectAt`, must allocate
        // exactly as sequential application would (the insert only lands at
        // commit, so staging has to reserve the id up front).
        let updates = |id: u64| {
            vec![
                Update::InsertObject(Box::new(UncertainObject::point_object(
                    ObjectId(id),
                    IndoorPoint::new(Point2::new(5.0, 5.0), 0),
                ))),
                Update::InsertObjectAt {
                    center: Point2::new(15.0, 5.0),
                    floor: 0,
                    radius: 1.0,
                    instances: 4,
                    seed: 1,
                },
            ]
        };
        for id in [0u64, 5] {
            let mut seq = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
            let mut bat = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
            for u in updates(id) {
                seq.apply(u).unwrap();
            }
            let report = bat.apply_batch(&updates(id)).unwrap();
            assert_eq!(
                seq.store().ids_sorted(),
                bat.store().ids_sorted(),
                "id {id}"
            );
            assert_eq!(report.delta.inserted, seq.store().ids_sorted());
            bat.validate().unwrap();
        }
    }

    #[test]
    fn batch_equals_sequential_on_a_mixed_stream() {
        let mut seq = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let mut bat = IndoorEngine::new(three_rooms(), EngineConfig::default()).unwrap();
        let updates = vec![
            Update::InsertObjectAt {
                center: Point2::new(5.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 1,
            },
            Update::InsertObjectAt {
                center: Point2::new(15.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 2,
            },
            Update::InsertObjectAt {
                center: Point2::new(25.0, 5.0),
                floor: 0,
                radius: 1.0,
                instances: 4,
                seed: 3,
            },
            Update::MoveObject {
                id: ObjectId(0),
                center: Point2::new(28.0, 5.0),
                floor: 0,
                seed: 4,
            },
            // Same object again: forces a run split, still equivalent.
            Update::MoveObject {
                id: ObjectId(0),
                center: Point2::new(2.0, 5.0),
                floor: 0,
                seed: 5,
            },
            Update::RemoveObject(ObjectId(1)),
        ];
        for u in &updates {
            seq.apply(u.clone()).unwrap();
        }
        let report = bat.apply_batch(&updates).unwrap();
        assert_eq!(report.outcomes.len(), updates.len());
        assert_eq!(report.delta.inserted, vec![ObjectId(0), ObjectId(2)]);
        assert_eq!(report.delta.removed, Vec::<ObjectId>::new());
        seq.validate().unwrap();
        bat.validate().unwrap();
        assert_eq!(seq.store().ids_sorted(), bat.store().ids_sorted());
        for id in seq.store().ids_sorted() {
            let (a, b) = (seq.store().get(id).unwrap(), bat.store().get(id).unwrap());
            assert_eq!(a.region.center, b.region.center);
            assert_eq!(a.len(), b.len());
        }
        let q = IndoorPoint::new(Point2::new(2.0, 5.0), 0);
        let (a, b) = (
            seq.range_query(q, 30.0).unwrap(),
            bat.range_query(q, 30.0).unwrap(),
        );
        assert_eq!(a.results, b.results);
    }
}
